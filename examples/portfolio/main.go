// Portfolio: the paper's §2.1 motivating example, verbatim.
//
//	RULE Purchase :
//	  WHEN IBM!SetPrice And DowJones!SetValue            /* Event */
//	  IF   IBM!GetPrice < $80 and DowJones!Change < 3.4% /* Condition */
//	  THEN Parker!PurchaseIBMStock                       /* Action */
//
// Three classes — Stock, FinancialInfo, Portfolio — are defined
// independently; the Purchase rule monitors TWO objects of DIFFERENT
// classes (the IBM stock and the DowJones index) through one conjunction
// event and two runtime subscriptions. Neither class was edited to make
// this possible: that is the external monitoring viewpoint.
//
// Run with: go run ./examples/portfolio
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	db := sentinel.MustOpen(sentinel.Options{})
	defer db.Close()

	err := db.Exec(`
		class Stock reactive persistent {
			attr symbol string
			attr price float
			event end method SetPrice(price float) {
				self.price := price
			}
			method GetPrice() float { return self.price }
		}

		class FinancialInfo reactive persistent {
			attr name string
			attr val float
			attr change float
			event end method SetValue(v float) {
				if self.val != 0.0 {
					self.change := (v - self.val) / self.val * 100.0
				}
				self.val := v
			}
			method Change() float { return self.change }
		}

		class Portfolio persistent {
			attr owner string
			attr shares int
			attr cash float
			method PurchaseIBMStock() {
				let price := IBM!GetPrice()
				if price * 100.0 > self.cash {
					abort "cannot afford 100 shares"
				}
				self.shares := self.shares + 100
				self.cash := self.cash - price * 100.0
				print("Parker bought 100 IBM at", price, "| shares:", self.shares, "cash:", self.cash)
			}
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Instances — created before anyone decided to monitor them.
	err = db.Exec(`
		bind IBM      new Stock(symbol: "IBM", price: 95.0)
		bind DowJones new FinancialInfo(name: "DowJones", val: 10000.0)
		bind Parker   new Portfolio(owner: "Parker", cash: 50000.0)
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The Purchase rule: a conjunction spanning two classes. Subscribing it
	// to exactly the IBM and DowJones objects means price changes of OTHER
	// stocks never even reach the rule.
	err = db.Exec(`
		rule Purchase
			on end Stock::SetPrice(float price) and end FinancialInfo::SetValue(float v)
			if IBM!GetPrice() < 80.0 and DowJones!Change() < 3.4
			then Parker!PurchaseIBMStock()

		subscribe Purchase to IBM
		subscribe Purchase to DowJones
	`)
	if err != nil {
		log.Fatal(err)
	}

	feed := []string{
		`IBM!SetPrice(90.0)`,         // price still high: conjunction completes below only if cond holds
		`DowJones!SetValue(10100.0)`, // +1% — but IBM at 90: condition false
		`IBM!SetPrice(75.0)`,         // IBM below 80...
		`DowJones!SetValue(10150.0)`, // +0.5% — both sides occurred, condition true: BUY
		`IBM!SetPrice(70.0)`,         // below 80 again...
		`DowJones!SetValue(11200.0)`, // +10.3% — too hot: condition false
	}
	for _, tick := range feed {
		fmt.Println("tick:", tick)
		if err := db.Exec(tick); err != nil {
			log.Fatal(err)
		}
	}

	r := db.LookupRule("Purchase")
	received, signalled, fired := r.Stats()
	fmt.Printf("\nPurchase rule: %d occurrences received, %d conjunctions detected, %d purchases\n",
		received, signalled, fired)

	shares, err := db.Eval(`Parker.shares`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Parker now holds", shares, "shares of IBM")
}
