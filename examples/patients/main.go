// Patients: the paper's §2.1 monitoring motivation — "when a patient class
// is defined (and instances are created), it is not known who may be
// interested in monitoring that patient; depending upon the diagnosis,
// additional groups or physicians may have to track the patient's
// progress."
//
// This example creates patients FIRST, then attaches and detaches monitors
// at runtime, never touching the Patient class again:
//
//   - a triage rule that subscribes a fever watch to any patient whose
//     diagnosis comes back positive (a rule whose action manages other
//     rules' subscriptions),
//   - a detached-coupling pager rule, so notifying the physician happens in
//     its own transaction after the vitals transaction commits,
//   - a plain Go callback consumer (the bare Notifiable role) feeding a
//     monitoring dashboard.
//
// Run with: go run ./examples/patients
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	db := sentinel.MustOpen(sentinel.Options{})
	defer db.Close()

	// The Patient class knows nothing about monitoring policies.
	err := db.Exec(`
		class Patient reactive persistent {
			attr name string
			attr temperature float
			attr heartRate int
			attr diagnosis string
			event end method RecordVitals(temp float, hr int) {
				self.temperature := temp
				self.heartRate := hr
			}
			event end method Diagnose(dx string) {
				self.diagnosis := dx
			}
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Patients exist before any monitor does.
	err = db.Exec(`
		bind Alice new Patient(name: "Alice")
		bind Bob   new Patient(name: "Bob")
	`)
	if err != nil {
		log.Fatal(err)
	}

	// FeverWatch pages the physician — detached coupling: the page goes out
	// in its own transaction after the vitals commit, so a failing pager
	// can never roll back a medical record.
	err = db.Exec(`
		rule FeverWatch on end Patient::RecordVitals(float temp, int hr)
			if temp >= 39.0 or hr > 130
			then print("PAGE: patient", self.name, "temp", temp, "hr", hr)
			coupling detached
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Triage: a class-level rule whose ACTION subscribes/unsubscribes the
	// fever watch depending on the diagnosis — rules managing the
	// monitoring of other rules at runtime.
	err = db.Exec(`
		rule Triage for Patient on end Patient::Diagnose(string dx)
			then {
				if dx == "healthy" {
					print("triage:", self.name, "discharged from monitoring")
					unsubscribe FeverWatch from self
				} else {
					print("triage:", self.name, "now monitored (", dx, ")")
					subscribe FeverWatch to self
				}
			}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A transient Go consumer: the ward dashboard taps Alice's raw event
	// stream without any rule machinery (the bare Notifiable role).
	alice, _ := db.Lookup("Alice")
	unsub, err := db.SubscribeFunc(alice, "dashboard", func(occ sentinel.Occurrence) {
		fmt.Printf("dashboard: %s(%v) from patient %s\n", occ.Method, occ.Args, occ.Source)
	})
	if err != nil {
		log.Fatal(err)
	}

	script := []string{
		`Alice!RecordVitals(38.2, 90)`,  // nobody watches Alice's fever yet
		`Alice!Diagnose("influenza")`,   // triage subscribes the fever watch
		`Alice!RecordVitals(39.4, 120)`, // now the physician gets paged
		`Bob!RecordVitals(40.0, 140)`,   // Bob was never diagnosed: no page
		`Bob!Diagnose("pneumonia")`,
		`Bob!RecordVitals(39.9, 135)`,   // paged
		`Alice!Diagnose("healthy")`,     // discharged: watch unsubscribed
		`Alice!RecordVitals(39.5, 125)`, // no page any more
	}
	for _, s := range script {
		if err := db.Exec(s); err != nil {
			log.Fatal(err)
		}
	}
	unsub()

	fw := db.LookupRule("FeverWatch")
	_, _, fired := fw.Stats()
	fmt.Printf("\nFeverWatch paged %d time(s) — only while a diagnosis warranted monitoring\n", fired)
}
