// Inventory: the extension features on top of the paper's baseline.
//
//   - SentinelQL collection builtins (instances/pluck/sum/min/len) and
//     for-in loops in rule conditions and shell statements,
//   - explicit application events (`raise LowStock(...)` from a method
//     body, §3.1 footnote 3),
//   - the extended operator hierarchy: an APERIODIC window event
//     (stocktake opens a window, every shipment inside it is audited,
//     stocktake-done closes it),
//   - transaction-scoped sequence detection (`scope transaction`),
//   - asynchronous detached rules (Options.AsyncDetached + WaitIdle).
//
// Run with: go run ./examples/inventory
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	db := sentinel.MustOpen(sentinel.Options{AsyncDetached: true})
	defer db.Close()

	err := db.Exec(`
		class Item reactive persistent {
			attr sku string
			attr qty int
			attr reserved int

			event end method Receive(n int) {
				self.qty := self.qty + n
			}
			event begin && end method Ship(n int) {
				if n > self.qty {
					abort "cannot ship more than on hand"
				}
				self.qty := self.qty - n
				if self.qty < 10 {
					raise LowStock(self.qty)
				}
			}
			event end method Stocktake() { }
			event end method StocktakeDone() { }
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Reorder on the explicit LowStock event — detached+async, so the
	// purchasing side never holds up warehouse transactions.
	err = db.Exec(`
		rule Reorder for Item on event Item::LowStock
			then print("REORDER:", self.sku, "down to", self.qty)
			coupling detached
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Audit every shipment that happens inside a stocktake window — the
	// aperiodic operator: A(open; ship; close).
	err = db.Exec(`
		rule AuditDuringStocktake for Item
			on aperiodic(end Item::Stocktake(); begin Item::Ship(int n); end Item::StocktakeDone())
			then print("AUDIT: shipment of", n, "units of", self.sku, "during stocktake")
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Same-transaction receive→ship round-trips look like cross-docking
	// fraud; the sequence only matches within one transaction.
	err = db.Exec(`
		rule CrossDock for Item
			on end Item::Receive(int n) seq begin Item::Ship(int n)
			then print("CROSS-DOCK:", self.sku, "received and shipped in one transaction")
			coupling deferred
			scope transaction
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Stock the warehouse.
	err = db.Exec(`
		bind Bolts  new Item(sku: "bolts",  qty: 50)
		bind Nuts   new Item(sku: "nuts",   qty: 40)
		bind Screws new Item(sku: "screws", qty: 12)
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- normal operations --")
	for _, s := range []string{
		`Bolts!Ship(20)`,
		`Screws!Ship(5)`,               // drops to 7: LowStock → async reorder
		`Nuts!Receive(5) Nuts!Ship(5)`, // one transaction: cross-dock flag
	} {
		if err := db.Exec(s); err != nil {
			log.Fatal(err)
		}
	}
	// Separate transactions: no cross-dock flag.
	if err := db.Exec(`Bolts!Receive(5)`); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(`Bolts!Ship(5)`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- stocktake window --")
	for _, s := range []string{
		`Bolts!Stocktake()`,
		`Bolts!Ship(3)`, // audited
		`Bolts!Ship(2)`, // audited
		`Bolts!StocktakeDone()`,
		`Bolts!Ship(1)`, // not audited: window closed
	} {
		if err := db.Exec(s); err != nil {
			log.Fatal(err)
		}
	}

	// Over-shipping aborts inside the method body.
	if err := db.Exec(`Nuts!Ship(9999)`); !sentinel.IsAbort(err) {
		log.Fatalf("over-ship should abort, got %v", err)
	}
	fmt.Println("over-ship correctly aborted")

	// Wait for the asynchronous reorders before reporting.
	db.WaitIdle()

	fmt.Println("-- warehouse report (builtins + for/in) --")
	err = db.Exec(`
		print("distinct SKUs:", len(instances("Item")))
		print("units on hand:", sum(pluck(instances("Item"), "qty")))
		print("scarcest level:", min(pluck(instances("Item"), "qty")))
		for it in instances("Item") {
			print("  ", it.sku, "=", it.qty)
		}
	`)
	if err != nil {
		log.Fatal(err)
	}
}
