// Quickstart: the paper's running Employee/Manager example end to end.
//
// It shows the two halves of the Sentinel design:
//
//  1. a reactive class = a conventional class + an event interface
//     (SetSalary is declared an end-of-method event generator), and
//  2. rules as first-class objects that SUBSCRIBE to the objects they
//     monitor at runtime — no class had to be edited to add them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	db := sentinel.MustOpen(sentinel.Options{})
	defer db.Close()

	// Define the schema in SentinelQL. The `event end` prefix on SetSalary
	// is the event interface: invoking it raises an end-of-method event.
	// GetName generates nothing — calling it never evaluates a rule.
	err := db.Exec(`
		class Employee reactive persistent {
			attr name string
			protected attr salary float
			attr mgr Manager

			event end method SetSalary(amount float) {
				self.salary := amount
			}
			method Salary() float {
				return self.salary
			}
			method GetName() string {
				return self.name
			}
		}
		class Manager extends Employee persistent { }
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A class-level rule (Fig. 9 style): applies to every Employee —
	// including Managers, by inheritance — without any subscription
	// bookkeeping. It aborts raises above 1,000,000.
	err = db.Exec(`
		rule SanityCap for Employee on end Employee::SetSalary(float amount)
			if amount > 1000000.0
			then abort "nobody earns that much here"
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Create objects and an instance-level rule (Fig. 10 style): Fred and
	// his manager Mike must keep salaries in order. The rule is defined
	// independently of both classes and subscribes to exactly these two
	// objects.
	err = db.Exec(`
		let mike := new Manager(name: "Mike", salary: 2000.0)
		let fred := new Employee(name: "Fred", salary: 1000.0, mgr: mike)
		bind Mike mike
		bind Fred fred

		rule IncomeOrder on end Employee::SetSalary(float amount)
			if Fred.salary >= Mike.salary
			then {
				print("adjusting Mike to stay ahead of Fred")
				Mike!SetSalary(Fred.salary + 500.0)
			}
		subscribe IncomeOrder to fred

		fred!SetSalary(1500.0)
		print("fred:", Fred!Salary(), " mike:", Mike!Salary())
		fred!SetSalary(2500.0)
		print("fred:", Fred!Salary(), " mike:", Mike!Salary())
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The class-level cap blocks absurd raises and rolls the whole
	// transaction back.
	err = db.Exec(`Fred!SetSalary(2000000.0)`)
	if !sentinel.IsAbort(err) {
		log.Fatalf("expected the SanityCap rule to abort, got %v", err)
	}
	fmt.Println("SanityCap aborted the raise:", err)

	// Fred's salary is untouched by the aborted transaction.
	v, err := db.Eval(`Fred!Salary()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fred's salary after the aborted raise:", v)

	s := db.Stats()
	fmt.Printf("stats: %d sends, %d events raised, %d rule actions\n",
		s.Events.Sends, s.Events.Raised, s.Rules.ActionsRun)
}
