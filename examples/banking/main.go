// Banking: composite events and first-class persistence.
//
// Reproduces the paper's §4.6 composite event — "a complex event raised
// after depositing money into a bank account followed by an attempt to
// withdraw money":
//
//	Event* deposit  = new Primitive("end Account::Deposit(float x)")
//	Event* withdraw = new Primitive("before Account::Withdraw(float x)")
//	Event* DepWit   = new Sequence(deposit, withdraw)
//
// plus an overdraft guard (begin-of-method abort) and a deferred audit
// rule, and then demonstrates that rules, events and subscriptions are
// first-class PERSISTENT objects: the database is closed abruptly
// (simulating a crash) and reopened — objects, rules and subscriptions all
// come back through WAL recovery and keep working.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"os"

	"sentinel"
)

const schema = `
	class Account reactive persistent {
		attr owner string
		attr balance float
		attr audited int
		event end method Deposit(x float) {
			self.balance := self.balance + x
		}
		event begin && end method Withdraw(x float) {
			self.balance := self.balance - x
		}
		method Balance() float { return self.balance }
	}
`

func main() {
	dir, err := os.MkdirTemp("", "sentinel-banking-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db := sentinel.MustOpen(sentinel.Options{Dir: dir, SyncOnCommit: true})

	if err := db.Exec(schema); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(`
		bind Checking new Account(owner: "alice", balance: 100.0)

		# Fig. 9-style guard: abort the transaction before the state changes.
		rule NoOverdraft for Account on begin Account::Withdraw(float x)
			if x > self.balance then abort "insufficient funds"

		# §4.6: the sequence event — a deposit followed by a withdrawal
		# attempt on the SAME monitored account.
		event DepWit = end Account::Deposit(float x) seq begin Account::Withdraw(float x)
		rule LaunderingWatch on DepWit
			if x > 9000.0
			then print("AUDIT: rapid in-out of", x, "on", self.owner)
			coupling deferred

		subscribe LaunderingWatch to Checking
	`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- day 1: normal banking --")
	for _, s := range []string{
		`Checking!Deposit(500.0)`,
		`Checking!Withdraw(50.0)`,
		`Checking!Deposit(9500.0)`,
		`Checking!Withdraw(9400.0)`, // deposit→withdraw sequence with x>9000: audited at commit
	} {
		if err := db.Exec(s); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Exec(`Checking!Withdraw(99999.0)`); !sentinel.IsAbort(err) {
		log.Fatalf("overdraft should abort, got %v", err)
	}
	fmt.Println("overdraft correctly aborted")
	bal, _ := db.Eval(`Checking!Balance()`)
	fmt.Println("balance at end of day 1:", bal)

	// Crash: no checkpoint, no clean shutdown. Everything since the last
	// checkpoint lives only in the WAL.
	if err := db.CloseAbrupt(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- crash! reopening from WAL --")

	db2, err := sentinel.Open(sentinel.Options{Dir: dir, SyncOnCommit: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()

	bal2, err := db2.Eval(`Checking!Balance()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered balance:", bal2)
	for _, name := range []string{"NoOverdraft", "LaunderingWatch"} {
		r := db2.LookupRule(name)
		if r == nil {
			log.Fatalf("rule %s did not survive the crash", name)
		}
		fmt.Printf("recovered rule %s (%s)\n", r.Name(), r.Coupling)
	}

	fmt.Println("\n-- day 2: recovered rules still fire --")
	if err := db2.Exec(`Checking!Deposit(9100.0)`); err != nil {
		log.Fatal(err)
	}
	if err := db2.Exec(`Checking!Withdraw(9050.0)`); err != nil {
		log.Fatal(err)
	}
	if err := db2.Exec(`Checking!Withdraw(88888.0)`); !sentinel.IsAbort(err) {
		log.Fatalf("overdraft should abort after recovery, got %v", err)
	}
	fmt.Println("overdraft still aborted after recovery")
	bal3, _ := db2.Eval(`Checking!Balance()`)
	fmt.Println("final balance:", bal3)
}
