# Development entry points. `make check` is the tier-1 verification flow
# (build, vet, tests); `make race` adds the race detector over the
# concurrency-sensitive packages; `make bench` produces the fast-path
# benchmark artifact BENCH_1.json (with BENCH_0.json, the pre-fast-path
# seed measurements, embedded as the baseline), the cold-open artifact
# BENCH_2.json, and the instrumentation-overhead artifact BENCH_3.json;
# `make bench-smoke` is a one-iteration CI-sized pass over the same code
# paths plus a scrape of the live /metrics endpoint.

GO ?= go

.PHONY: all build vet test check race bench bench-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./internal/core/... ./internal/rule/... ./internal/event/... ./internal/txn/... ./internal/obs/...

# Raise-path benchmarks: P1 (N rules), P8 (event-interface selectivity),
# P11 (parallel sends), plus the machine-readable JSON suite.
bench:
	$(GO) test -bench 'BenchmarkP1SubscriptionVsCentralized|BenchmarkP8InterfaceSelectivity|BenchmarkP11ParallelSend' -benchmem -run '^$$' .
	$(GO) run ./cmd/sentinel-bench -json BENCH_1.json -baseline BENCH_0.json
	$(GO) run ./cmd/sentinel-bench -json2 BENCH_2.json
	$(GO) run ./cmd/sentinel-bench -json3 BENCH_3.json

# One-iteration pass over every benchmark entry point: catches bit-rot in
# the bench harness without benchmark-grade runtimes (CI runs this).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/sentinel-bench -json2 /tmp/bench2-smoke.json -pop 2000 -resident 256
	$(GO) run ./cmd/sentinel-bench -json3 /tmp/bench3-smoke.json

clean:
	$(GO) clean
	rm -f sentinel.test
