# Development entry points. `make check` is the tier-1 verification flow
# (build, vet, tests); `make race` adds the race detector over the
# concurrency-sensitive packages; `make torture` runs the exhaustive
# crash-state enumeration, bit-flip and differential sweeps (the strided
# versions already run inside `make test`); `make fuzz` gives each fuzz
# target a short coverage-guided session on top of the checked-in corpora;
# `make bench` produces the fast-path benchmark artifact BENCH_1.json
# (with BENCH_0.json, the pre-fast-path seed measurements, embedded as the
# baseline), the cold-open artifact BENCH_2.json, the
# instrumentation-overhead artifact BENCH_3.json, the detached-pool
# multi-core scaling artifact BENCH_4.json, the MVCC snapshot-read /
# group-commit contention artifact BENCH_5.json, the networked-server
# artifact BENCH_6.json, the replication read-scaling artifact
# BENCH_7.json, the failover artifact BENCH_8.json (quorum-commit
# latency vs async, promotion downtime), and the rule-churn artifact
# BENCH_9.json (raise throughput under catalog churn, selective vs
# global consumer-cache invalidation); `make bench-smoke` is a
# one-iteration CI-sized pass over the same code paths plus a scrape of
# the live /metrics endpoint; `make bench-gate` checks the checked-in
# benchmark artifacts against the floors in dev/bench/thresholds.json
# (CI runs this, so a PR that regenerates a BENCH_*.json with a
# regression fails); `make golden` regenerates the checked-in golden
# firing traces under internal/sim/testdata/golden/ (the matrix test
# fails CI on any unexplained drift — regenerate deliberately and commit
# the diff).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test check race torture fuzz bench bench-smoke bench-gate golden clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./internal/core/... ./internal/rule/... ./internal/event/... ./internal/txn/... ./internal/obs/... ./internal/sim/... ./internal/vfs/... ./internal/wal/... ./internal/wire/... ./internal/server/... ./internal/client/... ./internal/repl/...

# Exhaustive crash-state torture: every journal op boundary in every crash
# mode, every WAL bit position, and a widened differential-seed matrix.
# The fixed seeds make failures reproducible; the strided versions of the
# same sweeps run in the ordinary test suite.
torture:
	SENTINEL_TORTURE=full $(GO) test -count=1 -run 'TestCrashStateEnumeration|TestDifferentialStreams|TestRecoveryAtEveryBitFlip|TestRecoveryAtEveryTruncationPoint|TestGroupCommitTorture|TestSnapshotDiffer|TestReplTortureSweep|TestReplDiffSeeds|TestFailoverSweep|TestChurnDifferential|TestGlobalRefOnModelSeeds' -v ./internal/sim/ ./internal/core/

# Coverage-guided fuzzing on top of the checked-in seed corpora. `go test`
# accepts one -fuzz pattern per package invocation, hence one line each.
fuzz:
	$(GO) test -fuzz FuzzReplay -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz FuzzDecodePayload -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz FuzzParseScript -fuzztime $(FUZZTIME) ./internal/lang/
	$(GO) test -fuzz FuzzParseEventExpr -fuzztime $(FUZZTIME) ./internal/lang/
	$(GO) test -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzDecodeEvent -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzDecodeReplBatch -fuzztime $(FUZZTIME) ./internal/wire/

# Raise-path benchmarks: P1 (N rules), P8 (event-interface selectivity),
# P11 (parallel sends), plus the machine-readable JSON suite.
bench:
	$(GO) test -bench 'BenchmarkP1SubscriptionVsCentralized|BenchmarkP8InterfaceSelectivity|BenchmarkP11ParallelSend' -benchmem -run '^$$' .
	$(GO) run ./cmd/sentinel-bench -json BENCH_1.json -baseline BENCH_0.json
	$(GO) run ./cmd/sentinel-bench -json2 BENCH_2.json
	$(GO) run ./cmd/sentinel-bench -json3 BENCH_3.json
	$(GO) run ./cmd/sentinel-bench -json4 BENCH_4.json
	$(GO) run ./cmd/sentinel-bench -json5 BENCH_5.json
	$(GO) run ./cmd/sentinel-bench -json6 BENCH_6.json
	$(GO) run ./cmd/sentinel-bench -json7 BENCH_7.json
	$(GO) run ./cmd/sentinel-bench -json8 BENCH_8.json
	$(GO) run ./cmd/sentinel-bench -json9 BENCH_9.json

# One-iteration pass over every benchmark entry point: catches bit-rot in
# the bench harness without benchmark-grade runtimes (CI runs this).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/sentinel-bench -json2 /tmp/bench2-smoke.json -pop 2000 -resident 256
	$(GO) run ./cmd/sentinel-bench -json3 /tmp/bench3-smoke.json
	$(GO) run ./cmd/sentinel-bench -json4 /tmp/bench4-smoke.json -quick
	$(GO) run ./cmd/sentinel-bench -json5 /tmp/bench5-smoke.json -quick
	$(GO) run ./cmd/sentinel-bench -json6 /tmp/bench6-smoke.json -quick
	$(GO) run ./cmd/sentinel-bench -json7 /tmp/bench7-smoke.json -quick
	$(GO) run ./cmd/sentinel-bench -json8 /tmp/bench8-smoke.json -quick
	$(GO) run ./cmd/sentinel-bench -json9 /tmp/bench9-smoke.json -quick

# Enforce the performance floors in dev/bench/thresholds.json over the
# checked-in benchmark artifacts.
bench-gate:
	$(GO) run ./cmd/bench-gate

# Regenerate the golden firing-trace matrix (operator x coupling x
# strategy) under internal/sim/testdata/golden/. The matrix test refuses
# to regenerate when the engine and the reference model disagree, so a
# golden can only change once both implementations agree on the new
# semantics; commit the diff with its justification.
golden:
	SENTINEL_GOLDEN_REGEN=1 $(GO) test -count=1 -run TestGoldenMatrix ./internal/sim/

clean:
	$(GO) clean
	rm -f sentinel.test
