# Development entry points. `make check` is the tier-1 verification flow
# (build, vet, tests); `make race` adds the race detector over the
# concurrency-sensitive packages; `make bench` produces the fast-path
# benchmark artifact BENCH_1.json (with BENCH_0.json, the pre-fast-path
# seed measurements, embedded as the baseline).

GO ?= go

.PHONY: all build vet test check race bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./internal/core/... ./internal/rule/... ./internal/event/... ./internal/txn/...

# Raise-path benchmarks: P1 (N rules), P8 (event-interface selectivity),
# P11 (parallel sends), plus the machine-readable JSON suite.
bench:
	$(GO) test -bench 'BenchmarkP1SubscriptionVsCentralized|BenchmarkP8InterfaceSelectivity|BenchmarkP11ParallelSend' -benchmem -run '^$$' .
	$(GO) run ./cmd/sentinel-bench -json BENCH_1.json -baseline BENCH_0.json

clean:
	$(GO) clean
	rm -f sentinel.test
