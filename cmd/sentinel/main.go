// Command sentinel is the interactive shell and script runner for the
// database: it reads SentinelQL (class, event and rule definitions plus
// data statements), executing each complete input in its own transaction.
//
// Usage:
//
//	sentinel                      # in-memory, interactive
//	sentinel -d ./mydb            # persistent database in ./mydb
//	sentinel -d ./mydb -f app.sql # run a script, then exit
//	sentinel -f app.sql -i        # run a script, then go interactive
//
// Shell commands (interactive mode):
//
//	.help              show help
//	.classes           list classes
//	.rules             list rules with stats
//	.events            list named events
//	.objects <class>   list instances of a class
//	.names             list name bindings
//	.stats             runtime counters
//	.metrics           latency histograms (p50/p95/p99)
//	.trace on|off      echo runtime trace events to the terminal
//	.slow              slow-rule log (requires -slow)
//	.checkpoint        force a checkpoint
//	.connect <addr>    attach to a sentinel-server; statements run remotely
//	.subscribe <name>  stream push notifications for an object (remote)
//	.disconnect        return to the local database
//	.quit              exit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/obs"
	"sentinel/internal/wire"
)

func main() {
	dir := flag.String("d", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "script file to execute")
	interactive := flag.Bool("i", false, "enter interactive mode after -f")
	metricsAddr := flag.String("metrics", "", "serve Prometheus/expvar metrics on host:port")
	slow := flag.Duration("slow", 0, "log rule firings at or above this duration (e.g. 5ms)")
	workers := flag.Int("workers", 0, "run detached rules on a conflict-aware pool of this many workers (0 = synchronous)")
	flag.Parse()

	db, err := core.Open(core.Options{
		Dir:               *dir,
		SyncOnCommit:      true,
		MetricsAddr:       *metricsAddr,
		SlowRuleThreshold: *slow,
		AsyncDetached:     *workers > 0,
		DetachedWorkers:   *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel:", err)
		os.Exit(1)
	}
	defer db.Close()
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (expvar on /debug/vars)\n", db.MetricsAddr())
	}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentinel:", err)
			os.Exit(1)
		}
		if err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel:", err)
			os.Exit(1)
		}
		if !*interactive {
			return
		}
	}

	repl(db)
}

// shell is the REPL's mutable state: the local database plus, after
// .connect, a remote sentinel-server session that statement input is
// routed through instead.
type shell struct {
	db     *core.Database
	remote *client.Client
	addr   string
}

// exec runs one complete statement block — remotely when connected. A
// dead remote session drops the shell back to local mode.
func (sh *shell) exec(src string) error {
	if sh.remote == nil {
		return sh.db.Exec(src)
	}
	err := sh.remote.Exec(context.Background(), src)
	if errors.Is(err, client.ErrClosed) {
		fmt.Printf("connection to %s lost; back to local database\n", sh.addr)
		sh.remote.Close()
		sh.remote = nil
	}
	return err
}

func (sh *shell) prompt() string {
	if sh.remote != nil {
		return "remote> "
	}
	return "sentinel> "
}

func repl(db *core.Database) {
	fmt.Println("sentinel — active object-oriented database shell (.help for help)")
	sh := &shell{db: db}
	defer func() {
		if sh.remote != nil {
			sh.remote.Close()
		}
	}()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := sh.prompt()
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !sh.command(trimmed) {
				return
			}
			prompt = sh.prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !balanced(buf.String()) {
			prompt = "      ... "
			continue
		}
		prompt = sh.prompt()
		src := buf.String()
		buf.Reset()
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := sh.exec(src); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// balanced reports whether braces/parens/brackets are balanced outside of
// string literals, so multi-line class and rule bodies accumulate.
func balanced(src string) bool {
	depth := 0
	var inStr byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		}
	}
	return depth <= 0
}

// command executes a dot-command; it returns false to quit.
func (sh *shell) command(cmd string) bool {
	db := sh.db
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(`statements: class/event/rule declarations, let, bind, subscribe,
enable/disable, assignments, message sends (obj.Method(...) or obj!Method(...)),
print(...). Each complete input runs in one transaction.
commands: .classes .rules .events .objects <class> .names .indexes .stats
          .metrics .trace on|off .slow
          .checkpoint .check .dump [file] .restore <file>
          .connect <addr> .subscribe <name> [method] [begin|end|explicit]
          .unsubscribe <id> .disconnect .quit
When connected (.connect), statements run on the server; the dot-commands
above still inspect the shell's local database.`)
	case ".connect":
		if len(fields) < 2 {
			fmt.Println("usage: .connect <host:port>")
			break
		}
		if sh.remote != nil {
			fmt.Printf("already connected to %s (.disconnect first)\n", sh.addr)
			break
		}
		c, err := client.Dial(context.Background(), fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		sh.remote, sh.addr = c, fields[1]
		fmt.Printf("connected to %s (session %d); statements now run remotely\n",
			sh.addr, c.SessionID)
	case ".disconnect":
		if sh.remote == nil {
			fmt.Println("not connected")
			break
		}
		sh.remote.Close()
		sh.remote = nil
		fmt.Printf("disconnected from %s; statements run locally again\n", sh.addr)
	case ".subscribe":
		if sh.remote == nil {
			fmt.Println(".subscribe streams server pushes; .connect <addr> first")
			break
		}
		if len(fields) < 2 {
			fmt.Println("usage: .subscribe <name> [method] [begin|end|explicit]")
			break
		}
		id, ok, err := sh.remote.Lookup(context.Background(), fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if !ok {
			fmt.Printf("no binding named %q on the server\n", fields[1])
			break
		}
		method := ""
		moment := uint8(wire.MomentAny)
		for _, f := range fields[2:] {
			if m, isMoment := momentFromName(f); isMoment {
				moment = m
			} else {
				method = f
			}
		}
		subID, err := sh.remote.Subscribe(context.Background(), id, method, moment, printPush(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("subscribed #%d to %s (%s); pushes print as they arrive\n",
			subID, fields[1], id)
	case ".unsubscribe":
		if sh.remote == nil {
			fmt.Println("not connected")
			break
		}
		if len(fields) < 2 {
			fmt.Println("usage: .unsubscribe <id>")
			break
		}
		subID, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := sh.remote.Unsubscribe(context.Background(), subID); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("unsubscribed #%d\n", subID)
		}
	case ".classes":
		for _, c := range db.Registry().Classes() {
			if core.IsSystemClass(c.Name) {
				continue
			}
			bases := make([]string, len(c.Bases))
			for i, b := range c.Bases {
				bases[i] = b.Name
			}
			ext := ""
			if len(bases) > 0 {
				ext = " extends " + strings.Join(bases, ", ")
			}
			fmt.Printf("%s%s [%s] %d attrs, %d methods, %d event generators\n",
				c.Name, ext, c.Classification, len(c.Attributes()), len(c.Methods()), len(c.EventInterface()))
		}
	case ".rules":
		rules := db.Rules()
		sort.Slice(rules, func(i, j int) bool { return rules[i].Name() < rules[j].Name() })
		for _, r := range rules {
			recv, sig, fired := r.Stats()
			state := "enabled"
			if !r.Enabled() {
				state = "disabled"
			}
			fmt.Printf("%s  (%s, %s) received=%d signalled=%d fired=%d\n",
				r, state, stateScope(r.ClassLevel), recv, sig, fired)
		}
	case ".events":
		for _, n := range db.NamedEvents() {
			if e, ok := db.LookupEvent(n); ok {
				fmt.Printf("event %s = %s\n", n, e)
			}
		}
	case ".objects":
		if len(fields) < 2 {
			fmt.Println("usage: .objects <class>")
			break
		}
		for _, id := range db.InstancesOf(fields[1]) {
			err := db.Atomically(func(t *core.Tx) error {
				fmt.Println(" ", db.DescribeObject(t, id))
				return nil
			})
			if err != nil {
				fmt.Println("error:", err)
			}
		}
	case ".indexes":
		for _, h := range db.Indexes() {
			fmt.Println(h)
		}
	case ".names":
		for _, n := range db.Names() {
			id, _ := db.Lookup(n)
			fmt.Printf("%s -> %s\n", n, id)
		}
	case ".stats":
		s := db.Stats()
		fmt.Printf("objects: total=%d resident=%d\n", s.Objects.Total, s.Objects.Resident)
		fmt.Printf("events: sends=%d raised=%d notifications=%d detections=%d\n",
			s.Events.Sends, s.Events.Raised, s.Events.Notifications, s.Events.Detections)
		fmt.Printf("rules: defined=%d subscriptions=%d conditions=%d actions=%d slow=%d\n",
			s.Rules.Defined, s.Rules.Subscriptions, s.Rules.ConditionsRun, s.Rules.ActionsRun, s.Rules.SlowFirings)
		fmt.Printf("consumer-cache: hits=%d misses=%d invalidations=%d entries=%d\n",
			s.Rules.CacheHits, s.Rules.CacheMisses, s.Rules.CacheInvalidations, s.Rules.CacheEntries)
		if s.Detached.Workers > 0 {
			fmt.Printf("detached: workers=%d queued=%d inflight=%d executed=%d stalls=%d backpressure=%d\n",
				s.Detached.Workers, s.Detached.Queued, s.Detached.InFlight,
				s.Detached.Executed, s.Detached.ConflictStalls, s.Detached.BackpressureWaits)
		}
		fmt.Printf("storage: faults=%d evictions=%d checkpoints=%d wal=%dB\n",
			s.Storage.Faults, s.Storage.Evictions, s.Storage.Checkpoints, s.Storage.WALBytes)
		perFsync := float64(0)
		if s.Storage.CommitGroups > 0 {
			perFsync = float64(s.Storage.GroupedCommits) / float64(s.Storage.CommitGroups)
		}
		fmt.Printf("mvcc: watermark=%d snapshots=%d versions=%d prunes=%d maxchain=%d commits/fsync=%.2f\n",
			s.Storage.WatermarkLSN, s.Storage.SnapshotsActive, s.Storage.VersionsLive,
			s.Storage.VersionPrunes, s.Storage.MaxChainDepth, perFsync)
		fmt.Printf("txns: started=%d committed=%d aborted=%d deadlocks=%d\n",
			s.Txn.Started, s.Txn.Committed, s.Txn.Aborted, s.Txn.Deadlocks)
		if s.Replication.Role != "none" {
			fmt.Printf("replication: role=%s peers=%d shipped=%d applied=%d lag=%d\n",
				s.Replication.Role, s.Replication.Peers,
				s.Replication.ShippedLSN, s.Replication.AppliedLSN, s.Replication.LagBatches)
		}
	case ".metrics":
		for _, h := range db.Metrics().Histograms {
			if h.Count == 0 {
				continue
			}
			fmt.Printf("%-26s count=%-8d p50=%-10v p95=%-10v p99=%v\n",
				strings.TrimSuffix(strings.TrimPrefix(h.Name, "sentinel_"), "_ns"),
				h.Count,
				time.Duration(h.P50).Round(time.Nanosecond),
				time.Duration(h.P95).Round(time.Nanosecond),
				time.Duration(h.P99).Round(time.Nanosecond))
		}
	case ".trace":
		if len(fields) < 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Println("usage: .trace on|off")
			break
		}
		if fields[1] == "off" {
			db.SetTracer(nil)
			fmt.Println("trace off")
			break
		}
		db.SetTracer(shellTracer())
		fmt.Println("trace on")
	case ".slow":
		entries, total := db.SlowRules()
		if total == 0 {
			fmt.Println("no slow firings recorded (start the shell with -slow <duration>)")
			break
		}
		fmt.Printf("%d slow firings total, last %d retained:\n", total, len(entries))
		for _, e := range entries {
			fmt.Printf("  #%d %s [%s] total=%v cond=%v action=%v fired=%v\n",
				e.Seq, e.Rule, e.Coupling, e.Total, e.Cond, e.Action, e.Fired)
		}
	case ".checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpointed")
		}
	case ".check":
		problems := db.CheckIntegrity()
		if len(problems) == 0 {
			fmt.Println("consistent")
		}
		for _, p := range problems {
			fmt.Println("PROBLEM:", p)
		}
	case ".dump":
		out := os.Stdout
		if len(fields) > 1 {
			f, err := os.Create(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			defer f.Close()
			out = f
		}
		if err := db.DumpDSL(out); err != nil {
			fmt.Println("error:", err)
		}
	case ".restore":
		if len(fields) < 2 {
			fmt.Println("usage: .restore <file>")
			break
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := db.RestoreDSL(string(src)); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("restored")
		}
	default:
		fmt.Println("unknown command; .help for help")
	}
	return true
}

// shellTracer echoes the most narratable runtime events to the terminal:
// occurrences, detections, rule executions and transaction commits.
func shellTracer() *obs.Tracer {
	return &obs.Tracer{
		OccurrenceRaised: func(i obs.OccurrenceInfo) {
			fmt.Printf("[trace] seq=%d tx=%d %s occurrence %s::%s on #%d\n",
				i.Seq, i.Tx, i.Moment, i.Class, i.Method, i.Source)
		},
		CompositeDetected: func(i obs.DetectionInfo) {
			fmt.Printf("[trace] tx=%d rule %s detected %s (%d constituents, seq %d..%d)\n",
				i.Tx, i.Rule, i.Event, i.Constituents, i.FirstSeq, i.LastSeq)
		},
		RuleFired: func(i obs.RuleFireInfo) {
			outcome := "condition false"
			if i.Fired {
				outcome = "fired"
			}
			if i.Err != nil {
				outcome = "error: " + i.Err.Error()
			}
			fmt.Printf("[trace] tx=%d rule %s [%s] %s cond=%v action=%v depth=%d\n",
				i.Tx, i.Rule, i.Coupling, outcome, i.Condition, i.Action, i.Depth)
		},
		TxCommit: func(i obs.TxInfo) {
			fmt.Printf("[trace] tx=%d committed in %v\n", i.Tx, i.Duration)
		},
	}
}

// momentFromName maps a .subscribe moment keyword to its wire value.
func momentFromName(s string) (uint8, bool) {
	switch s {
	case "begin":
		return 0, true
	case "end":
		return 1, true
	case "explicit":
		return 2, true
	}
	return 0, false
}

func momentName(m uint8) string {
	switch m {
	case 0:
		return "begin"
	case 1:
		return "end"
	case 2:
		return "explicit"
	}
	return fmt.Sprintf("moment(%d)", m)
}

// printPush renders a server push notification. It runs on the client's
// reader goroutine, so it only formats and prints — it must not call
// back into the client.
func printPush(name string) func(wire.Event) {
	return func(ev wire.Event) {
		args := make([]string, len(ev.Args))
		for i, a := range ev.Args {
			if i < len(ev.ParamNames) && ev.ParamNames[i] != "" {
				args[i] = ev.ParamNames[i] + ": " + a.String()
			} else {
				args[i] = a.String()
			}
		}
		fmt.Printf("\n[push] sub=%d seq=%d %s %s::%s(%s) on %s (%s)\n",
			ev.SubID, ev.Seq, momentName(ev.Moment), ev.Class, ev.Method,
			strings.Join(args, ", "), name, ev.Source)
	}
}

func stateScope(classLevel string) string {
	if classLevel == "" {
		return "instance-level"
	}
	return "class-level on " + classLevel
}
