// Command sentinel is the interactive shell and script runner for the
// database: it reads SentinelQL (class, event and rule definitions plus
// data statements), executing each complete input in its own transaction.
//
// Usage:
//
//	sentinel                      # in-memory, interactive
//	sentinel -d ./mydb            # persistent database in ./mydb
//	sentinel -d ./mydb -f app.sql # run a script, then exit
//	sentinel -f app.sql -i        # run a script, then go interactive
//
// Shell commands (interactive mode):
//
//	.help              show help
//	.classes           list classes
//	.rules             list rules with stats
//	.events            list named events
//	.objects <class>   list instances of a class
//	.names             list name bindings
//	.stats             runtime counters
//	.checkpoint        force a checkpoint
//	.quit              exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sentinel/internal/core"
)

func main() {
	dir := flag.String("d", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "script file to execute")
	interactive := flag.Bool("i", false, "enter interactive mode after -f")
	flag.Parse()

	db, err := core.Open(core.Options{Dir: *dir, SyncOnCommit: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentinel:", err)
			os.Exit(1)
		}
		if err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel:", err)
			os.Exit(1)
		}
		if !*interactive {
			return
		}
	}

	repl(db)
}

func repl(db *core.Database) {
	fmt.Println("sentinel — active object-oriented database shell (.help for help)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sentinel> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !command(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !balanced(buf.String()) {
			prompt = "      ... "
			continue
		}
		prompt = "sentinel> "
		src := buf.String()
		buf.Reset()
		if strings.TrimSpace(src) == "" {
			continue
		}
		if err := db.Exec(src); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// balanced reports whether braces/parens/brackets are balanced outside of
// string literals, so multi-line class and rule bodies accumulate.
func balanced(src string) bool {
	depth := 0
	var inStr byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		}
	}
	return depth <= 0
}

// command executes a dot-command; it returns false to quit.
func command(db *core.Database, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(`statements: class/event/rule declarations, let, bind, subscribe,
enable/disable, assignments, message sends (obj.Method(...) or obj!Method(...)),
print(...). Each complete input runs in one transaction.
commands: .classes .rules .events .objects <class> .names .indexes .stats
          .checkpoint .check .dump [file] .restore <file> .quit`)
	case ".classes":
		for _, c := range db.Registry().Classes() {
			if core.IsSystemClass(c.Name) {
				continue
			}
			bases := make([]string, len(c.Bases))
			for i, b := range c.Bases {
				bases[i] = b.Name
			}
			ext := ""
			if len(bases) > 0 {
				ext = " extends " + strings.Join(bases, ", ")
			}
			fmt.Printf("%s%s [%s] %d attrs, %d methods, %d event generators\n",
				c.Name, ext, c.Classification, len(c.Attributes()), len(c.Methods()), len(c.EventInterface()))
		}
	case ".rules":
		rules := db.Rules()
		sort.Slice(rules, func(i, j int) bool { return rules[i].Name() < rules[j].Name() })
		for _, r := range rules {
			recv, sig, fired := r.Stats()
			state := "enabled"
			if !r.Enabled() {
				state = "disabled"
			}
			fmt.Printf("%s  (%s, %s) received=%d signalled=%d fired=%d\n",
				r, state, stateScope(r.ClassLevel), recv, sig, fired)
		}
	case ".events":
		for _, n := range db.NamedEvents() {
			if e, ok := db.LookupEvent(n); ok {
				fmt.Printf("event %s = %s\n", n, e)
			}
		}
	case ".objects":
		if len(fields) < 2 {
			fmt.Println("usage: .objects <class>")
			break
		}
		for _, id := range db.InstancesOf(fields[1]) {
			err := db.Atomically(func(t *core.Tx) error {
				fmt.Println(" ", db.DescribeObject(t, id))
				return nil
			})
			if err != nil {
				fmt.Println("error:", err)
			}
		}
	case ".indexes":
		for _, h := range db.Indexes() {
			fmt.Println(h)
		}
	case ".names":
		for _, n := range db.Names() {
			id, _ := db.Lookup(n)
			fmt.Printf("%s -> %s\n", n, id)
		}
	case ".stats":
		s := db.Stats()
		fmt.Printf("objects=%d resident=%d rules=%d subscriptions=%d\n",
			s.ObjectsTotal, s.ObjectsResident, s.RulesDefined, s.Subscriptions)
		fmt.Printf("paging: faults=%d evictions=%d checkpoints=%d\n",
			s.Faults, s.Evictions, s.Checkpoints)
		fmt.Printf("sends=%d events=%d notifications=%d detections=%d conditions=%d actions=%d\n",
			s.Sends, s.EventsRaised, s.Notifications, s.Detections, s.ConditionsRun, s.ActionsRun)
		fmt.Printf("txns: started=%d committed=%d aborted=%d deadlocks=%d\n",
			s.Txn.Started, s.Txn.Committed, s.Txn.Aborted, s.Txn.Deadlocks)
	case ".checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpointed")
		}
	case ".check":
		problems := db.CheckIntegrity()
		if len(problems) == 0 {
			fmt.Println("consistent")
		}
		for _, p := range problems {
			fmt.Println("PROBLEM:", p)
		}
	case ".dump":
		out := os.Stdout
		if len(fields) > 1 {
			f, err := os.Create(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			defer f.Close()
			out = f
		}
		if err := db.DumpDSL(out); err != nil {
			fmt.Println("error:", err)
		}
	case ".restore":
		if len(fields) < 2 {
			fmt.Println("usage: .restore <file>")
			break
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := db.RestoreDSL(string(src)); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("restored")
		}
	default:
		fmt.Println("unknown command; .help for help")
	}
	return true
}

func stateScope(classLevel string) string {
	if classLevel == "" {
		return "instance-level"
	}
	return "class-level on " + classLevel
}
