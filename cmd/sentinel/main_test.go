package main

import "testing"

func TestBalanced(t *testing.T) {
	cases := map[string]bool{
		``:                          true,
		`let x := 1`:                true,
		`class A {`:                 false,
		`class A { attr x int }`:    true,
		`class A { method M() { }`:  false,
		`print("unbalanced { ok")`:  true,
		`print('}')`:                true,
		`rule R on (end A::a`:       false,
		`rule R on (end A::a) then`: true,
		`a := "\"{"`:                true,
		`[1, [2, 3]]`:               true,
		`[1, [2, 3]`:                false,
	}
	for src, want := range cases {
		if got := balanced(src); got != want {
			t.Errorf("balanced(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestStateScope(t *testing.T) {
	if stateScope("") != "instance-level" {
		t.Error("empty classLevel")
	}
	if stateScope("Person") != "class-level on Person" {
		t.Error("classLevel")
	}
}
