// Command sentinel-server exposes a Sentinel database over TCP, speaking
// the internal/wire protocol: pipelined commands plus streaming push
// delivery for subscriptions (see DESIGN.md §4g).
//
// Usage:
//
//	sentinel-server -addr :7707                    # in-memory
//	sentinel-server -addr :7707 -d ./mydb          # persistent
//	sentinel-server -addr :7707 -f schema.sql      # load a script first
//
// Connect with the sentinel shell: `.connect host:7707`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sentinel/internal/core"
	"sentinel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "TCP listen address")
	dir := flag.String("d", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "script file to execute before serving")
	metricsAddr := flag.String("metrics", "", "serve Prometheus/expvar metrics on host:port")
	workers := flag.Int("workers", 0, "run detached rules on a conflict-aware pool of this many workers (0 = synchronous)")
	sync := flag.Bool("sync", true, "fsync the WAL on every commit")
	queue := flag.Int("queue", 128, "per-session out-queue capacity (frames)")
	disconnectSlow := flag.Bool("disconnect-slow", false, "disconnect sessions that overflow their push queue (default: drop events)")
	flag.Parse()

	db, err := core.Open(core.Options{
		Dir:             *dir,
		SyncOnCommit:    *sync,
		MetricsAddr:     *metricsAddr,
		AsyncDetached:   *workers > 0,
		DetachedWorkers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		os.Exit(1)
	}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
		if err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
	}

	policy := server.DropEvents
	if *disconnectSlow {
		policy = server.DisconnectSlow
	}
	srv, err := server.New(db, server.Options{Addr: *addr, QueueLen: *queue, Overflow: policy})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		db.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server listening on %s\n", srv.Addr())
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", db.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
	// Sessions first (their subscriptions release), then the database
	// (checkpoint + close storage).
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: db close:", err)
		os.Exit(1)
	}
}
