// Command sentinel-server exposes a Sentinel database over TCP, speaking
// the internal/wire protocol: pipelined commands plus streaming push
// delivery for subscriptions (see DESIGN.md §4g).
//
// Usage:
//
//	sentinel-server -addr :7707                    # in-memory
//	sentinel-server -addr :7707 -d ./mydb          # persistent
//	sentinel-server -addr :7707 -f schema.sql      # load a script first
//	sentinel-server -addr :7707 -d ./mydb -repl    # replication primary
//	sentinel-server -addr :7708 -d ./replica -follow host:7707
//	                                               # read replica of host:7707
//
// A primary (-repl) streams every committed batch to attached followers; a
// follower (-follow) opens its directory in replica mode, keeps itself in
// sync with the primary, and serves reads and subscriptions from its own
// address (see DESIGN.md §4h). Connect with the sentinel shell:
// `.connect host:7707`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sentinel/internal/core"
	"sentinel/internal/repl"
	"sentinel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "TCP listen address")
	dir := flag.String("d", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "script file to execute before serving")
	metricsAddr := flag.String("metrics", "", "serve Prometheus/expvar metrics on host:port")
	workers := flag.Int("workers", 0, "run detached rules on a conflict-aware pool of this many workers (0 = synchronous)")
	sync := flag.Bool("sync", true, "fsync the WAL on every commit")
	queue := flag.Int("queue", 128, "per-session out-queue capacity (frames)")
	disconnectSlow := flag.Bool("disconnect-slow", false, "disconnect sessions that overflow their push queue (default: drop events)")
	replicate := flag.Bool("repl", false, "act as a replication primary (followers may attach)")
	follow := flag.String("follow", "", "act as a read replica of the primary at this address")
	flag.Parse()

	if *follow != "" {
		runFollower(*addr, *dir, *follow, *metricsAddr, *queue, *disconnectSlow)
		return
	}

	db, err := core.Open(core.Options{
		Dir:             *dir,
		SyncOnCommit:    *sync,
		MetricsAddr:     *metricsAddr,
		AsyncDetached:   *workers > 0,
		DetachedWorkers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		os.Exit(1)
	}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
		if err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
	}

	var primary *repl.Primary
	if *replicate {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "sentinel-server: -repl requires -d (base sync needs persistent storage)")
			db.Close()
			os.Exit(1)
		}
		primary = repl.NewPrimary(db, repl.PrimaryOptions{})
	}

	policy := server.DropEvents
	if *disconnectSlow {
		policy = server.DisconnectSlow
	}
	srv, err := server.New(db, server.Options{Addr: *addr, QueueLen: *queue, Overflow: policy, Primary: primary})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		db.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server listening on %s\n", srv.Addr())
	if primary != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: replication primary (followers may attach)")
	}
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", db.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
	// Sessions first (their subscriptions release and followers detach),
	// then the shipper, then the database (checkpoint + close storage).
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	if primary != nil {
		primary.Close()
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: db close:", err)
		os.Exit(1)
	}
}

// runFollower runs the replica mode: a Follower keeps the local directory
// in sync with the primary while a Server serves reads and subscriptions
// from it on this node's own address.
func runFollower(addr, dir, primaryAddr, metricsAddr string, queue int, disconnectSlow bool) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "sentinel-server: -follow requires -d (the replica's local directory)")
		os.Exit(1)
	}
	f, err := repl.StartFollower(repl.FollowerOptions{
		PrimaryAddr: primaryAddr,
		Core:        core.Options{Dir: dir, SyncOnCommit: false, MetricsAddr: metricsAddr},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		os.Exit(1)
	}
	policy := server.DropEvents
	if disconnectSlow {
		policy = server.DisconnectSlow
	}
	srv, err := server.New(f.DB, server.Options{Addr: addr, QueueLen: queue, Overflow: policy})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		f.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server replica listening on %s (following %s)\n", srv.Addr(), primaryAddr)
	if metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", f.DB.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	// Follower.Close stops the stream and closes the database.
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: follower close:", err)
		os.Exit(1)
	}
}
