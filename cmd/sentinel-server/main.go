// Command sentinel-server exposes a Sentinel database over TCP, speaking
// the internal/wire protocol: pipelined commands plus streaming push
// delivery for subscriptions (see DESIGN.md §4g).
//
// Usage:
//
//	sentinel-server -addr :7707                    # in-memory
//	sentinel-server -addr :7707 -d ./mydb          # persistent
//	sentinel-server -addr :7707 -f schema.sql      # load a script first
//	sentinel-server -addr :7707 -d ./mydb -repl    # replication primary
//	sentinel-server -addr :7707 -d ./mydb -repl -sync-replicas 1
//	                                               # quorum commit: wait for 1 follower ack
//	sentinel-server -addr :7708 -d ./replica -follow host:7707
//	                                               # read replica of host:7707
//	sentinel-server -promote host:7708             # admin: promote that replica
//
// A primary (-repl) streams every committed batch to attached followers; a
// follower (-follow) opens its directory in replica mode, keeps itself in
// sync with the primary, and serves reads and subscriptions from its own
// address (see DESIGN.md §4h). When the primary is lost, `-promote` asks a
// follower server to take over: it seals its replay, reopens writable under
// a new epoch, and starts accepting followers itself (see DESIGN.md §4i).
// Connect with the sentinel shell: `.connect host:7707`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/repl"
	"sentinel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "TCP listen address")
	dir := flag.String("d", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "script file to execute before serving")
	metricsAddr := flag.String("metrics", "", "serve Prometheus/expvar metrics on host:port")
	workers := flag.Int("workers", 0, "run detached rules on a conflict-aware pool of this many workers (0 = synchronous)")
	sync := flag.Bool("sync", true, "fsync the WAL on every commit")
	queue := flag.Int("queue", 128, "per-session out-queue capacity (frames)")
	disconnectSlow := flag.Bool("disconnect-slow", false, "disconnect sessions that overflow their push queue (default: drop events)")
	replicate := flag.Bool("repl", false, "act as a replication primary (followers may attach)")
	follow := flag.String("follow", "", "act as a read replica of the primary at this address")
	syncReplicas := flag.Int("sync-replicas", 0, "quorum commit: block each commit until this many followers ack it (0 = async)")
	quorumTimeout := flag.Duration("quorum-timeout", 0, "quorum commit wait bound before degrading to async (0 = default 5s)")
	promote := flag.String("promote", "", "admin: ask the follower server at this address to promote itself to primary, then exit")
	flag.Parse()

	if *promote != "" {
		runPromote(*promote)
		return
	}
	if *follow != "" {
		runFollower(*addr, *dir, *follow, *metricsAddr, *queue, *disconnectSlow, *sync, *syncReplicas, *quorumTimeout)
		return
	}

	db, err := core.Open(core.Options{
		Dir:             *dir,
		SyncOnCommit:    *sync,
		MetricsAddr:     *metricsAddr,
		AsyncDetached:   *workers > 0,
		DetachedWorkers: *workers,
		SyncReplicas:    *syncReplicas,
		QuorumTimeout:   *quorumTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		os.Exit(1)
	}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
		if err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server:", err)
			db.Close()
			os.Exit(1)
		}
	}

	var primary *repl.Primary
	if *replicate || *syncReplicas > 0 {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "sentinel-server: -repl requires -d (base sync needs persistent storage)")
			db.Close()
			os.Exit(1)
		}
		primary = repl.NewPrimary(db, repl.PrimaryOptions{})
	}

	policy := server.DropEvents
	if *disconnectSlow {
		policy = server.DisconnectSlow
	}
	srv, err := server.New(db, server.Options{Addr: *addr, QueueLen: *queue, Overflow: policy, Primary: primary})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		db.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server listening on %s\n", srv.Addr())
	if primary != nil {
		fmt.Fprintf(os.Stderr, "sentinel-server: replication primary, epoch %d (followers may attach)\n", db.ReplEpoch())
	}
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", db.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
	// Sessions first (their subscriptions release and followers detach),
	// then the shipper, then the database (checkpoint + close storage).
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	if primary != nil {
		primary.Close()
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: db close:", err)
		os.Exit(1)
	}
}

// runPromote is the admin client: ask the follower server at addr to
// promote itself and report the outcome.
func runPromote(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: promote:", err)
		os.Exit(1)
	}
	defer c.Close()
	if err := c.ReplPromote(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: promote:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server: %s accepted promotion\n", addr)
}

// runFollower runs the replica mode: a Follower keeps the local directory
// in sync with the primary while a Server serves reads and subscriptions
// from it on this node's own address. An OpReplPromote admin frame (see
// runPromote) flips the node to primary in place: the serving layer
// restarts over the promoted database and followers may then attach here.
func runFollower(addr, dir, primaryAddr, metricsAddr string, queue int, disconnectSlow, sync bool, syncReplicas int, quorumTimeout time.Duration) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "sentinel-server: -follow requires -d (the replica's local directory)")
		os.Exit(1)
	}
	f, err := repl.StartFollower(repl.FollowerOptions{
		PrimaryAddr: primaryAddr,
		Core:        core.Options{Dir: dir, SyncOnCommit: sync, MetricsAddr: metricsAddr},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		os.Exit(1)
	}
	policy := server.DropEvents
	if disconnectSlow {
		policy = server.DisconnectSlow
	}
	// The promote hook just signals the main loop below: the actual
	// promotion must not run on a session's reader goroutine (it tears this
	// very server down).
	promoteCh := make(chan struct{}, 1)
	srv, err := server.New(f.DB, server.Options{Addr: addr, QueueLen: queue, Overflow: policy,
		Promote: func() error {
			select {
			case promoteCh <- struct{}{}:
			default: // already promoting
			}
			return nil
		}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		f.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server replica listening on %s (following %s)\n", srv.Addr(), primaryAddr)
	if metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", f.DB.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
		}
		// Follower.Close stops the stream and closes the database.
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-server: follower close:", err)
			os.Exit(1)
		}
		return
	case <-promoteCh:
	}

	// Promotion: stop serving reads (sessions reconnect to the new primary
	// server below), seal and reopen the database writable, then serve
	// again on the same address with followers welcome.
	fmt.Fprintln(os.Stderr, "sentinel-server: promoting to primary")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	db, primary, err := f.Promote(repl.PrimaryOptions{}, func(o *core.Options) {
		o.SyncOnCommit = sync
		o.SyncReplicas = syncReplicas
		o.QuorumTimeout = quorumTimeout
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: promote:", err)
		os.Exit(1)
	}
	srv, err = server.New(db, server.Options{Addr: addr, QueueLen: queue, Overflow: policy, Primary: primary})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server:", err)
		primary.Close()
		db.Close()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sentinel-server promoted: primary on %s, epoch %d\n", srv.Addr(), db.ReplEpoch())

	<-sig
	fmt.Fprintln(os.Stderr, "sentinel-server: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: server close:", err)
	}
	primary.Close()
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-server: db close:", err)
		os.Exit(1)
	}
}
