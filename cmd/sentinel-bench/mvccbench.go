package main

// MVCC + group-commit suite (-json5): measures the contended commit path
// this PR unblocks. The workload mixes, over the same 8 hot objects:
//
//   - writer goroutines committing durable updates (each writer owns a
//     disjoint slice of the hot set, so 2PL never serializes them and the
//     WAL fsync is the genuine bottleneck under test);
//   - snapshot readers scanning every hot object through BeginSnapshot
//     (they take no locks, so they must not slow writers down);
//   - a class-level detached rule firing on every update, its condition
//     evaluated against an MVCC snapshot (Options.SnapshotConditions).
//
// Storage runs on an in-memory VFS wrapped in a latency layer charging
// each fsync a fixed realistic cost: with instant fsyncs there is nothing
// for group commit to amortize and nothing for the sweep to measure (this
// host may have a single CPU — scaling must come from overlapping fsync
// waits, not extra cores). The suite sweeps 1/2/4/8 committers, reports a
// commits-per-fsync series, and measures idle single-commit latency with
// and without the group-commit window to prove the uncontended path pays
// nothing.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// mvccFsyncDelay is the simulated device fsync cost.
const mvccFsyncDelay = 400 * time.Microsecond

// mvccHotObjects is the size of the shared hot set.
const mvccHotObjects = 8

type mvccResult struct {
	Goroutines      int     `json:"goroutines"` // committers (and snapshot readers)
	Commits         int     `json:"commits"`
	ElapsedNs       int64   `json:"elapsed_ns"`
	CommitsSec      float64 `json:"commits_per_sec"`
	Speedup         float64 `json:"speedup_vs_1,omitempty"`
	Fsyncs          int64   `json:"fsyncs"`
	CommitsPerFsync float64 `json:"commits_per_fsync"`
	SnapshotReads   int64   `json:"snapshot_reads"`
	Detached        uint64  `json:"detached_firings"`
	MaxChainDepth   int     `json:"max_chain_depth"` // high-water during the run
}

type mvccIdle struct {
	PlainNs   int64   `json:"plain_commit_ns"`   // SyncOnCommit, no window
	GroupedNs int64   `json:"grouped_commit_ns"` // SyncOnCommit + window
	Ratio     float64 `json:"grouped_over_plain"`
}

type mvccReport struct {
	GeneratedBy  string       `json:"generated_by"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	NumCPU       int          `json:"num_cpu"`
	GoVersion    string       `json:"go_version"`
	FsyncDelayNs int64        `json:"fsync_delay_ns"`
	Note         string       `json:"note"`
	Idle         mvccIdle     `json:"idle"`
	Results      []mvccResult `json:"results"`
}

// mvccOpen builds a fresh database on a latency-wrapped memory VFS.
func mvccOpen(window time.Duration, async bool) (*core.Database, *vfs.Latency, error) {
	lat := vfs.NewLatency(vfs.NewMem(), mvccFsyncDelay, 0)
	opts := core.Options{
		Dir:               "bench",
		VFS:               lat,
		SyncOnCommit:      true,
		GroupCommitWindow: window,
		Output:            io.Discard,
	}
	if async {
		opts.AsyncDetached = true
		opts.DetachedWorkers = 2
		opts.SnapshotConditions = true
	}
	db, err := core.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	return db, lat, nil
}

// mvccSetup registers the Hot class, creates the hot set, and installs the
// class-level detached rule whose condition reads self through a snapshot.
func mvccSetup(db *core.Database, withRule bool) ([]oid.OID, error) {
	if err := db.Exec(`
		class Hot reactive persistent {
			attr v float
			event end method Set(p float) { self.v := p }
		}
	`); err != nil {
		return nil, err
	}
	ids := make([]oid.OID, mvccHotObjects)
	if err := db.Atomically(func(t *core.Tx) error {
		for i := range ids {
			var err error
			ids[i], err = db.NewObject(t, "Hot", map[string]value.Value{"v": value.Float(0)})
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if !withRule {
		return ids, nil
	}
	if err := db.Atomically(func(t *core.Tx) error {
		_, err := db.CreateRule(t, core.RuleSpec{
			Name: "watchHot", EventSrc: "end Hot::Set(float p)",
			Coupling: "detached", ClassLevel: "Hot",
			Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				// A snapshot read of the triggering object (SnapshotConditions
				// routes this through the condition's MVCC snapshot).
				_, err := ctx.GetAttr(det.Last().Source, "v")
				return false, err
			},
		})
		return err
	}); err != nil {
		return nil, err
	}
	return ids, nil
}

// runMVCCOnce runs one contended mix at g committers + g snapshot readers
// and returns the measured result.
func runMVCCOnce(g, commits int) (mvccResult, error) {
	db, lat, err := mvccOpen(200*time.Microsecond, true)
	if err != nil {
		return mvccResult{}, err
	}
	defer db.Close()
	ids, err := mvccSetup(db, true)
	if err != nil {
		return mvccResult{}, err
	}

	perWriter := commits / g
	var (
		writeWG, readWG sync.WaitGroup
		stop            = make(chan struct{})
		werrs           = make([]error, g)
		snapReads       int64
		snapMu          sync.Mutex
		maxDepth        int
	)
	syncs0 := lat.Syncs()
	start := time.Now()
	for w := 0; w < g; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			// Each writer owns hot objects w, w+g, w+2g, ... — disjoint
			// write sets, shared WAL.
			for i := 0; i < perWriter; i++ {
				id := ids[(w+i*g)%len(ids)]
				if err := db.Atomically(func(t *core.Tx) error {
					_, err := db.Send(t, id, "Set", value.Float(float64(i)))
					return err
				}); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	for r := 0; r < g; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			local := int64(0)
			for {
				select {
				case <-stop:
					snapMu.Lock()
					snapReads += local
					snapMu.Unlock()
					return
				default:
				}
				snap := db.BeginSnapshot()
				for _, id := range ids {
					if _, err := db.Get(snap, id, "v"); err == nil {
						local++
					}
				}
				d := db.Stats().Storage.MaxChainDepth
				snapMu.Lock()
				if d > maxDepth {
					maxDepth = d
				}
				snapMu.Unlock()
				db.Abort(snap)
				time.Sleep(50 * time.Microsecond) // don't starve writers on small hosts
			}
		}()
	}
	writeWG.Wait()
	db.WaitIdle() // drain the detached pool: firings are part of the work
	elapsed := time.Since(start)
	close(stop)
	readWG.Wait()

	for _, err := range werrs {
		if err != nil {
			return mvccResult{}, err
		}
	}
	done := g * perWriter
	fsyncs := lat.Syncs() - syncs0
	res := mvccResult{
		Goroutines: g, Commits: done,
		ElapsedNs:     elapsed.Nanoseconds(),
		CommitsSec:    float64(done) / elapsed.Seconds(),
		Fsyncs:        fsyncs,
		SnapshotReads: snapReads,
		Detached:      db.Stats().Detached.Executed,
		MaxChainDepth: maxDepth,
	}
	if fsyncs > 0 {
		res.CommitsPerFsync = float64(done) / float64(fsyncs)
	}
	return res, nil
}

// runMVCCIdle measures uncontended single-commit latency with and without
// the group-commit window: the window must only engage under contention.
func runMVCCIdle(commits int, window time.Duration) (int64, error) {
	db, _, err := mvccOpen(window, false)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	ids, err := mvccSetup(db, false)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < commits; i++ {
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.Send(t, ids[i%len(ids)], "Set", value.Float(float64(i)))
			return err
		}); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(commits), nil
}

// runMVCCBench runs the full suite, enforces the acceptance gates, and
// writes the JSON report.
func runMVCCBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	commits := 960
	idleCommits := 200
	if quick {
		commits, idleCommits = 320, 60
	}

	var report mvccReport
	report.GeneratedBy = "sentinel-bench -json5"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.GoVersion = runtime.Version()
	report.FsyncDelayNs = mvccFsyncDelay.Nanoseconds()
	report.Note = fmt.Sprintf(
		"contended mix over %d hot objects: g committers + g snapshot readers + class-level detached rule with snapshot conditions; fsync charged %v by a latency VFS; speedup is relative to 1 committer; see EXPERIMENTS.md P16",
		mvccHotObjects, mvccFsyncDelay)

	plain, err := runMVCCIdle(idleCommits, 0)
	if err != nil {
		return fmt.Errorf("idle baseline: %w", err)
	}
	grouped, err := runMVCCIdle(idleCommits, 200*time.Microsecond)
	if err != nil {
		return fmt.Errorf("idle grouped: %w", err)
	}
	report.Idle = mvccIdle{PlainNs: plain, GroupedNs: grouped, Ratio: float64(grouped) / float64(plain)}
	fmt.Printf("  idle commit: plain %v, with window %v (%.2fx)\n",
		time.Duration(plain), time.Duration(grouped), report.Idle.Ratio)

	var base float64
	for _, g := range []int{1, 2, 4, 8} {
		r, err := runMVCCOnce(g, commits)
		if err != nil {
			return fmt.Errorf("g=%d: %w", g, err)
		}
		if g == 1 {
			base = r.CommitsSec
		}
		if base > 0 {
			r.Speedup = r.CommitsSec / base
		}
		fmt.Printf("  g=%d  %7.0f commits/s (%.2fx)  %5.2f commits/fsync  %d snapshot reads  %d detached\n",
			g, r.CommitsSec, r.Speedup, r.CommitsPerFsync, r.SnapshotReads, r.Detached)
		report.Results = append(report.Results, r)
	}

	// Acceptance gates (ISSUE 6): fail loudly rather than write a report
	// that silently misses the targets.
	for _, r := range report.Results {
		if r.Goroutines == 4 && r.Speedup < 2 {
			return fmt.Errorf("4-committer speedup %.2fx below the 2x target", r.Speedup)
		}
		if r.Goroutines == 8 && r.CommitsPerFsync < 4 {
			return fmt.Errorf("8-committer commits/fsync %.2f below the 4.0 target", r.CommitsPerFsync)
		}
	}
	if report.Idle.Ratio > 1.30 {
		return fmt.Errorf("idle commit latency with window %.2fx the plain path; the window must not tax the uncontended case", report.Idle.Ratio)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
