package main

// Replication read-scaling suite (-json7): measures what ISSUE 8's follower
// fan-out buys — aggregate read throughput scaling with read replicas —
// plus the two health properties the design promises: bounded follower lag
// under a write burst, and zero push drops to idle (promptly reading)
// subscribers on followers.
//
// Every node gets its own simulated storage device: a vfs wrapper whose
// positional reads pay a fixed service time under a per-device mutex, i.e.
// one request in flight per device, like a disk. A small resident-object
// ceiling plus a small buffer pool make the read workload device-bound, so
// the single-node baseline saturates its one device and three followers
// expose three. The acceptance floor (enforced in full mode and by
// bench-gate over BENCH_7.json) is >= 2.5x aggregate reads at 3 followers.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	iofs "io/fs"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/repl"
	"sentinel/internal/server"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
	"sentinel/internal/wire"
)

const replBenchSchema = `
class Item reactive persistent {
	attr val int
	attr pad string
	event end method SetVal(v int) { self.val := v }
}
bind HOT new Item(val: 0)
`

// replPad fattens each Item so the heap dwarfs the 8-page pool: with 8 KiB
// pages, 2000 padded objects span ~75 pages, so a random fault-in almost
// always misses the page cache and pays the device.
var replPad = func() string {
	b := make([]byte, 300)
	for i := range b {
		b[i] = 'x'
	}
	return string(b)
}()

// benchDevice simulates one storage device over an in-memory filesystem:
// positional reads (the pager's fault-in path) pay a fixed service time
// under a per-device mutex — one request at a time, like a disk head.
// Sequential reads and writes pass through so startup and WAL appends
// don't distort the read measurement.
type benchDevice struct {
	inner vfs.FS
	delay time.Duration
	mu    sync.Mutex
	reads atomic.Int64
}

func newBenchDevice(delay time.Duration) *benchDevice {
	return &benchDevice{inner: vfs.NewMem(), delay: delay}
}

func (d *benchDevice) service() {
	d.mu.Lock()
	time.Sleep(d.delay)
	d.mu.Unlock()
	d.reads.Add(1)
}

func (d *benchDevice) OpenFile(path string, flag int, perm iofs.FileMode) (vfs.File, error) {
	f, err := d.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &benchDevFile{File: f, dev: d}, nil
}

func (d *benchDevice) ReadFile(path string) ([]byte, error) { return d.inner.ReadFile(path) }
func (d *benchDevice) Rename(o, n string) error             { return d.inner.Rename(o, n) }
func (d *benchDevice) Remove(path string) error             { return d.inner.Remove(path) }
func (d *benchDevice) MkdirAll(dir string, perm iofs.FileMode) error {
	return d.inner.MkdirAll(dir, perm)
}
func (d *benchDevice) SyncDir(dir string) error { return d.inner.SyncDir(dir) }

type benchDevFile struct {
	vfs.File
	dev *benchDevice
}

func (f *benchDevFile) ReadAt(p []byte, off int64) (int, error) {
	f.dev.service()
	return f.File.ReadAt(p, off)
}

type replReadResult struct {
	Nodes       int     `json:"nodes"`
	Readers     int     `json:"readers"`
	Reads       int64   `json:"reads"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	DeviceReads int64   `json:"device_reads"` // fault-ins served by the simulated devices
}

type replFanoutResult struct {
	replReadResult
	SpeedupVsSingle   float64 `json:"speedup_vs_single"`
	CatchupNs         int64   `json:"catchup_ns"` // write burst to all-followers-applied
	BurstCommits      int     `json:"burst_commits"`
	LagAfterCatchup   uint64  `json:"lag_batches_after_catchup"`
	PeersAfterCatchup int     `json:"peers_after_catchup"`
}

type replPushResult struct {
	Followers  int   `json:"followers"`
	Commits    int   `json:"commits"`
	Deliveries int64 `json:"deliveries"`
	PushDrops  int64 `json:"push_drops"`
}

type replReport struct {
	GeneratedBy     string           `json:"generated_by"`
	GoMaxProcs      int              `json:"gomaxprocs"`
	NumCPU          int              `json:"num_cpu"`
	GoVersion       string           `json:"go_version"`
	Note            string           `json:"note"`
	Population      int              `json:"population"`
	ResidentCap     int              `json:"resident_cap"`
	DeviceLatencyUs int64            `json:"device_read_latency_us"`
	Single          replReadResult   `json:"single"`
	Fanout          replFanoutResult `json:"fanout"`
	Push            replPushResult   `json:"push"`
}

// replBenchNodeOpts are the storage options every node (primary and
// follower alike) runs with: identical simulated hardware.
func replBenchNodeOpts(dev *benchDevice, residentCap int) core.Options {
	return core.Options{
		Dir:                "db",
		VFS:                dev,
		MaxResidentObjects: residentCap,
		PoolPages:          8, // tiny page cache: misses go to the device
		Output:             io.Discard,
	}
}

// populateRepl creates pop Items in batches and returns their OIDs.
func populateRepl(db *core.Database, pop int) ([]oid.OID, error) {
	oids := make([]oid.OID, 0, pop)
	const batch = 200
	for len(oids) < pop {
		n := batch
		if rem := pop - len(oids); rem < n {
			n = rem
		}
		err := db.Atomically(func(t *core.Tx) error {
			for i := 0; i < n; i++ {
				id, err := db.NewObject(t, "Item", map[string]value.Value{
					"val": value.Int(int64(len(oids) + i)),
					"pad": value.Str(replPad),
				})
				if err != nil {
					return err
				}
				oids = append(oids, id)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return oids, nil
}

// nudgeCommits runs a few small commits so the post-checkpoint eviction
// pass actually fires (maybeEvict runs on the commit/apply path).
func nudgeCommits(db *core.Database, hot oid.OID, n int) error {
	for i := 0; i < n; i++ {
		err := db.Atomically(func(t *core.Tx) error {
			_, err := db.Send(t, hot, "SetVal", value.Int(int64(i)))
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// startEvictionPump keeps a trickle of commits flowing while readers run:
// maybeEvict fires on the commit path (and, via the shipped batch, on every
// follower's apply path), so without it the first round of fault-ins would
// repopulate the directory and the measurement would degrade into resident
// cache hits. The trickle is the "contended writer" of the scenario.
func startEvictionPump(db *core.Database, hot oid.OID) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
				i++
				_ = db.Atomically(func(t *core.Tx) error {
					_, err := db.Send(t, hot, "SetVal", value.Int(int64(i)))
					return err
				})
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runReplReaders drives pipelined random OpGets against each address for
// the given duration and returns total completed reads and wall time.
// Readers are spread evenly across the addresses.
func runReplReaders(addrs []string, readers, depth int, dur time.Duration) (int64, time.Duration, error) {
	var (
		total  atomic.Int64
		wg     sync.WaitGroup
		errMu  sync.Mutex
		topErr error
	)
	start := time.Now()
	deadline := start.Add(dur)
	for r := 0; r < readers; r++ {
		addr := addrs[r%len(addrs)]
		seed := int64(r + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(err error) {
				errMu.Lock()
				if topErr == nil {
					topErr = err
				}
				errMu.Unlock()
			}
			c, err := client.Dial(context.Background(), addr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			ids, err := c.Instances(context.Background(), "Item")
			if err != nil || len(ids) == 0 {
				fail(fmt.Errorf("instances: %d ids, %v", len(ids), err))
				return
			}
			rng := rand.New(rand.NewSource(seed))
			window := make([]*client.Call, 0, depth)
			for time.Now().Before(deadline) {
				if len(window) == depth {
					if _, err := c.GetCall(context.Background(), window[0]); err != nil {
						fail(err)
						return
					}
					window = window[1:]
					total.Add(1)
				}
				window = append(window, c.GoGet(context.Background(), ids[rng.Intn(len(ids))], "val"))
			}
			for _, call := range window {
				if _, err := c.GetCall(context.Background(), call); err != nil {
					fail(err)
					return
				}
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	return total.Load(), time.Since(start), topErr
}

// runReplBench runs the replication suite and writes the BENCH_7 report.
func runReplBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	pop, residentCap := 2000, 64
	devDelay := 150 * time.Microsecond
	readers, depth := 6, 8
	readDur := 1500 * time.Millisecond
	burst, pushCommits := 200, 30
	if quick {
		pop, residentCap = 400, 32
		readers, depth = 3, 4
		readDur = 300 * time.Millisecond
		burst, pushCommits = 40, 8
	}

	var report replReport
	report.GeneratedBy = "sentinel-bench -json7"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.GoVersion = runtime.Version()
	report.Population = pop
	report.ResidentCap = residentCap
	report.DeviceLatencyUs = devDelay.Microseconds()
	report.Note = fmt.Sprintf(
		"TCP loopback, per-node simulated storage device (%v positional-read service time, one request in flight per device), %d Items with a %d-object resident ceiling and an 8-page pool so random reads are device-bound; aggregate OpGet throughput on 1 node vs 3 followers, follower catch-up after a %d-commit burst, push fan-out through follower servers; see EXPERIMENTS.md P18",
		devDelay, pop, residentCap, burst)

	// ---- Primary node ----
	pdev := newBenchDevice(devDelay)
	pdb, err := core.Open(replBenchNodeOpts(pdev, residentCap))
	if err != nil {
		return err
	}
	defer pdb.Close()
	pri := repl.NewPrimary(pdb, repl.PrimaryOptions{})
	defer pri.Close()
	psrv, err := server.New(pdb, server.Options{Addr: "127.0.0.1:0", Primary: pri})
	if err != nil {
		return err
	}
	defer psrv.Close()

	if err := pdb.Exec(replBenchSchema); err != nil {
		return err
	}
	hot, ok := pdb.Lookup("HOT")
	if !ok {
		return fmt.Errorf("HOT unbound")
	}
	oids, err := populateRepl(pdb, pop)
	if err != nil {
		return fmt.Errorf("populate: %w", err)
	}
	if err := pdb.Checkpoint(); err != nil {
		return err
	}
	if err := nudgeCommits(pdb, hot, 5); err != nil {
		return err
	}

	// ---- Single-node baseline ----
	stopPump := startEvictionPump(pdb, hot)
	reads, elapsed, err := runReplReaders([]string{psrv.Addr()}, readers, depth, readDur)
	stopPump()
	if err != nil {
		return fmt.Errorf("single-node readers: %w", err)
	}
	report.Single = replReadResult{
		Nodes: 1, Readers: readers, Reads: reads,
		ElapsedNs:   elapsed.Nanoseconds(),
		ReadsPerSec: float64(reads) / elapsed.Seconds(),
		DeviceReads: pdev.reads.Load(),
	}
	fmt.Printf("  single node: %8.0f reads/s (%d reads, %d device reads)\n",
		report.Single.ReadsPerSec, reads, report.Single.DeviceReads)

	// ---- Three followers, each on its own device ----
	type fnode struct {
		dev *benchDevice
		f   *repl.Follower
		srv *server.Server
	}
	var followers []fnode
	defer func() {
		for _, fn := range followers {
			fn.srv.Close()
			fn.f.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		dev := newBenchDevice(devDelay)
		f, err := repl.StartFollower(repl.FollowerOptions{
			PrimaryAddr: psrv.Addr(),
			Core:        replBenchNodeOpts(dev, residentCap),
			MaxBackoff:  200 * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("follower %d: %w", i, err)
		}
		srv, err := server.New(f.DB, server.Options{Addr: "127.0.0.1:0"})
		if err != nil {
			f.Close()
			return fmt.Errorf("follower %d server: %w", i, err)
		}
		followers = append(followers, fnode{dev: dev, f: f, srv: srv})
	}
	waitApplied := func(target uint64, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		for {
			done := true
			for _, fn := range followers {
				if fn.f.DB.ReplLSN() < target {
					done = false
					break
				}
			}
			if done {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("followers stuck below LSN %d", target)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := waitApplied(pdb.ReplLSN(), 60*time.Second); err != nil {
		return err
	}
	for _, fn := range followers {
		if err := fn.f.DB.Checkpoint(); err != nil {
			return err
		}
	}
	if err := nudgeCommits(pdb, hot, 5); err != nil {
		return err
	}
	if err := waitApplied(pdb.ReplLSN(), 60*time.Second); err != nil {
		return err
	}

	var faddrs []string
	for _, fn := range followers {
		faddrs = append(faddrs, fn.srv.Addr())
	}
	devBase := int64(0)
	for _, fn := range followers {
		devBase += fn.dev.reads.Load()
	}
	stopPump = startEvictionPump(pdb, hot)
	reads, elapsed, err = runReplReaders(faddrs, readers, depth, readDur)
	stopPump()
	if err != nil {
		return fmt.Errorf("follower readers: %w", err)
	}
	devReads := -devBase
	for _, fn := range followers {
		devReads += fn.dev.reads.Load()
	}
	report.Fanout.replReadResult = replReadResult{
		Nodes: 3, Readers: readers, Reads: reads,
		ElapsedNs:   elapsed.Nanoseconds(),
		ReadsPerSec: float64(reads) / elapsed.Seconds(),
		DeviceReads: devReads,
	}
	report.Fanout.SpeedupVsSingle = report.Fanout.ReadsPerSec / report.Single.ReadsPerSec
	fmt.Printf("  3 followers: %8.0f reads/s (%.2fx single node, %d device reads)\n",
		report.Fanout.ReadsPerSec, report.Fanout.SpeedupVsSingle, devReads)

	// ---- Catch-up after a write burst ----
	for i := 0; i < burst; i++ {
		err := pdb.Atomically(func(t *core.Tx) error {
			_, err := pdb.Send(t, oids[i%len(oids)], "SetVal", value.Int(int64(i)))
			return err
		})
		if err != nil {
			return fmt.Errorf("burst commit %d: %w", i, err)
		}
	}
	target := pdb.ReplLSN()
	start := time.Now()
	if err := waitApplied(target, 60*time.Second); err != nil {
		return err
	}
	report.Fanout.CatchupNs = time.Since(start).Nanoseconds()
	report.Fanout.BurstCommits = burst
	// Lag accounting drains once every follower's ack lands.
	lagDeadline := time.Now().Add(10 * time.Second)
	for {
		s := pdb.Stats().Replication
		report.Fanout.LagAfterCatchup = s.LagBatches
		report.Fanout.PeersAfterCatchup = s.Peers
		if s.LagBatches == 0 || time.Now().After(lagDeadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("  catch-up after %d-commit burst: %v (lag %d batches, %d peers)\n",
		burst, time.Duration(report.Fanout.CatchupNs).Round(time.Millisecond),
		report.Fanout.LagAfterCatchup, report.Fanout.PeersAfterCatchup)

	// ---- Push fan-out through follower servers ----
	var delivered atomic.Int64
	var subs []*client.Client
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	for i, fn := range followers {
		c, err := client.Dial(context.Background(), fn.srv.Addr())
		if err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
		subs = append(subs, c)
		id, ok, err := c.Lookup(context.Background(), "HOT")
		if err != nil || !ok {
			return fmt.Errorf("subscriber %d lookup HOT: ok=%v err=%v", i, ok, err)
		}
		if _, err := c.Subscribe(context.Background(), id, "SetVal", wire.MomentAny,
			func(wire.Event) { delivered.Add(1) }); err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
	}
	for i := 0; i < pushCommits; i++ {
		if err := nudgeCommits(pdb, hot, 1); err != nil {
			return err
		}
	}
	want := int64(pushCommits * len(followers))
	pushDeadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(pushDeadline) {
			return fmt.Errorf("push fan-out: %d/%d deliveries confirmed", delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	var drops int64
	for _, fn := range followers {
		d, _ := fn.f.DB.Metrics().Counter("sentinel_server_push_drops_total")
		drops += int64(d)
	}
	report.Push = replPushResult{
		Followers:  len(followers),
		Commits:    pushCommits,
		Deliveries: delivered.Load(),
		PushDrops:  drops,
	}
	fmt.Printf("  push via followers: %d/%d deliveries, %d drops\n",
		report.Push.Deliveries, want, drops)

	// Acceptance gates (ISSUE 8): full mode only — quick mode exists to
	// catch harness bit-rot in CI, not to certify performance.
	if !quick {
		if report.Fanout.SpeedupVsSingle < 2.5 {
			return fmt.Errorf("3-follower aggregate read throughput %.2fx single node, below the 2.5x floor", report.Fanout.SpeedupVsSingle)
		}
		if report.Fanout.CatchupNs > (10 * time.Second).Nanoseconds() {
			return fmt.Errorf("follower catch-up took %v, above the 10s ceiling", time.Duration(report.Fanout.CatchupNs))
		}
	}
	if report.Push.PushDrops != 0 {
		return fmt.Errorf("%d pushes dropped on idle follower subscribers", report.Push.PushDrops)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
