package main

// Instrumentation-overhead benchmarks (-json3): quantifies what the
// observability layer costs on the event fast path. Four configurations of
// the P1 raise shape (100 rules over 100 stocks, updates hitting one
// stock) are measured: timing effectively off, the default sampled timing,
// forced per-firing timing (SlowRuleThreshold), and a no-op tracer
// installed. The report also snapshots the latency histograms the default
// run populated and scrapes the live /metrics endpoint once, so the
// acceptance numbers (raise stays allocation-free with metrics on; the
// endpoint serves real quantiles) live in one artifact (BENCH_3.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/obs"
	"sentinel/internal/value"
)

type obsResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	OverheadPct float64 `json:"overhead_pct_vs_untimed,omitempty"`
}

type obsHist struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ns"`
	P95   float64 `json:"p95_ns"`
	P99   float64 `json:"p99_ns"`
}

type obsReport struct {
	GeneratedBy     string      `json:"generated_by"`
	GoMaxProcs      int         `json:"gomaxprocs"`
	GoVersion       string      `json:"go_version"`
	Note            string      `json:"note"`
	Results         []obsResult `json:"results"`
	Histograms      []obsHist   `json:"histograms"`
	EndpointScraped bool        `json:"endpoint_scraped"`
}

// obsRaiseBench measures the P1 raise shape on a database opened with opts
// (plus an optional tracer), returning the benchmark result and the
// database for post-run inspection. Close is the caller's job.
func obsRaiseBench(opts core.Options, tr *obs.Tracer) (testing.BenchmarkResult, *core.Database) {
	opts.Output = io.Discard
	db, m := marketWithRulesOpts(100, 100, opts)
	if tr != nil {
		db.SetTracer(tr)
	}
	r := testing.Benchmark(func(b *testing.B) {
		tx := db.Begin()
		defer db.Abort(tx)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Send(tx, m.Stocks[0], "SetPrice", value.Float(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, db
}

// runObsBench executes the instrumentation-overhead suite and writes the
// report to path.
func runObsBench(path string) error {
	rep := obsReport{
		GeneratedBy: "sentinel-bench -json3",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Note: "P1 raise shape (100 rules / 100 stocks, one hot stock); " +
			"untimed = sampling pushed out of reach, default = 1-in-16 sampled timing, " +
			"forced = SlowRuleThreshold times every firing, tracer = no-op hooks installed",
	}

	record := func(name string, r testing.BenchmarkResult, baseNs float64) float64 {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := obsResult{
			Name:        name,
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if baseNs > 0 {
			res.OverheadPct = (ns - baseNs) / baseNs * 100
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op %6d allocs/op", name, ns, r.AllocsPerOp())
		if baseNs > 0 {
			fmt.Fprintf(os.Stderr, "   %+.1f%%", res.OverheadPct)
		}
		fmt.Fprintln(os.Stderr)
		return ns
	}

	// Baseline: the sampling counter never reaches its modulus, so no
	// firing is ever timed — instrumentation is pure atomic counters.
	r, db := obsRaiseBench(core.Options{MetricsSampling: 1 << 30}, nil)
	baseNs := record("raise/untimed", r, 0)
	db.Close()

	// Default configuration, plus a live endpoint to scrape afterwards.
	r, db = obsRaiseBench(core.Options{MetricsAddr: "127.0.0.1:0"}, nil)
	record("raise/metrics-default", r, baseNs)
	for _, h := range db.Metrics().Histograms {
		if h.Count == 0 {
			continue
		}
		rep.Histograms = append(rep.Histograms, obsHist{
			Name: h.Name, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99,
		})
	}
	if resp, err := http.Get(fmt.Sprintf("http://%s/metrics", db.MetricsAddr())); err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		rep.EndpointScraped = rerr == nil &&
			strings.Contains(string(body), "sentinel_rule_firing_seconds") &&
			strings.Contains(string(body), "sentinel_events_raised_total")
	}
	db.Close()

	// Every firing timed: the worst case the sampling design avoids.
	r, db = obsRaiseBench(core.Options{SlowRuleThreshold: time.Hour}, nil)
	record("raise/forced-timing", r, baseNs)
	db.Close()

	// A tracer with the fast-path hooks installed (no-op bodies): the cost
	// of building the info structs and making the calls.
	noop := &obs.Tracer{
		OccurrenceRaised:  func(obs.OccurrenceInfo) {},
		CompositeDetected: func(obs.DetectionInfo) {},
		RuleScheduled:     func(obs.RuleScheduleInfo) {},
		RuleFired:         func(obs.RuleFireInfo) {},
	}
	r, db = obsRaiseBench(core.Options{}, noop)
	record("raise/tracer-noop", r, baseNs)
	db.Close()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
