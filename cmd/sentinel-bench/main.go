// Command sentinel-bench regenerates the experiment tables documented in
// EXPERIMENTS.md: the §5 worked examples against the Ode- and ADAM-style
// baselines (E1, E2), the performance-claim measurements (P1–P8), and the
// §7 comparison matrix (C1).
//
// Usage:
//
//	sentinel-bench                 # run everything
//	sentinel-bench -exp P1,E1      # run a subset
//	sentinel-bench -quick          # reduced sizes (CI-friendly)
//	sentinel-bench -json BENCH_1.json [-baseline BENCH_0.json]
//	                               # machine-readable fast-path benchmarks
//	sentinel-bench -json2 BENCH_2.json [-pop 100000] [-resident 4096]
//	                               # cold-open / demand-paging benchmarks
//	sentinel-bench -json3 BENCH_3.json
//	                               # instrumentation-overhead benchmarks
//	sentinel-bench -json4 BENCH_4.json [-quick]
//	                               # detached-pool multi-core scaling suite
//	sentinel-bench -json5 BENCH_5.json [-quick]
//	                               # MVCC snapshot-read + group-commit suite
//	sentinel-bench -json6 BENCH_6.json [-quick]
//	                               # networked server: idle sessions,
//	                               # pipelining, push fan-out latency
//	sentinel-bench -json7 BENCH_7.json [-quick]
//	                               # replication: read scaling across
//	                               # followers, catch-up lag, push drops
//	sentinel-bench -json8 BENCH_8.json [-quick]
//	                               # failover: quorum-commit latency vs
//	                               # async, promotion downtime
//	sentinel-bench -json9 BENCH_9.json [-quick]
//	                               # rule-churn: raise throughput under
//	                               # catalog churn, selective vs global
//	                               # consumer-cache invalidation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sentinel/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (E1,E2,P1..P8,C1) or 'all'")
	quick := flag.Bool("quick", false, "run at reduced sizes")
	jsonOut := flag.String("json", "", "write fast-path benchmark results to this JSON file and exit")
	baseline := flag.String("baseline", "", "embed this JSON file as the baseline in -json output")
	json2Out := flag.String("json2", "", "write cold-open/demand-paging benchmark results to this JSON file and exit")
	pop := flag.Int("pop", 100000, "population size for -json2")
	resident := flag.Int("resident", 4096, "MaxResidentObjects ceiling for -json2")
	json3Out := flag.String("json3", "", "write instrumentation-overhead benchmark results to this JSON file and exit")
	json4Out := flag.String("json4", "", "write detached-pool multi-core scaling results to this JSON file and exit")
	json5Out := flag.String("json5", "", "write MVCC snapshot-read/group-commit results to this JSON file and exit")
	json6Out := flag.String("json6", "", "write networked-server benchmark results to this JSON file and exit")
	json7Out := flag.String("json7", "", "write replication read-scaling benchmark results to this JSON file and exit")
	json8Out := flag.String("json8", "", "write failover benchmark results (quorum commit latency, promotion downtime) to this JSON file and exit")
	json9Out := flag.String("json9", "", "write rule-churn benchmark results (selective vs global consumer-cache invalidation) to this JSON file and exit")
	idleClientAddr := flag.String("idle-client", "", "internal: run as the -json6 idle-session client subprocess against this address")
	idleClientSessions := flag.Int("idle-sessions", 0, "internal: session count for -idle-client")
	flag.Parse()

	if *idleClientAddr != "" {
		if err := runIdleClient(*idleClientAddr, *idleClientSessions); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json2Out != "" {
		if err := runColdOpenBench(*json2Out, *pop, *resident); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json3Out != "" {
		if err := runObsBench(*json3Out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json4Out != "" {
		if err := runMultiCoreBench(*json4Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json5Out != "" {
		if err := runMVCCBench(*json5Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json6Out != "" {
		if err := runServerBench(*json6Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json7Out != "" {
		if err := runReplBench(*json7Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json8Out != "" {
		if err := runFailoverBench(*json8Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *json9Out != "" {
		if err := runChurnBench(*json9Out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sizes := struct {
		p1Sizes    []int
		p1Events   int
		p2Sends    int
		p3Feeds    int
		p4Counts   []int
		p5Counts   []int
		p5Events   int
		p6Sends    int
		p6Txs      int
		p7Counts   []int
		p8Sends    int
		p9Counts   []int
		p10Commits int
	}{
		p1Sizes: []int{10, 100, 1000, 4000}, p1Events: 2000,
		p2Sends: 20000, p3Feeds: 200000,
		p4Counts: []int{100, 1000, 5000},
		p5Counts: []int{100, 1000, 5000}, p5Events: 2000,
		p6Sends: 100, p6Txs: 50,
		p7Counts: []int{100, 1000, 5000},
		p8Sends:  20000,
		p9Counts: []int{100, 1000, 10000}, p10Commits: 200,
	}
	if *quick {
		sizes.p1Sizes, sizes.p1Events = []int{10, 100, 500}, 500
		sizes.p2Sends, sizes.p3Feeds = 5000, 50000
		sizes.p4Counts = []int{100, 500}
		sizes.p5Counts, sizes.p5Events = []int{100, 500}, 500
		sizes.p6Sends, sizes.p6Txs = 50, 20
		sizes.p7Counts = []int{100, 500}
		sizes.p8Sends = 5000
		sizes.p9Counts = []int{100, 1000}
		sizes.p10Commits = 50
	}

	run := map[string]func(){
		"E1":  func() { bench.RunE1().Fprint(os.Stdout) },
		"E2":  func() { bench.RunE2().Fprint(os.Stdout) },
		"P1":  func() { bench.RunP1(sizes.p1Sizes, sizes.p1Events).Fprint(os.Stdout) },
		"P2":  func() { bench.RunP2(sizes.p2Sends).Fprint(os.Stdout) },
		"P3":  func() { bench.RunP3(sizes.p3Feeds).Fprint(os.Stdout) },
		"P4":  func() { bench.RunP4(sizes.p4Counts).Fprint(os.Stdout) },
		"P5":  func() { bench.RunP5(sizes.p5Counts, sizes.p5Events).Fprint(os.Stdout) },
		"P6":  func() { bench.RunP6(sizes.p6Sends, sizes.p6Txs).Fprint(os.Stdout) },
		"P7":  func() { bench.RunP7(sizes.p7Counts).Fprint(os.Stdout) },
		"P8":  func() { bench.RunP8(sizes.p8Sends).Fprint(os.Stdout) },
		"P9":  func() { bench.RunP9(sizes.p9Counts, 200).Fprint(os.Stdout) },
		"P10": func() { bench.RunP10(nil, sizes.p10Commits).Fprint(os.Stdout) },
		"C1":  func() { bench.RunC1().Fprint(os.Stdout) },
	}
	order := []string{"E1", "E2", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "C1"}

	fmt.Println("Sentinel reproduction — experiment suite")
	fmt.Println("========================================")
	fmt.Println()
	if *expFlag == "all" {
		for _, id := range order {
			run[id]()
		}
		return
	}
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.ToUpper(strings.TrimSpace(id))
		fn, ok := run[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		fn()
	}
}
