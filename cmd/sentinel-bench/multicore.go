package main

// Multi-core detached-executor suite (-json4): measures how detached-rule
// throughput scales with Options.DetachedWorkers. The workload models the
// paper's canonical detached action — an external notification whose
// latency the database cannot shrink — as a fixed 200µs wait per firing, so
// scaling comes from overlapping those waits, not from burning extra CPU
// (see EXPERIMENTS.md P15 for why this is the honest regime on a
// single-core host). Two shapes bracket the conflict scheduler:
//
//   - disjoint: every firing has its own subscriber, so nothing conflicts
//     and the pool may run all of them concurrently;
//   - contended: every firing shares one subscriber, so the scheduler must
//     chain them and extra workers lawfully buy nothing.
//
// The suite runs at GOMAXPROCS=8 regardless of host size and sweeps
// workers ∈ {sync, 1, 2, 4, 8}; speedups are reported relative to the
// 1-worker pool.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

// mcActionWait is the simulated external-notification latency per detached
// firing. Large against scheduling overhead, small against suite runtime.
const mcActionWait = 200 * time.Microsecond

type multiCoreResult struct {
	Mode       string  `json:"mode"`    // "disjoint" or "contended"
	Workers    int     `json:"workers"` // 0 = synchronous (AsyncDetached off)
	Firings    int     `json:"firings"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	FiringsSec float64 `json:"firings_per_sec"`
	Speedup    float64 `json:"speedup_vs_1_worker,omitempty"`
}

type multiCoreReport struct {
	GeneratedBy string            `json:"generated_by"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	GoVersion   string            `json:"go_version"`
	Note        string            `json:"note"`
	Results     []multiCoreResult `json:"results"`
}

// runMultiCoreOnce feeds n detached firings through one configuration and
// times feed-start → pool-idle. workers == 0 means the synchronous
// baseline. stocks controls contention: every send round-robins over the
// stock population, and the subscriber is the stock itself.
func runMultiCoreOnce(mode string, workers, stocks, n int) (multiCoreResult, error) {
	opts := core.Options{Output: io.Discard}
	if workers > 0 {
		opts.AsyncDetached = true
		opts.DetachedWorkers = workers
	}
	db, err := core.Open(opts)
	if err != nil {
		return multiCoreResult{}, err
	}
	defer db.Close()
	if err := bench.InstallMarketSchema(db); err != nil {
		return multiCoreResult{}, err
	}
	m, err := bench.BuildMarket(db, stocks, 0)
	if err != nil {
		return multiCoreResult{}, err
	}
	if err := db.Atomically(func(t *core.Tx) error {
		_, err := db.CreateRule(t, core.RuleSpec{
			Name:       "notify",
			EventSrc:   "end Stock::SetPrice(float p)",
			Coupling:   "detached",
			ClassLevel: "Stock",
			Action: func(rule.ExecContext, event.Detection) error {
				time.Sleep(mcActionWait)
				return nil
			},
		})
		return err
	}); err != nil {
		return multiCoreResult{}, err
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		id := m.Stocks[i%stocks]
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.Send(t, id, "SetPrice", value.Float(float64(i)))
			return err
		}); err != nil {
			return multiCoreResult{}, err
		}
	}
	db.WaitIdle()
	elapsed := time.Since(start)

	if workers > 0 {
		if got := db.Stats().Detached.Executed; got != uint64(n) {
			return multiCoreResult{}, fmt.Errorf("%s/%d workers: pool executed %d firings, want %d", mode, workers, got, n)
		}
	}
	return multiCoreResult{
		Mode: mode, Workers: workers, Firings: n,
		ElapsedNs:  elapsed.Nanoseconds(),
		FiringsSec: float64(n) / elapsed.Seconds(),
	}, nil
}

// runMultiCoreBench runs the full sweep and writes the JSON report.
func runMultiCoreBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	n := 2000
	if quick {
		n = 400
	}
	const disjointStocks = 256
	workerSweep := []int{0, 1, 2, 4, 8}

	var report multiCoreReport
	report.GeneratedBy = "sentinel-bench -json4"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.GoVersion = runtime.Version()
	report.Note = fmt.Sprintf(
		"detached action = %v simulated external-notification wait; disjoint = %d subscribers, contended = 1 subscriber; speedup is relative to the 1-worker pool; see EXPERIMENTS.md P15",
		mcActionWait, disjointStocks)

	baseline := map[string]float64{}
	for _, mode := range []string{"disjoint", "contended"} {
		stocks := disjointStocks
		if mode == "contended" {
			stocks = 1
		}
		for _, w := range workerSweep {
			r, err := runMultiCoreOnce(mode, w, stocks, n)
			if err != nil {
				return err
			}
			if w == 1 {
				baseline[mode] = r.FiringsSec
			}
			if b := baseline[mode]; b > 0 && w >= 1 {
				r.Speedup = r.FiringsSec / b
			}
			fmt.Printf("  %-9s workers=%d  %7.0f firings/s  (%.2fx)\n", mode, w, r.FiringsSec, r.Speedup)
			report.Results = append(report.Results, r)
		}
	}

	// Acceptance gate (ISSUE 5): ≥3× 1-worker throughput at 4 workers on
	// the disjoint shape. Fail loudly instead of writing a report that
	// silently misses the target.
	for _, r := range report.Results {
		if r.Mode == "disjoint" && r.Workers == 4 && r.Speedup < 3 {
			return fmt.Errorf("disjoint 4-worker speedup %.2fx below the 3x target", r.Speedup)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
