package main

// Cold-open / demand-paging benchmarks (-json2): how fast a populated
// database opens when application objects stay on disk versus full
// materialization (Options.EagerLoad), plus the steady-state cost of
// faulting evicted objects back in. Written as a JSON artifact
// (BENCH_2.json) so the open-latency claim is reproducible.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

type coldOpenResult struct {
	Name            string  `json:"name"`
	Millis          float64 `json:"ms,omitempty"`
	NsPerOp         float64 `json:"ns_per_op,omitempty"`
	ObjectsResident int     `json:"objects_resident,omitempty"`
	ObjectsTotal    int     `json:"objects_total,omitempty"`
	Faults          uint64  `json:"faults,omitempty"`
	Evictions       uint64  `json:"evictions,omitempty"`
}

type coldOpenReport struct {
	GeneratedBy string           `json:"generated_by"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	GoVersion   string           `json:"go_version"`
	Population  int              `json:"population"`
	MaxResident int              `json:"max_resident"`
	OpenSpeedup float64          `json:"open_speedup_lazy_vs_eager"`
	Results     []coldOpenResult `json:"results"`
}

// populateColdDir fills dir with n Employee objects and closes cleanly, so
// reopen measures pure open cost (no WAL replay).
func populateColdDir(dir string, n int) ([]oid.OID, error) {
	opts := core.Options{Dir: dir, Output: io.Discard}
	opts.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
	db, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	ids := make([]oid.OID, n)
	const batch = 1000
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				var err error
				ids[i], err = db.NewObject(tx, "Employee", map[string]value.Value{
					"name":   value.Str(fmt.Sprintf("e%d", i)),
					"salary": value.Float(float64(i)),
				})
				if err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, err
		}
	}
	return ids, db.Close()
}

func coldOpts(dir string, maxResident int, eager bool) core.Options {
	opts := core.Options{Dir: dir, Output: io.Discard, EagerLoad: eager}
	if !eager {
		// Options.Validate rejects a residency ceiling combined with eager
		// materialization; the ceiling only applies to the lazy runs.
		opts.MaxResidentObjects = maxResident
	}
	opts.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
	return opts
}

// timeOpen opens the database `rounds` times and returns the best
// wall-clock duration plus the last handle's stats (the handle is closed).
func timeOpen(dir string, maxResident int, eager bool, rounds int) (time.Duration, core.Snapshot, error) {
	best := time.Duration(1<<62 - 1)
	var stats core.Snapshot
	for i := 0; i < rounds; i++ {
		start := time.Now()
		db, err := core.Open(coldOpts(dir, maxResident, eager))
		if err != nil {
			return 0, stats, err
		}
		d := time.Since(start)
		if d < best {
			best = d
		}
		stats = db.Stats()
		if err := db.Close(); err != nil {
			return 0, stats, err
		}
	}
	return best, stats, nil
}

// runColdOpenBench builds a population-object database and measures lazy vs
// eager open latency, then fault and resident-hit read costs under a
// maxResident ceiling, writing the report to path.
func runColdOpenBench(path string, population, maxResident int) error {
	dir, err := os.MkdirTemp("", "sentinel-coldopen-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ids, err := populateColdDir(dir, population)
	if err != nil {
		return err
	}

	rep := coldOpenReport{
		GeneratedBy: "sentinel-bench -json2",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Population:  population,
		MaxResident: maxResident,
	}

	lazyDur, lazyStats, err := timeOpen(dir, maxResident, false, 3)
	if err != nil {
		return fmt.Errorf("lazy open: %w", err)
	}
	rep.Results = append(rep.Results, coldOpenResult{
		Name:            "open/lazy",
		Millis:          float64(lazyDur.Nanoseconds()) / 1e6,
		ObjectsResident: lazyStats.Objects.Resident,
		ObjectsTotal:    lazyStats.Objects.Total,
	})

	eagerDur, eagerStats, err := timeOpen(dir, 0, true, 3)
	if err != nil {
		return fmt.Errorf("eager open: %w", err)
	}
	rep.Results = append(rep.Results, coldOpenResult{
		Name:            "open/eager",
		Millis:          float64(eagerDur.Nanoseconds()) / 1e6,
		ObjectsResident: eagerStats.Objects.Resident,
		ObjectsTotal:    eagerStats.Objects.Total,
	})
	if lazyDur > 0 {
		rep.OpenSpeedup = float64(eagerDur.Nanoseconds()) / float64(lazyDur.Nanoseconds())
	}

	// Steady-state paging: random reads over the full population with the
	// resident ceiling — most touches fault and trigger eviction churn.
	db, err := core.Open(coldOpts(dir, maxResident, false))
	if err != nil {
		return err
	}
	defer db.Close()
	faultBench := testing.Benchmark(func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[rng.Intn(len(ids))]
			if err := db.Atomically(func(tx *core.Tx) error {
				_, err := db.GetSys(tx, id, "salary")
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	s := db.Stats()
	rep.Results = append(rep.Results, coldOpenResult{
		Name:            "read/random-faulting",
		NsPerOp:         float64(faultBench.T.Nanoseconds()) / float64(faultBench.N),
		ObjectsResident: s.Objects.Resident,
		Faults:          s.Storage.Faults,
		Evictions:       s.Storage.Evictions,
	})

	hot := ids[:16] // fits the ceiling: steady resident hits after warmup
	hotBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Atomically(func(tx *core.Tx) error {
				_, err := db.GetSys(tx, hot[i%len(hot)], "salary")
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, coldOpenResult{
		Name:    "read/resident-hit",
		NsPerOp: float64(hotBench.T.Nanoseconds()) / float64(hotBench.N),
	})

	for _, r := range rep.Results {
		if r.Millis > 0 {
			fmt.Fprintf(os.Stderr, "%-22s %10.2f ms   resident=%d total=%d\n",
				r.Name, r.Millis, r.ObjectsResident, r.ObjectsTotal)
		} else {
			fmt.Fprintf(os.Stderr, "%-22s %10.1f ns/op faults=%d evictions=%d\n",
				r.Name, r.NsPerOp, r.Faults, r.Evictions)
		}
	}
	fmt.Fprintf(os.Stderr, "open speedup (lazy vs eager): %.1fx\n", rep.OpenSpeedup)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
