package main

// Failover suite (-json8): the price of quorum commit and the cost of
// promotion, measured on an in-process cluster — a primary plus pipe
// followers (channel transport, real replica databases applying every
// batch and acking, exactly internal/sim's failover harness shape minus
// the fault injection). Three commit-latency rows (async, K=1, K=2) share
// one topology so the only variable is how many durable acks each commit
// waits for; the promotion row measures wall-clock downtime from "primary
// lost" to the promoted follower's first accepted commit. The floors
// (enforced by bench-gate over BENCH_8.json) are K=1 commit latency
// <= 3x async and promotion downtime <= 1s.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/repl"
	"sentinel/internal/vfs"
	"sentinel/internal/wire"
)

const foSchema = `class Item reactive persistent {
	attr val int
	event end method SetVal(v int) { self.val := v }
}
bind H new Item(val: 0)`

// foFollower is one pipe follower: a replica database applying the
// primary's stream and acking every batch, the durability voter a quorum
// commit waits on.
type foFollower struct {
	db     *core.Database
	fs     *vfs.Mem
	frames chan pipeMsg
	closed chan struct{}
	wg     sync.WaitGroup
	id     uint64
}

type pipeMsg struct {
	op      byte
	payload []byte
}

func (f *foFollower) SessionID() uint64 { return f.id }

func (f *foFollower) Send(op byte, payload []byte, cancel <-chan struct{}) bool {
	select {
	case f.frames <- pipeMsg{op, payload}:
		return true
	case <-f.closed:
		return false
	case <-cancel:
		return false
	}
}

func (f *foFollower) TrySend(op byte, payload []byte) bool {
	select {
	case f.frames <- pipeMsg{op, payload}:
		return true
	case <-f.closed:
		return false
	default:
		return false
	}
}

func startFoFollower(p *repl.Primary, id uint64) (*foFollower, error) {
	fs := vfs.NewMem()
	db, err := core.Open(core.Options{
		Dir: "r", VFS: fs, Replica: true, SyncOnCommit: true, Output: io.Discard,
	})
	if err != nil {
		return nil, err
	}
	f := &foFollower{db: db, fs: fs, frames: make(chan pipeMsg, 256), closed: make(chan struct{}), id: id}
	primaryEpoch, _, needBase, err := p.AddFollower(f, db.ReplLSN(), db.ReplEpoch())
	if err != nil {
		db.Close()
		return nil, err
	}
	if !needBase && db.ReplEpoch() != primaryEpoch {
		db.SetReplEpoch(primaryEpoch)
		_ = db.Checkpoint()
	}
	f.wg.Add(1)
	go f.apply(p, primaryEpoch, needBase)
	p.StartShipper(id)
	return f, nil
}

func (f *foFollower) apply(p *repl.Primary, primaryEpoch uint64, syncing bool) {
	defer f.wg.Done()
	var base []core.ReplBaseObject
	for {
		select {
		case <-f.closed:
			return
		case m := <-f.frames:
			switch m.op {
			case wire.OpReplSnap:
				objs, err := wire.DecodeReplSnap(m.payload)
				if err != nil {
					return
				}
				for _, o := range objs {
					base = append(base, core.ReplBaseObject{ID: o.ID, Img: o.Img})
				}
			case wire.OpReplSnapEnd:
				baseLSN, _, err := wire.DecodeReplSnapEnd(m.payload)
				if err != nil {
					return
				}
				f.db.SetReplEpoch(primaryEpoch)
				if err := f.db.ApplyBaseState(baseLSN, base); err != nil {
					f.db.SetReplEpoch(0)
					return
				}
				base, syncing = nil, false
				p.Ack(f.id, f.db.ReplLSN(), f.db.ReplEpoch())
			case wire.OpReplFrames:
				wb, err := wire.DecodeReplBatch(m.payload)
				if err != nil {
					return
				}
				if syncing && wb.LSN != 0 {
					continue
				}
				if err := f.db.ApplyReplicated(repl.BatchFromWire(wb)); err != nil {
					return
				}
				if wb.LSN != 0 {
					p.Ack(f.id, f.db.ReplLSN(), f.db.ReplEpoch())
				}
			}
		}
	}
}

func (f *foFollower) stop(p *repl.Primary) {
	p.RemoveFollower(f.id)
	close(f.closed)
	f.wg.Wait()
}

type foCommitResult struct {
	SyncReplicas int    `json:"sync_replicas"`
	Followers    int    `json:"followers"`
	Commits      int    `json:"commits"`
	AvgNs        int64  `json:"avg_ns"`
	P50Ns        int64  `json:"p50_ns"`
	P95Ns        int64  `json:"p95_ns"`
	Degraded     uint64 `json:"degraded_commits"`
}

type foPromoteResult struct {
	BurstCommits int    `json:"burst_commits"`
	DowntimeNs   int64  `json:"downtime_ns"`
	PromotedLSN  uint64 `json:"promoted_lsn"`
	NewEpoch     uint64 `json:"new_epoch"`
}

type foReport struct {
	GeneratedBy      string           `json:"generated_by"`
	GoMaxProcs       int              `json:"gomaxprocs"`
	NumCPU           int              `json:"numcpu"`
	GoVersion        string           `json:"go_version"`
	Note             string           `json:"note,omitempty"`
	CommitLatency    []foCommitResult `json:"commit_latency"`
	Quorum1OverAsync float64          `json:"quorum1_over_async"`
	Quorum2OverAsync float64          `json:"quorum2_over_async"`
	Promotion        foPromoteResult  `json:"promotion"`
}

// foCommitLatency measures per-commit wall time on a primary with two
// live followers, waiting for k durable acks per commit.
func foCommitLatency(k, commits int) (foCommitResult, error) {
	res := foCommitResult{SyncReplicas: k, Followers: 2, Commits: commits}
	opts := core.Options{
		Dir: "p", VFS: vfs.NewMem(), SyncOnCommit: true, Output: io.Discard,
		SyncReplicas: k,
	}
	if k > 0 {
		opts.QuorumTimeout = 5 * time.Second
	}
	pri, err := core.Open(opts)
	if err != nil {
		return res, err
	}
	defer pri.Close()
	p := repl.NewPrimary(pri, repl.PrimaryOptions{})
	defer p.Close()
	var fs []*foFollower
	defer func() {
		for _, f := range fs {
			f.stop(p)
			f.db.Close()
		}
	}()
	for id := uint64(1); id <= 2; id++ {
		f, err := startFoFollower(p, id)
		if err != nil {
			return res, err
		}
		fs = append(fs, f)
	}
	if err := pri.Exec(foSchema); err != nil {
		return res, err
	}

	lat := make([]time.Duration, commits)
	for i := 0; i < commits; i++ {
		t0 := time.Now()
		if err := pri.Exec(fmt.Sprintf("H!SetVal(%d)", i)); err != nil {
			return res, err
		}
		lat[i] = time.Since(t0)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	res.AvgNs = total.Nanoseconds() / int64(commits)
	res.P50Ns = lat[commits/2].Nanoseconds()
	res.P95Ns = lat[commits*95/100].Nanoseconds()
	res.Degraded = pri.Stats().Replication.QuorumDegraded
	return res, nil
}

// foPromotion builds a primary + one follower, commits a burst, kills the
// primary, and measures wall-clock downtime until the promoted follower
// accepts its first write.
func foPromotion(burst int) (foPromoteResult, error) {
	res := foPromoteResult{BurstCommits: burst}
	pri, err := core.Open(core.Options{
		Dir: "p", VFS: vfs.NewMem(), SyncOnCommit: true, Output: io.Discard,
		SyncReplicas: 1, QuorumTimeout: 5 * time.Second,
	})
	if err != nil {
		return res, err
	}
	p := repl.NewPrimary(pri, repl.PrimaryOptions{})
	f, err := startFoFollower(p, 1)
	if err != nil {
		return res, err
	}
	if err := pri.Exec(foSchema); err != nil {
		return res, err
	}
	for i := 0; i < burst; i++ {
		if err := pri.Exec(fmt.Sprintf("H!SetVal(%d)", i)); err != nil {
			return res, err
		}
	}
	target := pri.ReplLSN()

	// Primary loss: the clock starts here and stops at the first commit
	// the new primary accepts — seal, reopen (recovery over the replica's
	// WAL), epoch bump, first write.
	t0 := time.Now()
	p.RemoveFollower(f.id)
	close(f.closed)
	f.wg.Wait()
	p.Close()
	pri.CloseAbrupt()

	if f.db.ReplLSN() != target {
		return res, fmt.Errorf("follower at LSN %d, primary shipped %d", f.db.ReplLSN(), target)
	}
	if err := f.db.Close(); err != nil {
		return res, err
	}
	db2, err := core.Open(core.Options{
		Dir: "r", VFS: f.fs, SyncOnCommit: true, Output: io.Discard,
		SyncReplicas: 1, QuorumTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer db2.Close()
	p2 := repl.NewPrimary(db2, repl.PrimaryOptions{})
	defer p2.Close()
	if err := db2.Exec("H!SetVal(999999)"); err != nil {
		return res, err
	}
	res.DowntimeNs = time.Since(t0).Nanoseconds()
	res.PromotedLSN = target
	res.NewEpoch = db2.ReplEpoch()
	return res, nil
}

// runFailoverBench runs the suite and writes the BENCH_8 report.
func runFailoverBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	commits, burst := 3000, 500
	if quick {
		commits, burst = 300, 60
	}

	var report foReport
	report.GeneratedBy = "sentinel-bench -json8"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.GoVersion = runtime.Version()
	report.Note = fmt.Sprintf(
		"in-process cluster (channel transport, real replica databases applying + acking), %d commits per latency row over identical 2-follower topologies, promotion downtime = primary loss to first accepted commit after a %d-commit burst; see DESIGN.md 4i",
		commits, burst)

	for _, k := range []int{0, 1, 2} {
		r, err := foCommitLatency(k, commits)
		if err != nil {
			return fmt.Errorf("commit latency K=%d: %w", k, err)
		}
		report.CommitLatency = append(report.CommitLatency, r)
		fmt.Printf("  commit K=%d: p50 %8.1fus  p95 %8.1fus  avg %8.1fus  (%d commits, %d degraded)\n",
			k, float64(r.P50Ns)/1e3, float64(r.P95Ns)/1e3, float64(r.AvgNs)/1e3, r.Commits, r.Degraded)
	}
	report.Quorum1OverAsync = float64(report.CommitLatency[1].P50Ns) / float64(report.CommitLatency[0].P50Ns)
	report.Quorum2OverAsync = float64(report.CommitLatency[2].P50Ns) / float64(report.CommitLatency[0].P50Ns)

	pr, err := foPromotion(burst)
	if err != nil {
		return fmt.Errorf("promotion: %w", err)
	}
	report.Promotion = pr
	fmt.Printf("  promotion: %0.1fms downtime (LSN %d, epoch %d)\n",
		float64(pr.DowntimeNs)/1e6, pr.PromotedLSN, pr.NewEpoch)

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}
