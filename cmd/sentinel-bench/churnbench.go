package main

// Rule-churn suite (-json9): sustained raise throughput while the rule
// catalog churns under live traffic — the blast-radius invalidation
// headline. One reactive class, a few thousand hot instances each carrying
// 16 instance subscriptions (mostly-disabled rules: Notify rejects them in
// nanoseconds, so a cache HIT is cheap while a cache MISS pays the full
// re-resolution — subscription walk, dedup map, slice allocation), and a
// paced churner applying 100 catalog mutations/s (enable/disable flips and
// subscribe/unsubscribe on a dedicated object, both with tiny blast
// radii). Three modes, fresh database each:
//
//   selective   churn on, dependency-tracked invalidation (the shipped path)
//   global      churn on, GlobalConsumerInvalidation — every mutation
//               stales the whole cache, the pre-selective baseline: each
//               churn event forces a miss storm across the hot set
//   nochurn     churn off, selective — the ceiling
//
// The gated floors (dev/bench/thresholds.json over BENCH_9.json):
// selective ≥ 5x global, and selective within 1.3x of nochurn.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

type churnModeResult struct {
	Mode          string  `json:"mode"`
	Raises        uint64  `json:"raises"`
	DurationNs    int64   `json:"duration_ns"`
	RaisesPerSec  float64 `json:"raises_per_sec"`
	ChurnEvents   uint64  `json:"churn_events"`
	ChurnPerSec   float64 `json:"churn_per_sec"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	Invalidations uint64  `json:"cache_invalidations"`
}

type churnReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Note        string `json:"note"`

	Rules         int `json:"rules"`
	Objects       int `json:"objects"`
	SubsPerObject int `json:"subs_per_object"`
	ChurnTarget   int `json:"churn_target_per_sec"`

	Modes []churnModeResult `json:"modes"`

	SelectiveOverGlobal float64 `json:"selective_over_global"`
	ChurnOverNochurn    float64 `json:"churn_over_nochurn"`
}

// churnBenchDB builds the steady-state catalog: nObjs instances of one
// reactive class, nRules disabled instance-level rules spread across them
// (subsPer per object, round-robin), one disabled class-level flip rule
// and one disabled subscribe-target rule for the churner, plus one spare
// object the subscription churn runs against. global selects the
// whole-cache reference invalidation mode.
func churnBenchDB(nObjs, nRules, subsPer int, global bool) (*core.Database, []oid.OID, oid.OID, error) {
	db, err := core.Open(core.Options{Output: io.Discard, GlobalConsumerInvalidation: global})
	if err != nil {
		return nil, nil, 0, err
	}
	cls := schema.NewClass("Hot")
	cls.Classification = schema.ReactiveClass
	cls.Attr("x", value.TypeFloat)
	cls.AddMethod(&schema.Method{
		Name:       "Set",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("x", ctx.Arg(0))
		},
	})
	if err := db.RegisterClass(cls); err != nil {
		db.Close()
		return nil, nil, 0, err
	}

	objs := make([]oid.OID, nObjs)
	var churnObj oid.OID
	const objBatch = 500
	for lo := 0; lo < nObjs; lo += objBatch {
		hi := lo + objBatch
		if hi > nObjs {
			hi = nObjs
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				var err error
				if objs[i], err = db.NewObject(tx, "Hot", nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, nil, 0, err
		}
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		churnObj, err = db.NewObject(tx, "Hot", nil)
		return err
	}); err != nil {
		db.Close()
		return nil, nil, 0, err
	}

	falseCond := func(rule.ExecContext, event.Detection) (bool, error) { return false, nil }
	const ruleBatch = 100
	for lo := 0; lo < nRules; lo += ruleBatch {
		hi := lo + ruleBatch
		if hi > nRules {
			hi = nRules
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				name := fmt.Sprintf("r%d", i)
				if _, err := db.CreateRule(tx, core.RuleSpec{
					Name: name, Event: event.Primitive(event.Explicit, "Hot", "Ping"), Condition: falseCond,
				}); err != nil {
					return err
				}
				if err := db.DisableRule(tx, name); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, nil, 0, err
		}
	}
	// The churner's two rules: a class-level flip target and an
	// instance-subscription target.
	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.CreateRule(tx, core.RuleSpec{
			Name: "flip", Event: event.Primitive(event.Explicit, "Hot", "Pong"), ClassLevel: "Hot", Condition: falseCond,
		}); err != nil {
			return err
		}
		if err := db.DisableRule(tx, "flip"); err != nil {
			return err
		}
		if _, err := db.CreateRule(tx, core.RuleSpec{
			Name: "subtgt", Event: event.Primitive(event.Explicit, "Hot", "Pong"), Condition: falseCond,
		}); err != nil {
			return err
		}
		return db.DisableRule(tx, "subtgt")
	}); err != nil {
		db.Close()
		return nil, nil, 0, err
	}

	// Instance subscriptions: object i watches rules i*subsPer..+subsPer
	// mod nRules — a miss re-resolves subsPer rule OIDs through the dedup
	// path.
	for lo := 0; lo < nObjs; lo += objBatch {
		hi := lo + objBatch
		if hi > nObjs {
			hi = nObjs
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				for k := 0; k < subsPer; k++ {
					if err := db.SubscribeRule(tx, fmt.Sprintf("r%d", (i*subsPer+k)%nRules), objs[i]); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, nil, 0, err
		}
	}
	return db, objs, churnObj, nil
}

// churnBenchMode measures sustained raise throughput for one mode. The
// sender batches sends round-robin over the hot set; the churner (when
// churning) applies one catalog mutation every churnInterval, alternating
// an enable/disable flip of the class-level rule with a subscribe/
// unsubscribe of the target rule on the dedicated object.
func churnBenchMode(mode string, nObjs, nRules, subsPer int, churn bool, global bool, measure time.Duration, churnInterval time.Duration) (churnModeResult, error) {
	res := churnModeResult{Mode: mode}
	db, objs, churnObj, err := churnBenchDB(nObjs, nRules, subsPer, global)
	if err != nil {
		return res, err
	}
	defer db.Close()

	// Warm every entry.
	const batch = 128
	for lo := 0; lo < nObjs; lo += batch {
		hi := lo + batch
		if hi > nObjs {
			hi = nObjs
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				if err := db.RaiseExplicit(tx, objs[i], "Ping"); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return res, err
		}
	}

	before := db.Stats().Rules
	stop := make(chan struct{})
	churnDone := make(chan uint64, 1)
	if churn {
		go func() {
			var events uint64
			tick := time.NewTicker(churnInterval)
			defer tick.Stop()
			enabled, subscribed := false, false
			for i := 0; ; i++ {
				select {
				case <-stop:
					churnDone <- events
					return
				case <-tick.C:
				}
				var err error
				if i%2 == 0 {
					err = db.Atomically(func(tx *core.Tx) error {
						if enabled {
							return db.DisableRule(tx, "flip")
						}
						return db.EnableRule(tx, "flip")
					})
					enabled = !enabled
				} else {
					err = db.Atomically(func(tx *core.Tx) error {
						r := db.LookupRule("subtgt")
						if subscribed {
							return db.Unsubscribe(tx, churnObj, r.ID())
						}
						return db.Subscribe(tx, churnObj, r.ID())
					})
					subscribed = !subscribed
				}
				if err == nil {
					events++
				}
			}
		}()
	} else {
		churnDone <- 0
		close(churnDone)
	}

	var raises uint64
	start := time.Now()
	deadline := start.Add(measure)
	idx := 0
	for time.Now().Before(deadline) {
		if err := db.Atomically(func(tx *core.Tx) error {
			for j := 0; j < batch; j++ {
				if err := db.RaiseExplicit(tx, objs[idx%nObjs], "Ping"); err != nil {
					return err
				}
				idx++
			}
			return nil
		}); err != nil {
			close(stop)
			return res, err
		}
		raises += batch
	}
	elapsed := time.Since(start)
	if churn {
		close(stop)
	}
	res.ChurnEvents = <-churnDone

	after := db.Stats().Rules
	res.Raises = raises
	res.DurationNs = elapsed.Nanoseconds()
	res.RaisesPerSec = float64(raises) / elapsed.Seconds()
	res.ChurnPerSec = float64(res.ChurnEvents) / elapsed.Seconds()
	res.CacheHits = after.CacheHits - before.CacheHits
	res.CacheMisses = after.CacheMisses - before.CacheMisses
	res.Invalidations = after.CacheInvalidations - before.CacheInvalidations
	return res, nil
}

func runChurnBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	nObjs, nRules, subsPer := 1500, 1000, 256
	measure := 2 * time.Second
	churnInterval := 10 * time.Millisecond // 100 events/s
	if quick {
		nObjs, nRules, subsPer = 400, 100, 64
		measure = 250 * time.Millisecond
	}

	var report churnReport
	report.GeneratedBy = "sentinel-bench -json9"
	report.GoVersion = runtime.Version()
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.Rules = nRules + 2
	report.Objects = nObjs
	report.SubsPerObject = subsPer
	report.ChurnTarget = int(time.Second / churnInterval)
	report.Note = fmt.Sprintf(
		"%d hot objects x %d instance subscriptions to disabled rules (%d rules total), one sender batching %d-send transactions round-robin, churner pacing one catalog mutation per %v (enable/disable flip alternating with subscribe/unsubscribe on a dedicated object); selective vs GlobalConsumerInvalidation vs churn-off; see DESIGN.md 4j",
		nObjs, subsPer, nRules+2, 128, churnInterval)

	for _, m := range []struct {
		name          string
		churn, global bool
	}{
		{"selective", true, false},
		{"global", true, true},
		{"nochurn", false, false},
	} {
		r, err := churnBenchMode(m.name, nObjs, nRules, subsPer, m.churn, m.global, measure, churnInterval)
		if err != nil {
			return fmt.Errorf("churn mode %s: %w", m.name, err)
		}
		report.Modes = append(report.Modes, r)
		fmt.Printf("  %-9s %10.0f raises/s  (%d churn events, %d hits, %d misses, %d invalidations)\n",
			m.name, r.RaisesPerSec, r.ChurnEvents, r.CacheHits, r.CacheMisses, r.Invalidations)
	}
	report.SelectiveOverGlobal = report.Modes[0].RaisesPerSec / report.Modes[1].RaisesPerSec
	report.ChurnOverNochurn = report.Modes[2].RaisesPerSec / report.Modes[0].RaisesPerSec
	fmt.Printf("  selective/global %.2fx, nochurn/selective %.2fx\n",
		report.SelectiveOverGlobal, report.ChurnOverNochurn)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
