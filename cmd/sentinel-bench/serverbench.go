package main

// Networked-server suite (-json6): measures the wire protocol and session
// layer this PR adds, end to end over real TCP loopback. Three axes:
//
//   - idle-subscription footprint: N sessions each holding one push
//     subscription, measured as goroutines and resident bytes per session
//     on the server side. The clients live in a re-exec'd subprocess so
//     (a) their own buffers and goroutines don't pollute the server-side
//     measurement and (b) each process stays under the host's file
//     descriptor ceiling (this container caps the hard limit at 20000,
//     which is why the 100k stretch target cannot be demonstrated here —
//     10k server conns + 10k client conns already meets it exactly).
//   - pipelined command throughput: one session issuing OpGet with 1, 8
//     and 64 requests in flight; depth 64 is the acceptance number.
//   - push fan-out latency: 1k subscribers on one object, p50/p99 from
//     commit start to client receipt, every subscriber confirmed per
//     commit so drops cannot flatter the tail.
//
// Acceptance gates (ISSUE 7) are enforced in full mode: >= 50k cmd/s at
// depth 64, >= 10k idle sessions at <= 2 goroutines per session.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/server"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

const srvSchema = `
class Item reactive {
	attr val int;
	event end method SetVal(v int) { self.val := v }
}
bind A new Item(val: 1);
`

type srvIdleResult struct {
	Sessions             int     `json:"sessions"`
	GoroutineDelta       int     `json:"goroutine_delta"`
	GoroutinesPerSession float64 `json:"goroutines_per_session"`
	BytesDelta           int64   `json:"bytes_delta"` // heap alloc + stack in-use
	BytesPerSession      float64 `json:"bytes_per_session"`
	SpinupNs             int64   `json:"spinup_ns"` // dial+subscribe for all sessions
}

type srvPipelineResult struct {
	InFlight   int     `json:"in_flight"`
	Cmds       int     `json:"cmds"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	CmdsPerSec float64 `json:"cmds_per_sec"`
	NsPerCmd   float64 `json:"ns_per_cmd"`
}

type srvFanoutResult struct {
	Subscribers int   `json:"subscribers"`
	Commits     int   `json:"commits"`
	Samples     int   `json:"samples"`
	P50Ns       int64 `json:"p50_ns"`
	P99Ns       int64 `json:"p99_ns"`
	MaxNs       int64 `json:"max_ns"`
	Drops       int64 `json:"push_drops"` // must be 0: every push confirmed
}

type srvReport struct {
	GeneratedBy string              `json:"generated_by"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	NumCPU      int                 `json:"num_cpu"`
	GoVersion   string              `json:"go_version"`
	Note        string              `json:"note"`
	Idle        srvIdleResult       `json:"idle"`
	Pipeline    []srvPipelineResult `json:"pipeline"`
	Fanout      srvFanoutResult     `json:"fanout"`
}

// srvOpen starts an in-memory database plus a server on an ephemeral port.
func srvOpen(queueLen int) (*core.Database, *server.Server, error) {
	db, err := core.Open(core.Options{Output: io.Discard})
	if err != nil {
		return nil, nil, err
	}
	if err := db.Exec(srvSchema); err != nil {
		db.Close()
		return nil, nil, err
	}
	srv, err := server.New(db, server.Options{Addr: "127.0.0.1:0", QueueLen: queueLen})
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, srv, nil
}

// runIdleClient is the re-exec'd subprocess body: it opens n sessions each
// subscribed to A, prints "ready", and holds them until stdin closes.
func runIdleClient(addr string, n int) error {
	clients := make([]*client.Client, 0, n)
	var target oid.OID
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	sem := make(chan struct{}, 64) // dial pacing: don't overrun the accept backlog

	// Resolve the target once; the OID is stable across sessions.
	c0, err := client.Dial(context.Background(), addr)
	if err != nil {
		return err
	}
	id, ok, err := c0.Lookup(context.Background(), "A")
	if err != nil || !ok {
		return fmt.Errorf("lookup A: ok=%v err=%v", ok, err)
	}
	target = id
	if _, err := c0.Subscribe(context.Background(), target, "", wire.MomentAny, func(wire.Event) {}); err != nil {
		return err
	}
	clients = append(clients, c0)

	for i := 1; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c, err := client.Dial(context.Background(), addr)
			if err == nil {
				_, err = c.Subscribe(context.Background(), target, "", wire.MomentAny, func(wire.Event) {})
			}
			if err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
			mu.Lock()
			clients = append(clients, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Println("ready")
	io.Copy(io.Discard, os.Stdin) // hold sessions until the parent is done measuring
	for _, c := range clients {
		c.Close()
	}
	return nil
}

// runSrvIdle measures the server-side footprint of n idle subscribed
// sessions, with the clients isolated in a subprocess.
func runSrvIdle(n int) (srvIdleResult, error) {
	db, srv, err := srvOpen(0)
	if err != nil {
		return srvIdleResult{}, err
	}
	defer db.Close()
	defer srv.Close()

	memBaseline := func() (int, int64) {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return runtime.NumGoroutine(), int64(m.HeapAlloc) + int64(m.StackInuse)
	}
	g0, b0 := memBaseline()

	cmd := exec.Command(os.Args[0], "-idle-client", srv.Addr(), "-idle-sessions", strconv.Itoa(n))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return srvIdleResult{}, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return srvIdleResult{}, err
	}
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return srvIdleResult{}, fmt.Errorf("re-exec %s: %w", os.Args[0], err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() || sc.Text() != "ready" {
		stdin.Close()
		cmd.Wait()
		return srvIdleResult{}, fmt.Errorf("idle-client subprocess never became ready (got %q)", sc.Text())
	}
	spinup := time.Since(start)

	deadline := time.Now().Add(30 * time.Second)
	for srv.Sessions() != n || db.SinkSubscriptions() != n {
		if time.Now().After(deadline) {
			stdin.Close()
			cmd.Wait()
			return srvIdleResult{}, fmt.Errorf("server sees %d sessions / %d subs, want %d", srv.Sessions(), db.SinkSubscriptions(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	g1, b1 := memBaseline()

	stdin.Close()
	if err := cmd.Wait(); err != nil {
		return srvIdleResult{}, fmt.Errorf("idle-client subprocess: %w", err)
	}
	res := srvIdleResult{
		Sessions:             n,
		GoroutineDelta:       g1 - g0,
		GoroutinesPerSession: float64(g1-g0) / float64(n),
		BytesDelta:           b1 - b0,
		BytesPerSession:      float64(b1-b0) / float64(n),
		SpinupNs:             spinup.Nanoseconds(),
	}
	return res, nil
}

// runSrvPipeline measures OpGet throughput on one session at a fixed
// number of requests in flight.
func runSrvPipeline(depth, cmds int) (srvPipelineResult, error) {
	db, srv, err := srvOpen(0)
	if err != nil {
		return srvPipelineResult{}, err
	}
	defer db.Close()
	defer srv.Close()
	c, err := client.Dial(context.Background(), srv.Addr())
	if err != nil {
		return srvPipelineResult{}, err
	}
	defer c.Close()
	id, ok, err := c.Lookup(context.Background(), "A")
	if err != nil || !ok {
		return srvPipelineResult{}, fmt.Errorf("lookup A: ok=%v err=%v", ok, err)
	}

	window := make([]*client.Call, 0, depth)
	start := time.Now()
	for i := 0; i < cmds; i++ {
		if len(window) == depth {
			if _, err := c.GetCall(context.Background(), window[0]); err != nil {
				return srvPipelineResult{}, err
			}
			window = window[1:]
		}
		window = append(window, c.GoGet(context.Background(), id, "val"))
	}
	for _, call := range window {
		if _, err := c.GetCall(context.Background(), call); err != nil {
			return srvPipelineResult{}, err
		}
	}
	elapsed := time.Since(start)
	return srvPipelineResult{
		InFlight:   depth,
		Cmds:       cmds,
		ElapsedNs:  elapsed.Nanoseconds(),
		CmdsPerSec: float64(cmds) / elapsed.Seconds(),
		NsPerCmd:   float64(elapsed.Nanoseconds()) / float64(cmds),
	}, nil
}

// runSrvFanout measures push latency from commit start to client receipt
// with subs subscribers on one object. Each commit waits for every
// subscriber's confirmation before the next, so the tail is honest.
func runSrvFanout(subs, commits int) (srvFanoutResult, error) {
	// Queue length 0 takes the server default (128); one in-flight event
	// per session means overflow is impossible and drops must stay 0.
	db, srv, err := srvOpen(0)
	if err != nil {
		return srvFanoutResult{}, err
	}
	defer db.Close()
	defer srv.Close()

	var (
		commitStart atomic.Int64 // UnixNano of the in-flight commit
		received    atomic.Int64
		samplesMu   sync.Mutex
		samples     = make([]int64, 0, subs*commits)
	)
	handler := func(wire.Event) {
		d := time.Now().UnixNano() - commitStart.Load()
		samplesMu.Lock()
		samples = append(samples, d)
		samplesMu.Unlock()
		received.Add(1)
	}

	clients := make([]*client.Client, subs)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	var target oid.OID
	for i := range clients {
		c, err := client.Dial(context.Background(), srv.Addr())
		if err != nil {
			return srvFanoutResult{}, err
		}
		clients[i] = c
		if i == 0 {
			id, ok, err := c.Lookup(context.Background(), "A")
			if err != nil || !ok {
				return srvFanoutResult{}, fmt.Errorf("lookup A: ok=%v err=%v", ok, err)
			}
			target = id
		}
		if _, err := c.Subscribe(context.Background(), target, "", wire.MomentAny, func(ev wire.Event) { handler(ev) }); err != nil {
			return srvFanoutResult{}, err
		}
	}

	for i := 0; i < commits; i++ {
		want := int64((i + 1) * subs)
		commitStart.Store(time.Now().UnixNano())
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.Send(t, target, "SetVal", value.Int(int64(i)))
			return err
		}); err != nil {
			return srvFanoutResult{}, err
		}
		deadline := time.Now().Add(30 * time.Second)
		for received.Load() != want {
			if time.Now().After(deadline) {
				return srvFanoutResult{}, fmt.Errorf("commit %d: %d/%d pushes confirmed", i, received.Load()-int64(i*subs), subs)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	drops, _ := db.Metrics().Counter("sentinel_server_push_drops_total")
	return srvFanoutResult{
		Subscribers: subs,
		Commits:     commits,
		Samples:     len(samples),
		P50Ns:       pct(0.50),
		P99Ns:       pct(0.99),
		MaxNs:       samples[len(samples)-1],
		Drops:       int64(drops),
	}, nil
}

// runServerBench runs the full suite, enforces the acceptance gates in
// full mode, and writes the JSON report.
func runServerBench(path string, quick bool) error {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	idleSessions := 10000
	pipelineCmds := 60000
	fanSubs, fanCommits := 1000, 40
	if quick {
		idleSessions = 500
		pipelineCmds = 6000
		fanSubs, fanCommits = 100, 10
	}

	var report srvReport
	report.GeneratedBy = "sentinel-bench -json6"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.NumCPU = runtime.NumCPU()
	report.GoVersion = runtime.Version()
	report.Note = fmt.Sprintf(
		"TCP loopback, in-memory store: %d idle subscribed sessions (clients re-exec'd into a subprocess; the host's 20000-fd hard cap is why the 100k stretch is out of reach here), OpGet pipelining at depth 1/8/64, push fan-out to %d subscribers with every delivery confirmed; see EXPERIMENTS.md P17",
		idleSessions, fanSubs)

	idle, err := runSrvIdle(idleSessions)
	if err != nil {
		return fmt.Errorf("idle sessions: %w", err)
	}
	report.Idle = idle
	fmt.Printf("  idle: %d sessions, %.2f goroutines/session, %.0f bytes/session (spinup %v)\n",
		idle.Sessions, idle.GoroutinesPerSession, idle.BytesPerSession,
		time.Duration(idle.SpinupNs).Round(time.Millisecond))

	for _, depth := range []int{1, 8, 64} {
		r, err := runSrvPipeline(depth, pipelineCmds)
		if err != nil {
			return fmt.Errorf("pipeline depth %d: %w", depth, err)
		}
		report.Pipeline = append(report.Pipeline, r)
		fmt.Printf("  pipeline depth %-2d: %8.0f cmd/s (%.1fus/cmd)\n", depth, r.CmdsPerSec, r.NsPerCmd/1e3)
	}

	fan, err := runSrvFanout(fanSubs, fanCommits)
	if err != nil {
		return fmt.Errorf("fan-out: %w", err)
	}
	report.Fanout = fan
	fmt.Printf("  fan-out %d subs: p50 %v p99 %v max %v (%d samples, %d drops)\n",
		fan.Subscribers, time.Duration(fan.P50Ns), time.Duration(fan.P99Ns),
		time.Duration(fan.MaxNs), fan.Samples, fan.Drops)

	// Acceptance gates (ISSUE 7): only in full mode — quick mode exists to
	// catch harness bit-rot in CI, not to certify performance.
	if !quick {
		if report.Idle.Sessions < 10000 {
			return fmt.Errorf("idle sessions %d below the 10k floor", report.Idle.Sessions)
		}
		if report.Idle.GoroutinesPerSession > 2.0 {
			return fmt.Errorf("%.2f goroutines per idle session exceeds the 2.0 budget", report.Idle.GoroutinesPerSession)
		}
		deep := report.Pipeline[len(report.Pipeline)-1]
		if deep.CmdsPerSec < 50000 {
			return fmt.Errorf("depth-%d throughput %.0f cmd/s below the 50k target", deep.InFlight, deep.CmdsPerSec)
		}
	}
	if fan.Drops != 0 {
		return fmt.Errorf("%d pushes dropped during fan-out; the measurement must confirm every delivery", fan.Drops)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
