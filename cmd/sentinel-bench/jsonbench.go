package main

// JSON benchmark mode (-json): machine-readable measurements of the
// event-propagation fast path, for tracking regressions across commits.
// The suite mirrors the raise-path rows of P1/P2/P8 in bench_test.go plus
// the parallel-send benchmarks, runs them through testing.Benchmark with
// allocation reporting, and writes one JSON document. An optional
// -baseline file (a previous run, or a hand-recorded snapshot) is embedded
// verbatim so before/after lives in a single artifact.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchReport struct {
	GeneratedBy string          `json:"generated_by"`
	Commit      string          `json:"commit,omitempty"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	GoVersion   string          `json:"go_version"`
	Note        string          `json:"note,omitempty"`
	Results     []benchResult   `json:"results"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
}

func jsonNoCond(rule.ExecContext, event.Detection) (bool, error) { return false, nil }

// marketWithRules builds a quiet market database with n watcher rules
// subscribed round-robin over the stocks (the P1 "sentinel" shape).
func marketWithRules(stocks, n int) (*core.Database, *bench.Market) {
	return marketWithRulesOpts(stocks, n, core.Options{Output: io.Discard})
}

// marketWithRulesOpts is marketWithRules with explicit database options
// (the -json3 overhead suite varies the observability configuration).
func marketWithRulesOpts(stocks, n int, opts core.Options) (*core.Database, *bench.Market) {
	db := core.MustOpen(opts)
	if err := bench.InstallMarketSchema(db); err != nil {
		panic(err)
	}
	m, err := bench.BuildMarket(db, stocks, 0)
	if err != nil {
		panic(err)
	}
	if err := db.Atomically(func(t *core.Tx) error {
		for i := 0; i < n; i++ {
			r, err := db.CreateRule(t, core.RuleSpec{
				Name:      fmt.Sprintf("w%d", i),
				EventSrc:  "end Stock::SetPrice(float p)",
				Condition: jsonNoCond,
			})
			if err != nil {
				return err
			}
			if err := db.Subscribe(t, m.Stocks[i%stocks], r.ID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}
	return db, m
}

// jsonBenchSuite enumerates the fast-path benchmarks measured in -json mode.
func jsonBenchSuite() []struct {
	name string
	fn   func(*testing.B)
} {
	sendLoop := func(rules int) func(*testing.B) {
		return func(b *testing.B) {
			db, m := marketWithRules(100, rules)
			tx := db.Begin()
			defer db.Abort(tx)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, m.Stocks[0], "SetPrice", value.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	parallelLoop := func(stocks int, perGoroutine bool) func(*testing.B) {
		return func(b *testing.B) {
			db, m := marketWithRules(stocks, 0)
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.CreateRule(t, core.RuleSpec{
					Name: "watch", EventSrc: "end Stock::SetPrice(float p)",
					Condition: jsonNoCond, ClassLevel: "Stock",
				})
				return err
			}); err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := m.Stocks[int(next.Add(1)-1)%stocks]
				for pb.Next() {
					if !perGoroutine {
						id = m.Stocks[int(next.Add(1)-1)%stocks]
					}
					if err := db.Atomically(func(t *core.Tx) error {
						_, err := db.Send(t, id, "SetPrice", value.Float(1))
						return err
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	return []struct {
		name string
		fn   func(*testing.B)
	}{
		{"raise/rules=10", sendLoop(10)},
		{"raise/rules=100", sendLoop(100)},
		{"raise/rules=1000", sendLoop(1000)},
		{"raise/no-consumers", func(b *testing.B) {
			db, m := marketWithRules(1, 0)
			tx := db.Begin()
			defer db.Abort(tx)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, m.Stocks[0], "SetPrice", value.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"parallel/disjoint", parallelLoop(512, true)},
		{"parallel/shared", parallelLoop(8, false)},
	}
}

// runJSONBench executes the suite and writes the report to path.
func runJSONBench(path, baselinePath string) error {
	rep := benchReport{
		GeneratedBy: "sentinel-bench -json",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s: not valid JSON", baselinePath)
		}
		rep.Baseline = json.RawMessage(raw)
	}
	for _, bm := range jsonBenchSuite() {
		r := testing.Benchmark(bm.fn)
		rep.Results = append(rep.Results, benchResult{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %8d B/op %6d allocs/op\n",
			bm.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
