package main

// Longitudinal regression tracking. Every passing bench-gate run appends
// one line to dev/bench/history.jsonl recording the gated metric values
// keyed by (report, path), stamped with the repo commit. Before appending,
// the current values are compared against the trailing median of the
// recorded history: a min-gated metric more than 20% below the median, or
// a max-gated one more than 20% above it, fails the gate even when the
// absolute floor still passes — catching the slow-boil regression where
// each PR stays just above the floor while the trend decays.
//
// The history compares checked-in artifacts across commits, not live
// measurements, so it is machine-independent: an entry only changes when a
// PR regenerates a BENCH_*.json. CI appends to a working-tree copy that is
// simply discarded; the committed history grows when a developer runs
// `make bench-gate` locally and commits the new line with the artifacts.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"
	"time"
)

// historyEntry is one line of history.jsonl: the gated values of every
// report at one commit.
type historyEntry struct {
	Commit  string                        `json:"commit"`
	Date    string                        `json:"date"`
	Metrics map[string]map[string]float64 `json:"metrics"` // report → path → value
}

// regressionTolerance is the fraction a gated metric may drift from the
// trailing median in its bad direction before the gate fails.
const regressionTolerance = 0.20

// historyWindow bounds how many trailing entries feed the median.
const historyWindow = 5

func loadHistory(path string) ([]historyEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var entries []historyEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e historyEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// trailingMedian returns the median of the metric's values over the last
// historyWindow entries that recorded it, and whether any were found.
func trailingMedian(hist []historyEntry, report, path string) (float64, bool) {
	var vals []float64
	for i := len(hist) - 1; i >= 0 && len(vals) < historyWindow; i-- {
		if m, ok := hist[i].Metrics[report]; ok {
			if v, ok := m[path]; ok {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], true
	}
	return (vals[mid-1] + vals[mid]) / 2, true
}

// checkRegressions compares the current gated values against the trailing
// medians, in the gated direction only: a min floor guards against drops,
// a max ceiling against rises. Returns the number of failures.
func checkRegressions(hist []historyEntry, thr thresholds, current map[string]map[string]float64) int {
	failures := 0
	for _, g := range thr.Gates {
		for _, c := range g.Checks {
			v, ok := current[g.Report][c.Path]
			if !ok {
				continue // resolution already failed and was reported
			}
			med, ok := trailingMedian(hist, g.Report, c.Path)
			if !ok {
				continue
			}
			if c.Min != nil && v < med*(1-regressionTolerance) {
				fmt.Printf("FAIL %s %s = %g, >%.0f%% below trailing median %g\n",
					g.Report, c.Path, v, regressionTolerance*100, med)
				failures++
			}
			if c.Max != nil && v > med*(1+regressionTolerance) {
				fmt.Printf("FAIL %s %s = %g, >%.0f%% above trailing median %g\n",
					g.Report, c.Path, v, regressionTolerance*100, med)
				failures++
			}
		}
	}
	return failures
}

// appendHistory records the current values unless the newest entry already
// carries the same commit and metrics (re-running the gate is idempotent).
func appendHistory(path string, hist []historyEntry, dir string, current map[string]map[string]float64) error {
	if n := len(hist); n > 0 && reflect.DeepEqual(hist[n-1].Metrics, current) {
		return nil
	}
	e := historyEntry{
		Commit:  gitCommit(dir),
		Date:    time.Now().UTC().Format("2006-01-02"),
		Metrics: current,
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

func gitCommit(dir string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
