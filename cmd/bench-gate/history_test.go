package main

import (
	"os"
	"path/filepath"
	"testing"
)

func fp(v float64) *float64 { return &v }

func histFixture(vals ...float64) []historyEntry {
	var hist []historyEntry
	for _, v := range vals {
		hist = append(hist, historyEntry{
			Commit:  "c",
			Date:    "2026-01-01",
			Metrics: map[string]map[string]float64{"R.json": {"x": v}},
		})
	}
	return hist
}

func TestTrailingMedianWindow(t *testing.T) {
	// Eight entries; the window only sees the last five (3..7).
	hist := histFixture(100, 100, 100, 3, 4, 5, 6, 7)
	med, ok := trailingMedian(hist, "R.json", "x")
	if !ok || med != 5 {
		t.Fatalf("median = %v, %v; want 5, true", med, ok)
	}
	if _, ok := trailingMedian(hist, "R.json", "missing"); ok {
		t.Fatal("median for unrecorded metric should report not-found")
	}
	if _, ok := trailingMedian(nil, "R.json", "x"); ok {
		t.Fatal("median over empty history should report not-found")
	}
}

func TestCheckRegressionsDirectional(t *testing.T) {
	hist := histFixture(10, 10, 10)
	thrMin := thresholds{Gates: []gate{{Report: "R.json", Checks: []check{{Path: "x", Min: fp(1)}}}}}
	thrMax := thresholds{Gates: []gate{{Report: "R.json", Checks: []check{{Path: "x", Max: fp(100)}}}}}

	cur := func(v float64) map[string]map[string]float64 {
		return map[string]map[string]float64{"R.json": {"x": v}}
	}
	// Min-gated: a drop past 20% fails; a rise never does.
	if n := checkRegressions(hist, thrMin, cur(7.9)); n != 1 {
		t.Fatalf("min-gated drop to 7.9 vs median 10: %d failures, want 1", n)
	}
	if n := checkRegressions(hist, thrMin, cur(8.1)); n != 0 {
		t.Fatalf("min-gated 8.1 is within tolerance: %d failures, want 0", n)
	}
	if n := checkRegressions(hist, thrMin, cur(1000)); n != 0 {
		t.Fatalf("min-gated rise must not fail: %d failures, want 0", n)
	}
	// Max-gated: mirror image.
	if n := checkRegressions(hist, thrMax, cur(12.1)); n != 1 {
		t.Fatalf("max-gated rise to 12.1 vs median 10: %d failures, want 1", n)
	}
	if n := checkRegressions(hist, thrMax, cur(0.1)); n != 0 {
		t.Fatalf("max-gated drop must not fail: %d failures, want 0", n)
	}
	// No history: dormant.
	if n := checkRegressions(nil, thrMin, cur(0.0001)); n != 0 {
		t.Fatalf("empty history must not fail: %d failures, want 0", n)
	}
}

func TestAppendHistoryIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.jsonl")
	cur := map[string]map[string]float64{"R.json": {"x": 10}}

	if err := appendHistory(path, nil, dir, cur); err != nil {
		t.Fatal(err)
	}
	hist, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Fatalf("after first append: %d entries, want 1", len(hist))
	}
	// Same metrics again: no new line.
	if err := appendHistory(path, hist, dir, cur); err != nil {
		t.Fatal(err)
	}
	hist, err = loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Fatalf("identical re-append grew history to %d entries", len(hist))
	}
	// Changed metrics: appended.
	cur2 := map[string]map[string]float64{"R.json": {"x": 11}}
	if err := appendHistory(path, hist, dir, cur2); err != nil {
		t.Fatal(err)
	}
	hist, err = loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[1].Metrics["R.json"]["x"] != 11 {
		t.Fatalf("changed metrics not appended: %+v", hist)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadHistoryMissingFile(t *testing.T) {
	hist, err := loadHistory(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || hist != nil {
		t.Fatalf("missing file: hist=%v err=%v; want nil, nil", hist, err)
	}
}
