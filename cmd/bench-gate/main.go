// Command bench-gate enforces performance floors over the checked-in
// benchmark artifacts. It reads a thresholds file describing numeric
// bounds on JSON paths inside each report and exits non-zero when any
// bound is violated, so a PR that regenerates a BENCH_*.json with a
// regression fails CI instead of silently shipping the slower numbers.
//
// Usage:
//
//	bench-gate [-thresholds dev/bench/thresholds.json] [-dir .]
//
// Thresholds format:
//
//	{
//	  "gates": [
//	    {
//	      "report": "BENCH_6.json",
//	      "checks": [
//	        {"path": "pipeline[2].cmds_per_sec", "min": 50000},
//	        {"path": "idle.goroutines_per_session", "max": 2.0}
//	      ]
//	    }
//	  ]
//	}
//
// A path is a dot-separated walk through the report's JSON; a segment may
// carry one or more [i] indexes into arrays.
//
// Beyond the absolute bounds, every gated value is tracked longitudinally
// in dev/bench/history.jsonl (see history.go): a value that drifts more
// than 20% in its gated direction from the trailing median of recorded
// runs fails the gate too, and each passing run appends its values as a
// new history line. -history overrides the file; -no-history disables
// both the trend check and the append.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

type check struct {
	Path string   `json:"path"`
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
}

type gate struct {
	Report string  `json:"report"`
	Checks []check `json:"checks"`
}

type thresholds struct {
	Gates []gate `json:"gates"`
}

func main() {
	thrPath := flag.String("thresholds", "dev/bench/thresholds.json", "thresholds file")
	dir := flag.String("dir", ".", "directory holding the benchmark reports")
	histPath := flag.String("history", "dev/bench/history.jsonl", "longitudinal history file")
	noHist := flag.Bool("no-history", false, "skip the trailing-median trend check and the history append")
	flag.Parse()

	data, err := os.ReadFile(*thrPath)
	if err != nil {
		fatal(err)
	}
	var thr thresholds
	if err := json.Unmarshal(data, &thr); err != nil {
		fatal(fmt.Errorf("%s: %w", *thrPath, err))
	}
	if len(thr.Gates) == 0 {
		fatal(fmt.Errorf("%s: no gates defined", *thrPath))
	}

	failures := 0
	current := map[string]map[string]float64{}
	for _, g := range thr.Gates {
		reportPath := filepath.Join(*dir, g.Report)
		raw, err := os.ReadFile(reportPath)
		if err != nil {
			fatal(err)
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			fatal(fmt.Errorf("%s: %w", reportPath, err))
		}
		vals := current[g.Report]
		if vals == nil {
			vals = map[string]float64{}
			current[g.Report] = vals
		}
		for _, c := range g.Checks {
			v, err := resolve(doc, c.Path)
			if err != nil {
				fmt.Printf("FAIL %s %s: %v\n", g.Report, c.Path, err)
				failures++
				continue
			}
			vals[c.Path] = v
			switch {
			case c.Min != nil && v < *c.Min:
				fmt.Printf("FAIL %s %s = %g, below floor %g\n", g.Report, c.Path, v, *c.Min)
				failures++
			case c.Max != nil && v > *c.Max:
				fmt.Printf("FAIL %s %s = %g, above ceiling %g\n", g.Report, c.Path, v, *c.Max)
				failures++
			default:
				fmt.Printf("ok   %s %s = %g%s\n", g.Report, c.Path, v, boundsNote(c))
			}
		}
	}
	if !*noHist {
		hist, err := loadHistory(filepath.Join(*dir, *histPath))
		if err != nil {
			fatal(err)
		}
		if n := checkRegressions(hist, thr, current); n > 0 {
			failures += n
		} else if len(hist) > 0 {
			fmt.Printf("ok   trend: no gated value >%.0f%% worse than its trailing median (%d history entries)\n",
				regressionTolerance*100, len(hist))
		}
		if failures == 0 {
			if err := appendHistory(filepath.Join(*dir, *histPath), hist, *dir, current); err != nil {
				fatal(err)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("bench-gate: %d check(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("bench-gate: all checks passed")
}

func boundsNote(c check) string {
	var parts []string
	if c.Min != nil {
		parts = append(parts, fmt.Sprintf("floor %g", *c.Min))
	}
	if c.Max != nil {
		parts = append(parts, fmt.Sprintf("ceiling %g", *c.Max))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

// resolve walks a dotted path with optional [i] indexes and returns the
// numeric leaf.
func resolve(doc any, path string) (float64, error) {
	cur := doc
	for _, seg := range strings.Split(path, ".") {
		name := seg
		var idxs []int
		for {
			open := strings.IndexByte(name, '[')
			if open < 0 {
				break
			}
			close := strings.IndexByte(name[open:], ']')
			if close < 0 {
				return 0, fmt.Errorf("malformed index in segment %q", seg)
			}
			i, err := strconv.Atoi(name[open+1 : open+close])
			if err != nil {
				return 0, fmt.Errorf("malformed index in segment %q: %v", seg, err)
			}
			idxs = append(idxs, i)
			name = name[:open] + name[open+close+1:]
		}
		if name != "" {
			obj, ok := cur.(map[string]any)
			if !ok {
				return 0, fmt.Errorf("%q is not an object", name)
			}
			cur, ok = obj[name]
			if !ok {
				return 0, fmt.Errorf("no field %q", name)
			}
		}
		for _, i := range idxs {
			arr, ok := cur.([]any)
			if !ok {
				return 0, fmt.Errorf("%q is not an array", seg)
			}
			if i < 0 || i >= len(arr) {
				return 0, fmt.Errorf("index %d out of range (len %d) in %q", i, len(arr), seg)
			}
			cur = arr[i]
		}
	}
	n, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("leaf is %T, not a number", cur)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-gate:", err)
	os.Exit(1)
}
