// Package sentinel is an active object-oriented database for Go: a
// from-scratch reproduction of the Sentinel system described in E. Anwar,
// L. Maugis and S. Chakravarthy, "A New Perspective on Rule Support for
// Object-Oriented Databases" (University of Florida, 1993).
//
// The library provides:
//
//   - A runtime object model: classes with attributes, methods, visibility,
//     and single/multiple inheritance (C3 linearization), instantiated into
//     persistent objects addressed by OID.
//   - An event interface per class: methods declared as event generators
//     raise begin-of-method and end-of-method events when invoked; method
//     bodies can raise explicit events.
//   - Events as first-class objects, composable with the operator hierarchy
//     (and, or, seq, plus the not/any/aperiodic/periodic extensions) and
//     parameter contexts.
//   - ECA rules as first-class objects with immediate/deferred/detached
//     coupling modes, priorities, pluggable conflict resolution, and
//     enable/disable — including rules that monitor other rules.
//   - The subscription mechanism: rules dynamically subscribe to the
//     reactive objects they monitor, so events spanning several objects of
//     different classes trigger a single rule, and only subscribed rules
//     are ever checked.
//   - ACID transactions (strict two-phase locking, WAL, crash recovery)
//     covering application objects, rules, events and subscriptions alike.
//   - SentinelQL, a definition language for classes, events and rules, with
//     an interpreter for conditions, actions and method bodies.
//
// # Quick start
//
//	db := sentinel.MustOpen(sentinel.Options{Dir: "mydb"})
//	defer db.Close()
//	err := db.Exec(`
//	    class Account reactive persistent {
//	        attr balance float
//	        event begin method Withdraw(amount float) {
//	            self.balance := self.balance - amount
//	        }
//	    }
//	    rule NoOverdraft on begin Account::Withdraw(float amount)
//	        if amount > self.balance then abort "insufficient funds"
//	`)
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduced evaluation.
package sentinel

import (
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/index"
	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// Database and transaction types.
type (
	// Database is a Sentinel database instance; open one with Open.
	Database = core.Database
	// Tx is a transaction; obtain one from Database.Begin or Atomically.
	Tx = core.Tx
	// Options configures Open.
	Options = core.Options
	// RuleSpec describes a rule for Database.CreateRule.
	RuleSpec = core.RuleSpec
	// AbortError is returned when a rule or method aborts the transaction.
	AbortError = core.AbortError
)

// ErrDetachedStopped is returned by Commit when a transaction's detached
// firings could not be handed to the executor pool because the database is
// closing; the transaction's writes are durable, only the firings were
// refused. Test with errors.Is.
var ErrDetachedStopped = core.ErrDetachedStopped

// Statistics and observability types. Database.Stats returns a cheap
// grouped counter Snapshot; Database.Metrics returns the full metrics
// registry (counters, gauges and latency histograms with quantiles);
// Database.SetTracer installs per-event callbacks.
type (
	// Snapshot is the grouped runtime counters from Database.Stats.
	Snapshot = core.Snapshot
	// ObjectStats counts resident and total objects.
	ObjectStats = core.ObjectStats
	// EventStats counts sends, raised occurrences, notifications and
	// composite detections.
	EventStats = core.EventStats
	// RuleStats counts defined rules, subscriptions and executions.
	RuleStats = core.RuleStats
	// DetachedStats describes the conflict-aware detached executor pool.
	DetachedStats = core.DetachedStats
	// StorageStats counts faults, evictions, checkpoints and WAL bytes.
	StorageStats = core.StorageStats
	// ReplicationStats describes the replication role and stream position.
	ReplicationStats = core.ReplicationStats

	// MetricsSnapshot is a point-in-time view of every registered counter,
	// gauge and histogram, returned by Database.Metrics.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is one latency histogram with p50/p95/p99.
	HistogramSnapshot = obs.HistogramSnapshot
	// CounterValue is one monotonic counter reading.
	CounterValue = obs.CounterValue
	// GaugeValue is one instantaneous gauge reading.
	GaugeValue = obs.GaugeValue

	// Tracer is a set of optional hooks (in the style of httptrace) invoked
	// at runtime events; install with Database.SetTracer. Any field may be
	// nil; callbacks must be fast and must not call back into the database.
	Tracer = obs.Tracer
	// OccurrenceInfo describes a raised primitive event occurrence.
	OccurrenceInfo = obs.OccurrenceInfo
	// DetectionInfo describes a recognized (composite) event.
	DetectionInfo = obs.DetectionInfo
	// RuleScheduleInfo describes a rule being queued for execution.
	RuleScheduleInfo = obs.RuleScheduleInfo
	// RuleFireInfo describes one completed rule firing with timings.
	RuleFireInfo = obs.RuleFireInfo
	// TxInfo describes a transaction lifecycle event.
	TxInfo = obs.TxInfo
	// WALInfo describes a write-ahead-log append or fsync.
	WALInfo = obs.WALInfo
	// PageInfo describes an object fault-in or eviction batch.
	PageInfo = obs.PageInfo
	// SlowRule is one entry of the slow-rule log (Database.SlowRules),
	// recorded when a firing exceeds Options.SlowRuleThreshold.
	SlowRule = obs.SlowRule
)

// Schema (meta-object) types.
type (
	// Class is a runtime class definition.
	Class = schema.Class
	// Method is a runtime method definition.
	Method = schema.Method
	// Attribute is a runtime attribute definition.
	Attribute = schema.Attribute
	// Param is a method parameter.
	Param = schema.Param
	// CallContext is the environment a method body runs in.
	CallContext = schema.CallContext
	// Visibility is public/protected/private.
	Visibility = schema.Visibility
	// EventGen marks which events a method generates (the event interface).
	EventGen = schema.EventGen
	// Classification marks classes passive/reactive/notifiable.
	Classification = schema.Classification
	// ClassRuleDecl is a class-level rule declared with a class.
	ClassRuleDecl = schema.RuleDecl
	// Registry is the schema catalog.
	Registry = schema.Registry
)

// Value and identity types.
type (
	// Value is a dynamically typed database value.
	Value = value.Value
	// Type describes attribute/parameter types.
	Type = value.Type
	// OID is an object identifier.
	OID = oid.OID
	// Object is a materialized instance (returned by introspection APIs).
	Object = object.Object
)

// Rule and event types.
type (
	// Rule is a first-class ECA rule object.
	Rule = rule.Rule
	// ExecContext is the environment rule conditions and actions run in.
	ExecContext = rule.ExecContext
	// Condition is a rule condition function.
	Condition = rule.Condition
	// Action is a rule action function.
	Action = rule.Action
	// Coupling is immediate/deferred/detached.
	Coupling = rule.Coupling
	// Event is a first-class event definition (an operator-tree node).
	Event = event.Expr
	// Occurrence is one generated primitive event.
	Occurrence = event.Occurrence
	// Detection is a recognized event instance with its constituents.
	Detection = event.Detection
	// Moment is begin/end/explicit.
	Moment = event.Moment
	// Context is the parameter context for composite-event detection.
	Context = event.Context
	// Detector recognizes an event definition over a stream of occurrences.
	Detector = event.Detector
)

// Visibility levels.
const (
	Public    = schema.Public
	Protected = schema.Protected
	Private   = schema.Private
)

// Event-interface declarations.
const (
	GenNone  = schema.GenNone
	GenBegin = schema.GenBegin
	GenEnd   = schema.GenEnd
	GenBoth  = schema.GenBoth
)

// Object classifications.
const (
	PassiveClass            = schema.PassiveClass
	ReactiveClass           = schema.ReactiveClass
	NotifiableClass         = schema.NotifiableClass
	ReactiveNotifiableClass = schema.ReactiveNotifiableClass
)

// Coupling modes (§4.4 of the paper).
const (
	Immediate = rule.Immediate
	Deferred  = rule.Deferred
	Detached  = rule.Detached
)

// Event moments.
const (
	Begin    = event.Begin
	End      = event.End
	Explicit = event.Explicit
)

// Parameter contexts.
const (
	ContextPaper      = event.ContextPaper
	ContextRecent     = event.ContextRecent
	ContextChronicle  = event.ContextChronicle
	ContextContinuous = event.ContextContinuous
	ContextCumulative = event.ContextCumulative
)

// Open creates or reopens a database (crash recovery included). An empty
// Options.Dir yields an in-memory database.
func Open(opts Options) (*Database, error) { return core.Open(opts) }

// MustOpen is Open that panics on error.
func MustOpen(opts Options) *Database { return core.MustOpen(opts) }

// IsAbort reports whether err is a transaction abort raised by a rule or
// method (the paper's `abort` action).
func IsAbort(err error) bool { return core.IsAbort(err) }

// NewClass starts a class definition with the given direct superclasses.
func NewClass(name string, bases ...*Class) *Class { return schema.NewClass(name, bases...) }

// Value constructors.
var (
	// NilValue is the null value.
	NilValue = value.Nil
)

// Int returns an integer value.
func Int(i int64) Value { return value.Int(i) }

// Float returns a floating-point value.
func Float(f float64) Value { return value.Float(f) }

// Str returns a string value.
func Str(s string) Value { return value.Str(s) }

// Bool returns a boolean value.
func Bool(b bool) Value { return value.Bool(b) }

// Ref returns an object-reference value.
func Ref(o OID) Value { return value.Ref(o) }

// ListValue returns a list value.
func ListValue(elems ...Value) Value { return value.List(elems...) }

// Attribute/parameter types.
var (
	TypeInt    = value.TypeInt
	TypeFloat  = value.TypeFloat
	TypeString = value.TypeString
	TypeBool   = value.TypeBool
	TypeTime   = value.TypeTime
	TypeAnyRef = value.TypeAnyRef
)

// TypeRef returns the type of references to the named class.
func TypeRef(class string) *Type { return value.TypeRef(class) }

// TypeList returns a list type.
func TypeList(elem *Type) *Type { return value.TypeList(elem) }

// Event constructors (programmatic equivalents of the SentinelQL event
// expressions; see also Database.ParseEvent).
var (
	// Primitive builds "begin/end/explicit Class::Method".
	Primitive = event.Primitive
	// AndEvent is the conjunction operator.
	AndEvent = event.And
	// OrEvent is the disjunction operator.
	OrEvent = event.Or
	// SeqEvent is the sequence operator.
	SeqEvent = event.Seq
	// NotEvent is NOT(B)[A, C].
	NotEvent = event.Not
	// AnyEvent is ANY(m; events...).
	AnyEvent = event.Any
	// AperiodicEvent is A(A, B, C).
	AperiodicEvent = event.Aperiodic
	// PeriodicEvent is P(A, t, C).
	PeriodicEvent = event.Periodic
)

// CondTrue is the always-true rule condition.
var CondTrue = rule.CondTrue

// Index is a secondary equality index over one attribute of a class.
type Index = index.Hash
