package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/oid"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(1)
	if err != nil || !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if !s.Has(1) || s.Has(2) {
		t.Error("Has wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Overwrite.
	if err := s.Put(1, []byte("world, a longer record")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get(1)
	if string(got) != "world, a longer record" {
		t.Fatalf("after overwrite: %q", got)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(1); ok {
		t.Fatal("deleted object still present")
	}
	if err := s.Delete(1); err != nil {
		t.Fatal("double delete should be a no-op")
	}
}

func TestManyObjectsAcrossPages(t *testing.T) {
	s, _ := openTemp(t)
	const n = 2000
	img := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 50+i%200)
	}
	for i := 1; i <= n; i++ {
		if err := s.Put(oid.OID(i), img(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 1; i <= n; i++ {
		got, ok, err := s.Get(oid.OID(i))
		if err != nil || !ok || !bytes.Equal(got, img(i)) {
			t.Fatalf("object %d corrupt", i)
		}
	}
}

func TestGrowingUpdateRelocates(t *testing.T) {
	s, _ := openTemp(t)
	// Fill a page region, then grow one object past in-page capacity.
	for i := 1; i <= 50; i++ {
		s.Put(oid.OID(i), bytes.Repeat([]byte("x"), 150))
	}
	big := bytes.Repeat([]byte("B"), 7000)
	if err := s.Put(1, big); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(1)
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("relocated object corrupt")
	}
	// Everything else intact.
	for i := 2; i <= 50; i++ {
		if got, ok, _ := s.Get(oid.OID(i)); !ok || len(got) != 150 {
			t.Fatalf("object %d damaged by relocation", i)
		}
	}
}

func TestOversizedRejected(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put(1, make([]byte, 9000)); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		s.Put(oid.OID(i), []byte(fmt.Sprintf("obj-%d", i)))
	}
	meta := []byte("checkpoint-meta")
	if err := s.Checkpoint(meta); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !bytes.Equal(s2.Meta(), meta) {
		t.Fatalf("meta = %q", s2.Meta())
	}
	if s2.Len() != 100 {
		t.Fatalf("Len after reopen = %d", s2.Len())
	}
	got, ok, _ := s2.Get(42)
	if !ok || string(got) != "obj-42" {
		t.Fatalf("object 42 = %q, %v", got, ok)
	}
}

func TestReopenWithoutIndexScans(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	for i := 1; i <= 50; i++ {
		s.Put(oid.OID(i), []byte(fmt.Sprintf("v-%d", i)))
	}
	s.Checkpoint(nil)
	s.Close()

	// Remove the side index: the store must rebuild from the pages.
	if err := os.Remove(filepath.Join(dir, "objects.idx")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 50 {
		t.Fatalf("rebuilt Len = %d", s2.Len())
	}
	got, ok, _ := s2.Get(7)
	if !ok || string(got) != "v-7" {
		t.Fatalf("rebuilt object 7 = %q", got)
	}
}

func TestCorruptIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	for i := 1; i <= 20; i++ {
		s.Put(oid.OID(i), []byte("data"))
	}
	s.Checkpoint(nil)
	s.Close()

	idx := filepath.Join(dir, "objects.idx")
	data, _ := os.ReadFile(idx)
	data[len(data)-1] ^= 0xFF // break the CRC
	os.WriteFile(idx, data, 0o644)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("Len after corrupt index = %d", s2.Len())
	}
}

func TestForEachOrdered(t *testing.T) {
	s, _ := openTemp(t)
	for _, id := range []oid.OID{5, 3, 9, 1} {
		s.Put(id, []byte{byte(id)})
	}
	var order []oid.OID
	s.ForEach(func(id oid.OID, img []byte) error {
		order = append(order, id)
		return nil
	})
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("ForEach not ordered: %v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("ForEach visited %d", len(order))
	}
}

func TestRescanMatchesTable(t *testing.T) {
	s, _ := openTemp(t)
	for i := 1; i <= 200; i++ {
		s.Put(oid.OID(i), bytes.Repeat([]byte{1}, i%300+1))
	}
	for i := 1; i <= 200; i += 3 {
		s.Delete(oid.OID(i))
	}
	before := s.Len()
	if err := s.Rescan(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before {
		t.Fatalf("rescan changed Len: %d -> %d", before, s.Len())
	}
	for i := 1; i <= 200; i++ {
		_, ok, _ := s.Get(oid.OID(i))
		wantOK := i%3 != 1
		if ok != wantOK {
			t.Fatalf("object %d: present=%v want %v", i, ok, wantOK)
		}
	}
}

// TestRandomOpsAgainstModel runs a random workload against a map model with
// periodic checkpoints and reopens.
func TestRandomOpsAgainstModel(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	model := map[oid.OID][]byte{}

	reopen := func() {
		if err := s.Checkpoint(nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s, err = Open(dir, Options{PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
	}

	for op := 0; op < 3000; op++ {
		id := oid.OID(rng.Intn(150) + 1)
		switch r := rng.Intn(10); {
		case r < 6:
			img := make([]byte, rng.Intn(500)+1)
			rng.Read(img)
			if err := s.Put(id, img); err != nil {
				t.Fatal(err)
			}
			model[id] = img
		case r < 8:
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
		default:
			got, ok, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[id]
			if ok != wantOK || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("op %d: object %d diverged", op, id)
			}
		}
		if op%997 == 0 && op > 0 {
			reopen()
		}
	}
	// Final verification.
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
	}
	for id, want := range model {
		got, ok, _ := s.Get(id)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("final: object %d diverged", id)
		}
	}
	s.Close()
}
