// Package heap implements the heap file: persistent storage of object
// images in slotted pages, addressed by OID through a persistent object
// table.
//
// Every record is stored as uvarint(oid) + image, so the object table can
// always be rebuilt by scanning the pages; the table is also checkpointed
// into a side file (atomically, via rename) to make reopening fast. An
// opaque metadata blob (the OID high-water mark, the logical clock, catalog
// roots) rides along in the checkpoint for the layers above.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"

	"sentinel/internal/buffer"
	"sentinel/internal/oid"
	"sentinel/internal/page"
	"sentinel/internal/vfs"
)

// RID is a record identifier: page + slot.
type RID struct {
	Page page.ID
	Slot int
}

// Store is the heap file plus its object table.
type Store struct {
	mu    sync.Mutex
	fs    vfs.FS
	pf    *buffer.File
	pool  *buffer.Pool
	table map[oid.OID]RID
	free  map[page.ID]int // free-byte hint per page
	meta  []byte
	dir   string
}

const (
	dataFile   = "objects.dat"
	indexFile  = "objects.idx"
	indexTmp   = "objects.idx.tmp"
	indexMagic = 0x53454E54 // "SENT"
)

// Options configures Open.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (default 256).
	PoolPages int
	// VFS is the filesystem the store runs on (default: the OS).
	VFS vfs.FS
}

// Open opens (or creates) a heap store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.VFS == nil {
		opts.VFS = vfs.OS
	}
	if err := opts.VFS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("heap: mkdir: %w", err)
	}
	pf, err := buffer.OpenFileOn(opts.VFS, filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 256
	}
	s := &Store{
		fs:    opts.VFS,
		pf:    pf,
		pool:  buffer.NewPool(pf, opts.PoolPages),
		table: make(map[oid.OID]RID),
		free:  make(map[page.ID]int),
		dir:   dir,
	}
	if err := s.loadIndex(); err != nil {
		pf.Close()
		return nil, err
	}
	return s, nil
}

// Close flushes and closes the store (without checkpointing the index; call
// Checkpoint first for a fast reopen).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.pf.Close()
}

// Meta returns the opaque metadata blob from the last checkpoint.
func (s *Store) Meta() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.meta...)
}

// Len returns the number of live objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Has reports whether the OID is present.
func (s *Store) Has(id oid.OID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.table[id]
	return ok
}

// Get returns the stored image for id (a copy), or ok=false.
func (s *Store) Get(id oid.OID) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.table[id]
	if !ok {
		return nil, false, nil
	}
	pg, err := s.pool.Pin(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer s.pool.Unpin(rid.Page, false)
	rec, ok := pg.Read(rid.Slot)
	if !ok {
		return nil, false, fmt.Errorf("heap: object table points at dead slot %v for %s", rid, id)
	}
	_, img, err := splitRecord(rec)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), img...), true, nil
}

// Put inserts or replaces the image for id.
func (s *Store) Put(id oid.OID, img []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := encodeRecord(id, img)
	if len(rec) > page.MaxRecord {
		return fmt.Errorf("heap: object %s image of %d bytes exceeds page capacity", id, len(img))
	}
	if rid, ok := s.table[id]; ok {
		pg, err := s.pool.Pin(rid.Page)
		if err != nil {
			return err
		}
		if pg.Update(rid.Slot, rec) {
			s.free[rid.Page] = pg.Free()
			s.pool.Unpin(rid.Page, true)
			return nil
		}
		// Doesn't fit here any more: delete and relocate.
		pg.Delete(rid.Slot)
		s.free[rid.Page] = pg.Free()
		s.pool.Unpin(rid.Page, true)
		delete(s.table, id)
	}
	return s.insertLocked(id, rec)
}

func (s *Store) insertLocked(id oid.OID, rec []byte) error {
	// First fit among pages with enough hinted free space.
	var cands []page.ID
	for pid, free := range s.free {
		if free >= len(rec) {
			cands = append(cands, pid)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, pid := range cands {
		pg, err := s.pool.Pin(pid)
		if err != nil {
			return err
		}
		slot, ok := pg.Insert(rec)
		s.free[pid] = pg.Free()
		s.pool.Unpin(pid, ok)
		if ok {
			s.table[id] = RID{Page: pid, Slot: slot}
			return nil
		}
	}
	// Allocate a fresh page.
	pid, err := s.pool.Alloc()
	if err != nil {
		return err
	}
	pg, err := s.pool.Pin(pid)
	if err != nil {
		return err
	}
	slot, ok := pg.Insert(rec)
	s.free[pid] = pg.Free()
	s.pool.Unpin(pid, ok)
	if !ok {
		return fmt.Errorf("heap: record of %d bytes does not fit a fresh page", len(rec))
	}
	s.table[id] = RID{Page: pid, Slot: slot}
	return nil
}

// Delete removes the object; deleting an absent OID is a no-op.
func (s *Store) Delete(id oid.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.table[id]
	if !ok {
		return nil
	}
	pg, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	pg.Delete(rid.Slot)
	s.free[rid.Page] = pg.Free()
	s.pool.Unpin(rid.Page, true)
	delete(s.table, id)
	return nil
}

// ForEach calls fn for every live object, in ascending OID order. The image
// passed to fn is a copy.
func (s *Store) ForEach(fn func(id oid.OID, img []byte) error) error {
	s.mu.Lock()
	ids := make([]oid.OID, 0, len(s.table))
	for id := range s.table {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		img, ok, err := s.Get(id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(id, img); err != nil {
			return err
		}
	}
	return nil
}

// Scan calls fn for every live object without copying images: fn receives a
// view into the pinned page, valid only for the duration of the call, and
// must not retain or mutate it. Iteration order is unspecified and the store
// is locked throughout — Scan is for bulk read passes (catalog rebuild,
// integrity sweeps), not concurrent access.
func (s *Store) Scan(fn func(id oid.OID, img []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, rid := range s.table {
		pg, err := s.pool.Pin(rid.Page)
		if err != nil {
			return err
		}
		rec, ok := pg.Read(rid.Slot)
		if !ok {
			s.pool.Unpin(rid.Page, false)
			return fmt.Errorf("heap: object table points at dead slot %v for %s", rid, id)
		}
		_, img, err := splitRecord(rec)
		if err == nil {
			err = fn(id, img)
		}
		s.pool.Unpin(rid.Page, false)
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint flushes all dirty pages, syncs the data file, and atomically
// writes the object table and the metadata blob to the index file.
func (s *Store) Checkpoint(meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	s.meta = append([]byte(nil), meta...)
	return s.writeIndexLocked()
}

func encodeRecord(id oid.OID, img []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(id))
	return append(buf, img...)
}

func splitRecord(rec []byte) (oid.OID, []byte, error) {
	id, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, nil, fmt.Errorf("heap: malformed record header")
	}
	return oid.OID(id), rec[n:], nil
}

// ---- index persistence ----

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func (s *Store) writeIndexLocked() error {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, indexMagic)
	buf = binary.AppendUvarint(buf, uint64(len(s.meta)))
	buf = append(buf, s.meta...)
	buf = binary.AppendUvarint(buf, uint64(len(s.table)))
	ids := make([]oid.OID, 0, len(s.table))
	for id := range s.table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rid := s.table[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(rid.Page))
		buf = binary.AppendUvarint(buf, uint64(rid.Slot))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	// Atomic replace with full durability: write the temp file, fsync it
	// BEFORE the rename (otherwise a power cut can journal the rename
	// while the data pages are still in the page cache, leaving an
	// empty/partial index behind the new name), then fsync the directory
	// so the rename itself survives.
	tmp := filepath.Join(s.dir, indexTmp)
	if err := vfs.WriteFile(s.fs, tmp, buf, 0o644); err != nil {
		return fmt.Errorf("heap: write index: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, indexFile)); err != nil {
		return fmt.Errorf("heap: rename index: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("heap: sync index dir: %w", err)
	}
	return nil
}

func (s *Store) loadIndex() error {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, indexFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return s.rebuildIndex()
		}
		return fmt.Errorf("heap: read index: %w", err)
	}
	if len(data) < 8 ||
		binary.LittleEndian.Uint32(data[:4]) != indexMagic ||
		binary.LittleEndian.Uint32(data[len(data)-4:]) != crc32.Checksum(data[:len(data)-4], castagnoli) {
		// Corrupt index: fall back to a page scan.
		return s.rebuildIndex()
	}
	buf := data[4 : len(data)-4]
	ml, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < ml {
		return s.rebuildIndex()
	}
	s.meta = append([]byte(nil), buf[n:n+int(ml)]...)
	buf = buf[n+int(ml):]
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return s.rebuildIndex()
	}
	buf = buf[n:]
	for i := uint64(0); i < cnt; i++ {
		id, n1 := binary.Uvarint(buf)
		if n1 <= 0 {
			return s.rebuildIndex()
		}
		pid, n2 := binary.Uvarint(buf[n1:])
		if n2 <= 0 {
			return s.rebuildIndex()
		}
		slot, n3 := binary.Uvarint(buf[n1+n2:])
		if n3 <= 0 {
			return s.rebuildIndex()
		}
		s.table[oid.OID(id)] = RID{Page: page.ID(pid), Slot: int(slot)}
		buf = buf[n1+n2+n3:]
	}
	return s.scanFreeSpace()
}

// rebuildIndex reconstructs the object table by scanning every page.
func (s *Store) rebuildIndex() error {
	s.table = make(map[oid.OID]RID)
	s.free = make(map[page.ID]int)
	for pid := page.ID(0); pid < s.pf.NumPages(); pid++ {
		pg, err := s.pool.Pin(pid)
		if err != nil {
			return err
		}
		pg.LiveRecords(func(slot int, rec []byte) {
			if id, _, err := splitRecord(rec); err == nil {
				s.table[id] = RID{Page: pid, Slot: slot}
			}
		})
		s.free[pid] = pg.Free()
		s.pool.Unpin(pid, false)
	}
	return nil
}

func (s *Store) scanFreeSpace() error {
	s.free = make(map[page.ID]int)
	for pid := page.ID(0); pid < s.pf.NumPages(); pid++ {
		pg, err := s.pool.Pin(pid)
		if err != nil {
			return err
		}
		s.free[pid] = pg.Free()
		s.pool.Unpin(pid, false)
	}
	return nil
}

// CloseAbrupt closes the backing file WITHOUT flushing dirty pages or
// writing the index — simulating a crash for recovery tests. The on-disk
// state is whatever the last checkpoint plus incidental evictions left.
func (s *Store) CloseAbrupt() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pf.Close()
}

// Rescan discards the loaded object table and rebuilds it by scanning every
// page. Used when the side index cannot be trusted (crash recovery: the WAL
// holds records newer than the last checkpointed index).
func (s *Store) Rescan() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildIndex()
}
