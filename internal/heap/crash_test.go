package heap

// Crash-consistency regression tests for the checkpoint index, driven by
// the fault-injecting VFS. The historical bug: writeIndexLocked wrote the
// temp index with no fsync before the rename, so a power cut could journal
// the rename while the index data was still in the page cache — leaving an
// empty objects.idx behind the new name, which silently discarded the
// checkpoint metadata blob (OID high-water mark, logical clock, catalog
// roots) on the next open.

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"sentinel/internal/oid"
	"sentinel/internal/vfs"
)

// reopenAtCrash materializes the crash state at the given cut point and
// opens a fresh store on it.
func reopenAtCrash(t *testing.T, fault *vfs.Fault, upTo int, mode vfs.CrashMode) *Store {
	t.Helper()
	mem := vfs.NewMem()
	mem.Install(fault.CrashState(upTo, mode))
	s, err := Open("dir", Options{PoolPages: 16, VFS: mem})
	if err != nil {
		t.Fatalf("reopen at crash point %d (%v): %v", upTo, mode, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCheckpointMetaSurvivesMetadataCrash is the regression test for the
// missing-fsync bug: after Checkpoint returns, a power cut that persists
// the rename but drops unsynced file data (vfs.CrashMetadata) must still
// leave the metadata blob and the object table readable. Against the
// pre-fix writeIndexLocked (os.WriteFile + os.Rename, no fsync) the index
// materializes as an empty file and the meta blob comes back nil.
func TestCheckpointMetaSurvivesMetadataCrash(t *testing.T) {
	fault := vfs.NewFault()
	s, err := Open("dir", Options{PoolPages: 16, VFS: fault})
	if err != nil {
		t.Fatal(err)
	}
	meta := []byte("high-water=42 clock=99")
	for i := 1; i <= 10; i++ {
		if err := s.Put(oid.OID(i), []byte(fmt.Sprintf("object-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(meta); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for _, mode := range vfs.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r := reopenAtCrash(t, fault, fault.Ops(), mode)
			if got := r.Meta(); !bytes.Equal(got, meta) {
				t.Fatalf("meta after %v crash = %q, want %q", mode, got, meta)
			}
			if r.Len() != 10 {
				t.Fatalf("object table after %v crash has %d entries, want 10", mode, r.Len())
			}
			img, ok, err := r.Get(oid.OID(7))
			if err != nil || !ok || string(img) != "object-7" {
				t.Fatalf("Get(7) after %v crash = %q, %v, %v", mode, img, ok, err)
			}
		})
	}
}

// TestPreFixSaveIndexLosesMeta documents what the regression above pins
// down: replaying the pre-fix syscall sequence (write temp, no fsync,
// rename) through the fault VFS yields exactly the empty-index crash
// state, proving the test discriminates between the broken and fixed
// sequences rather than passing vacuously.
func TestPreFixSaveIndexLosesMeta(t *testing.T) {
	fault := vfs.NewFault()
	s, err := Open("dir", Options{PoolPages: 16, VFS: fault})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(oid.OID(1), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flush data pages like Checkpoint does, then run the PRE-FIX index
	// replace: os.WriteFile semantics (create/truncate + write, no sync)
	// followed by rename, with no directory sync.
	if err := s.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	f, err := fault.OpenFile("dir/objects.idx.tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("pretend-index-bytes")); err != nil {
		t.Fatal(err)
	}
	f.Close() // no Sync: the bug
	if err := fault.Rename("dir/objects.idx.tmp", "dir/objects.idx"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	st := fault.CrashState(fault.Ops(), vfs.CrashMetadata)
	if data, ok := st["dir/objects.idx"]; !ok || len(data) != 0 {
		t.Fatalf("pre-fix sequence: idx = %q (present=%v), want present and EMPTY", data, ok)
	}
	// The store still opens (rebuildIndex recovers the table from the
	// pages) but the metadata blob is gone — the observable data loss.
	r := reopenAtCrash(t, fault, fault.Ops(), vfs.CrashMetadata)
	if got := r.Meta(); len(got) != 0 {
		t.Fatalf("meta = %q, want lost (empty) under the pre-fix sequence", got)
	}
	if r.Len() != 1 {
		t.Fatalf("rebuilt table has %d entries, want 1", r.Len())
	}
}

