package wal

// Fuzz targets for the two WAL attack surfaces: the payload decoder
// (arbitrary bytes inside a CRC-valid frame) and full-log replay
// (arbitrary bytes as the on-disk file). Replay must never panic, must
// stop cleanly at damage, and must leave the log in an appendable state —
// the append-reopen-replay roundtrip below checks all three on every
// input the fuzzer invents.

import (
	"bytes"
	"testing"

	"sentinel/internal/vfs"
)

func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0x80}) // dangling uvarint
	f.Add(appendPayload(nil, Record{Type: RecUpdate, Tx: 7, OID: 42, Data: []byte("image")}))
	f.Add(appendPayload(nil, Record{Type: RecCommit, Tx: 1}))
	f.Add(appendPayload(nil, Record{Type: RecDelete, Tx: 3, OID: 9}))
	f.Add(appendPayload(nil, Record{Type: RecCheckpoint}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodePayload(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Anything the decoder accepts must re-encode to something the
		// decoder accepts identically.
		enc := appendPayload(nil, r)
		r2, err := decodePayload(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed to decode: %v", err)
		}
		if r.Type != r2.Type || r.Tx != r2.Tx || r.OID != r2.OID || !bytes.Equal(r.Data, r2.Data) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", r, r2)
		}
	})
}

func FuzzReplay(f *testing.F) {
	// Seed with a well-formed log, its truncations, and a bit-flipped
	// variant, built through the real append path.
	mem := vfs.NewMem()
	l, err := OpenOn(mem, "seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	for i, r := range []Record{
		{Type: RecUpdate, Tx: 1, OID: 5, Data: []byte("hello")},
		{Type: RecCommit, Tx: 1},
		{Type: RecUpdate, Tx: 2, OID: 6, Data: []byte("world")},
		{Type: RecAbort, Tx: 2},
	} {
		if err := l.Append(r); err != nil {
			f.Fatalf("seed record %d: %v", i, err)
		}
	}
	l.Close()
	seed, err := mem.ReadFile("seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:frameHeader+1])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMem()
		fs.Install(map[string][]byte{"f.wal": data})
		log, err := OpenOn(fs, "f.wal")
		if err != nil {
			t.Fatalf("open on existing file: %v", err)
		}
		var recs []Record
		if err := log.Replay(func(r Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatalf("replay must swallow damage, got: %v", err)
		}
		// Replay dropped any torn tail; the log must now accept a record
		// and yield it back, after the same valid prefix, on reopen.
		probe := Record{Type: RecCommit, Tx: 987654}
		if err := log.Append(probe); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		log.Close()

		log2, err := OpenOn(fs, "f.wal")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer log2.Close()
		var recs2 []Record
		if err := log2.Replay(func(r Record) error {
			recs2 = append(recs2, r)
			return nil
		}); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen replayed %d records, want %d valid + 1 appended", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Type != recs2[i].Type || recs[i].Tx != recs2[i].Tx ||
				recs[i].OID != recs2[i].OID || !bytes.Equal(recs[i].Data, recs2[i].Data) {
				t.Fatalf("record %d changed across reopen: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
		if last := recs2[len(recs2)-1]; last.Type != probe.Type || last.Tx != probe.Tx {
			t.Fatalf("appended record came back as %+v", last)
		}
	})
}
