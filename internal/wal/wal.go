// Package wal implements the write-ahead log that gives the object store
// durability and atomic commit.
//
// The design is redo-only logical logging keyed by OID:
//
//   - While a transaction runs, its writes stay in memory (no-steal): the
//     heap file never contains uncommitted data.
//   - At commit, one Update/Delete record per touched object is appended,
//     followed by a Commit record, then the log is synced. The heap is
//     updated after logging (no-force for pages; force for the log).
//   - A Checkpoint record means "every committed effect up to this point is
//     in the heap file"; recovery replays only committed transactions that
//     appear after the last checkpoint.
//
// Records are CRC-framed; a torn tail (partial final record, bad CRC) is
// treated as the end of the log, which is the standard contract for
// crash-interrupted appends.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/oid"
	"sentinel/internal/vfs"
)

// RecordType tags a log record.
type RecordType uint8

// The record types.
const (
	RecUpdate     RecordType = iota + 1 // object write: OID + image
	RecDelete                           // object delete: OID
	RecCommit                           // transaction commit marker
	RecAbort                            // transaction abort marker (informational)
	RecCheckpoint                       // all prior committed effects are in the heap
)

// Record is one log entry.
type Record struct {
	Type RecordType
	Tx   uint64
	OID  oid.OID
	Data []byte // object image for RecUpdate; nil otherwise
}

// frame: len:uint32 | crc:uint32 | payload
// payload: type:uint8 | tx:uvarint | oid:uvarint | dataLen:uvarint | data

const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only write-ahead log backed by a file. All methods are
// safe for concurrent use: commits from different transactions serialize on
// the log so record frames never interleave.
type Log struct {
	mu   sync.Mutex
	fs   vfs.FS
	f    vfs.File
	path string
	size int64
	sync syncState // group-commit state (see SyncBarrier)

	// buf is the reusable frame-encoding buffer for AppendBatch. Guarded
	// by mu (appends serialize on it), so steady-state commits frame their
	// records without allocating per record.
	buf []byte

	// group is the commit coalescer (see CommitBatch); inflight counts
	// callers currently inside CommitBatch, which is what lets a leader
	// decide whether a bounded wait window could pay off.
	group    groupState
	inflight atomic.Int32

	// Instrumentation hooks (see SetHooks / SetGroupHook); nil means
	// uninstrumented.
	onAppend func(bytes int, d time.Duration)
	onFsync  func(d time.Duration)
	onGroup  func(commits int)
}

// Open opens (or creates) the log at path on the OS filesystem.
func Open(path string) (*Log, error) {
	return OpenOn(vfs.OS, path)
}

// OpenOn opens (or creates) the log at path on fs.
func OpenOn(fs vfs.FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{fs: fs, f: f, path: path, size: size}, nil
}

// SetHooks installs instrumentation callbacks: onAppend observes every
// record (batch) append with its framed byte count and write latency,
// onFsync every physical fsync with its latency. Either may be nil. Call
// before the log sees concurrent use (the fields are unsynchronized by
// design — the owner installs them right after Open). Hooks run with log
// locks held and must not call back into the Log.
func (l *Log) SetHooks(onAppend func(bytes int, d time.Duration), onFsync func(d time.Duration)) {
	l.onAppend = onAppend
	l.onFsync = onFsync
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Append writes one record at the end of the log (buffered by the OS; call
// Sync to force durability).
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(r)
}

func (l *Log) appendLocked(r Record) error {
	var start time.Time
	if l.onAppend != nil {
		start = time.Now()
	}
	payload := appendPayload(nil, r)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(frameHeader + len(payload))
	if l.onAppend != nil {
		l.onAppend(frameHeader+len(payload), time.Since(start))
	}
	return nil
}

// maxBatchBufRetain bounds the frame buffer kept between batches, so one
// oversized commit does not pin its peak footprint forever.
const maxBatchBufRetain = 1 << 20

// AppendBatch writes several records with a single buffered write. Frames
// are encoded into a buffer reused across batches (payloads are encoded in
// place and the length/CRC header back-filled), so framing allocates
// nothing once the buffer is warm.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeFramesLocked(func(buf []byte) []byte { return frameRecords(buf, recs) })
}

// frameRecords encodes recs as CRC-framed log entries at the end of buf.
func frameRecords(buf []byte, recs []Record) []byte {
	for _, r := range recs {
		hdrOff := len(buf)
		buf = append(buf, make([]byte, frameHeader)...)
		payloadOff := len(buf)
		buf = appendPayload(buf, r)
		payload := buf[payloadOff:]
		binary.LittleEndian.PutUint32(buf[hdrOff:hdrOff+4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[hdrOff+4:hdrOff+8], crc32.Checksum(payload, castagnoli))
	}
	return buf
}

// writeFramesLocked frames records through fill into the reusable buffer and
// writes them with a single buffered write. Caller holds l.mu.
func (l *Log) writeFramesLocked(fill func(buf []byte) []byte) error {
	var start time.Time
	if l.onAppend != nil {
		start = time.Now()
	}
	buf := fill(l.buf[:0])
	if cap(buf) <= maxBatchBufRetain {
		l.buf = buf[:0]
	} else {
		l.buf = nil
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	l.size += int64(len(buf))
	if l.onAppend != nil {
		l.onAppend(len(buf), time.Since(start))
	}
	return nil
}

// Sync forces the log to stable storage.
func (l *Log) Sync() error {
	return l.fsync()
}

// Truncate atomically replaces the log with one containing only a
// checkpoint record. Called after the heap has been flushed and synced.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ".tmp"
	nf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	nl := &Log{fs: l.fs, f: nf, path: tmp}
	if err := nl.appendLocked(Record{Type: RecCheckpoint}); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		nf.Close()
		return fmt.Errorf("wal: truncate close: %w", err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		nf.Close()
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	// Sync the directory so the rename itself is durable: committed
	// records appended after this point go to the new file, and must not
	// be orphaned under a still-visible old log.
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: truncate syncdir: %w", err)
	}
	l.f = nf
	l.size = nl.size
	// The file was replaced: reset the group-commit high-water mark so
	// stale offsets from the old file cannot satisfy new barriers.
	l.sync.mu.Lock()
	l.sync.syncedTo = 0
	l.sync.mu.Unlock()
	return nil
}

// Replay scans the whole log and invokes fn for every record, in order. A
// torn or corrupt tail ends the scan without error. Replay leaves the write
// offset at the end of the valid prefix so subsequent Appends overwrite any
// torn tail.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: replay seek: %w", err)
	}
	var off int64
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			break // clean EOF or torn header: end of valid prefix
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		// A corrupt length field must not drive the allocation below: a
		// frame can never be longer than the bytes actually in the file,
		// so anything claiming more is damage (found by FuzzReplay, which
		// crawled when bogus ~1 GiB lengths were allocated before the
		// short read rejected them).
		if ln > 1<<30 || int64(ln) > l.size-off-frameHeader {
			break
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(frameHeader) + int64(ln)
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: replay reset: %w", err)
	}
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: drop torn tail: %w", err)
	}
	l.size = off
	l.sync.mu.Lock()
	if l.sync.syncedTo > off {
		l.sync.syncedTo = off
	}
	l.sync.mu.Unlock()
	return nil
}

func appendPayload(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, r.Tx)
	buf = binary.AppendUvarint(buf, uint64(r.OID))
	buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
	buf = append(buf, r.Data...)
	return buf
}

func decodePayload(buf []byte) (Record, error) {
	if len(buf) < 1 {
		return Record{}, fmt.Errorf("wal: empty payload")
	}
	r := Record{Type: RecordType(buf[0])}
	buf = buf[1:]
	tx, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, fmt.Errorf("wal: bad tx field")
	}
	buf = buf[n:]
	o, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, fmt.Errorf("wal: bad oid field")
	}
	buf = buf[n:]
	dl, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < dl {
		return Record{}, fmt.Errorf("wal: bad data field")
	}
	r.Tx = tx
	r.OID = oid.OID(o)
	if dl > 0 {
		r.Data = append([]byte(nil), buf[n:n+int(dl)]...)
	}
	return r, nil
}

// Group commit: concurrent committers that all need durability share one
// fsync. SyncBarrier returns once every byte appended before the call is on
// stable storage; under concurrency one caller becomes the leader and
// fsyncs for the whole group while the others wait.

type syncState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	syncing  bool
	syncedTo int64
}

func (l *Log) syncStateInit() {
	if l.sync.cond == nil {
		l.sync.cond = sync.NewCond(&l.sync.mu)
	}
}

// SyncBarrier blocks until everything appended before the call is durable,
// performing at most one fsync per waiting group.
func (l *Log) SyncBarrier() error {
	l.mu.Lock()
	target := l.size
	l.mu.Unlock()

	s := &l.sync
	s.mu.Lock()
	l.syncStateInit()
	for {
		if s.syncedTo >= target {
			s.mu.Unlock()
			return nil
		}
		if !s.syncing {
			break // become the leader
		}
		s.cond.Wait()
	}
	s.syncing = true
	s.mu.Unlock()

	// Leader: capture the current end of log, fsync, publish.
	l.mu.Lock()
	flushedTo := l.size
	l.mu.Unlock()
	err := l.fsync()

	s.mu.Lock()
	if err == nil && flushedTo > s.syncedTo {
		s.syncedTo = flushedTo
	}
	s.syncing = false
	s.cond.Broadcast()
	s.mu.Unlock()
	return err
}

// ---- group commit ----
//
// CommitBatch is the transactional append path: concurrent committers
// publish their record batches to a coalescer that frames every queued batch
// into ONE buffered write and (when durability is requested) ONE fsync.
//
// The protocol is leader/follower with handoff:
//
//   1. A caller enqueues its request. If no flush is in progress it becomes
//      the leader immediately — an idle log commits at single-commit
//      latency, there is no timer on this path.
//   2. The leader claims the whole queue, releases the queue lock, flushes
//      the group (one write, at most one fsync), then marks every claimed
//      request done and broadcasts.
//   3. Callers that arrived while the leader was flushing wait; the first
//      one to wake with its request still unclaimed becomes the next leader
//      and claims everything that accumulated during the flush. The fsync
//      duration is therefore the natural batching window: the slower the
//      device, the larger the groups, with no tuning.
//
// An optional bounded wait window (SetGroupWindow) lets a leader that can
// SEE more committers in flight (inflight > claimed) linger briefly before
// flushing — useful only when fsync is so fast that groups stay small.
// The window never delays an uncontended commit.

// groupReq is one committer's batch waiting in the coalescer.
type groupReq struct {
	recs []Record
	sync bool
	done bool
	err  error
}

// groupState is the commit coalescer: a queue of waiting requests and a
// single-flight flag. cond is broadcast after every flush.
type groupState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	flushing bool
	queue    []*groupReq
	window   time.Duration
}

// SetGroupWindow installs a bounded wait window: a leader that observes more
// committers in flight than it has claimed waits up to d for them before
// flushing. 0 (the default) flushes immediately; the fsync itself already
// accumulates the next group. Call before the log sees concurrent use.
func (l *Log) SetGroupWindow(d time.Duration) {
	l.group.window = d
}

// SetGroupHook installs a callback observing every group flush with the
// number of commits coalesced into it. Call before the log sees concurrent
// use; the hook runs outside log locks but must be fast and must not call
// back into the Log.
func (l *Log) SetGroupHook(fn func(commits int)) {
	l.onGroup = fn
}

// CommitBatch appends the batch atomically with respect to other CommitBatch
// callers and, when durable is set, returns only once the batch is on stable
// storage. Concurrent callers are coalesced into one write + one fsync (see
// the protocol comment above). On error the records must be considered not
// durable: every commit in the failed group reports the error.
func (l *Log) CommitBatch(recs []Record, durable bool) error {
	l.inflight.Add(1)
	defer l.inflight.Add(-1)

	g := &l.group
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	req := &groupReq{recs: recs, sync: durable}
	g.queue = append(g.queue, req)
	for !req.done && g.flushing {
		g.cond.Wait()
	}
	if req.done {
		// A leader flushed us while we waited (follower path).
		err := req.err
		g.mu.Unlock()
		return err
	}
	// Leader: claim everything queued, flush, hand off.
	g.flushing = true
	batch := g.queue
	g.queue = nil
	if g.window > 0 && int(l.inflight.Load()) > len(batch) {
		// More committers are between their inflight bump and the queue:
		// give them up to the window to join this group.
		g.mu.Unlock()
		time.Sleep(g.window)
		g.mu.Lock()
		batch = append(batch, g.queue...)
		g.queue = nil
	}
	g.mu.Unlock()

	err := l.flushGroup(batch)

	g.mu.Lock()
	for _, r := range batch {
		r.done = true
		r.err = err
	}
	g.flushing = false
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// flushGroup writes every claimed batch with one buffered write and fsyncs
// once if any request wants durability.
func (l *Log) flushGroup(batch []*groupReq) error {
	l.mu.Lock()
	err := l.writeFramesLocked(func(buf []byte) []byte {
		for _, r := range batch {
			buf = frameRecords(buf, r.recs)
		}
		return buf
	})
	target := l.size
	l.mu.Unlock()
	if l.onGroup != nil {
		l.onGroup(len(batch))
	}
	if err != nil {
		return err
	}
	needSync := false
	for _, r := range batch {
		if r.sync {
			needSync = true
			break
		}
	}
	if !needSync {
		return nil
	}
	if err := l.fsync(); err != nil {
		return err
	}
	// Keep SyncBarrier's high-water mark coherent: everything up to target
	// is durable now.
	l.sync.mu.Lock()
	if target > l.sync.syncedTo {
		l.sync.syncedTo = target
	}
	l.sync.mu.Unlock()
	return nil
}

func (l *Log) fsync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var start time.Time
	if l.onFsync != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if l.onFsync != nil {
		l.onFsync(time.Since(start))
	}
	return nil
}
