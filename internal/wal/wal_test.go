package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sentinel/internal/oid"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	l, _ := openTemp(t)
	recs := []Record{
		{Type: RecUpdate, Tx: 1, OID: oid.OID(10), Data: []byte("hello")},
		{Type: RecUpdate, Tx: 1, OID: oid.OID(11), Data: nil},
		{Type: RecDelete, Tx: 1, OID: oid.OID(12)},
		{Type: RecCommit, Tx: 1},
		{Type: RecAbort, Tx: 2},
		{Type: RecCheckpoint},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Type != r.Type || g.Tx != r.Tx || g.OID != r.OID || string(g.Data) != string(r.Data) {
			t.Errorf("record %d: got %+v, want %+v", i, g, r)
		}
	}
}

func TestAppendBatch(t *testing.T) {
	l, _ := openTemp(t)
	batch := []Record{
		{Type: RecUpdate, Tx: 5, OID: 1, Data: []byte("a")},
		{Type: RecUpdate, Tx: 5, OID: 2, Data: []byte("bb")},
		{Type: RecCommit, Tx: 5},
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != 3 || got[2].Type != RecCommit {
		t.Fatalf("batch replay = %+v", got)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	l, path := openTemp(t)
	if err := l.Append(Record{Type: RecUpdate, Tx: 1, OID: 1, Data: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecCommit, Tx: 1}); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	if err := l.Append(Record{Type: RecUpdate, Tx: 2, OID: 2, Data: []byte("torn")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Truncate mid-record to simulate a crash during append.
	if err := os.Truncate(path, goodSize+5); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	// The torn tail was dropped; appends continue from the valid prefix.
	if l2.Size() != goodSize {
		t.Fatalf("size after replay = %d, want %d", l2.Size(), goodSize)
	}
	if err := l2.Append(Record{Type: RecCommit, Tx: 3}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != 3 {
		t.Fatalf("post-recovery append: %d records", len(got))
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	l, path := openTemp(t)
	l.Append(Record{Type: RecUpdate, Tx: 1, OID: 1, Data: []byte("aaaa")})
	l.Append(Record{Type: RecUpdate, Tx: 1, OID: 2, Data: []byte("bbbb")})
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second record's payload.
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 1 || got[0].OID != 1 {
		t.Fatalf("replay past corruption: %+v", got)
	}
}

func TestTruncate(t *testing.T) {
	l, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: RecUpdate, Tx: uint64(i), OID: oid.OID(i), Data: make([]byte, 100)})
	}
	before := l.Size()
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("truncate did not shrink the log: %d -> %d", before, l.Size())
	}
	got := collect(t, l)
	if len(got) != 1 || got[0].Type != RecCheckpoint {
		t.Fatalf("after truncate: %+v", got)
	}
	// The log is still usable.
	if err := l.Append(Record{Type: RecCommit, Tx: 9}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 2 {
		t.Fatalf("append after truncate: %+v", got)
	}
}

func TestEmptyLog(t *testing.T) {
	l, _ := openTemp(t)
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
}

func TestLargeRecord(t *testing.T) {
	l, _ := openTemp(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := l.Append(Record{Type: RecUpdate, Tx: 1, OID: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != 1 || len(got[0].Data) != len(big) {
		t.Fatal("large record roundtrip failed")
	}
	for i := range big {
		if got[0].Data[i] != big[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestConcurrentAppendsDoNotInterleave(t *testing.T) {
	l, _ := openTemp(t)
	const workers, per = 8, 200
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				err := l.AppendBatch([]Record{
					{Type: RecUpdate, Tx: uint64(w), OID: oid.OID(i + 1), Data: []byte{byte(w), byte(i)}},
					{Type: RecCommit, Tx: uint64(w)},
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Every frame must replay intact: correct count, no torn records.
	recs := collect(t, l)
	if len(recs) != workers*per*2 {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per*2)
	}
	for _, r := range recs {
		if r.Type == RecUpdate && len(r.Data) != 2 {
			t.Fatalf("corrupt record: %+v", r)
		}
	}
}

func TestSyncBarrierGroupCommit(t *testing.T) {
	l, _ := openTemp(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.AppendBatch([]Record{
					{Type: RecUpdate, Tx: uint64(w), OID: oid.OID(i + 1), Data: []byte("x")},
					{Type: RecCommit, Tx: uint64(w)},
				}); err != nil {
					t.Error(err)
					return
				}
				if err := l.SyncBarrier(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(collect(t, l)); got != workers*per*2 {
		t.Fatalf("records = %d, want %d", got, workers*per*2)
	}
	// The barrier still works after a truncate (offsets reset).
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecCommit, Tx: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncBarrier(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchZeroAllocs pins the pooled frame buffer: once warm,
// AppendBatch frames an entire commit batch without allocating. This guards
// the per-record payload allocation the old implementation made (one
// appendPayload(nil, ...) slice per record per commit).
func TestAppendBatchZeroAllocs(t *testing.T) {
	l, _ := openTemp(t)
	batch := []Record{
		{Type: RecUpdate, Tx: 9, OID: 1, Data: make([]byte, 64)},
		{Type: RecUpdate, Tx: 9, OID: 2, Data: make([]byte, 256)},
		{Type: RecDelete, Tx: 9, OID: 3},
		{Type: RecCommit, Tx: 9},
	}
	// Warm the buffer so the measured runs reuse it at full capacity.
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocated %.1f times per batch, want 0", allocs)
	}
}

// TestAppendBatchRetentionCap verifies one oversized batch does not pin its
// peak buffer forever: after framing well past maxBatchBufRetain the
// retained buffer is dropped, and the log still appends correctly.
func TestAppendBatchRetentionCap(t *testing.T) {
	l, _ := openTemp(t)
	huge := []Record{{Type: RecUpdate, Tx: 1, OID: 1, Data: make([]byte, maxBatchBufRetain+1)}}
	if err := l.AppendBatch(huge); err != nil {
		t.Fatal(err)
	}
	if l.buf != nil {
		t.Fatalf("retained %d-byte buffer past the %d cap", cap(l.buf), maxBatchBufRetain)
	}
	small := []Record{{Type: RecUpdate, Tx: 2, OID: 2, Data: []byte("x")}, {Type: RecCommit, Tx: 2}}
	if err := l.AppendBatch(small); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}
