package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentinel/internal/oid"
)

// TestCommitBatchSerial checks the uncontended path: one committer leads
// immediately, its records land in order, and a group of exactly 1 is
// observed.
func TestCommitBatchSerial(t *testing.T) {
	l, _ := openTemp(t)
	var groups []int
	l.SetGroupHook(func(n int) { groups = append(groups, n) })
	for tx := uint64(1); tx <= 3; tx++ {
		batch := []Record{
			{Type: RecUpdate, Tx: tx, OID: oid.OID(tx), Data: []byte("v")},
			{Type: RecCommit, Tx: tx},
		}
		if err := l.CommitBatch(batch, true); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
	for i, n := range groups {
		if n != 1 {
			t.Errorf("group %d coalesced %d commits, want 1 (serial committer)", i, n)
		}
	}
}

// TestCommitBatchConcurrent drives many goroutines through CommitBatch and
// verifies (a) every transaction's records replay contiguously with its
// commit record last — frames from different groups never interleave — and
// (b) at least one flush coalesced more than one commit.
func TestCommitBatchConcurrent(t *testing.T) {
	l, _ := openTemp(t)
	var maxGroup atomic.Int64
	var flushes atomic.Int64
	l.SetGroupHook(func(n int) {
		flushes.Add(1)
		for {
			cur := maxGroup.Load()
			if int64(n) <= cur || maxGroup.CompareAndSwap(cur, int64(n)) {
				break
			}
		}
	})

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tx := uint64(g*perG + i + 1)
				batch := []Record{
					{Type: RecUpdate, Tx: tx, OID: oid.OID(2 * tx), Data: []byte(fmt.Sprintf("g%d-%d", g, i))},
					{Type: RecUpdate, Tx: tx, OID: oid.OID(2*tx + 1), Data: []byte("second")},
					{Type: RecCommit, Tx: tx},
				}
				if err := l.CommitBatch(batch, true); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	got := collect(t, l)
	if len(got) != goroutines*perG*3 {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*perG*3)
	}
	// Contiguity: scanning in order, each transaction's records must appear
	// as an unbroken run ending in its commit record.
	var curTx uint64
	var run int
	for i, r := range got {
		if curTx == 0 {
			curTx, run = r.Tx, 0
		}
		if r.Tx != curTx {
			t.Fatalf("record %d: tx %d interleaved into tx %d's run", i, r.Tx, curTx)
		}
		run++
		if r.Type == RecCommit {
			if run != 3 {
				t.Fatalf("tx %d committed after %d records, want 3", curTx, run)
			}
			curTx = 0
		}
	}
	if curTx != 0 {
		t.Fatalf("log ends inside tx %d's run", curTx)
	}
	if flushes.Load() == int64(goroutines*perG) && maxGroup.Load() == 1 {
		t.Log("no coalescing observed (legal but unexpected under concurrency)")
	}
}

// TestCommitBatchNoSyncSkipsFsync checks that a group with no durable
// request does not fsync (the caller opted into group-commit durability
// semantics: durable only up to the next sync/checkpoint).
func TestCommitBatchNoSyncSkipsFsync(t *testing.T) {
	l, _ := openTemp(t)
	var fsyncs atomic.Int64
	l.SetHooks(nil, func(time.Duration) { fsyncs.Add(1) })
	if err := l.CommitBatch([]Record{{Type: RecCommit, Tx: 1}}, false); err != nil {
		t.Fatal(err)
	}
	if n := fsyncs.Load(); n != 0 {
		t.Fatalf("non-durable CommitBatch fsynced %d times, want 0", n)
	}
	if err := l.CommitBatch([]Record{{Type: RecCommit, Tx: 2}}, true); err != nil {
		t.Fatal(err)
	}
	if n := fsyncs.Load(); n != 1 {
		t.Fatalf("durable CommitBatch fsynced %d times, want 1", n)
	}
}

// TestCommitBatchWindow exercises the bounded wait window configuration
// path; the window must not stall an uncontended commit indefinitely.
func TestCommitBatchWindow(t *testing.T) {
	l, _ := openTemp(t)
	l.SetGroupWindow(2 * time.Millisecond)
	start := time.Now()
	if err := l.CommitBatch([]Record{{Type: RecCommit, Tx: 1}}, true); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("uncontended windowed commit took %v", d)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tx := uint64(100 + g*10 + i)
				if err := l.CommitBatch([]Record{{Type: RecCommit, Tx: tx}}, true); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := collect(t, l); len(got) != 41 {
		t.Fatalf("replayed %d records, want 41", len(got))
	}
}

// TestCommitBatchInteropWithSyncBarrier mixes the legacy barrier path with
// CommitBatch to ensure the shared syncedTo watermark stays coherent.
func TestCommitBatchInteropWithSyncBarrier(t *testing.T) {
	l, _ := openTemp(t)
	var fsyncs atomic.Int64
	l.SetHooks(nil, func(time.Duration) { fsyncs.Add(1) })
	if err := l.CommitBatch([]Record{{Type: RecCommit, Tx: 1}}, true); err != nil {
		t.Fatal(err)
	}
	// Everything appended so far is durable; the barrier must be satisfied
	// without another fsync.
	if err := l.SyncBarrier(); err != nil {
		t.Fatal(err)
	}
	if n := fsyncs.Load(); n != 1 {
		t.Fatalf("barrier after durable group fsynced again (%d total, want 1)", n)
	}
}
