package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it.
	vals := []uint64{0, 1, 2, 3, 7, 8, 9, 10, 15, 16, 17, 31, 32, 100, 1000,
		12345, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, 1<<63 + 12345}
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		lo, width := bucketBounds(idx)
		fv := float64(v)
		if fv < lo || fv >= lo+width {
			t.Errorf("value %d in bucket %d with bounds [%g, %g)", v, idx, lo, lo+width)
		}
	}
	// Monotonicity: bucket index never decreases with the value.
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..10_000ns: p50 ≈ 5000, p95 ≈ 9500, p99 ≈ 9900. The
	// log-bucket design guarantees ≤ 25% relative error per bucket; check
	// against a slightly looser bound to stay robust at bucket edges.
	for i := 1; i <= 10000; i++ {
		h.Observe(time.Duration(i))
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	wantSum := uint64(10000 * 10001 / 2)
	if s.SumNs != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNs, wantSum)
	}
	checks := []struct {
		q, want float64
	}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.30 {
			t.Errorf("q%.2f = %g, want ≈ %g (rel err %.2f)", c.q, got, c.want, rel)
		}
	}
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Error("precomputed quantiles disagree with Quantile()")
	}
	if mean := s.Mean(); math.Abs(mean-5000.5) > 1 {
		t.Errorf("mean = %g, want 5000.5", mean)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	// Values below 8ns are exact: every quantile is 3 ± bucket width 1.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := s.Quantile(q); got < 3 || got > 4 {
			t.Errorf("q%g = %g, want within [3,4]", q, got)
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.P99 != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-5 * time.Second) // clamps to 0
	s = h.Snapshot()
	if s.Count != 1 || s.SumNs != 0 {
		t.Errorf("negative observation: count=%d sum=%d", s.Count, s.SumNs)
	}
}

func TestHistogramSkewedDistribution(t *testing.T) {
	// 99% fast ops at ~1µs, 1% slow at ~1ms: p50 must stay near 1µs while
	// p99 climbs toward the slow mode — the shape that motivates
	// histograms over plain means.
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		if rng.Intn(100) == 0 {
			h.Observe(time.Duration(1e6 + rng.Intn(1000)))
		} else {
			h.Observe(time.Duration(1000 + rng.Intn(100)))
		}
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > 2000 {
		t.Errorf("p50 = %g, want ≈ 1µs", p50)
	}
	if p995 := s.Quantile(0.995); p995 < 5e5 {
		t.Errorf("p99.5 = %g, want ≈ 1ms", p995)
	}
	if mean := s.Mean(); mean < 2000 || mean > 50000 {
		t.Errorf("mean = %g, want between the modes", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1 << 20)))
			}
		}(int64(g))
	}
	// Snapshot under concurrent writes must not tear bucket counts.
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		var bucketTotal uint64
		for _, c := range s.counts {
			bucketTotal += c
		}
		if bucketTotal > goroutines*per {
			t.Fatalf("bucket total %d exceeds writes", bucketTotal)
		}
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestRegistrySnapshotAndLookup(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	gv := int64(7)
	r.Gauge("test_residents", "resident objects", func() int64 { return gv })
	h := r.Histogram("test_latency_ns", "latency")
	c.Add(41)
	c.Inc()
	h.Observe(100)
	h.Observe(200)

	s := r.Snapshot()
	if v, ok := s.Counter("test_ops_total"); !ok || v != 42 {
		t.Fatalf("counter = %d, %v", v, ok)
	}
	if v, ok := s.Gauge("test_residents"); !ok || v != 7 {
		t.Fatalf("gauge = %d, %v", v, ok)
	}
	hs, ok := s.Histogram("test_latency_ns")
	if !ok || hs.Count != 2 || hs.SumNs != 300 {
		t.Fatalf("histogram = %+v, %v", hs, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Fatal("missing counter found")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Histogram("dup", "")
}

func TestPrometheusAndExpvarRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("sentinel_sends_total", "method dispatches").Add(3)
	r.Gauge("sentinel_rules_defined", "rules", func() int64 { return 2 })
	h := r.Histogram("sentinel_tx_commit_ns", "commit latency")
	h.Observe(1000)
	s := r.Snapshot()

	var prom strings.Builder
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE sentinel_sends_total counter",
		"sentinel_sends_total 3",
		"# TYPE sentinel_rules_defined gauge",
		"sentinel_rules_defined 2",
		"# TYPE sentinel_tx_commit_seconds summary",
		`sentinel_tx_commit_seconds{quantile="0.5"}`,
		"sentinel_tx_commit_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	var ev strings.Builder
	if err := s.WriteExpvar(&ev); err != nil {
		t.Fatal(err)
	}
	js := ev.String()
	for _, want := range []string{
		`"sentinel_sends_total": 3`,
		`"sentinel_rules_defined": 2`,
		`"sentinel_tx_commit_ns": {"count": 1, "sum_ns": 1000`,
	} {
		if !strings.Contains(js, want) {
			t.Errorf("expvar output missing %q:\n%s", want, js)
		}
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowRule{Rule: string(rune('a' + i)), Total: time.Duration(i)})
	}
	entries, total := l.Entries()
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
	if len(entries) != 3 {
		t.Fatalf("len = %d", len(entries))
	}
	if entries[0].Rule != "c" || entries[2].Rule != "e" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Seq != 3 || entries[2].Seq != 5 {
		t.Fatalf("seqs = %d, %d", entries[0].Seq, entries[2].Seq)
	}
}
