// Package obs is Sentinel's zero-dependency observability layer: tracing
// hooks, lock-free metrics, and the surfaces that expose them.
//
// The paper's position is that events and rules are first-class objects you
// can inspect; obs extends that to the *runtime behaviour* of those objects.
// It has three parts, all built only on the standard library:
//
//   - Tracer: a struct of optional callback hooks (in the style of
//     net/http/httptrace.ClientTrace) that the core runtime invokes at every
//     interesting point — occurrence raised, composite detection, rule
//     scheduled/fired, transaction begin/commit/abort, WAL append/fsync,
//     page fault/eviction. A nil Tracer (the default) costs one atomic
//     pointer load per hook site and zero allocations.
//
//   - Registry: a set of named atomic counters, callback gauges, and
//     log-bucketed latency histograms. The mutation path is lock-free
//     (atomic adds); registration happens once at open. Snapshot() produces
//     an immutable point-in-time view with p50/p95/p99 quantile estimates.
//
//   - Surfaces: Prometheus-style text and expvar-style JSON rendering of a
//     snapshot, an optional HTTP listener serving both, and a bounded
//     slow-rule log.
//
// The overhead contract: with no tracer installed, counters cost one atomic
// add each and the hot raise path stays allocation-free; latency histograms
// for high-frequency operations (rule firings, condition evaluations) are
// fed by sampling (1 in N, see core's Options.MetricsSampling) so the
// timer-call cost is amortized away, while low-frequency operations
// (commit, fsync, fault-in, checkpoint) are always timed.
package obs

import "time"

// Tracer is a set of hooks into the runtime's execution. Any hook may be
// nil: the runtime skips it. Hooks run synchronously on the hot path of the
// goroutine that triggered them — they must be fast and must not call back
// into the database that invoked them (deadlock: hooks may run under
// internal locks). All hooks must be safe for concurrent use.
//
// Install one with Database.SetTracer; the argument structs are passed by
// value and must not be retained with their slices aliased past the call.
type Tracer struct {
	// OccurrenceRaised fires for every primitive-event occurrence, whether
	// or not any consumer observes it.
	OccurrenceRaised func(OccurrenceInfo)
	// CompositeDetected fires when a rule's local detector signals its
	// event definition (one call per detection, after the occurrence that
	// completed it).
	CompositeDetected func(DetectionInfo)
	// RuleScheduled fires when a detection is scheduled for execution:
	// immediately (in-line), deferred (end of transaction), or detached
	// (post-commit transaction).
	RuleScheduled func(RuleScheduleInfo)
	// RuleFired fires after a scheduled rule executed: condition evaluated
	// and, when it held, action run. Durations are measured per call.
	RuleFired func(RuleFireInfo)
	// TxBegin, TxCommit and TxAbort trace transaction boundaries. TxCommit
	// reports the full commit duration including deferred-rule drain,
	// logging and fsync.
	TxBegin  func(TxInfo)
	TxCommit func(TxInfo)
	TxAbort  func(TxInfo)
	// WALAppend and WALFsync trace the write-ahead log: every record batch
	// appended and every physical fsync (group commit means one fsync can
	// cover several commits).
	WALAppend func(WALInfo)
	WALFsync  func(WALInfo)
	// PageFault fires when an object is decoded from the heap on demand;
	// PageEvict fires once per clock sweep with the number of residents
	// reclaimed.
	PageFault func(PageInfo)
	PageEvict func(PageInfo)
}

// OccurrenceInfo describes one raised primitive-event occurrence.
type OccurrenceInfo struct {
	Source uint64 // OID of the raising object
	Class  string // dynamic class of the source
	Method string // method (or explicit event) name
	Moment string // "begin", "end" or "explicit"
	Seq    uint64 // database-wide logical timestamp
	Tx     uint64 // surrounding transaction id
}

// DetectionInfo describes one signalled (possibly composite) event
// detection.
type DetectionInfo struct {
	Rule         string // consuming rule
	Event        string // the rule's event definition, rendered
	Constituents int    // occurrences participating in the detection
	FirstSeq     uint64 // logical timestamp of the initiator
	LastSeq      uint64 // logical timestamp of the terminator
	Tx           uint64
}

// RuleScheduleInfo describes a detection entering the execution pipeline.
type RuleScheduleInfo struct {
	Rule     string
	Coupling string // "immediate", "deferred" or "detached"
	Priority int
	Depth    int // rule-cascade depth of the surrounding execution
	Tx       uint64
}

// RuleFireInfo describes one completed rule execution.
type RuleFireInfo struct {
	Rule      string
	Coupling  string
	Depth     int
	Condition time.Duration // condition evaluation time (0 if none)
	Action    time.Duration // action execution time (0 if skipped)
	Fired     bool          // condition held and the action ran
	Err       error         // execution error (including aborts), if any
	Tx        uint64
}

// TxInfo describes a transaction boundary.
type TxInfo struct {
	Tx       uint64
	Duration time.Duration // commit only: full Commit() latency
	Err      error         // commit only: failure, if any
}

// WALInfo describes write-ahead-log activity.
type WALInfo struct {
	Bytes    int // appended bytes (append only)
	Duration time.Duration
}

// PageInfo describes demand-paging activity.
type PageInfo struct {
	OID      uint64        // faulted object (fault only)
	Class    string        // class of the faulted object (fault only)
	Evicted  int           // residents reclaimed (evict only)
	Duration time.Duration // fault-in decode latency (fault only)
}

// SlowRule is one entry of the slow-rule log: a rule execution whose total
// (condition + action) time exceeded the configured threshold.
type SlowRule struct {
	Rule     string
	Coupling string
	Total    time.Duration
	Cond     time.Duration
	Action   time.Duration
	Fired    bool
	Seq      uint64 // monotone entry number, for loss detection
}
