package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed latency histogram. Buckets are
// geometric with 4 sub-buckets per power of two (relative error ≤ 12.5% at
// a bucket midpoint), except that values below 8ns land in exact unit
// buckets. Observe is wait-free: one atomic add into the bucket array plus
// two atomic adds for count and sum. There is no snapshot lock — Snapshot
// reads the atomics individually, so a snapshot taken under concurrent
// writes is consistent-enough for monitoring (counts may be mid-update
// relative to the sum by a few observations, never torn).
type Histogram struct {
	name, help string
	counts     [histBuckets]atomic.Uint64
	count      atomic.Uint64
	sum        atomic.Uint64 // nanoseconds
}

const (
	histSubBits = 2                // sub-buckets per octave = 1<<histSubBits
	histSub     = 1 << histSubBits // 4
	// Buckets 0..7 hold exact values 0..7ns; octaves 4..64 get histSub
	// buckets each. 2^64ns ≈ 584 years, so nothing clamps in practice.
	histBuckets = histSub*2 + (64-histSubBits-1)*histSub // 252
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub*2 { // 0..7: exact
		return int(v)
	}
	o := bits.Len64(v)                                  // v in [2^(o-1), 2^o), o >= 4
	sub := (v >> (o - 1 - histSubBits)) & (histSub - 1) // bits below the leading 1
	return histSub*2 + (o-histSubBits-2)*histSub + int(sub)
}

// bucketBounds returns the inclusive lower bound and width of a bucket.
func bucketBounds(idx int) (lo, width float64) {
	if idx < histSub*2 {
		return float64(idx), 1
	}
	k := idx - histSub*2
	o := k/histSub + histSubBits + 2 // bits.Len of members
	sub := k % histSub
	w := uint64(1) << (o - 1 - histSubBits)
	l := uint64(1)<<(o-1) + uint64(sub)*w
	return float64(l), float64(w)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram state for quantile queries and rendering.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Help:  h.help,
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
	}
	var counts []uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			if counts == nil {
				counts = make([]uint64, histBuckets)
			}
			counts[i] = c
		}
	}
	s.counts = counts
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is an immutable point-in-time view of a Histogram with
// precomputed p50/p95/p99 (nanoseconds; 0 when empty).
type HistogramSnapshot struct {
	Name          string
	Help          string
	Count         uint64
	SumNs         uint64
	P50, P95, P99 float64

	counts []uint64 // nil when empty
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by linear
// interpolation within the bucket where the cumulative count crosses the
// rank. The estimate is exact below 8ns and within one sub-bucket (≤ 25%
// relative width) above.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || s.counts == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, width := bucketBounds(i)
			frac := 0.5 // empty target (q=0): bucket midpoint
			if c > 0 && target > cum {
				frac = (target - cum) / float64(c)
			}
			return lo + frac*width
		}
		cum = next
	}
	// Numerical tail: return the upper edge of the last occupied bucket.
	for i := len(s.counts) - 1; i >= 0; i-- {
		if s.counts[i] != 0 {
			lo, width := bucketBounds(i)
			return lo + width
		}
	}
	return 0
}
