package obs

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server is the optional metrics HTTP listener. It serves
//
//	GET /metrics     Prometheus text exposition format
//	GET /debug/vars  expvar-style JSON
//
// over a registry. It binds eagerly (Serve returns an error if the address
// is taken) so misconfiguration surfaces at open, and shuts down
// deterministically: Close stops the listener and waits for in-flight
// handlers to drain.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (host:port; ":0" picks a free port) and starts serving
// the registry's metrics in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.Snapshot().WriteExpvar(w)
	})
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal shutdown path; anything else is
		// reported through Close.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.closeErr = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes idle and in-flight connections, and
// waits for the serve goroutine to exit. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		err := s.srv.Close()
		<-s.done
		if s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}
