package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Add increments the counter by n and returns the new value (useful for
// deriving sampling decisions from a counter the caller bumps anyway).
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a named instantaneous value, read through a callback at
// snapshot/render time (the registry never caches it).
type Gauge struct {
	name, help string
	fn         func() int64
}

// Registry holds a database instance's metrics. Registration (Counter,
// Gauge, Histogram) takes a lock and is meant for open time; the returned
// pointers are then used directly on the data path with no further registry
// involvement — counter adds and histogram observes are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a new counter. Names must be unique;
// duplicate registration panics (a wiring bug, not a runtime condition).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkDup(name)
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a callback gauge. fn must be safe for concurrent use.
func (r *Registry) Gauge(name, help string, fn func() int64) *Gauge {
	g := &Gauge{name: name, help: help, fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkDup(name)
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers and returns a new latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkDup(name)
	r.hists = append(r.hists, h)
	return h
}

func (r *Registry) checkDup(name string) {
	for _, c := range r.counters {
		if c.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
	for _, g := range r.gauges {
		if g.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
	for _, h := range r.hists {
		if h.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Help  string
	Value uint64
}

// GaugeValue is one gauge reading in a snapshot.
type GaugeValue struct {
	Name  string
	Help  string
	Value int64
}

// Snapshot is an immutable point-in-time view of a registry, sorted by
// metric name within each section.
type Snapshot struct {
	TakenAt    time.Time
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramSnapshot
}

// Snapshot captures every registered metric. Safe under concurrent
// mutation; gauge callbacks run on the calling goroutine.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()

	s := Snapshot{TakenAt: time.Now()}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Help: g.help, Value: g.fn()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns a counter's value by name (false if absent).
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns a gauge's value by name (false if absent).
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns a histogram snapshot by name (zero value if absent).
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}
