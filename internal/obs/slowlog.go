package obs

import "sync"

// SlowLog is a bounded ring of slow-rule executions. Appends happen only
// when a rule already blew the slow threshold, so a mutex is fine here —
// this is never the hot path.
type SlowLog struct {
	mu   sync.Mutex
	ring []SlowRule
	next int    // ring write position
	n    int    // entries stored (≤ len(ring))
	seq  uint64 // total entries ever appended
}

// NewSlowLog returns a log keeping the most recent cap entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{ring: make([]SlowRule, capacity)}
}

// Add appends one entry, evicting the oldest when full.
func (l *SlowLog) Add(e SlowRule) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Entries returns the retained entries, oldest first. Total is the number
// of slow executions ever recorded (entries beyond the ring capacity were
// dropped oldest-first).
func (l *SlowLog) Entries() (entries []SlowRule, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowRule, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out, l.seq
}
