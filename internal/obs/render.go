package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Counters and gauges map directly; histograms are rendered as
// summaries (quantile series plus _sum and _count), with durations
// converted from nanoseconds to seconds per Prometheus convention (the
// `_ns` name suffix is rewritten to `_seconds`).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if err := promHeader(w, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := promHeader(w, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := h.Name
		scale := 1.0
		if strings.HasSuffix(name, "_ns") {
			name = strings.TrimSuffix(name, "_ns") + "_seconds"
			scale = 1e-9
		}
		if err := promHeader(w, name, h.Help, "summary"); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, q.label, promFloat(q.v*scale)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(float64(h.SumNs)*scale)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func promHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExpvar renders the snapshot as a single expvar-style JSON object:
// counters and gauges as numbers, histograms as objects with count, sum_ns,
// mean_ns and the three stock quantiles. Keys are metric names, sorted (the
// snapshot sections already are).
func (s Snapshot) WriteExpvar(w io.Writer) error {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	field := func(name string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteByte('\n')
		}
		first = false
		b.WriteString(strconv.Quote(name))
		b.WriteString(": ")
	}
	for _, c := range s.Counters {
		field(c.Name)
		b.WriteString(strconv.FormatUint(c.Value, 10))
	}
	for _, g := range s.Gauges {
		field(g.Name)
		b.WriteString(strconv.FormatInt(g.Value, 10))
	}
	for _, h := range s.Histograms {
		field(h.Name)
		fmt.Fprintf(&b, `{"count": %d, "sum_ns": %d, "mean_ns": %s, "p50_ns": %s, "p95_ns": %s, "p99_ns": %s}`,
			h.Count, h.SumNs, promFloat(h.Mean()), promFloat(h.P50), promFloat(h.P95), promFloat(h.P99))
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
