package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("sentinel_sends_total", "sends").Add(9)
	r.Histogram("sentinel_rule_firing_ns", "firing latency").Observe(500)

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	prom := get("/metrics")
	if !strings.Contains(prom, "sentinel_sends_total 9") {
		t.Errorf("prometheus body missing counter:\n%s", prom)
	}
	if !strings.Contains(prom, "sentinel_rule_firing_seconds_count 1") {
		t.Errorf("prometheus body missing summary:\n%s", prom)
	}

	ev := get("/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(ev), &decoded); err != nil {
		t.Fatalf("expvar body is not valid JSON: %v\n%s", err, ev)
	}
	if decoded["sentinel_sends_total"] != float64(9) {
		t.Errorf("expvar counter = %v", decoded["sentinel_sends_total"])
	}
}

func TestServerCloseIdempotentAndDeterministic(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

func TestServeBindFailure(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Serve(s.Addr(), NewRegistry()); err == nil {
		t.Fatal("second bind on the same address must fail")
	}
}
