// Package vfs abstracts the filesystem operations the storage stack
// performs (open/read/write/sync/rename/truncate), so the WAL, the buffer
// pool and the heap can run either against the real OS filesystem or
// against test filesystems that inject faults and enumerate crash states.
//
// Three implementations ship with the package:
//
//   - OS: a passthrough to the os package (the production default),
//   - NewMem: an in-memory filesystem for fast hermetic tests,
//   - NewFault: an in-memory filesystem that journals every mutating
//     operation, can fail the Nth one with a chosen error, and can
//     materialize the file state a power cut at any journal position
//     would leave behind (see CrashState).
package vfs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
)

// File is an open file handle. The method set is exactly what the storage
// layers need: sequential and positional reads/writes, Seek, Sync,
// Truncate, and Size (in place of Stat).
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Sync forces the file contents to stable storage.
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() (int64, error)
}

// FS is a filesystem. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics for the flag subset
	// the storage stack uses: O_RDWR, O_CREATE, O_TRUNC, O_RDONLY.
	OpenFile(path string, flag int, perm iofs.FileMode) (File, error)
	// ReadFile returns the whole contents of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm iofs.FileMode) error
	// SyncDir forces directory metadata (created/renamed/removed entries
	// under dir) to stable storage. Implementations for which this is
	// meaningless return nil.
	SyncDir(dir string) error
}

// OS is the passthrough filesystem used in production.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadFile(path string) ([]byte, error)          { return os.ReadFile(path) }
func (osFS) Rename(oldPath, newPath string) error          { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                      { return os.Remove(path) }
func (osFS) MkdirAll(dir string, perm iofs.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir fsyncs the directory itself, making renames and creates under it
// durable. Filesystems that do not support fsync on directories report
// EINVAL/ENOTSUP; those errors are swallowed — on such systems directory
// durability is the best the platform offers either way.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vfs: syncdir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Directory fsync is not universally supported; treat failure as
		// a no-op rather than aborting a checkpoint that already synced
		// its data.
		return nil
	}
	return nil
}

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error)                { return o.f.Read(p) }
func (o osFile) Write(p []byte) (int, error)               { return o.f.Write(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error)   { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error)  { return o.f.WriteAt(p, off) }
func (o osFile) Seek(off int64, whence int) (int64, error) { return o.f.Seek(off, whence) }
func (o osFile) Close() error                              { return o.f.Close() }
func (o osFile) Sync() error                               { return o.f.Sync() }
func (o osFile) Truncate(size int64) error                 { return o.f.Truncate(size) }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// WriteFile writes data to path through fs: create/truncate, write, sync,
// close. It does NOT sync the directory; callers that need the entry
// durable call fs.SyncDir afterwards.
func WriteFile(fs FS, path string, data []byte, perm iofs.FileMode) error {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
