package vfs

// Latency wraps another FS and injects a fixed delay into Sync (and,
// optionally, every write). It models a storage device with realistic
// fsync cost on top of the instant in-memory filesystems, which is what
// makes group-commit behaviour observable in tests and benchmarks: with
// zero-cost fsyncs committers never overlap long enough to coalesce, so
// commits-per-fsync measurements degenerate to 1 regardless of load.

import (
	iofs "io/fs"
	"sync/atomic"
	"time"
)

// Latency is an FS decorator that sleeps on Sync/SyncDir (SyncDelay) and
// on Write/WriteAt (WriteDelay). The zero delays make it a passthrough.
type Latency struct {
	inner      FS
	SyncDelay  time.Duration
	WriteDelay time.Duration

	syncs atomic.Int64 // fsyncs observed (file Sync calls only)
}

// NewLatency wraps inner with the given per-operation delays.
func NewLatency(inner FS, syncDelay, writeDelay time.Duration) *Latency {
	return &Latency{inner: inner, SyncDelay: syncDelay, WriteDelay: writeDelay}
}

// Syncs returns the number of file Sync calls observed, for
// commits-per-fsync accounting in benchmarks.
func (l *Latency) Syncs() int64 { return l.syncs.Load() }

func (l *Latency) OpenFile(path string, flag int, perm iofs.FileMode) (File, error) {
	f, err := l.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, fs: l}, nil
}

func (l *Latency) ReadFile(path string) ([]byte, error) { return l.inner.ReadFile(path) }
func (l *Latency) Rename(oldPath, newPath string) error { return l.inner.Rename(oldPath, newPath) }
func (l *Latency) Remove(path string) error             { return l.inner.Remove(path) }
func (l *Latency) MkdirAll(dir string, perm iofs.FileMode) error {
	return l.inner.MkdirAll(dir, perm)
}
func (l *Latency) SyncDir(dir string) error {
	if l.SyncDelay > 0 {
		time.Sleep(l.SyncDelay)
	}
	return l.inner.SyncDir(dir)
}

// latencyFile delays Sync and writes; reads pass through untouched.
type latencyFile struct {
	File
	fs *Latency
}

func (f *latencyFile) Write(p []byte) (int, error) {
	if f.fs.WriteDelay > 0 {
		time.Sleep(f.fs.WriteDelay)
	}
	return f.File.Write(p)
}

func (f *latencyFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fs.WriteDelay > 0 {
		time.Sleep(f.fs.WriteDelay)
	}
	return f.File.WriteAt(p, off)
}

func (f *latencyFile) Sync() error {
	f.fs.syncs.Add(1)
	if f.fs.SyncDelay > 0 {
		time.Sleep(f.fs.SyncDelay)
	}
	return f.File.Sync()
}
