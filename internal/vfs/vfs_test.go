package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// fileOps exercises the File contract shared by every implementation.
func fileOps(t *testing.T, fs FS, path string) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("WALD"), 6); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "WALDd" {
		t.Fatalf("ReadAt = %q, want %q", buf, "WALDd")
	}
	if sz, err := f.Size(); err != nil || sz != 11 {
		t.Fatalf("Size = %d, %v; want 11", sz, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 5)
	if _, err := io.ReadFull(f, all); err != nil {
		t.Fatal(err)
	}
	if string(all) != "hello" {
		t.Fatalf("contents = %q, want %q", all, "hello")
	}
	// Sequential read at EOF.
	if n, err := f.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF = %d, %v; want 0, EOF", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("ReadFile = %q", data)
	}
	// Rename, then the old path must be gone.
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile after rename: err = %v, want not-exist", err)
	}
	if err := fs.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestOSFileOps(t *testing.T) {
	dir := t.TempDir()
	fileOps(t, OS, filepath.Join(dir, "f"))
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestMemFileOps(t *testing.T)   { fileOps(t, NewMem(), "dir/f") }
func TestFaultFileOps(t *testing.T) { fileOps(t, NewFault(), "dir/f") }

func TestMemHandleSurvivesRename(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("one"))
	if err := m.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Writes through the old handle land in the renamed file.
	f.Write([]byte("-two"))
	data, err := m.ReadFile("b")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "one-two" {
		t.Fatalf("contents = %q", data)
	}
}

func TestMemSnapshotInstall(t *testing.T) {
	m := NewMem()
	WriteFile(m, "x", []byte("abc"), 0o644)
	snap := m.Snapshot()
	m2 := NewMem()
	m2.Install(snap)
	data, err := m2.ReadFile("x")
	if err != nil || !bytes.Equal(data, []byte("abc")) {
		t.Fatalf("installed copy = %q, %v", data, err)
	}
	// Deep copy: mutating the new filesystem leaves the snapshot alone.
	f, _ := m2.OpenFile("x", os.O_RDWR, 0)
	f.WriteAt([]byte("Z"), 0)
	if !bytes.Equal(snap["x"], []byte("abc")) {
		t.Fatal("snapshot aliased installed data")
	}
}

func TestFaultInjectsErrors(t *testing.T) {
	fs := NewFault()
	f, err := fs.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644) // op 1: create
	if err != nil {
		t.Fatal(err)
	}

	fs.FailNthOp(fs.Ops()+1, FaultEIO)
	if _, err := f.Write([]byte("data")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write err = %v, want EIO", err)
	}
	// One-shot: the same write succeeds on retry.
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("healed write err = %v", err)
	}

	fs.FailNthOp(fs.Ops()+1, FaultENOSPC)
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sync err = %v, want ENOSPC", err)
	}

	fs.FailNthOp(fs.Ops()+1, FaultShortWrite)
	n, err := f.WriteAt([]byte("0123456789"), 0)
	if n != 5 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write = %d, %v; want 5, EIO", n, err)
	}
	if fs.Injected() != 3 {
		t.Fatalf("Injected = %d, want 3", fs.Injected())
	}
	// The short write applied exactly its prefix.
	data, _ := fs.ReadFile("f")
	if !bytes.HasPrefix(data, []byte("01234")) || bytes.Contains(data, []byte("56789")) {
		t.Fatalf("contents after short write = %q", data)
	}
}

func TestFaultCrashStateModes(t *testing.T) {
	fs := NewFault()
	// Classic atomic-replace sequence with a missing temp-file fsync:
	// create tmp, write tmp, rename tmp->idx, fsync other file.
	WriteFile(fs, "other", []byte("o"), 0o644) // create+write+sync: ops 1-3
	tmp, _ := fs.OpenFile("tmp", os.O_RDWR|os.O_CREATE, 0o644) // op 4
	tmp.Write([]byte("INDEX"))                                 // op 5 (unsynced)
	tmp.Close()
	fs.Rename("tmp", "idx") // op 6
	other, _ := fs.OpenFile("other", os.O_RDWR, 0o644)
	other.Sync() // op 7: any-sync commits metadata under CrashSynced

	end := fs.Ops()
	if end != 7 {
		t.Fatalf("ops = %d, want 7", end)
	}

	// Buffered: everything applied.
	st := fs.CrashState(end, CrashBuffered)
	if !bytes.Equal(st["idx"], []byte("INDEX")) {
		t.Fatalf("buffered idx = %q", st["idx"])
	}

	// Metadata-durable: rename survives, unsynced data does not -> the
	// zero-length-index bug state.
	st = fs.CrashState(end, CrashMetadata)
	if data, ok := st["idx"]; !ok || len(data) != 0 {
		t.Fatalf("metadata idx = %q, %v; want present and empty", data, ok)
	}
	if _, ok := st["tmp"]; ok {
		t.Fatal("metadata mode kept the temp path after rename")
	}

	// Synced: the trailing fsync commits the rename (ordered journal) but
	// not tmp's data; before the fsync, the rename itself is lost.
	st = fs.CrashState(end, CrashSynced)
	if data, ok := st["idx"]; !ok || len(data) != 0 {
		t.Fatalf("synced idx = %q, %v; want present and empty", data, ok)
	}
	st = fs.CrashState(end-1, CrashSynced) // cut before the fsync
	if _, ok := st["idx"]; ok {
		t.Fatal("rename durable without any subsequent sync")
	}
	// other's synced data is durable in every mode.
	for _, mode := range Modes {
		if st := fs.CrashState(end, mode); !bytes.Equal(st["other"], []byte("o")) {
			t.Fatalf("mode %v lost synced data: %q", mode, st["other"])
		}
	}
}

func TestFaultCrashStateFollowsInodeAcrossRename(t *testing.T) {
	fs := NewFault()
	f, _ := fs.OpenFile("log.tmp", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("AAA"))
	f.Sync()
	fs.Rename("log.tmp", "log")
	f.Write([]byte("BBB")) // through the old handle, post-rename
	f.Sync()

	st := fs.CrashState(fs.Ops(), CrashSynced)
	if !bytes.Equal(st["log"], []byte("AAABBB")) {
		t.Fatalf("log = %q, want AAABBB", st["log"])
	}
}
