package vfs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Mem is an in-memory filesystem: a dirent table mapping paths to inodes.
// File handles reference inodes, so (as on a real filesystem) a handle
// keeps working across a rename of its path. Safe for concurrent use.
type Mem struct {
	mu     sync.Mutex
	dirent map[string]*memInode
	dirs   map[string]bool
}

type memInode struct {
	data []byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{dirent: make(map[string]*memInode), dirs: make(map[string]bool)}
}

func clean(path string) string { return filepath.Clean(path) }

func notExist(op, path string) error {
	return &iofs.PathError{Op: op, Path: path, Err: iofs.ErrNotExist}
}

// OpenFile opens path. Missing files are created only with os.O_CREATE;
// os.O_TRUNC empties an existing file.
func (m *Mem) OpenFile(path string, flag int, _ iofs.FileMode) (File, error) {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.dirent[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		ino = &memInode{}
		m.dirent[path] = ino
	} else if flag&os.O_TRUNC != 0 {
		ino.data = nil
	}
	return &memFile{fs: m, ino: ino}, nil
}

// ReadFile returns a copy of the contents of path.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.dirent[path]
	if !ok {
		return nil, notExist("open", path)
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename atomically points newPath at oldPath's inode.
func (m *Mem) Rename(oldPath, newPath string) error {
	oldPath, newPath = clean(oldPath), clean(newPath)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.dirent[oldPath]
	if !ok {
		return notExist("rename", oldPath)
	}
	delete(m.dirent, oldPath)
	m.dirent[newPath] = ino
	return nil
}

// Remove unlinks path; open handles keep their inode.
func (m *Mem) Remove(path string) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dirent[path]; !ok {
		return notExist("remove", path)
	}
	delete(m.dirent, path)
	return nil
}

// MkdirAll records the directory; Mem does not enforce parent existence.
func (m *Mem) MkdirAll(dir string, _ iofs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[clean(dir)] = true
	return nil
}

// SyncDir is a no-op: Mem has no volatile cache.
func (m *Mem) SyncDir(string) error { return nil }

// Snapshot returns a deep copy of every file (path -> contents).
func (m *Mem) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.dirent))
	for p, ino := range m.dirent {
		out[p] = append([]byte(nil), ino.data...)
	}
	return out
}

// Install replaces the filesystem contents with the given files (deep
// copied). Used to materialize a crash state into a fresh filesystem.
func (m *Mem) Install(files map[string][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirent = make(map[string]*memInode, len(files))
	for p, data := range files {
		m.dirent[clean(p)] = &memInode{data: append([]byte(nil), data...)}
	}
}

// memFile is a handle on a Mem inode.
type memFile struct {
	fs  *Mem
	ino *memInode
	pos int64
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.pos >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative read offset %d", off)
	}
	if off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n := f.writeAtLocked(p, f.pos)
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative write offset %d", off)
	}
	return f.writeAtLocked(p, off), nil
}

func (f *memFile) writeAtLocked(p []byte, off int64) int {
	end := off + int64(len(p))
	if grow := end - int64(len(f.ino.data)); grow > 0 {
		f.ino.data = append(f.ino.data, make([]byte, grow)...)
	}
	copy(f.ino.data[off:end], p)
	return len(p)
}

func (f *memFile) Seek(off int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.ino.data))
	default:
		return 0, fmt.Errorf("vfs: bad seek whence %d", whence)
	}
	if base+off < 0 {
		return 0, fmt.Errorf("vfs: negative seek position")
	}
	f.pos = base + off
	return f.pos, nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	switch {
	case size < 0:
		return fmt.Errorf("vfs: negative truncate size %d", size)
	case size <= int64(len(f.ino.data)):
		f.ino.data = f.ino.data[:size]
	default:
		f.ino.data = append(f.ino.data, make([]byte, size-int64(len(f.ino.data)))...)
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.ino.data)), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
