package vfs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"sync"
	"syscall"
)

// FaultKind selects the error a Fault filesystem injects.
type FaultKind int

const (
	// FaultEIO fails the operation with EIO and no effect.
	FaultEIO FaultKind = iota
	// FaultENOSPC fails the operation with ENOSPC and no effect.
	FaultENOSPC
	// FaultShortWrite applies only the first half of a write, then fails
	// with EIO. Non-write operations fail as FaultEIO.
	FaultShortWrite
)

// CrashMode selects how CrashState materializes a power cut.
type CrashMode int

const (
	// CrashSynced models an ordered-journal filesystem (ext4 data=ordered):
	// file data issued before the cut is durable only if a later fsync of
	// that file preceded the cut; directory operations (create, rename,
	// remove) are durable if ANY later sync — fsync of any file or a
	// directory sync — preceded the cut, because the journal commits
	// metadata in order.
	CrashSynced CrashMode = iota
	// CrashMetadata models journaled metadata with a lost page cache: every
	// directory operation issued before the cut is durable, but file data
	// survives only if fsynced. This is the worst case that turns an
	// unsynced write-then-rename into a zero-length file after the rename.
	CrashMetadata
	// CrashBuffered applies every operation issued before the cut, as if
	// the disk persisted exactly what the OS had buffered. Sweeping the
	// cut point through a multi-write commit yields torn-write prefixes.
	CrashBuffered
)

func (m CrashMode) String() string {
	switch m {
	case CrashSynced:
		return "synced"
	case CrashMetadata:
		return "metadata"
	case CrashBuffered:
		return "buffered"
	}
	return fmt.Sprintf("CrashMode(%d)", int(m))
}

// Modes lists every crash mode, for sweep loops.
var Modes = []CrashMode{CrashSynced, CrashMetadata, CrashBuffered}

type opKind uint8

const (
	opWrite opKind = iota
	opTruncate
	opCreate
	opRename
	opRemove
	opSync
	opSyncDir
)

// op is one journaled mutating operation. Data operations (write,
// truncate, sync) reference the inode, so they follow a file across
// renames exactly as writes through a real file descriptor do; directory
// operations reference paths.
type op struct {
	kind        opKind
	ino         int
	path, path2 string
	off         int64
	data        []byte
	size        int64
}

// Fault is an in-memory filesystem that journals every mutating operation,
// can fail the Nth one with a chosen error, and can materialize the file
// state a power cut at any journal position would leave behind. Safe for
// concurrent use; the journal gives mutating operations a total order.
type Fault struct {
	mu      sync.Mutex
	dirent  map[string]*faultInode
	dirs    map[string]bool
	nextIno int
	journal []op

	failAt   int // 1-based op count to fail; 0 = disabled
	failKind FaultKind
	injected int
}

type faultInode struct {
	id   int
	data []byte
}

// NewFault returns an empty fault-injecting filesystem.
func NewFault() *Fault {
	return &Fault{dirent: make(map[string]*faultInode), dirs: make(map[string]bool)}
}

// Ops returns the number of mutating operations journaled so far. The
// half-open interval [0, Ops()] is the space of crash points.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.journal)
}

// FailNthOp arms a one-shot fault: the n-th mutating operation counted
// from the start (1-based, i.e. the operation that would become journal
// entry n) fails with the given kind, after which the filesystem heals.
func (f *Fault) FailNthOp(n int, kind FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.failKind = kind
}

// Injected returns how many faults have fired.
func (f *Fault) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// checkFaultLocked reports whether the next mutating operation should
// fail, consuming the armed fault.
func (f *Fault) checkFaultLocked() (FaultKind, bool) {
	next := len(f.journal) + 1
	if f.failAt != 0 && next == f.failAt {
		f.failAt = 0
		f.injected++
		return f.failKind, true
	}
	return 0, false
}

func injectedErr(kind FaultKind) error {
	if kind == FaultENOSPC {
		return fmt.Errorf("vfs: injected fault: %w", syscall.ENOSPC)
	}
	return fmt.Errorf("vfs: injected fault: %w", syscall.EIO)
}

// OpenFile opens path; creating a file journals a directory operation,
// truncating an existing one journals a data operation.
func (f *Fault) OpenFile(path string, flag int, _ iofs.FileMode) (File, error) {
	path = clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.dirent[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		if kind, fail := f.checkFaultLocked(); fail {
			return nil, injectedErr(kind)
		}
		f.nextIno++
		ino = &faultInode{id: f.nextIno}
		f.dirent[path] = ino
		f.journal = append(f.journal, op{kind: opCreate, ino: ino.id, path: path})
	} else if flag&os.O_TRUNC != 0 && len(ino.data) > 0 {
		if kind, fail := f.checkFaultLocked(); fail {
			return nil, injectedErr(kind)
		}
		ino.data = nil
		f.journal = append(f.journal, op{kind: opTruncate, ino: ino.id, size: 0})
	}
	return &faultFile{fs: f, ino: ino}, nil
}

// ReadFile returns a copy of the contents of path.
func (f *Fault) ReadFile(path string) ([]byte, error) {
	path = clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.dirent[path]
	if !ok {
		return nil, notExist("open", path)
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename atomically points newPath at oldPath's inode.
func (f *Fault) Rename(oldPath, newPath string) error {
	oldPath, newPath = clean(oldPath), clean(newPath)
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.dirent[oldPath]
	if !ok {
		return notExist("rename", oldPath)
	}
	if kind, fail := f.checkFaultLocked(); fail {
		return injectedErr(kind)
	}
	delete(f.dirent, oldPath)
	f.dirent[newPath] = ino
	f.journal = append(f.journal, op{kind: opRename, path: oldPath, path2: newPath})
	return nil
}

// Remove unlinks path; open handles keep their inode.
func (f *Fault) Remove(path string) error {
	path = clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.dirent[path]; !ok {
		return notExist("remove", path)
	}
	if kind, fail := f.checkFaultLocked(); fail {
		return injectedErr(kind)
	}
	delete(f.dirent, path)
	f.journal = append(f.journal, op{kind: opRemove, path: path})
	return nil
}

// MkdirAll records the directory; Fault does not enforce parent existence
// and does not journal directory creation (the workloads under test create
// their directory before any interesting state exists).
func (f *Fault) MkdirAll(dir string, _ iofs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dirs[clean(dir)] = true
	return nil
}

// SyncDir journals a directory sync, committing prior directory
// operations under CrashSynced.
func (f *Fault) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if kind, fail := f.checkFaultLocked(); fail {
		return injectedErr(kind)
	}
	f.journal = append(f.journal, op{kind: opSyncDir, path: clean(dir)})
	return nil
}

// Files returns a deep copy of the current (fully applied) file state —
// what a clean shutdown would leave on disk.
func (f *Fault) Files() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.dirent))
	for p, ino := range f.dirent {
		out[p] = append([]byte(nil), ino.data...)
	}
	return out
}

// CrashState materializes the file state left behind by a power cut
// immediately before journal entry upTo (so upTo == Ops() means "after
// everything issued so far"), under the given durability mode. The result
// maps paths to contents and is suitable for Mem.Install.
func (f *Fault) CrashState(upTo int, mode CrashMode) map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if upTo > len(f.journal) {
		upTo = len(f.journal)
	}

	// durable[i] decides whether journal[i] applies to the crash state.
	durable := make([]bool, upTo)
	switch mode {
	case CrashBuffered:
		for i := range durable {
			durable[i] = true
		}
	case CrashSynced, CrashMetadata:
		// Walk backwards so that at index i the sets reflect syncs
		// strictly after i.
		anySync := false
		syncedIno := make(map[int]bool)
		for i := upTo - 1; i >= 0; i-- {
			switch f.journal[i].kind {
			case opWrite, opTruncate:
				durable[i] = syncedIno[f.journal[i].ino]
			case opCreate, opRename, opRemove:
				durable[i] = mode == CrashMetadata || anySync
			case opSync:
				syncedIno[f.journal[i].ino] = true
				anySync = true
			case opSyncDir:
				anySync = true
			}
		}
	}

	dirent := make(map[string]int)
	datas := make(map[int][]byte)
	for i := 0; i < upTo; i++ {
		if !durable[i] {
			continue
		}
		o := f.journal[i]
		switch o.kind {
		case opCreate:
			dirent[o.path] = o.ino
		case opRename:
			if ino, ok := dirent[o.path]; ok {
				delete(dirent, o.path)
				dirent[o.path2] = ino
			}
		case opRemove:
			delete(dirent, o.path)
		case opWrite:
			data := datas[o.ino]
			end := o.off + int64(len(o.data))
			if grow := end - int64(len(data)); grow > 0 {
				data = append(data, make([]byte, grow)...)
			}
			copy(data[o.off:end], o.data)
			datas[o.ino] = data
		case opTruncate:
			data := datas[o.ino]
			if o.size <= int64(len(data)) {
				datas[o.ino] = data[:o.size]
			} else {
				datas[o.ino] = append(data, make([]byte, o.size-int64(len(data)))...)
			}
		}
	}

	out := make(map[string][]byte, len(dirent))
	for p, ino := range dirent {
		out[p] = append([]byte(nil), datas[ino]...)
	}
	return out
}

// faultFile is a handle on a Fault inode.
type faultFile struct {
	fs  *Fault
	ino *faultInode
	pos int64
}

func (f *faultFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.pos >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative read offset %d", off)
	}
	if off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.writeAtLocked(p, f.pos)
	f.pos += int64(n)
	return n, err
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative write offset %d", off)
	}
	return f.writeAtLocked(p, off)
}

func (f *faultFile) writeAtLocked(p []byte, off int64) (int, error) {
	if kind, fail := f.fs.checkFaultLocked(); fail {
		if kind == FaultShortWrite && len(p) > 1 {
			half := p[:len(p)/2]
			f.applyWriteLocked(half, off)
			return len(half), injectedErr(FaultEIO)
		}
		return 0, injectedErr(kind)
	}
	f.applyWriteLocked(p, off)
	return len(p), nil
}

func (f *faultFile) applyWriteLocked(p []byte, off int64) {
	end := off + int64(len(p))
	if grow := end - int64(len(f.ino.data)); grow > 0 {
		f.ino.data = append(f.ino.data, make([]byte, grow)...)
	}
	copy(f.ino.data[off:end], p)
	f.fs.journal = append(f.fs.journal, op{
		kind: opWrite, ino: f.ino.id, off: off, data: append([]byte(nil), p...),
	})
}

func (f *faultFile) Seek(off int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.ino.data))
	default:
		return 0, fmt.Errorf("vfs: bad seek whence %d", whence)
	}
	if base+off < 0 {
		return 0, fmt.Errorf("vfs: negative seek position")
	}
	f.pos = base + off
	return f.pos, nil
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("vfs: negative truncate size %d", size)
	}
	if kind, fail := f.fs.checkFaultLocked(); fail {
		return injectedErr(kind)
	}
	if size <= int64(len(f.ino.data)) {
		f.ino.data = f.ino.data[:size]
	} else {
		f.ino.data = append(f.ino.data, make([]byte, size-int64(len(f.ino.data)))...)
	}
	f.fs.journal = append(f.fs.journal, op{kind: opTruncate, ino: f.ino.id, size: size})
	return nil
}

func (f *faultFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.ino.data)), nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if kind, fail := f.fs.checkFaultLocked(); fail {
		return injectedErr(kind)
	}
	f.fs.journal = append(f.fs.journal, op{kind: opSync, ino: f.ino.id})
	return nil
}

func (f *faultFile) Close() error { return nil }
