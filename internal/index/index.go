// Package index implements in-memory secondary indexes over object
// attributes: equality lookups from an attribute value to the OIDs of
// instances holding it.
//
// Indexes are declared per (class, attribute) and cover subclass instances.
// The core runtime maintains them on every attribute write, object
// creation and deletion (with undo hooks for aborted transactions), and
// persists their definitions as catalog objects so they are rebuilt on
// open. The motivating claim is the paper's §1 framing of reactive
// capability as "a unifying paradigm for handling a number of database
// features" — derived data kept consistent by the system reacting to
// changes.
package index

import (
	"fmt"
	"sync"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// Hash is an equality index on one attribute of one class (including its
// subclasses). It is safe for concurrent use.
type Hash struct {
	class string
	attr  string

	mu      sync.RWMutex
	buckets map[string][]oid.OID // encoded value -> OIDs (insertion order)
	entries int
}

// NewHash creates an empty index for class.attr.
func NewHash(class, attr string) *Hash {
	return &Hash{class: class, attr: attr, buckets: make(map[string][]oid.OID)}
}

// Class returns the indexed class name.
func (h *Hash) Class() string { return h.class }

// Attr returns the indexed attribute name.
func (h *Hash) Attr() string { return h.attr }

// Len returns the number of indexed objects.
func (h *Hash) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.entries
}

// key canonicalizes a value for bucketing. Numeric values bucket by their
// float64 representation so Int(3) and Float(3) collide, matching the
// expression language's equality.
func key(v value.Value) string {
	if f, ok := v.Numeric(); ok {
		return string(value.AppendValue([]byte{'n'}, value.Float(f)))
	}
	return string(value.AppendValue(nil, v))
}

// Add indexes id under v.
func (h *Hash) Add(id oid.OID, v value.Value) {
	k := key(v)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, x := range h.buckets[k] {
		if x == id {
			return
		}
	}
	h.buckets[k] = append(h.buckets[k], id)
	h.entries++
}

// Remove drops id from v's bucket (no-op when absent).
func (h *Hash) Remove(id oid.OID, v value.Value) {
	k := key(v)
	h.mu.Lock()
	defer h.mu.Unlock()
	lst := h.buckets[k]
	for i, x := range lst {
		if x == id {
			h.buckets[k] = append(lst[:i:i], lst[i+1:]...)
			h.entries--
			if len(h.buckets[k]) == 0 {
				delete(h.buckets, k)
			}
			return
		}
	}
}

// Move reindexes id from old to new value.
func (h *Hash) Move(id oid.OID, oldV, newV value.Value) {
	if key(oldV) == key(newV) {
		return
	}
	h.Remove(id, oldV)
	h.Add(id, newV)
}

// Lookup returns the OIDs currently indexed under v (a copy, in insertion
// order).
func (h *Hash) Lookup(v value.Value) []oid.OID {
	k := key(v)
	h.mu.RLock()
	defer h.mu.RUnlock()
	lst := h.buckets[k]
	if len(lst) == 0 {
		return nil
	}
	return append([]oid.OID(nil), lst...)
}

// Distinct returns the number of distinct indexed values.
func (h *Hash) Distinct() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets)
}

// String renders "index Class.attr (n entries, m distinct)".
func (h *Hash) String() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return fmt.Sprintf("index %s.%s (%d entries, %d distinct)", h.class, h.attr, h.entries, len(h.buckets))
}
