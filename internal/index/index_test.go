package index

import (
	"testing"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

func TestAddLookupRemove(t *testing.T) {
	h := NewHash("Emp", "name")
	h.Add(1, value.Str("fred"))
	h.Add(2, value.Str("fred"))
	h.Add(3, value.Str("mary"))

	if got := h.Lookup(value.Str("fred")); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("lookup fred = %v", got)
	}
	if got := h.Lookup(value.Str("mary")); len(got) != 1 || got[0] != 3 {
		t.Fatalf("lookup mary = %v", got)
	}
	if got := h.Lookup(value.Str("nobody")); got != nil {
		t.Fatalf("lookup nobody = %v", got)
	}
	if h.Len() != 3 || h.Distinct() != 2 {
		t.Fatalf("len=%d distinct=%d", h.Len(), h.Distinct())
	}

	h.Remove(1, value.Str("fred"))
	if got := h.Lookup(value.Str("fred")); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after remove: %v", got)
	}
	// Removing an absent pair is a no-op.
	h.Remove(99, value.Str("fred"))
	if h.Len() != 2 {
		t.Fatalf("len after noop remove = %d", h.Len())
	}
	// Empty buckets disappear.
	h.Remove(3, value.Str("mary"))
	if h.Distinct() != 1 {
		t.Fatalf("distinct = %d", h.Distinct())
	}
}

func TestAddIdempotent(t *testing.T) {
	h := NewHash("C", "a")
	h.Add(1, value.Int(5))
	h.Add(1, value.Int(5))
	if h.Len() != 1 {
		t.Fatalf("duplicate add counted: %d", h.Len())
	}
}

func TestMove(t *testing.T) {
	h := NewHash("C", "a")
	h.Add(1, value.Int(10))
	h.Move(1, value.Int(10), value.Int(20))
	if got := h.Lookup(value.Int(10)); got != nil {
		t.Fatalf("old value still indexed: %v", got)
	}
	if got := h.Lookup(value.Int(20)); len(got) != 1 {
		t.Fatalf("new value not indexed: %v", got)
	}
	// Move to the same key is a no-op.
	h.Move(1, value.Int(20), value.Float(20))
	if h.Len() != 1 {
		t.Fatalf("same-key move changed len: %d", h.Len())
	}
}

func TestNumericKeyUnification(t *testing.T) {
	// Int(3) and Float(3) must land in the same bucket, matching the
	// expression language's 3 == 3.0.
	h := NewHash("C", "a")
	h.Add(1, value.Int(3))
	h.Add(2, value.Float(3))
	if got := h.Lookup(value.Float(3.0)); len(got) != 2 {
		t.Fatalf("numeric unification: %v", got)
	}
	if got := h.Lookup(value.Int(3)); len(got) != 2 {
		t.Fatalf("numeric unification (int probe): %v", got)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	h := NewHash("C", "a")
	h.Add(1, value.Int(1))
	h.Add(2, value.Int(1))
	got := h.Lookup(value.Int(1))
	got[0] = oid.OID(999)
	if again := h.Lookup(value.Int(1)); again[0] != 1 {
		t.Fatal("Lookup result aliases internal state")
	}
}

func TestStringRendering(t *testing.T) {
	h := NewHash("Emp", "name")
	h.Add(1, value.Str("x"))
	if got := h.String(); got != "index Emp.name (1 entries, 1 distinct)" {
		t.Fatalf("String = %q", got)
	}
}
