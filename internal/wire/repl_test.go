package wire

// Replication codec coverage: round-trips for the three payload shapes the
// stream carries (frames batch, snap chunk, snap end), the bounds rule on
// hostile counts, and a fuzz target over the batch decoder (the largest of
// the three surfaces — it embeds the full event codec per occurrence).

import (
	"bytes"
	"testing"

	"sentinel/internal/value"
)

func sampleBatch() ReplBatch {
	return ReplBatch{
		LSN: 42,
		Recs: []ReplRec{
			{Type: 1, Tx: 7, OID: 3, Data: []byte("image-bytes")},
			{Type: 2, Tx: 7, OID: 9},
			{Type: 3, Tx: 7},
		},
		Occs: []Event{
			{Source: 3, Class: "Item", Method: "SetVal", Moment: 1, Seq: 99,
				Args: []value.Value{value.Int(5)}, ParamNames: []string{"v"}},
			{Source: 9, Class: "Item", Method: "Gone", Moment: 2, Seq: 100},
		},
	}
}

func TestReplBatchRoundTrip(t *testing.T) {
	in := sampleBatch()
	out, err := DecodeReplBatch(AppendReplBatch(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.LSN != in.LSN || len(out.Recs) != len(in.Recs) || len(out.Occs) != len(in.Occs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i, r := range out.Recs {
		w := in.Recs[i]
		if r.Type != w.Type || r.Tx != w.Tx || r.OID != w.OID || !bytes.Equal(r.Data, w.Data) {
			t.Fatalf("record %d: %+v vs %+v", i, r, w)
		}
	}
	for i, e := range out.Occs {
		w := in.Occs[i]
		if e.Source != w.Source || e.Class != w.Class || e.Method != w.Method ||
			e.Moment != w.Moment || e.Seq != w.Seq || len(e.Args) != len(w.Args) {
			t.Fatalf("occurrence %d: %+v vs %+v", i, e, w)
		}
	}
}

func TestReplBatchRoundTripEmpty(t *testing.T) {
	out, err := DecodeReplBatch(AppendReplBatch(nil, ReplBatch{LSN: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if out.LSN != 1 || out.Recs != nil || out.Occs != nil {
		t.Fatalf("empty batch round trip: %+v", out)
	}
}

func TestReplSnapRoundTrip(t *testing.T) {
	in := []ReplSnapObj{
		{ID: 1, Img: []byte("a")},
		{ID: 2, Img: []byte("bb")},
		{ID: 3, Img: nil},
	}
	out, err := DecodeReplSnap(AppendReplSnap(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("snap count %d, want %d", len(out), len(in))
	}
	for i, o := range out {
		if o.ID != in[i].ID || !bytes.Equal(o.Img, in[i].Img) && len(o.Img)+len(in[i].Img) > 0 {
			t.Fatalf("snap obj %d: %+v vs %+v", i, o, in[i])
		}
	}
}

func TestReplSnapEndRoundTrip(t *testing.T) {
	lsn, meta, err := DecodeReplSnapEnd(AppendReplSnapEnd(nil, 77, []byte("meta-blob")))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 77 || string(meta) != "meta-blob" {
		t.Fatalf("snap end round trip: lsn=%d meta=%q", lsn, meta)
	}
}

// TestReplDecodeBounds: hostile counts must reject before any allocation
// is sized from them (the package's decodeCount discipline).
func TestReplDecodeBounds(t *testing.T) {
	// A batch claiming 1<<40 records with a 3-byte payload.
	hostile := value.AppendValue(nil, value.Int(1)) // LSN
	hostile = value.AppendValue(hostile, value.Int(1<<40))
	if _, err := DecodeReplBatch(hostile); err == nil {
		t.Fatal("hostile record count accepted")
	}
	// A snap chunk claiming 1<<40 objects.
	snap := value.AppendValue(nil, value.Int(1<<40))
	if _, err := DecodeReplSnap(snap); err == nil {
		t.Fatal("hostile snap count accepted")
	}
	// Trailing garbage rejects.
	good := AppendReplBatch(nil, ReplBatch{LSN: 1})
	if _, err := DecodeReplBatch(append(good, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func FuzzDecodeReplBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendReplBatch(nil, ReplBatch{LSN: 1}))
	f.Add(AppendReplBatch(nil, sampleBatch()))
	f.Add(AppendReplSnap(nil, []ReplSnapObj{{ID: 5, Img: []byte("img")}}))
	f.Add(AppendReplSnapEnd(nil, 9, []byte("m")))
	// Hostile count with a dangling tail.
	f.Add(value.AppendValue(value.AppendValue(nil, value.Int(2)), value.Int(1<<30)))
	// Failover-era admin payloads (v3): an epoch-carrying ack, its lenient
	// one-value v2 form, and an OpReplFence epoch — all value-encoded ints,
	// exactly the shapes a confused peer might aim at the batch decoders.
	f.Add(AppendValues(nil, value.Int(42), value.Int(7)))
	f.Add(AppendValues(nil, value.Int(42)))
	f.Add(AppendValues(nil, value.Int(1<<62)))

	f.Fuzz(func(t *testing.T, data []byte) {
		// None of the three decoders may panic or over-allocate; any batch
		// the decoder accepts must re-encode to an equally decodable form.
		if b, err := DecodeReplBatch(data); err == nil {
			if _, err := DecodeReplBatch(AppendReplBatch(nil, b)); err != nil {
				t.Fatalf("re-encode of accepted batch rejected: %v", err)
			}
		}
		if objs, err := DecodeReplSnap(data); err == nil {
			if _, err := DecodeReplSnap(AppendReplSnap(nil, objs)); err != nil {
				t.Fatalf("re-encode of accepted snap rejected: %v", err)
			}
		}
		_, _, _ = DecodeReplSnapEnd(data)
	})
}
