package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"sentinel/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing, ReqID: 1},
		{Op: OpExec, ReqID: 42, Payload: AppendValues(nil, value.Str("class Foo {}"))},
		{Op: OpResult, ReqID: 7, Payload: AppendValues(nil, value.List(value.Int(1), value.Ref(9)))},
		{Op: OpEvent, ReqID: 0, Payload: bytes.Repeat([]byte{0xAA}, 1000)},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	rest := buf
	for i, want := range frames {
		var (
			got Frame
			err error
		)
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ReqID != want.ReqID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	f := Frame{Op: OpSubscribe, ReqID: 3, Payload: AppendValues(nil, value.Ref(17), value.Str("Deposit"), value.Int(int64(MomentAny)))}
	buf := AppendFrame(nil, f)
	got, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != f.Op || got.ReqID != f.ReqID || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("got %+v want %+v", got, f)
	}
}

func TestDecodeFrameBounds(t *testing.T) {
	// Length field over the cap: rejected before any allocation.
	over := binary.BigEndian.AppendUint32(nil, MaxFrameLen+1)
	over = append(over, OpPing, 0, 0, 0, 0)
	if _, _, err := DecodeFrame(over); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v", err)
	}
	// Length field under the opcode+reqid minimum.
	under := binary.BigEndian.AppendUint32(nil, 2)
	under = append(under, OpPing, 0, 0, 0, 0)
	if _, _, err := DecodeFrame(under); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("undersized frame: got %v", err)
	}
	// Length field claiming more bytes than present: truncated.
	trunc := binary.BigEndian.AppendUint32(nil, 100)
	trunc = append(trunc, OpPing, 0, 0, 0, 0)
	if _, _, err := DecodeFrame(trunc); err == nil {
		t.Fatal("truncated frame decoded")
	}
	// Short header.
	if _, _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header decoded")
	}
}

func TestReadFrameBounds(t *testing.T) {
	over := binary.BigEndian.AppendUint32(nil, MaxFrameLen+1)
	over = append(over, OpPing, 0, 0, 0, 0)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(over)), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v", err)
	}
	// A truncated stream must error, not block forever or return garbage.
	trunc := binary.BigEndian.AppendUint32(nil, 100)
	trunc = append(trunc, OpExec, 0, 0, 0, 1, 2, 3)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc)), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream: got %v", err)
	}
}

func TestReadFrameScratchReuse(t *testing.T) {
	var stream []byte
	big := Frame{Op: OpExec, ReqID: 1, Payload: bytes.Repeat([]byte{1}, 4096)}
	small := Frame{Op: OpPing, ReqID: 2, Payload: []byte{9}}
	stream = AppendFrame(stream, big)
	stream = AppendFrame(stream, small)
	r := bufio.NewReader(bytes.NewReader(stream))
	_, scratch, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, scratch2, err := ReadFrame(r, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &scratch[0] != &scratch2[0] {
		t.Fatal("small frame did not reuse the big frame's scratch")
	}
	if f2.Payload[0] != 9 {
		t.Fatalf("payload corrupted: %v", f2.Payload)
	}
}

func TestEventRoundTrip(t *testing.T) {
	ev := Event{
		SubID:      77,
		Source:     12345,
		Class:      "Account",
		Method:     "Withdraw",
		Moment:     1,
		Seq:        99,
		Args:       []value.Value{value.Float(10.5), value.Str("x")},
		ParamNames: []string{"amount", "memo"},
	}
	got, err := DecodeEvent(AppendEvent(nil, ev))
	if err != nil {
		t.Fatal(err)
	}
	if got.SubID != ev.SubID || got.Source != ev.Source || got.Class != ev.Class ||
		got.Method != ev.Method || got.Moment != ev.Moment || got.Seq != ev.Seq {
		t.Fatalf("got %+v want %+v", got, ev)
	}
	if len(got.Args) != 2 || !got.Args[0].Equal(ev.Args[0]) || !got.Args[1].Equal(ev.Args[1]) {
		t.Fatalf("args: %v", got.Args)
	}
	if len(got.ParamNames) != 2 || got.ParamNames[0] != "amount" || got.ParamNames[1] != "memo" {
		t.Fatalf("param names: %v", got.ParamNames)
	}
}

func TestEventRoundTripEmpty(t *testing.T) {
	got, err := DecodeEvent(AppendEvent(nil, Event{Class: "C", Method: "explicitEv", Moment: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 || len(got.ParamNames) != 0 {
		t.Fatalf("empty event grew fields: %+v", got)
	}
}

func TestDecodeValuesTrailing(t *testing.T) {
	payload := AppendValues(nil, value.Int(1), value.Int(2))
	if _, err := DecodeValues(payload, 1); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	if _, err := DecodeValues(payload, 3); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestErrPayloadRoundTrip(t *testing.T) {
	if got := DecodeErr(ErrPayload("boom")); got != "boom" {
		t.Fatalf("got %q", got)
	}
	if got := DecodeErr([]byte{0xFF, 0xFF}); got != "malformed error payload" {
		t.Fatalf("got %q", got)
	}
}

func TestOpNames(t *testing.T) {
	ops := []byte{OpHello, OpPing, OpExec, OpEval, OpLookup, OpGet, OpInstances,
		OpSubscribe, OpUnsubscribe, OpOK, OpErr, OpResult, OpPong, OpWelcome, OpSubOK, OpEvent}
	seen := map[string]bool{}
	for _, op := range ops {
		n := OpName(op)
		if strings.HasPrefix(n, "OP(") {
			t.Fatalf("opcode %d has no name", op)
		}
		if seen[n] {
			t.Fatalf("duplicate opcode name %s", n)
		}
		seen[n] = true
	}
	if OpName(200) != "OP(200)" {
		t.Fatal("unknown opcode should render numerically")
	}
}
