// Package wire defines the sentinel-server binary protocol: length-prefixed
// frames whose payloads reuse the internal/value binary encoding, so every
// scalar that crosses the wire is encoded exactly as the storage layer
// encodes it.
//
// Frame layout (all integers big-endian):
//
//	length  uint32  // bytes after this field: 1 (opcode) + 4 (request id) + payload
//	opcode  uint8
//	reqid   uint32  // client-chosen pipelining correlation id; 0 on pushes
//	payload []byte  // a sequence of value-encoded items, opcode-specific
//
// The request id lets a client pipeline: it may send any number of request
// frames without waiting, and the server answers each with a response frame
// carrying the same id, in request order. Unsolicited frames — push events
// delivered to subscriptions — carry request id 0, which clients must never
// use for requests.
//
// Decoding is strictly bounded: a frame longer than MaxFrameLen is rejected
// before any allocation, and DecodeFrame never allocates at all (the payload
// aliases the input buffer). This mirrors the WAL's length-bounds rule: an
// attacker-controlled length field must be validated against both the hard
// cap and the bytes actually present before any buffer is sized from it.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// ProtocolVersion is negotiated in Hello/Welcome; the server rejects a
// client whose version it does not speak.
//
// History: 1 = PR 7 request/response + push subscriptions; 2 adds the
// replication opcodes (OpReplHello/OpReplAck/OpReplWelcome and the
// OpReplFrames/OpReplSnap pushes); 3 adds failover — OpReplAck gains a
// trailing epoch (decoded leniently, so a v2 ack still parses), and
// OpReplPromote/OpReplFence carry the promotion and fencing admin ops. A
// client with a version the server does not speak gets a clean
// version-mismatch OpErr instead of an unknown-opcode failure mid-session.
const ProtocolVersion = 3

// MaxFrameLen caps the length field (opcode + reqid + payload): 8 MiB.
// Large enough for any script or result the shell produces, small enough
// that a corrupt or hostile length can never balloon a session's memory.
const MaxFrameLen = 8 << 20

// headerLen is the fixed-size prefix: u32 length + u8 opcode + u32 reqid.
const headerLen = 9

// minFrameLen is the smallest legal length-field value (opcode + reqid).
const minFrameLen = 5

// Opcodes. Requests (client → server) occupy the low range, responses
// (server → client) start at 16, and unsolicited pushes at 32.
const (
	OpHello       byte = 1  // [int version]             → OpWelcome
	OpPing        byte = 2  // []                        → OpPong
	OpExec        byte = 3  // [str script]              → OpOK | OpErr
	OpEval        byte = 4  // [str expr]                → OpResult | OpErr
	OpLookup      byte = 5  // [str name]                → OpResult (ref | nil)
	OpGet         byte = 6  // [ref oid, str attr]       → OpResult (snapshot read)
	OpInstances   byte = 7  // [str class]               → OpResult (list of refs; snapshot read)
	OpSubscribe   byte = 8  // [ref oid, str event, int moment] → OpSubOK | OpErr
	OpUnsubscribe byte = 9  // [int subID]               → OpOK | OpErr
	OpReplHello   byte = 10 // [int startLSN, int epoch]  → OpReplWelcome | OpErr
	OpReplAck     byte = 11 // [int appliedLSN, int epoch] → OpOK (v2 acks omit the epoch)
	OpReplPromote byte = 12 // []                        → OpOK | OpErr (admin: promote this follower)
	OpReplFence   byte = 13 // [int newEpoch]            → OpOK | OpErr (admin: fence if newEpoch is newer)

	OpOK          byte = 16 // []
	OpErr         byte = 17 // [str message]
	OpResult      byte = 18 // [value]
	OpPong        byte = 19 // []
	OpWelcome     byte = 20 // [int version, int sessionID]
	OpSubOK       byte = 21 // [int subID]
	OpReplWelcome byte = 22 // [int epoch, int shippedLSN, int needBase (0|1)]

	OpEvent       byte = 32 // push: see AppendEvent/DecodeEvent; reqid is 0
	OpReplFrames  byte = 33 // push: see AppendReplBatch/DecodeReplBatch; reqid is 0
	OpReplSnap    byte = 34 // push: base-state chunk, see AppendReplSnap; reqid is 0
	OpReplSnapEnd byte = 35 // push: [int baseLSN, str metaBlob]; reqid is 0
)

// MomentAny is the Subscribe moment wildcard: deliver begin, end and
// explicit occurrences alike. The concrete moments use event.Moment's
// values (0 = begin, 1 = end, 2 = explicit).
const MomentAny = 255

// OpName renders an opcode for diagnostics.
func OpName(op byte) string {
	switch op {
	case OpHello:
		return "HELLO"
	case OpPing:
		return "PING"
	case OpExec:
		return "EXEC"
	case OpEval:
		return "EVAL"
	case OpLookup:
		return "LOOKUP"
	case OpGet:
		return "GET"
	case OpInstances:
		return "INSTANCES"
	case OpSubscribe:
		return "SUBSCRIBE"
	case OpUnsubscribe:
		return "UNSUBSCRIBE"
	case OpReplHello:
		return "REPLHELLO"
	case OpReplAck:
		return "REPLACK"
	case OpReplPromote:
		return "REPLPROMOTE"
	case OpReplFence:
		return "REPLFENCE"
	case OpOK:
		return "OK"
	case OpErr:
		return "ERR"
	case OpResult:
		return "RESULT"
	case OpPong:
		return "PONG"
	case OpWelcome:
		return "WELCOME"
	case OpSubOK:
		return "SUBOK"
	case OpReplWelcome:
		return "REPLWELCOME"
	case OpEvent:
		return "EVENT"
	case OpReplFrames:
		return "REPLFRAMES"
	case OpReplSnap:
		return "REPLSNAP"
	case OpReplSnapEnd:
		return "REPLSNAPEND"
	default:
		return fmt.Sprintf("OP(%d)", op)
	}
}

// Frame is one decoded protocol frame. Payload may alias the decode
// buffer; callers that retain a frame past the next read must copy it.
type Frame struct {
	Op      byte
	ReqID   uint32
	Payload []byte
}

// ErrFrameTooLarge rejects frames whose length field exceeds MaxFrameLen.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameLen")

// ErrShortFrame rejects frames whose length field is below the fixed
// opcode+reqid minimum.
var ErrShortFrame = errors.New("wire: frame length below minimum")

// AppendFrame appends the encoded frame to buf and returns the extended
// slice.
func AppendFrame(buf []byte, f Frame) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(minFrameLen+len(f.Payload)))
	buf = append(buf, f.Op)
	buf = binary.BigEndian.AppendUint32(buf, f.ReqID)
	return append(buf, f.Payload...)
}

// DecodeFrame decodes one frame from the front of buf, returning the frame
// and the remaining bytes. The frame's payload aliases buf — zero copies,
// zero allocations — so arbitrary input can never over-allocate: the length
// field is checked against MaxFrameLen and against the bytes actually
// present before it is used for anything.
func DecodeFrame(buf []byte) (Frame, []byte, error) {
	if len(buf) < headerLen {
		return Frame{}, nil, fmt.Errorf("wire: short frame header (%d bytes)", len(buf))
	}
	ln := binary.BigEndian.Uint32(buf)
	if ln > MaxFrameLen {
		return Frame{}, nil, ErrFrameTooLarge
	}
	if ln < minFrameLen {
		return Frame{}, nil, ErrShortFrame
	}
	if uint32(len(buf)-4) < ln {
		return Frame{}, nil, fmt.Errorf("wire: truncated frame (want %d payload bytes, have %d)", ln, len(buf)-4)
	}
	f := Frame{
		Op:      buf[4],
		ReqID:   binary.BigEndian.Uint32(buf[5:]),
		Payload: buf[headerLen : 4+ln],
	}
	return f, buf[4+ln:], nil
}

// ReadFrame reads one frame from r, reusing scratch for the payload when it
// is large enough (the returned frame's payload aliases the returned
// scratch). The length field is validated against MaxFrameLen before any
// buffer is sized from it.
func ReadFrame(r *bufio.Reader, scratch []byte) (Frame, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, scratch, err
	}
	ln := binary.BigEndian.Uint32(hdr[:])
	if ln > MaxFrameLen {
		return Frame{}, scratch, ErrFrameTooLarge
	}
	if ln < minFrameLen {
		return Frame{}, scratch, ErrShortFrame
	}
	n := int(ln) - minFrameLen
	if cap(scratch) < n {
		// Size from the validated length only — it is already capped at
		// MaxFrameLen, so a hostile length cannot balloon the scratch.
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return Frame{}, scratch, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return Frame{
		Op:      hdr[4],
		ReqID:   binary.BigEndian.Uint32(hdr[5:]),
		Payload: scratch,
	}, scratch, nil
}

// WriteFrame appends the frame to buf (reusing its capacity), writes the
// result to w in one call, and returns the buffer for reuse.
func WriteFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf = AppendFrame(buf[:0], f)
	_, err := w.Write(buf)
	return buf, err
}

// ---- payload helpers ----

// AppendValues appends each value's binary encoding to buf.
func AppendValues(buf []byte, vals ...value.Value) []byte {
	for _, v := range vals {
		buf = value.AppendValue(buf, v)
	}
	return buf
}

// DecodeValues decodes exactly n values from payload, erroring on trailing
// bytes. n is bounded by the caller's opcode contract, never by wire input.
func DecodeValues(payload []byte, n int) ([]value.Value, error) {
	out := make([]value.Value, 0, n)
	rest := payload
	for i := 0; i < n; i++ {
		var (
			v   value.Value
			err error
		)
		v, rest, err = value.DecodeValue(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: payload value %d: %w", i, err)
		}
		out = append(out, v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing payload bytes", len(rest))
	}
	return out, nil
}

// Event is one pushed occurrence: a committed primitive event delivered to
// a subscription. It is the wire form of the paper's generated-event
// message (Oid + Class + Method + actual parameters + timestamp) plus the
// subscription it matched.
type Event struct {
	SubID      uint64
	Source     oid.OID
	Class      string
	Method     string
	Moment     uint8 // 0 begin, 1 end, 2 explicit
	Seq        uint64
	Args       []value.Value
	ParamNames []string
}

// AppendEvent appends the value-encoded push-event payload to buf.
func AppendEvent(buf []byte, ev Event) []byte {
	buf = value.AppendValue(buf, value.Int(int64(ev.SubID)))
	buf = value.AppendValue(buf, value.Ref(ev.Source))
	buf = value.AppendValue(buf, value.Str(ev.Class))
	buf = value.AppendValue(buf, value.Str(ev.Method))
	buf = value.AppendValue(buf, value.Int(int64(ev.Moment)))
	buf = value.AppendValue(buf, value.Int(int64(ev.Seq)))
	buf = value.AppendValue(buf, value.List(ev.Args...))
	names := make([]value.Value, len(ev.ParamNames))
	for i, n := range ev.ParamNames {
		names[i] = value.Str(n)
	}
	return value.AppendValue(buf, value.List(names...))
}

// DecodeEvent decodes a push-event payload.
func DecodeEvent(payload []byte) (Event, error) {
	vals, err := DecodeValues(payload, 8)
	if err != nil {
		return Event{}, err
	}
	return eventFromValues(vals)
}

// eventFromValues builds an Event from its 8 decoded payload values; shared
// by DecodeEvent and the replication batch decoder, which embeds the same
// 8-value layout per shipped occurrence.
func eventFromValues(vals []value.Value) (Event, error) {
	var ev Event
	subID, ok := vals[0].AsInt()
	if !ok {
		return Event{}, errors.New("wire: event subID is not an int")
	}
	ev.SubID = uint64(subID)
	src, ok := vals[1].AsRef()
	if !ok {
		return Event{}, errors.New("wire: event source is not a ref")
	}
	ev.Source = src
	if ev.Class, ok = vals[2].AsString(); !ok {
		return Event{}, errors.New("wire: event class is not a string")
	}
	if ev.Method, ok = vals[3].AsString(); !ok {
		return Event{}, errors.New("wire: event method is not a string")
	}
	moment, ok := vals[4].AsInt()
	if !ok || moment < 0 || moment > 255 {
		return Event{}, errors.New("wire: event moment out of range")
	}
	ev.Moment = uint8(moment)
	seq, ok := vals[5].AsInt()
	if !ok {
		return Event{}, errors.New("wire: event seq is not an int")
	}
	ev.Seq = uint64(seq)
	args, ok := vals[6].AsList()
	if !ok {
		return Event{}, errors.New("wire: event args is not a list")
	}
	ev.Args = args
	names, ok := vals[7].AsList()
	if !ok {
		return Event{}, errors.New("wire: event param names is not a list")
	}
	if len(names) > 0 {
		ev.ParamNames = make([]string, len(names))
		for i, n := range names {
			s, ok := n.AsString()
			if !ok {
				return Event{}, errors.New("wire: event param name is not a string")
			}
			ev.ParamNames[i] = s
		}
	}
	return ev, nil
}

// ErrPayload builds an OpErr payload.
func ErrPayload(msg string) []byte {
	return value.AppendValue(nil, value.Str(msg))
}

// DecodeErr extracts the message from an OpErr payload.
func DecodeErr(payload []byte) string {
	v, _, err := value.DecodeValue(payload)
	if err != nil {
		return "malformed error payload"
	}
	s, _ := v.AsString()
	return s
}
