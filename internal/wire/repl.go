// Replication payloads. A primary ships every committed WAL batch to its
// followers as one OpReplFrames push: the batch's replication LSN, the raw
// redo records (the same records CommitBatch wrote locally), and the
// occurrences the transaction raised, so the follower can fan pushes out to
// its own subscribers. Base state for a fresh follower streams as OpReplSnap
// chunks (object images) terminated by OpReplSnapEnd (base LSN + meta blob).
//
// Decoding follows the package's bounds rule: every count read off the wire
// is validated against the bytes actually present before any slice is sized
// from it.

package wire

import (
	"errors"
	"fmt"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// ReplRec is the wire form of one WAL redo record. Type/Tx/OID/Data mirror
// wal.Record field for field; wire stays decoupled from the storage package
// so the protocol can evolve independently of the log file format.
type ReplRec struct {
	Type uint8
	Tx   uint64
	OID  oid.OID
	Data []byte // object image for updates; nil otherwise
}

// ReplBatch is one shipped commit: the redo records of a single WAL commit
// batch plus the occurrences that transaction raised. LSN numbers committed
// batches from 1; LSN 0 marks an event-only batch (a commit that raised
// occurrences but wrote nothing durable — fan-out only, nothing to replay).
type ReplBatch struct {
	LSN  uint64
	Recs []ReplRec
	Occs []Event
}

// ReplSnapObj is one object image in a base-state chunk.
type ReplSnapObj struct {
	ID  oid.OID
	Img []byte
}

// AppendReplBatch appends the value-encoded OpReplFrames payload to buf.
func AppendReplBatch(buf []byte, b ReplBatch) []byte {
	buf = value.AppendValue(buf, value.Int(int64(b.LSN)))
	buf = value.AppendValue(buf, value.Int(int64(len(b.Recs))))
	for _, r := range b.Recs {
		buf = value.AppendValue(buf, value.Int(int64(r.Type)))
		buf = value.AppendValue(buf, value.Int(int64(r.Tx)))
		buf = value.AppendValue(buf, value.Ref(r.OID))
		buf = value.AppendValue(buf, value.Str(string(r.Data)))
	}
	buf = value.AppendValue(buf, value.Int(int64(len(b.Occs))))
	for _, ev := range b.Occs {
		buf = AppendEvent(buf, ev)
	}
	return buf
}

// DecodeReplBatch decodes an OpReplFrames payload.
func DecodeReplBatch(payload []byte) (ReplBatch, error) {
	var b ReplBatch
	rest := payload
	lsn, rest, err := decodeInt(rest, "repl batch lsn")
	if err != nil {
		return b, err
	}
	b.LSN = uint64(lsn)
	nRecs, rest, err := decodeCount(rest, "repl record count", 4)
	if err != nil {
		return b, err
	}
	if nRecs > 0 {
		b.Recs = make([]ReplRec, 0, nRecs)
	}
	for i := 0; i < nRecs; i++ {
		var r ReplRec
		typ, r2, err := decodeInt(rest, "repl record type")
		if err != nil {
			return b, err
		}
		if typ < 0 || typ > 255 {
			return b, errors.New("wire: repl record type out of range")
		}
		r.Type = uint8(typ)
		tx, r3, err := decodeInt(r2, "repl record tx")
		if err != nil {
			return b, err
		}
		r.Tx = uint64(tx)
		var v value.Value
		v, r4, err := value.DecodeValue(r3)
		if err != nil {
			return b, fmt.Errorf("wire: repl record oid: %w", err)
		}
		id, ok := v.AsRef()
		if !ok {
			return b, errors.New("wire: repl record oid is not a ref")
		}
		r.OID = id
		v, r5, err := value.DecodeValue(r4)
		if err != nil {
			return b, fmt.Errorf("wire: repl record data: %w", err)
		}
		data, ok := v.AsString()
		if !ok {
			return b, errors.New("wire: repl record data is not a string")
		}
		if len(data) > 0 {
			r.Data = []byte(data)
		}
		b.Recs = append(b.Recs, r)
		rest = r5
	}
	nOccs, rest, err := decodeCount(rest, "repl occurrence count", 8)
	if err != nil {
		return b, err
	}
	if nOccs > 0 {
		b.Occs = make([]Event, 0, nOccs)
	}
	for i := 0; i < nOccs; i++ {
		vals := make([]value.Value, 0, 8)
		for j := 0; j < 8; j++ {
			var v value.Value
			v, rest, err = value.DecodeValue(rest)
			if err != nil {
				return b, fmt.Errorf("wire: repl occurrence %d value %d: %w", i, j, err)
			}
			vals = append(vals, v)
		}
		ev, err := eventFromValues(vals)
		if err != nil {
			return b, err
		}
		b.Occs = append(b.Occs, ev)
	}
	if len(rest) != 0 {
		return b, fmt.Errorf("wire: %d trailing repl batch bytes", len(rest))
	}
	return b, nil
}

// AppendReplSnap appends a base-state chunk payload to buf.
func AppendReplSnap(buf []byte, objs []ReplSnapObj) []byte {
	buf = value.AppendValue(buf, value.Int(int64(len(objs))))
	for _, o := range objs {
		buf = value.AppendValue(buf, value.Ref(o.ID))
		buf = value.AppendValue(buf, value.Str(string(o.Img)))
	}
	return buf
}

// DecodeReplSnap decodes a base-state chunk payload.
func DecodeReplSnap(payload []byte) ([]ReplSnapObj, error) {
	rest := payload
	n, rest, err := decodeCount(rest, "repl snap count", 2)
	if err != nil {
		return nil, err
	}
	out := make([]ReplSnapObj, 0, n)
	for i := 0; i < n; i++ {
		v, r2, err := value.DecodeValue(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: repl snap oid: %w", err)
		}
		id, ok := v.AsRef()
		if !ok {
			return nil, errors.New("wire: repl snap oid is not a ref")
		}
		v, r3, err := value.DecodeValue(r2)
		if err != nil {
			return nil, fmt.Errorf("wire: repl snap image: %w", err)
		}
		img, ok := v.AsString()
		if !ok {
			return nil, errors.New("wire: repl snap image is not a string")
		}
		out = append(out, ReplSnapObj{ID: id, Img: []byte(img)})
		rest = r3
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing repl snap bytes", len(rest))
	}
	return out, nil
}

// AppendReplSnapEnd appends the OpReplSnapEnd payload: the LSN the base
// state corresponds to plus the primary's meta blob (class table + catalog).
func AppendReplSnapEnd(buf []byte, baseLSN uint64, meta []byte) []byte {
	buf = value.AppendValue(buf, value.Int(int64(baseLSN)))
	return value.AppendValue(buf, value.Str(string(meta)))
}

// DecodeReplSnapEnd decodes an OpReplSnapEnd payload.
func DecodeReplSnapEnd(payload []byte) (baseLSN uint64, meta []byte, err error) {
	vals, err := DecodeValues(payload, 2)
	if err != nil {
		return 0, nil, err
	}
	lsn, ok := vals[0].AsInt()
	if !ok {
		return 0, nil, errors.New("wire: repl snap-end lsn is not an int")
	}
	s, ok := vals[1].AsString()
	if !ok {
		return 0, nil, errors.New("wire: repl snap-end meta is not a string")
	}
	return uint64(lsn), []byte(s), nil
}

// decodeInt decodes one int value off the front of rest.
func decodeInt(rest []byte, what string) (int64, []byte, error) {
	v, rest, err := value.DecodeValue(rest)
	if err != nil {
		return 0, nil, fmt.Errorf("wire: %s: %w", what, err)
	}
	n, ok := v.AsInt()
	if !ok {
		return 0, nil, fmt.Errorf("wire: %s is not an int", what)
	}
	return n, rest, nil
}

// decodeCount decodes a count and bounds it by the bytes remaining: each
// counted element occupies at least minBytes encoded bytes, so a hostile
// count can never over-allocate (the same discipline as DecodeFrame and the
// value decoder's list bound).
func decodeCount(rest []byte, what string, minBytes int) (int, []byte, error) {
	n, rest, err := decodeInt(rest, what)
	if err != nil {
		return 0, nil, err
	}
	if n < 0 || n > int64(len(rest)/minBytes)+1 {
		return 0, nil, fmt.Errorf("wire: %s %d exceeds payload", what, n)
	}
	return int(n), rest, nil
}
