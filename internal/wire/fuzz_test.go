package wire

// Fuzz targets for the protocol attack surface: the frame decoder and the
// push-event payload decoder both consume bytes straight off a socket, so
// arbitrary input must never panic and — mirroring the WAL's length-bounds
// fix from the crash-torture PR — must never size an allocation from an
// unvalidated length field. FuzzDecodeFrame asserts both properties plus a
// re-encode fixpoint on every accepted frame.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"sentinel/internal/value"
)

func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendFrame(nil, Frame{Op: OpPing, ReqID: 1}))
	f.Add(AppendFrame(nil, Frame{Op: OpExec, ReqID: 2, Payload: AppendValues(nil, value.Str("class C {}"))}))
	f.Add(AppendFrame(nil, Frame{Op: OpSubscribe, ReqID: 3, Payload: AppendValues(nil, value.Ref(9), value.Str(""), value.Int(MomentAny))}))
	f.Add(AppendFrame(nil, Frame{Op: OpEvent, Payload: AppendEvent(nil, Event{SubID: 1, Source: 2, Class: "C", Method: "M"})}))
	// A length field claiming MaxFrameLen with no body: must reject, not
	// allocate.
	huge := binary.BigEndian.AppendUint32(nil, MaxFrameLen)
	f.Add(append(huge, OpPing, 0, 0, 0, 0))
	// Two frames back to back, the second truncated.
	two := AppendFrame(nil, Frame{Op: OpOK, ReqID: 4})
	two = AppendFrame(two, Frame{Op: OpErr, ReqID: 5, Payload: ErrPayload("x")})
	f.Add(two[:len(two)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk every frame in the buffer; each step must terminate without
		// panicking and without allocating beyond the input size (the
		// decoded payload aliases the input).
		rest := data
		for len(rest) > 0 {
			fr, next, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			if len(fr.Payload) > len(data) {
				t.Fatalf("payload (%d bytes) larger than input (%d bytes)", len(fr.Payload), len(data))
			}
			if len(next) >= len(rest) {
				t.Fatal("decode did not consume input")
			}
			// Fixpoint: re-encoding an accepted frame must decode
			// identically.
			re, _, err := DecodeFrame(AppendFrame(nil, fr))
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed to decode: %v", err)
			}
			if re.Op != fr.Op || re.ReqID != fr.ReqID || !bytes.Equal(re.Payload, fr.Payload) {
				t.Fatalf("roundtrip mismatch: %+v vs %+v", re, fr)
			}
			rest = next
		}

		// The streaming reader must agree with the buffer decoder on the
		// first frame: same accept/reject decision, same bytes.
		sf, _, serr := ReadFrame(bufio.NewReader(bytes.NewReader(data)), nil)
		bf, _, berr := DecodeFrame(data)
		if (serr == nil) != (berr == nil) {
			// One nuance: DecodeFrame sees the whole buffer, ReadFrame sees
			// a stream; both must still agree on validity because both
			// validate the same header against the same bytes.
			t.Fatalf("ReadFrame err=%v but DecodeFrame err=%v", serr, berr)
		}
		if serr == nil && (sf.Op != bf.Op || sf.ReqID != bf.ReqID || !bytes.Equal(sf.Payload, bf.Payload)) {
			t.Fatalf("stream/buffer divergence: %+v vs %+v", sf, bf)
		}
	})
}

func FuzzDecodeEvent(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendEvent(nil, Event{SubID: 1, Source: 2, Class: "Account", Method: "Deposit", Moment: 1, Seq: 9,
		Args: []value.Value{value.Int(5)}, ParamNames: []string{"amount"}}))
	f.Add(AppendEvent(nil, Event{Class: "C", Method: "explicit", Moment: 2}))
	f.Add([]byte{3, 1, 2, 3}) // int, then garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Accepted events re-encode and re-decode to the same event.
		ev2, err := DecodeEvent(AppendEvent(nil, ev))
		if err != nil {
			t.Fatalf("re-encode of accepted event failed: %v", err)
		}
		if ev2.SubID != ev.SubID || ev2.Source != ev.Source || ev2.Class != ev.Class ||
			ev2.Method != ev.Method || ev2.Moment != ev.Moment || ev2.Seq != ev.Seq ||
			len(ev2.Args) != len(ev.Args) || len(ev2.ParamNames) != len(ev.ParamNames) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", ev2, ev)
		}
	})
}
