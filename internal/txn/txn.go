// Package txn implements transactions for the object store: strict
// two-phase locking at object (OID) granularity, deadlock detection over a
// waits-for graph, and an undo log of closures for in-memory rollback.
//
// The paper requires that rules and events be "subject to the same
// transaction semantics" as other objects (§3.4), that rule actions can
// abort the triggering transaction (Fig. 9), and that detached-mode rules
// run in their own transactions. This package is that substrate; the core
// layer decides what to log and when (deferred rules run just before
// Commit, detached rules after it).
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// ID identifies a transaction. IDs are monotonically increasing, so a
// smaller ID means an older transaction.
type ID uint64

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// State is a transaction lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// ErrDeadlock is returned from a lock request that would complete a cycle
// in the waits-for graph. The requesting transaction should abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrNotActive is returned when operating on a finished transaction.
var ErrNotActive = errors.New("txn: transaction is not active")

// Lockable abstracts the resource identifier locks are taken on (OIDs in
// practice; any comparable uint64-convertible id works).
type Lockable uint64

type lockState struct {
	holders map[ID]Mode
	waiters int
	cond    *sync.Cond
}

// Manager coordinates transactions and the lock table.
type Manager struct {
	mu     sync.Mutex
	nextID ID
	locks  map[Lockable]*lockState
	active map[ID]*Tx
	// waitsFor[a][b] == true: transaction a is waiting for a lock held by b.
	waitsFor map[ID]map[ID]bool

	// Stats.
	started, committed, aborted, deadlocks, waits uint64
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	return &Manager{
		locks:    make(map[Lockable]*lockState),
		active:   make(map[ID]*Tx),
		waitsFor: make(map[ID]map[ID]bool),
	}
}

// Stats holds manager counters.
type Stats struct {
	Started, Committed, Aborted, Deadlocks, Waits uint64
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{m.started, m.committed, m.aborted, m.deadlocks, m.waits}
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	m.started++
	t := &Tx{id: m.nextID, mgr: m, state: Active, held: make(map[Lockable]Mode)}
	m.active[t.id] = t
	return t
}

// ActiveCount returns the number of live transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Tx is a single transaction.
type Tx struct {
	id    ID
	mgr   *Manager
	state State
	held  map[Lockable]Mode
	undo  []func()

	// onCommit hooks run after the commit decision (state already
	// Committed) but before locks release; onCommitted hooks run after
	// release — the window where detached rules are launched.
	onCommit    []func() error
	onCommitted []func()
	onAbort     []func()
}

// ID returns the transaction's identifier.
func (t *Tx) ID() ID { return t.id }

// State returns the lifecycle state.
func (t *Tx) State() State { return t.state }

// Active reports whether the transaction can still do work.
func (t *Tx) Active() bool { return t.state == Active }

// OnUndo registers a closure run (in reverse order) if the transaction
// aborts; used by the core layer to restore object before-images.
func (t *Tx) OnUndo(fn func()) { t.undo = append(t.undo, fn) }

// OnCommit registers a hook run during Commit, after the commit record is
// durable, before locks are released. An error here is reported but does
// not un-commit.
func (t *Tx) OnCommit(fn func() error) { t.onCommit = append(t.onCommit, fn) }

// OnCommitted registers a hook run after locks are released (detached-rule
// launch window).
func (t *Tx) OnCommitted(fn func()) { t.onCommitted = append(t.onCommitted, fn) }

// OnAbort registers a hook run after rollback completes.
func (t *Tx) OnAbort(fn func()) { t.onAbort = append(t.onAbort, fn) }

// Lock acquires the lock on res in the given mode, blocking until granted.
// Lock upgrades (S held, X requested) are supported. It returns ErrDeadlock
// when waiting would create a cycle.
func (t *Tx) Lock(res Lockable, mode Mode) error {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.state != Active {
		return ErrNotActive
	}
	if cur, ok := t.held[res]; ok && (cur == Exclusive || mode == Shared) {
		return nil // already sufficient
	}
	ls := m.locks[res]
	if ls == nil {
		ls = &lockState{holders: make(map[ID]Mode)}
		ls.cond = sync.NewCond(&m.mu)
		m.locks[res] = ls
	}
	for !grantable(ls, t.id, mode) {
		// Record waits-for edges against current conflicting holders.
		blockers := conflicting(ls, t.id, mode)
		if len(blockers) == 0 {
			// Conflict comes from other waiters only; re-check after wakeup.
			blockers = nil
		}
		edges := m.waitsFor[t.id]
		if edges == nil {
			edges = make(map[ID]bool)
			m.waitsFor[t.id] = edges
		}
		for _, b := range blockers {
			edges[b] = true
		}
		if m.cycleFrom(t.id) {
			delete(m.waitsFor, t.id)
			m.deadlocks++
			return ErrDeadlock
		}
		m.waits++
		ls.waiters++
		ls.cond.Wait()
		ls.waiters--
		delete(m.waitsFor, t.id)
		if t.state != Active {
			return ErrNotActive
		}
	}
	ls.holders[t.id] = maxMode(ls.holders[t.id], mode)
	t.held[res] = ls.holders[t.id]
	return nil
}

func maxMode(a, b Mode) Mode {
	if a == Exclusive || b == Exclusive {
		return Exclusive
	}
	return Shared
}

// grantable reports whether tx may take res in mode given current holders.
func grantable(ls *lockState, tx ID, mode Mode) bool {
	for h, hm := range ls.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// conflicting lists the holders blocking tx's request.
func conflicting(ls *lockState, tx ID, mode Mode) []ID {
	var out []ID
	for h, hm := range ls.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	return out
}

// cycleFrom reports whether the waits-for graph has a cycle reachable from
// start. Caller holds m.mu.
func (m *Manager) cycleFrom(start ID) bool {
	seen := make(map[ID]bool)
	var stack []ID
	for b := range m.waitsFor[start] {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for b := range m.waitsFor[n] {
			stack = append(stack, b)
		}
	}
	return false
}

// releaseAllLocked drops every lock held by t and wakes waiters. Caller
// holds m.mu.
func (m *Manager) releaseAllLocked(t *Tx) {
	for res := range t.held {
		ls := m.locks[res]
		if ls == nil {
			continue
		}
		delete(ls.holders, t.id)
		if len(ls.holders) == 0 && ls.waiters == 0 {
			delete(m.locks, res)
		} else {
			ls.cond.Broadcast()
		}
	}
	t.held = make(map[Lockable]Mode)
	delete(m.active, t.id)
	delete(m.waitsFor, t.id)
}

// Commit finishes the transaction successfully. The durable parameter is a
// callback invoked with the commit decision made but locks still held —
// the core layer writes and syncs the WAL there; if it errors, the
// transaction aborts instead.
func (t *Tx) Commit(durable func() error) error {
	m := t.mgr
	m.mu.Lock()
	if t.state != Active {
		m.mu.Unlock()
		return ErrNotActive
	}
	m.mu.Unlock()

	if durable != nil {
		if err := durable(); err != nil {
			t.Abort()
			return fmt.Errorf("txn: commit durability failed (transaction aborted): %w", err)
		}
	}

	m.mu.Lock()
	t.state = Committed
	m.committed++
	hooks := t.onCommit
	t.onCommit = nil
	m.mu.Unlock()

	var hookErr error
	for _, fn := range hooks {
		if err := fn(); err != nil && hookErr == nil {
			hookErr = err
		}
	}

	m.mu.Lock()
	m.releaseAllLocked(t)
	after := t.onCommitted
	t.onCommitted = nil
	m.mu.Unlock()
	for _, fn := range after {
		fn()
	}
	return hookErr
}

// Abort rolls the transaction back: undo closures run in reverse, locks
// release, abort hooks fire. Aborting a finished transaction is a no-op.
func (t *Tx) Abort() {
	m := t.mgr
	m.mu.Lock()
	if t.state != Active {
		m.mu.Unlock()
		return
	}
	t.state = Aborted
	m.aborted++
	undo := t.undo
	t.undo = nil
	m.mu.Unlock()

	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}

	m.mu.Lock()
	m.releaseAllLocked(t)
	hooks := t.onAbort
	t.onAbort = nil
	m.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}
