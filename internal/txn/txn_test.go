package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBasicLifecycle(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if !tx.Active() || tx.State() != Active {
		t.Fatal("fresh tx not active")
	}
	if err := tx.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatal("not committed")
	}
	if err := tx.Commit(nil); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	st := m.Stats()
	if st.Started != 1 || st.Committed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSharedLocksCompatible(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	// A second shared lock must not block.
	done := make(chan error, 1)
	go func() { done <- b.Lock(1, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("shared lock blocked on shared lock")
	}
	a.Abort()
	b.Abort()
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(1, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := b.Lock(1, Exclusive); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("X lock granted while held")
	case <-time.After(50 * time.Millisecond):
	}
	a.Commit(nil)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("lock not granted after release")
	}
	b.Commit(nil)
}

func TestLockUpgrade(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	if err := a.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(1, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Re-request of weaker mode is a no-op.
	if err := a.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	a.Abort()
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(1, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(2, Exclusive); err != nil {
		t.Fatal(err)
	}
	// a waits for 2, b tries 1 → cycle. Exactly one request must fail with
	// ErrDeadlock.
	errs := make(chan error, 2)
	go func() {
		err := a.Lock(2, Exclusive)
		if errors.Is(err, ErrDeadlock) {
			a.Abort()
		}
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // let a block first
	go func() {
		err := b.Lock(1, Exclusive)
		if errors.Is(err, ErrDeadlock) {
			b.Abort()
		}
		errs <- err
	}()

	var deadlocks, oks int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, ErrDeadlock):
				deadlocks++
			case err == nil:
				oks++
			case errors.Is(err, ErrNotActive):
				// The survivor may observe the victim's abort wake-up; any
				// terminal outcome other than hanging is acceptable here.
				oks++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not detected (requests hung)")
		}
	}
	if deadlocks == 0 {
		t.Fatal("no request reported ErrDeadlock")
	}
	a.Abort()
	b.Abort()
	if m.Stats().Deadlocks == 0 {
		t.Fatal("deadlock counter not bumped")
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two transactions hold S and both try to upgrade: a classic cycle.
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	a.Lock(1, Shared)
	b.Lock(1, Shared)
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(1, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- b.Lock(1, Exclusive) }()

	gotDeadlock := false
	for i := 0; i < 1; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				gotDeadlock = true
				// Abort the victim so the other side can proceed.
				a.Abort()
				b.Abort()
			}
		case <-time.After(2 * time.Second):
			t.Fatal("upgrade deadlock hung")
		}
	}
	if !gotDeadlock {
		// One upgrade may have succeeded if timing allowed; drain the other.
		select {
		case err := <-errs:
			if !errors.Is(err, ErrDeadlock) && err != nil && !errors.Is(err, ErrNotActive) {
				t.Fatalf("unexpected: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("second upgrade hung")
		}
	}
	a.Abort()
	b.Abort()
}

func TestUndoRunsInReverseOnAbort(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	tx.OnUndo(func() { order = append(order, 1) })
	tx.OnUndo(func() { order = append(order, 2) })
	tx.OnUndo(func() { order = append(order, 3) })
	tx.Abort()
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Fatalf("undo order = %v", order)
	}
	// Undo does not run on commit.
	tx2 := m.Begin()
	ran := false
	tx2.OnUndo(func() { ran = true })
	tx2.Commit(nil)
	if ran {
		t.Fatal("undo ran on commit")
	}
}

func TestCommitHooksAndDurability(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var seq []string
	tx.OnCommit(func() error { seq = append(seq, "commit-hook"); return nil })
	tx.OnCommitted(func() { seq = append(seq, "after-release") })
	tx.OnAbort(func() { seq = append(seq, "abort-hook") })
	err := tx.Commit(func() error { seq = append(seq, "durable"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"durable", "commit-hook", "after-release"}
	if len(seq) != 3 || seq[0] != want[0] || seq[1] != want[1] || seq[2] != want[2] {
		t.Fatalf("sequence = %v", seq)
	}
}

func TestDurabilityFailureAborts(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Lock(1, Exclusive)
	undone := false
	tx.OnUndo(func() { undone = true })
	err := tx.Commit(func() error { return errors.New("disk full") })
	if err == nil {
		t.Fatal("commit with failing durability succeeded")
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v, want Aborted", tx.State())
	}
	if !undone {
		t.Fatal("undo did not run after durability failure")
	}
	// The lock is released: another tx can take it immediately.
	tx2 := m.Begin()
	if err := tx2.Lock(1, Exclusive); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
}

func TestAbortHooks(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	ran := false
	tx.OnAbort(func() { ran = true })
	tx.Abort()
	if !ran {
		t.Fatal("abort hook did not run")
	}
	// Idempotent.
	tx.Abort()
}

func TestLockAfterFinishFails(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit(nil)
	if err := tx.Lock(1, Shared); !errors.Is(err, ErrNotActive) {
		t.Fatalf("lock after commit: %v", err)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	// A bank-transfer stress test: concurrent transactions move amounts
	// between 10 accounts under 2PL; deadlock victims retry. The total
	// must be conserved.
	m := NewManager()
	balances := make([]int, 10)
	for i := range balances {
		balances[i] = 100
	}
	var bmu sync.Mutex // balances themselves (the lock table guards logical access)

	transfer := func(from, to, amt int) bool {
		tx := m.Begin()
		// Lock in request order to create deadlock opportunities.
		if err := tx.Lock(Lockable(from), Exclusive); err != nil {
			tx.Abort()
			return false
		}
		if err := tx.Lock(Lockable(to), Exclusive); err != nil {
			tx.Abort()
			return false
		}
		bmu.Lock()
		before, after := balances[from], balances[to]
		balances[from] -= amt
		balances[to] += amt
		bmu.Unlock()
		tx.OnUndo(func() {
			bmu.Lock()
			balances[from], balances[to] = before, after
			bmu.Unlock()
		})
		return tx.Commit(nil) == nil
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := (g + i) % 10
				to := (g*3 + i*7) % 10
				if from == to {
					continue
				}
				for try := 0; try < 20; try++ {
					if transfer(from, to, 1) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, b := range balances {
		total += b
	}
	if total != 1000 {
		t.Fatalf("total = %d, want 1000 (balances %v)", total, balances)
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("%d transactions leaked", m.ActiveCount())
	}
}
