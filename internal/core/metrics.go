package core

// metrics.go wires the obs layer into the runtime: the per-database metric
// set (counters, gauges, histograms), the tracer installation point, and
// the slow-rule log. Registration happens once at Open; the hot paths then
// touch only the returned pointers — a counter add costs the same atomic
// the pre-obs flat Stats counters did, and with no tracer installed every
// hook site is one atomic pointer load.

import (
	"fmt"
	"sync/atomic"
	"time"

	"sentinel/internal/obs"
)

// slowLogCapacity bounds the slow-rule ring (most recent entries win).
const slowLogCapacity = 128

// coreMetrics is the database's metric set. All pointer fields are
// registered once in newCoreMetrics and never change.
type coreMetrics struct {
	reg *obs.Registry

	// Event-propagation counters (the former flat Stats atomics).
	sends, eventsRaised, notifications, detections *obs.Counter
	conditionsRun, actionsRun, rulesScheduled      *obs.Counter
	slowFirings                                    *obs.Counter

	// Consumer-resolution cache instruments: hit/miss split on the raise
	// path, invalidations applied by catalog mutations (one per scope
	// application, however many entries it removed), and a live-entry
	// gauge (registered below; reads the cache maps under ccMu at scrape).
	ccHits, ccMisses, ccInvalidations *obs.Counter

	// Storage counters.
	faults, evictions, checkpoints  *obs.Counter
	walAppends, walFsyncs, walBytes *obs.Counter

	// MVCC / group-commit instruments. commitGroups counts group-commit
	// flushes, groupedCommits the commits they carried (their ratio is the
	// commits-per-fsync batching factor); commitGroupH records the size
	// distribution (the observed "duration" is the group size, not a time).
	// versionPrunes counts archived versions reclaimed by the watermark.
	commitGroups, groupedCommits, versionPrunes *obs.Counter
	commitGroupH                                *obs.Histogram

	// Detached executor pool counters. detachedWorkerFirings has one
	// counter per pool worker (registered only with AsyncDetached, when
	// the pool size is known).
	detachedFirings, detachedStalls, detachedBackpressure *obs.Counter
	detachedWorkerFirings                                 []*obs.Counter

	// pushEvents counts occurrences fanned out to remote sinks after their
	// transaction committed (sink.go).
	pushEvents *obs.Counter

	// Failover counters. quorumDegraded counts commits whose SyncReplicas
	// quorum wait timed out and degraded to async; fencedWrites counts
	// commits aborted with ErrFenced on a deposed primary.
	quorumDegraded, fencedWrites *obs.Counter

	// Latency histograms. Commit, fsync, append and fault-in are always
	// timed (low frequency); firing/condition/action are fed at the
	// sampling rate unless a tracer or slow-rule threshold forces full
	// timing.
	commitH, firingH, condH, actionH *obs.Histogram
	fsyncH, appendH, faultH          *obs.Histogram

	// firingTick drives the 1-in-sampleN timing decision for rule firings.
	firingTick atomic.Uint64
	sampleN    uint64
	slowNs     int64
	slowLog    *obs.SlowLog
}

// newCoreMetrics builds and registers the database's metric set. The gauge
// callbacks read runtime state under the usual shared locks, so they must
// only run at snapshot/scrape time (they do).
func newCoreMetrics(db *Database, opts Options) *coreMetrics {
	reg := obs.NewRegistry()
	m := &coreMetrics{
		reg:     reg,
		sampleN: uint64(opts.MetricsSampling),
		slowNs:  int64(opts.SlowRuleThreshold),
		slowLog: obs.NewSlowLog(slowLogCapacity),

		sends:          reg.Counter("sentinel_sends_total", "method dispatches"),
		eventsRaised:   reg.Counter("sentinel_events_raised_total", "primitive occurrences generated"),
		notifications:  reg.Counter("sentinel_notifications_total", "occurrence deliveries to consumers"),
		detections:     reg.Counter("sentinel_detections_total", "event detections signalled"),
		conditionsRun:  reg.Counter("sentinel_conditions_run_total", "rule conditions evaluated"),
		actionsRun:     reg.Counter("sentinel_actions_run_total", "rule actions executed (condition held)"),
		rulesScheduled: reg.Counter("sentinel_rules_scheduled_total", "detections scheduled for rule execution"),
		slowFirings:    reg.Counter("sentinel_slow_firings_total", "rule firings at or above SlowRuleThreshold"),
		ccHits:          reg.Counter("sentinel_consumer_cache_hits_total", "consumer-resolution cache hits on the raise path"),
		ccMisses:        reg.Counter("sentinel_consumer_cache_misses_total", "consumer-resolution cache recomputations"),
		ccInvalidations: reg.Counter("sentinel_consumer_cache_invalidations_total", "consumer-cache invalidation scopes applied by catalog mutations"),

		faults:      reg.Counter("sentinel_object_faults_total", "objects decoded from the heap on demand"),
		evictions:   reg.Counter("sentinel_object_evictions_total", "residents reclaimed by the clock sweep"),
		checkpoints: reg.Counter("sentinel_checkpoints_total", "checkpoints taken (explicit + automatic)"),
		walAppends:  reg.Counter("sentinel_wal_appends_total", "WAL record-batch appends"),
		walFsyncs:   reg.Counter("sentinel_wal_fsyncs_total", "physical WAL fsyncs (group commit shares them)"),
		walBytes:    reg.Counter("sentinel_wal_bytes_appended_total", "bytes appended to the WAL"),

		commitGroups:   reg.Counter("sentinel_commit_groups_total", "group-commit flushes (one write + at most one fsync each)"),
		groupedCommits: reg.Counter("sentinel_grouped_commits_total", "commits carried by group-commit flushes"),
		versionPrunes:  reg.Counter("sentinel_version_prunes_total", "archived MVCC versions reclaimed by the watermark"),

		detachedFirings:      reg.Counter("sentinel_detached_firings_total", "detached firings executed by the worker pool"),
		detachedStalls:       reg.Counter("sentinel_detached_conflict_stalls_total", "detached firings enqueued behind a conflicting predecessor"),
		detachedBackpressure: reg.Counter("sentinel_detached_backpressure_waits_total", "commits that blocked on a full detached queue"),

		pushEvents: reg.Counter("sentinel_push_events_total", "committed occurrences fanned out to remote sinks"),

		quorumDegraded: reg.Counter("sentinel_repl_quorum_degraded_total", "quorum commits that timed out waiting for follower acks and degraded to async"),
		fencedWrites:   reg.Counter("sentinel_repl_fenced_writes_total", "commits aborted because this primary is fenced by a newer epoch"),

		commitH: reg.Histogram("sentinel_tx_commit_ns", "transaction commit latency"),
		firingH: reg.Histogram("sentinel_rule_firing_ns", "rule firing latency (condition + action)"),
		condH:   reg.Histogram("sentinel_condition_eval_ns", "rule condition evaluation latency"),
		actionH: reg.Histogram("sentinel_action_exec_ns", "rule action execution latency"),
		fsyncH:  reg.Histogram("sentinel_wal_fsync_ns", "WAL fsync latency"),
		appendH: reg.Histogram("sentinel_wal_append_ns", "WAL append write latency"),
		faultH:  reg.Histogram("sentinel_fault_in_ns", "object fault-in (read + decode) latency"),

		commitGroupH: reg.Histogram("sentinel_commit_group_size", "commits coalesced per group-commit flush (value is a count, not nanoseconds)"),
	}

	if opts.AsyncDetached {
		m.detachedWorkerFirings = make([]*obs.Counter, opts.DetachedWorkers)
		for i := range m.detachedWorkerFirings {
			m.detachedWorkerFirings[i] = reg.Counter(
				fmt.Sprintf("sentinel_detached_worker_%d_firings_total", i),
				fmt.Sprintf("detached firings executed by pool worker %d", i))
		}
	}

	reg.Gauge("sentinel_detached_workers", "detached executor pool size (0 = synchronous)", func() int64 {
		if db.detached == nil {
			return 0
		}
		return int64(db.detached.workers)
	})
	reg.Gauge("sentinel_detached_queue_depth", "detached firings queued, not yet executing", func() int64 {
		if db.detached == nil {
			return 0
		}
		queued, _ := db.detached.snapshot()
		return int64(queued)
	})
	reg.Gauge("sentinel_detached_inflight", "detached firings executing right now", func() int64 {
		if db.detached == nil {
			return 0
		}
		_, inflight := db.detached.snapshot()
		return int64(inflight)
	})
	reg.Gauge("sentinel_objects_resident", "objects materialized in the directory", func() int64 {
		resident, _ := db.countObjects()
		return int64(resident)
	})
	reg.Gauge("sentinel_objects_total", "live objects (directory ∪ heap)", func() int64 {
		_, total := db.countObjects()
		return int64(total)
	})
	reg.Gauge("sentinel_rules_defined", "rules in the catalog", func() int64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return int64(len(db.rules))
	})
	reg.Gauge("sentinel_consumer_cache_entries", "live consumer-resolution cache entries (object + class)", func() int64 {
		return int64(db.consumerCacheEntries())
	})
	reg.Gauge("sentinel_subscriptions", "instance-level subscriptions", func() int64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		n := 0
		for _, subs := range db.subs {
			n += len(subs)
		}
		return int64(n)
	})
	reg.Gauge("sentinel_remote_subscriptions", "live remote-sink subscriptions", func() int64 {
		return db.sinkCount.Load()
	})
	reg.Gauge("sentinel_wal_size_bytes", "current write-ahead-log size", func() int64 {
		return db.WALSize()
	})
	reg.Gauge("sentinel_versions_live", "archived MVCC versions across all chains", func() int64 {
		return db.dir.liveVersions.Load()
	})
	reg.Gauge("sentinel_snapshots_active", "registered read-only snapshots", func() int64 {
		return int64(db.snaps.activeCount())
	})
	reg.Gauge("sentinel_mvcc_watermark_lsn", "MVCC low-watermark (min of oldest snapshot and stable LSN)", func() int64 {
		return int64(db.watermark())
	})
	reg.Gauge("sentinel_version_chain_depth_max", "longest live version chain", func() int64 {
		return int64(db.dir.maxChainDepth())
	})
	reg.Gauge("sentinel_txns_started", "transactions started", func() int64 {
		return int64(db.tm.Stats().Started)
	})
	reg.Gauge("sentinel_txns_committed", "transactions committed", func() int64 {
		return int64(db.tm.Stats().Committed)
	})
	reg.Gauge("sentinel_txns_aborted", "transactions aborted", func() int64 {
		return int64(db.tm.Stats().Aborted)
	})
	reg.Gauge("sentinel_txn_deadlocks", "deadlocks detected and broken", func() int64 {
		return int64(db.tm.Stats().Deadlocks)
	})
	reg.Gauge("sentinel_repl_role", "replication role (0 none, 1 primary, 2 replica)", func() int64 {
		switch db.replicationStats().Role {
		case "primary":
			return 1
		case "replica":
			return 2
		}
		return 0
	})
	reg.Gauge("sentinel_repl_peers", "attached replication peers", func() int64 {
		return int64(db.replicationStats().Peers)
	})
	reg.Gauge("sentinel_repl_shipped_lsn", "last shipped (primary) or last known primary (replica) batch LSN", func() int64 {
		return int64(db.replicationStats().ShippedLSN)
	})
	reg.Gauge("sentinel_repl_applied_lsn", "min follower applied LSN (primary) or local applied LSN (replica)", func() int64 {
		return int64(db.replicationStats().AppliedLSN)
	})
	reg.Gauge("sentinel_repl_lag_batches", "shipped minus applied batches", func() int64 {
		return int64(db.replicationStats().LagBatches)
	})
	reg.Gauge("sentinel_repl_epoch", "replication epoch this node's history belongs to", func() int64 {
		return int64(db.ReplEpoch())
	})
	reg.Gauge("sentinel_repl_fenced", "1 when this node is a fenced (deposed) primary", func() int64 {
		if db.fenced.Load() {
			return 1
		}
		return 0
	})
	return m
}

// shouldTimeFiring decides whether this firing gets timed: always under a
// slow-rule threshold or a RuleFired tracer hook, else 1 in sampleN.
func (m *coreMetrics) shouldTimeFiring(tr *obs.Tracer) bool {
	if m.slowNs > 0 || (tr != nil && tr.RuleFired != nil) {
		return true
	}
	return m.sampleN > 0 && m.firingTick.Add(1)%m.sampleN == 0
}

// recordSlow appends a slow-rule entry when the firing met the threshold.
func (m *coreMetrics) recordSlow(name, coupling string, total, cond, act time.Duration, fired bool) {
	if m.slowNs <= 0 || int64(total) < m.slowNs {
		return
	}
	m.slowFirings.Inc()
	m.slowLog.Add(obs.SlowRule{
		Rule:     name,
		Coupling: coupling,
		Total:    total,
		Cond:     cond,
		Action:   act,
		Fired:    fired,
	})
}

// Metrics returns an immutable point-in-time snapshot of every registered
// metric: counters, gauges, and latency histograms with p50/p95/p99
// estimates. Safe to call concurrently with any database activity.
func (db *Database) Metrics() obs.Snapshot { return db.met.reg.Snapshot() }

// MetricsRegistry exposes the database's metric registry so applications
// can register their own counters, gauges and histograms alongside the
// runtime's — they are served by the same MetricsAddr listener and appear
// in the same Metrics snapshot.
func (db *Database) MetricsRegistry() *obs.Registry { return db.met.reg }

// SetTracer installs (or, with nil, removes) the tracer whose hooks the
// runtime invokes; see obs.Tracer for the hook contract. Installation is
// atomic and takes effect for operations that start after the call. With
// no tracer installed the hook sites cost one atomic load and zero
// allocations.
func (db *Database) SetTracer(tr *obs.Tracer) { db.tracer.Store(tr) }

// SlowRules returns the retained slow-rule log entries (oldest first) and
// the total number of slow firings ever recorded. Entries are only
// recorded when Options.SlowRuleThreshold is positive.
func (db *Database) SlowRules() ([]obs.SlowRule, uint64) { return db.met.slowLog.Entries() }

// MetricsAddr returns the bound metrics listener address ("" when
// Options.MetricsAddr was empty). With ":0" this is how the picked port is
// discovered.
func (db *Database) MetricsAddr() string {
	if db.metricsSrv == nil {
		return ""
	}
	return db.metricsSrv.Addr()
}
