package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sentinel/internal/lang"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

// DumpDSL writes a SentinelQL script that recreates the database's logical
// state: DSL class definitions, named events, rules, indexes, objects (with
// their attribute values and inter-object references), name bindings,
// subscriptions, and rule enable/disable state.
//
// Limits, flagged with comments in the output:
//   - Go-registered classes and Go-closure rule bodies are code, not data;
//     the dump notes them and the importing program must register them
//     (via Options.Schema) before restoring. "go:" registry references
//     restore fine.
//   - Time-typed attribute values have no literal syntax and are dumped as
//     comments.
//
// Restore with Database.RestoreDSL (not plain Exec: object initializers may
// set private attributes, which restore performs with system access).
func (db *Database) DumpDSL(w io.Writer) error {
	fmt.Fprintln(w, "# SentinelQL dump")

	// 1. Classes: DSL-defined classes replay from their stored sources, in
	// definition order; Go-defined classes are noted.
	type defEntry struct {
		seq    int64
		source string
	}
	var defs []defEntry
	dslDefined := map[string]bool{}
	// Class-catalog objects are system objects: always resident, so the
	// directory sweep sees every one of them.
	db.dir.forEach(func(_ oid.OID, o *object.Object, tomb bool) {
		if tomb || o.Class().Name != SysClassDefClass {
			return
		}
		src, _ := mustGet(o, "source").AsString()
		name, _ := mustGet(o, "name").AsString()
		seq, _ := mustGet(o, "seq").AsInt()
		defs = append(defs, defEntry{seq: seq, source: src})
		dslDefined[name] = true
	})
	sort.Slice(defs, func(i, j int) bool { return defs[i].seq < defs[j].seq })
	fmt.Fprintln(w, "\n# -- classes --")
	for _, c := range db.reg.Classes() {
		if IsSystemClass(c.Name) || dslDefined[c.Name] {
			continue
		}
		fmt.Fprintf(w, "# class %s is Go-defined: register it via Options.Schema before restoring\n", c.Name)
	}
	for _, d := range defs {
		fmt.Fprintln(w, d.source)
	}

	// 2. Named events. Snapshot the catalog under mu, resolve the backing
	// objects afterwards (they are system objects, hence resident; never
	// fault while holding db.mu).
	db.mu.RLock()
	eventNames := make([]string, 0, len(db.namedEvents))
	for n := range db.namedEvents {
		eventNames = append(eventNames, n)
	}
	eventIDs := make(map[string]oid.OID, len(db.eventObjs))
	for n, id := range db.eventObjs {
		eventIDs[n] = id
	}
	db.mu.RUnlock()
	sort.Strings(eventNames)
	if len(eventNames) > 0 {
		fmt.Fprintln(w, "\n# -- named events --")
		for _, n := range eventNames {
			var src string
			if id, ok := eventIDs[n]; ok {
				if o, _ := db.dir.get(id); o != nil {
					src, _ = mustGet(o, "source").AsString()
				}
			}
			if src != "" {
				fmt.Fprintf(w, "event %s = %s\n", n, src)
			}
		}
	}

	// 3. Rules (ADAM/Ode taps and other engine-internal rules included —
	// they carry "__" prefixes and are skipped).
	rules := db.Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID() < rules[j].ID() })
	fmt.Fprintln(w, "\n# -- rules --")
	var disabled []string
	for _, r := range rules {
		if strings.HasPrefix(r.Name(), "__") {
			continue
		}
		if err := db.dumpRule(w, r); err != nil {
			return err
		}
		if !r.Enabled() {
			disabled = append(disabled, r.Name())
		}
	}

	// 4. Indexes.
	if idxs := db.Indexes(); len(idxs) > 0 {
		fmt.Fprintln(w, "\n# -- indexes --")
		for _, h := range idxs {
			fmt.Fprintf(w, "index %s.%s\n", h.Class(), h.Attr())
		}
	}

	// 5. Objects: two phases — create with scalar initializers, then patch
	// reference attributes once every object exists. The union iteration
	// (directory ∪ heap) decodes evicted objects transiently, so the dump
	// never inflates the resident set.
	objsByID := make(map[oid.OID]*object.Object)
	if err := db.forEachLiveObject(func(id oid.OID, o *object.Object) error {
		if !IsSystemClass(o.Class().Name) {
			objsByID[id] = o
		}
		return nil
	}); err != nil {
		return err
	}
	ids := make([]oid.OID, 0, len(objsByID))
	for id := range objsByID {
		ids = append(ids, id)
	}
	value.SortRefs(ids)
	fmt.Fprintln(w, "\n# -- objects --")
	for _, id := range ids {
		o := objsByID[id]
		var inits []string
		for _, a := range o.Class().Layout() {
			v := o.GetSlot(a.Slot())
			if v.IsNil() {
				continue
			}
			switch v.Kind() {
			case value.KindRef, value.KindTime:
				continue // refs in phase 2; time has no literal
			case value.KindList:
				if lst, _ := v.AsList(); containsRef(lst) {
					continue // written in phase 2 alongside plain refs
				}
			}
			lit, ok := literal(v)
			if !ok {
				fmt.Fprintf(w, "# object %s attribute %s: value %s has no literal form\n", objVar(id), a.Name, v)
				continue
			}
			inits = append(inits, fmt.Sprintf("%s: %s", a.Name, lit))
		}
		fmt.Fprintf(w, "let %s := new %s(%s)\n", objVar(id), o.Class().Name, strings.Join(inits, ", "))
	}
	fmt.Fprintln(w, "\n# -- object references --")
	for _, id := range ids {
		o := objsByID[id]
		for _, a := range o.Class().Layout() {
			v := o.GetSlot(a.Slot())
			if ref, ok := v.AsRef(); ok && !ref.IsNil() {
				if objsByID[ref] == nil {
					continue // missing or system object: not dumped
				}
				fmt.Fprintf(w, "%s.%s := %s\n", objVar(id), a.Name, objVar(ref))
			}
			if lst, ok := v.AsList(); ok && containsRef(lst) {
				elems, allOK := listLiteralWithRefs(objsByID, lst)
				if allOK {
					fmt.Fprintf(w, "%s.%s := %s\n", objVar(id), a.Name, elems)
				} else {
					fmt.Fprintf(w, "# object %s attribute %s: list with non-dumpable elements\n", objVar(id), a.Name)
				}
			}
		}
	}

	// 6. Name bindings.
	if names := db.Names(); len(names) > 0 {
		fmt.Fprintln(w, "\n# -- bindings --")
		for _, n := range names {
			target, _ := db.Lookup(n)
			if objsByID[target] != nil {
				fmt.Fprintf(w, "bind %s %s\n", n, objVar(target))
			}
		}
	}

	// 7. Subscriptions (rule consumers only; Go func consumers are
	// transient). Snapshot the edges under mu; the reactive-object check
	// uses the already-collected population.
	db.mu.RLock()
	type subPair struct {
		reactive oid.OID
		ruleName string
	}
	var subsOut []subPair
	for reactive, consumers := range db.subs {
		for _, c := range consumers {
			if r := db.rules[c]; r != nil && !strings.HasPrefix(r.Name(), "__") {
				subsOut = append(subsOut, subPair{reactive, r.Name()})
			}
		}
	}
	db.mu.RUnlock()
	kept := subsOut[:0]
	for _, s := range subsOut {
		if objsByID[s.reactive] != nil {
			kept = append(kept, s)
		}
	}
	subsOut = kept
	sort.Slice(subsOut, func(i, j int) bool {
		if subsOut[i].reactive != subsOut[j].reactive {
			return subsOut[i].reactive < subsOut[j].reactive
		}
		return subsOut[i].ruleName < subsOut[j].ruleName
	})
	if len(subsOut) > 0 {
		fmt.Fprintln(w, "\n# -- subscriptions --")
		for _, s := range subsOut {
			fmt.Fprintf(w, "subscribe %s to %s\n", s.ruleName, objVar(s.reactive))
		}
	}

	// 8. Disabled rules.
	if len(disabled) > 0 {
		fmt.Fprintln(w, "\n# -- rule state --")
		for _, n := range disabled {
			fmt.Fprintf(w, "disable %s\n", n)
		}
	}
	return nil
}

// dumpRule renders one rule declaration (or a comment when its behaviour is
// an unpersistable Go closure).
func (db *Database) dumpRule(w io.Writer, r *rule.Rule) error {
	if r.CondClosure || r.ActClosure {
		fmt.Fprintf(w, "# rule %s uses unregistered Go closures and cannot be dumped; use go: registry names\n", r.Name())
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s", r.Name())
	if r.ClassLevel != "" {
		fmt.Fprintf(&b, " for %s", r.ClassLevel)
	}
	fmt.Fprintf(&b, "\n\ton %s", db.ruleEventSrc(r))
	if r.CondSrc != "" {
		fmt.Fprintf(&b, "\n\tif %s", r.CondSrc)
	}
	action := r.ActSrc
	switch {
	case action == "":
		b.WriteString("\n\tthen { print(\"\") }") // no action: keep it syntactically valid
	case strings.HasPrefix(action, "go:"):
		fmt.Fprintf(&b, "\n\tthen %s", action) // registry refs are not statements
	default:
		fmt.Fprintf(&b, "\n\tthen { %s }", action)
	}
	if r.Coupling != rule.Immediate {
		fmt.Fprintf(&b, "\n\tcoupling %s", r.Coupling)
	}
	if r.Priority != 0 {
		fmt.Fprintf(&b, "\n\tpriority %d", r.Priority)
	}
	if r.Context != 0 {
		fmt.Fprintf(&b, "\n\tcontext %s", r.Context)
	}
	if r.TxScoped {
		b.WriteString("\n\tscope transaction")
	}
	fmt.Fprintln(w, b.String())
	return nil
}

// ruleEventSrc returns the persisted event source of a rule (falling back
// to the canonical rendering).
func (db *Database) ruleEventSrc(r *rule.Rule) string {
	if o := db.objectByID(r.ID()); o != nil {
		if src, _ := mustGet(o, "event").AsString(); src != "" {
			return src
		}
	}
	return r.Event.String()
}

// objVar names an object variable in the dump script.
func objVar(id oid.OID) string { return fmt.Sprintf("o%d", uint64(id)) }

// literal renders a value as a parseable SentinelQL literal.
func literal(v value.Value) (string, bool) {
	switch v.Kind() {
	case value.KindBool, value.KindInt:
		return v.String(), true
	case value.KindFloat:
		f, _ := v.AsFloat()
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return "", false
		}
		return v.String(), true
	case value.KindString:
		s, _ := v.AsString()
		return strconv.Quote(s), true
	case value.KindList:
		lst, _ := v.AsList()
		parts := make([]string, len(lst))
		for i, e := range lst {
			p, ok := literal(e)
			if !ok {
				return "", false
			}
			parts[i] = p
		}
		return "[" + strings.Join(parts, ", ") + "]", true
	default:
		return "", false
	}
}

func containsRef(lst []value.Value) bool {
	for _, e := range lst {
		if _, ok := e.AsRef(); ok {
			return true
		}
	}
	return false
}

func listLiteralWithRefs(objsByID map[oid.OID]*object.Object, lst []value.Value) (string, bool) {
	parts := make([]string, len(lst))
	for i, e := range lst {
		if ref, ok := e.AsRef(); ok {
			if objsByID[ref] == nil {
				return "", false
			}
			parts[i] = objVar(ref)
			continue
		}
		p, ok := literal(e)
		if !ok {
			return "", false
		}
		parts[i] = p
	}
	return "[" + strings.Join(parts, ", ") + "]", true
}

// RestoreDSL executes a dump script with system visibility (the reference-
// patching phase writes attributes regardless of their declared
// visibility). Everything runs in one transaction.
func (db *Database) RestoreDSL(src string) error {
	return db.Atomically(func(t *Tx) error {
		script, err := lang.ParseScript(src, db.eventResolver())
		if err != nil {
			return err
		}
		fr := &frame{db: db, tx: t, sysAccess: true}
		in := lang.NewInterp(fr, fr.Self(), nil)
		for _, item := range script.Items {
			switch it := item.(type) {
			case *lang.ClassDecl:
				if err := db.registerDSLClass(t, it, true); err != nil {
					return err
				}
			case *lang.EvolveDecl:
				if err := db.evolveDSLClass(t, it.Class); err != nil {
					return err
				}
			case *lang.EventDecl:
				if _, err := db.DefineEvent(t, it.Name, it.Source); err != nil {
					return err
				}
			case *lang.RuleDecl:
				if _, err := db.CreateRule(t, specFromDecl(it, "")); err != nil {
					return err
				}
			case lang.Stmt:
				if err := in.ExecStmts([]lang.Stmt{it}); err != nil {
					return err
				}
			default:
				return fmt.Errorf("core: unknown script item %T", item)
			}
		}
		return nil
	})
}
