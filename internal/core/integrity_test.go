package core_test

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

func TestIntegrityCleanDatabase(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "w", EventSrc: "end Employee::SetSalary(float amount)", ActionSrc: `print("x")`,
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, r.ID()); err != nil {
			return err
		}
		if err := db.Bind(tx, "Fred", fred); err != nil {
			return err
		}
		if _, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)"); err != nil {
			return err
		}
		_, err = db.CreateIndex(tx, "Employee", "name")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if problems := db.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("clean database reports problems: %v", problems)
	}
	db.MustBeConsistent()
}

func TestIntegrityDetectsDanglingRef(t *testing.T) {
	db := orgDB(t)
	var mgr, emp oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		mgr, err = db.NewObject(tx, "Manager", map[string]value.Value{"name": value.Str("m")})
		if err != nil {
			return err
		}
		emp, err = db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("e"), "mgr": value.Ref(mgr)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	_ = emp
	// Deleting the manager leaves the employee's mgr ref dangling — the
	// checker must flag it (the system does not cascade).
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteObject(tx, mgr) }); err != nil {
		t.Fatal(err)
	}
	problems := db.CheckIntegrity()
	if len(problems) == 0 {
		t.Fatal("dangling reference not detected")
	}
	found := false
	for _, p := range problems {
		if contains(p, "references missing object") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected problem set: %v", problems)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestWorkloadStressWithIntegrity runs a mixed concurrent workload —
// creates, deletes, method sends triggering rules (all coupling modes),
// subscriptions, index maintenance — and requires a fully consistent
// database at the end, plus survival of a crash/recovery cycle.
func TestWorkloadStressWithIntegrity(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{
		Dir: dir, SyncOnCommit: false, Output: io.Discard, AsyncDetached: true,
		Schema: func(db *core.Database) error { return bench.InstallOrgSchema(db) },
	}
	db := core.MustOpen(opts)

	// Rules: one per coupling mode, class-level on Employee.
	if err := db.Atomically(func(tx *core.Tx) error {
		for _, mode := range []string{"immediate", "deferred", "detached"} {
			_, err := db.CreateRule(tx, core.RuleSpec{
				Name:       "stress-" + mode,
				EventSrc:   "end Employee::SetSalary(float amount)",
				CondSrc:    "amount > 500.0",
				Action:     func(ctx rule.ExecContext, det event.Detection) error { return nil },
				Coupling:   mode,
				ClassLevel: "Employee",
			})
			if err != nil {
				return err
			}
		}
		_, err := db.CreateIndex(tx, "Employee", "salary")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	var (
		mu  sync.Mutex
		ids []oid.OID
	)
	pick := func(rng *rand.Rand) oid.OID {
		mu.Lock()
		defer mu.Unlock()
		if len(ids) == 0 {
			return oid.Nil
		}
		return ids[rng.Intn(len(ids))]
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				err := db.Atomically(func(tx *core.Tx) error {
					switch rng.Intn(10) {
					case 0, 1, 2: // create
						id, err := db.NewObject(tx, "Employee", map[string]value.Value{
							"name":   value.Str(fmt.Sprintf("w%d-%d", seed, i)),
							"salary": value.Float(float64(rng.Intn(1000))),
						})
						if err != nil {
							return err
						}
						mu.Lock()
						ids = append(ids, id)
						mu.Unlock()
						return nil
					case 3: // delete
						id := pick(rng)
						if id.IsNil() || !db.Exists(id) {
							return nil
						}
						return db.DeleteObject(tx, id)
					default: // method send (fires rules)
						id := pick(rng)
						if id.IsNil() || !db.Exists(id) {
							return nil
						}
						_, err := db.Send(tx, id, "SetSalary", value.Float(float64(rng.Intn(2000))))
						return err
					}
				})
				if err != nil && !errors.Is(err, txn.ErrDeadlock) && !isMissingObject(err) {
					t.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	db.WaitIdle()

	if problems := db.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity after stress: %v", problems)
	}

	// Crash and recover; consistency must survive.
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if problems := db2.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity after crash recovery: %v", problems)
	}
}

// isMissingObject filters races where a worker touches an object another
// worker deleted between pick and lock — an application-level conflict, not
// a system fault.
func isMissingObject(err error) bool {
	return err != nil && contains(err.Error(), "no object")
}
