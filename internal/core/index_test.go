package core_test

// Secondary-index integration: correctness under writes, creations,
// deletions and aborts; subclass coverage; the lookup(...) builtin; and
// persistence across clean reopen and crash recovery.

import (
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

func lookupIDs(t *testing.T, db *core.Database, class, attr string, v value.Value) ([]oid.OID, bool) {
	t.Helper()
	var ids []oid.OID
	var indexed bool
	err := db.Atomically(func(tx *core.Tx) error {
		var err error
		ids, indexed, err = db.LookupByAttr(tx, class, attr, v)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, indexed
}

func TestIndexBackfillAndMaintenance(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 200)

	// Before any index: scan path.
	ids, indexed := lookupIDs(t, db, "Employee", "name", value.Str("fred"))
	if indexed || len(ids) != 1 || ids[0] != fred {
		t.Fatalf("scan lookup = %v (indexed=%v)", ids, indexed)
	}

	// Create the index: backfilled from the live population.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateIndex(tx, "Employee", "name")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ids, indexed = lookupIDs(t, db, "Employee", "name", value.Str("mary"))
	if !indexed || len(ids) != 1 || ids[0] != mary {
		t.Fatalf("indexed lookup = %v (indexed=%v)", ids, indexed)
	}

	// Attribute writes move index entries.
	if err := db.Atomically(func(tx *core.Tx) error {
		return db.SetSys(tx, fred, "name", value.Str("frederick"))
	}); err != nil {
		t.Fatal(err)
	}
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("fred")); len(ids) != 0 {
		t.Fatalf("stale entry after rename: %v", ids)
	}
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("frederick")); len(ids) != 1 {
		t.Fatalf("missing entry after rename: %v", ids)
	}

	// New objects are indexed; deleted ones are dropped.
	bob := mkEmployee(t, db, "bob", 1)
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("bob")); len(ids) != 1 || ids[0] != bob {
		t.Fatalf("created object not indexed: %v", ids)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteObject(tx, bob) }); err != nil {
		t.Fatal(err)
	}
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("bob")); len(ids) != 0 {
		t.Fatalf("deleted object still indexed: %v", ids)
	}
}

func TestIndexAbortRollsBackEntries(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateIndex(tx, "Employee", "name")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Aborted rename: the index must revert.
	tx := db.Begin()
	if err := db.SetSys(tx, fred, "name", value.Str("ghost")); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("ghost")); len(ids) != 0 {
		t.Fatalf("aborted rename visible in index: %v", ids)
	}
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("fred")); len(ids) != 1 {
		t.Fatalf("original entry lost: %v", ids)
	}

	// Aborted creation: no entry.
	tx = db.Begin()
	if _, err := db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("phantom")}); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("phantom")); len(ids) != 0 {
		t.Fatalf("aborted creation indexed: %v", ids)
	}

	// Aborted deletion: entry restored.
	tx = db.Begin()
	if err := db.DeleteObject(tx, fred); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if ids, _ := lookupIDs(t, db, "Employee", "name", value.Str("fred")); len(ids) != 1 {
		t.Fatalf("aborted deletion dropped the entry: %v", ids)
	}

	// Aborted index creation: gone entirely.
	tx = db.Begin()
	if _, err := db.CreateIndex(tx, "Employee", "salary"); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if db.Index("Employee", "salary") != nil {
		t.Fatal("aborted index creation survived")
	}
}

func TestIndexCoversSubclasses(t *testing.T) {
	db := orgDB(t)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateIndex(tx, "Employee", "name")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var mgr oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		mgr, err = db.NewObject(tx, "Manager", map[string]value.Value{"name": value.Str("boss")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ids, indexed := lookupIDs(t, db, "Employee", "name", value.Str("boss"))
	if !indexed || len(ids) != 1 || ids[0] != mgr {
		t.Fatalf("subclass instance not covered: %v", ids)
	}
}

func TestIndexErrorsAndDrop(t *testing.T) {
	db := orgDB(t)
	err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.CreateIndex(tx, "Nope", "x"); err == nil {
			t.Error("unknown class accepted")
		}
		if _, err := db.CreateIndex(tx, "Employee", "nope"); err == nil {
			t.Error("unknown attribute accepted")
		}
		if _, err := db.CreateIndex(tx, core.SysRuleClass, "name"); err == nil {
			t.Error("system class accepted")
		}
		if _, err := db.CreateIndex(tx, "Employee", "name"); err != nil {
			return err
		}
		if _, err := db.CreateIndex(tx, "Employee", "name"); err == nil {
			t.Error("duplicate index accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DropIndex(tx, "Employee", "name") }); err != nil {
		t.Fatal(err)
	}
	if db.Index("Employee", "name") != nil {
		t.Fatal("index survived drop")
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DropIndex(tx, "Employee", "name") }); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestIndexViaDSLAndLookupBuiltin(t *testing.T) {
	db := orgDB(t)
	mkEmployee(t, db, "fred", 100)
	mkEmployee(t, db, "fred", 150) // same name, different person
	mkEmployee(t, db, "mary", 200)

	if err := db.Exec(`
		index Employee.name
		let freds := lookup("Employee", "name", "fred")
		print("freds:", len(freds))
	`); err != nil {
		t.Fatal(err)
	}
	if db.Index("Employee", "name") == nil {
		t.Fatal("DSL index statement did not create an index")
	}
	if err := db.Exec(`unindex Employee.name`); err != nil {
		t.Fatal(err)
	}
	if db.Index("Employee", "name") != nil {
		t.Fatal("DSL unindex did not drop")
	}
	// lookup still works via scan.
	if err := db.Exec(`print(len(lookup("Employee", "name", "mary")))`); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSurvivesReopenAndCrash(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateIndex(tx, "Employee", "name")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: index definition + contents rebuilt.
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	h := db2.Index("Employee", "name")
	if h == nil {
		t.Fatal("index lost on reopen")
	}
	if got := h.Lookup(value.Str("fred")); len(got) != 1 || got[0] != fred {
		t.Fatalf("rebuilt index contents = %v", got)
	}
	// Write after reopen, then crash: recovery must rebuild with the
	// post-checkpoint state.
	mary := mkEmployee(t, db2, "mary", 5)
	if err := db2.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db3, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	h3 := db3.Index("Employee", "name")
	if h3 == nil {
		t.Fatal("index lost in crash recovery")
	}
	if got := h3.Lookup(value.Str("mary")); len(got) != 1 || got[0] != mary {
		t.Fatalf("crash-recovered index missing mary: %v", got)
	}
}

func TestIndexMethodWritesMaintained(t *testing.T) {
	// Writes through methods (the normal path) maintain the index too.
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateIndex(tx, "Employee", "salary")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(777))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ids, indexed := lookupIDs(t, db, "Employee", "salary", value.Float(777))
	if !indexed || len(ids) != 1 || ids[0] != fred {
		t.Fatalf("method write not reflected: %v", ids)
	}
	if ids, _ := lookupIDs(t, db, "Employee", "salary", value.Float(100)); len(ids) != 0 {
		t.Fatalf("old salary entry lingering: %v", ids)
	}
}
