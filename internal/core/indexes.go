package core

import (
	"fmt"
	"sort"

	"sentinel/internal/index"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// Secondary indexes: equality lookups on (class, attribute), maintained
// inline on every write with undo hooks, persisted as __Index catalog
// objects, rebuilt on open. Queries go through LookupByAttr (and the
// SentinelQL lookup(...) builtin), which uses the index when one exists and
// degrades to a scan otherwise.

type idxKey struct{ class, attr string }

// CreateIndex builds an equality index on class.attr (covering subclass
// instances), backfills it from the live population, and records it in the
// catalog. Creation is transactional.
func (db *Database) CreateIndex(t *Tx, class, attr string) (*index.Hash, error) {
	cls := db.reg.Lookup(class)
	if cls == nil {
		return nil, fmt.Errorf("core: unknown class %q", class)
	}
	if IsSystemClass(class) {
		return nil, fmt.Errorf("core: cannot index system class %s", class)
	}
	a := cls.AttributeNamed(attr)
	if a == nil {
		return nil, fmt.Errorf("core: class %s has no attribute %q", class, attr)
	}
	k := idxKey{class, attr}
	db.mu.RLock()
	_, dup := db.indexes[k]
	db.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("core: index on %s.%s already exists", class, attr)
	}

	h := index.NewHash(class, attr)
	// Backfill under shared locks so concurrent writers serialize with us.
	for _, id := range db.InstancesOf(class) {
		v, err := db.getAttr(t, id, attr, nil, true)
		if err != nil {
			return nil, err
		}
		h.Add(id, v)
	}
	objID, err := db.NewObject(t, SysIndexClass, map[string]value.Value{
		"class": value.Str(class),
		"attr":  value.Str(attr),
	})
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.indexes[k] = h
	db.indexObjs[k] = objID
	db.indexByClass[class] = append(db.indexByClass[class], h)
	db.mu.Unlock()
	t.inner.OnUndo(func() {
		db.mu.Lock()
		delete(db.indexes, k)
		delete(db.indexObjs, k)
		db.indexByClass[class] = removeIndex(db.indexByClass[class], h)
		db.mu.Unlock()
	})
	return h, nil
}

// DropIndex removes the index and its catalog object.
func (db *Database) DropIndex(t *Tx, class, attr string) error {
	k := idxKey{class, attr}
	db.mu.RLock()
	h := db.indexes[k]
	objID := db.indexObjs[k]
	db.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("core: no index on %s.%s", class, attr)
	}
	if err := db.DeleteObject(t, objID); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.indexes, k)
	delete(db.indexObjs, k)
	db.indexByClass[class] = removeIndex(db.indexByClass[class], h)
	db.mu.Unlock()
	t.inner.OnUndo(func() {
		db.mu.Lock()
		db.indexes[k] = h
		db.indexObjs[k] = objID
		db.indexByClass[class] = append(db.indexByClass[class], h)
		db.mu.Unlock()
	})
	return nil
}

// Index returns the live index on class.attr (nil if absent).
func (db *Database) Index(class, attr string) *index.Hash {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.indexes[idxKey{class, attr}]
}

func removeIndex(s []*index.Hash, h *index.Hash) []*index.Hash {
	for i, x := range s {
		if x == h {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

// indexesCovering returns the indexes that cover the given object's
// attribute: any index declared on a class in the object's MRO with a
// matching attribute name.
func (db *Database) indexesCovering(o *object.Object, attr string) []*index.Hash {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*index.Hash
	for _, k := range o.Class().MRO() {
		for _, h := range db.indexByClass[k.Name] {
			if h.Attr() == attr {
				out = append(out, h)
			}
		}
	}
	return out
}

// indexWrite updates covering indexes for an attribute change and arms the
// undo hook.
func (db *Database) indexWrite(t *Tx, o *object.Object, attr string, oldV, newV value.Value) {
	covering := db.indexesCovering(o, attr)
	if len(covering) == 0 {
		return
	}
	id := o.ID()
	for _, h := range covering {
		h.Move(id, oldV, newV)
	}
	t.inner.OnUndo(func() {
		for _, h := range covering {
			h.Move(id, newV, oldV)
		}
	})
}

// indexObjectAdd indexes a freshly created object in every covering index.
func (db *Database) indexObjectAdd(t *Tx, o *object.Object) {
	cls := o.Class()
	id := o.ID()
	db.mu.RLock()
	var pairs []*index.Hash
	for _, k := range cls.MRO() {
		pairs = append(pairs, db.indexByClass[k.Name]...)
	}
	db.mu.RUnlock()
	if len(pairs) == 0 {
		return
	}
	for _, h := range pairs {
		if a := cls.AttributeNamed(h.Attr()); a != nil {
			h.Add(id, o.GetSlot(a.Slot()))
		}
	}
	t.inner.OnUndo(func() {
		for _, h := range pairs {
			if a := cls.AttributeNamed(h.Attr()); a != nil {
				h.Remove(id, o.GetSlot(a.Slot()))
			}
		}
	})
}

// indexObjectRemove drops a deleted object from every covering index.
func (db *Database) indexObjectRemove(t *Tx, o *object.Object) {
	cls := o.Class()
	id := o.ID()
	db.mu.RLock()
	var pairs []*index.Hash
	for _, k := range cls.MRO() {
		pairs = append(pairs, db.indexByClass[k.Name]...)
	}
	db.mu.RUnlock()
	if len(pairs) == 0 {
		return
	}
	type saved struct {
		h *index.Hash
		v value.Value
	}
	var snaps []saved
	for _, h := range pairs {
		if a := cls.AttributeNamed(h.Attr()); a != nil {
			v := o.GetSlot(a.Slot())
			h.Remove(id, v)
			snaps = append(snaps, saved{h, v})
		}
	}
	t.inner.OnUndo(func() {
		for _, s := range snaps {
			s.h.Add(id, s.v)
		}
	})
}

// LookupByAttr returns the OIDs of instances of class (or subclasses) whose
// attribute equals v. It uses the index on (class, attr) when present and
// otherwise scans, so it is always correct and opportunistically fast. The
// second result reports whether an index served the query.
func (db *Database) LookupByAttr(t *Tx, class, attr string, v value.Value) ([]oid.OID, bool, error) {
	if h := db.Index(class, attr); h != nil {
		return h.Lookup(v), true, nil
	}
	cls := db.reg.Lookup(class)
	if cls == nil {
		return nil, false, fmt.Errorf("core: unknown class %q", class)
	}
	if cls.AttributeNamed(attr) == nil {
		return nil, false, fmt.Errorf("core: class %s has no attribute %q", class, attr)
	}
	var out []oid.OID
	for _, id := range db.InstancesOf(class) {
		got, err := db.getAttr(t, id, attr, nil, true)
		if err != nil {
			return nil, false, err
		}
		if got.Equal(v) {
			out = append(out, id)
		}
	}
	return out, false, nil
}

// Indexes returns all live indexes, sorted by class then attribute.
func (db *Database) Indexes() []*index.Hash {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*index.Hash, 0, len(db.indexes))
	for _, h := range db.indexes {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class() != out[j].Class() {
			return out[i].Class() < out[j].Class()
		}
		return out[i].Attr() < out[j].Attr()
	})
	return out
}
