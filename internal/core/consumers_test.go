package core

// Internal tests for selective consumer-cache invalidation: blast-radius
// precision (a mutation stales exactly the entries derived from its keys),
// map hygiene (per-key bookkeeping is pruned when objects die and classes
// evolve — the old epoch scheme leaked stale entries forever), abort-path
// re-invalidation through the consolidated invalidateConsumers helper, and
// the zero-allocation hot-path pin with churn idle. Package core (not
// core_test) because they inspect the cache maps directly.

import (
	"fmt"
	"io"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// hierClasses registers a small reactive hierarchy — Base ← Mid ← Leaf plus
// an unrelated Other — each with an end-event method Set(float v), and
// returns one instance of each of the four classes.
func hierClasses(t *testing.T, db *Database) map[string]oid.OID {
	t.Helper()
	mk := func(name string, bases ...*schema.Class) *schema.Class {
		c := schema.NewClass(name, bases...)
		c.Classification = schema.ReactiveClass
		if len(bases) == 0 {
			c.Attr("x", value.TypeFloat)
			c.AddMethod(&schema.Method{
				Name:       "Set",
				Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
				Visibility: schema.Public,
				EventGen:   schema.GenEnd,
				Body: func(ctx schema.CallContext) (value.Value, error) {
					return value.Nil, ctx.Set("x", ctx.Arg(0))
				},
			})
		}
		return db.MustRegisterClass(c)
	}
	base := mk("Base")
	mid := mk("Mid", base)
	mk("Leaf", mid)
	mk("Other")

	ids := make(map[string]oid.OID, 4)
	if err := db.Atomically(func(tx *Tx) error {
		for _, name := range []string{"Base", "Mid", "Leaf", "Other"} {
			id, err := db.NewObject(tx, name, nil)
			if err != nil {
				return err
			}
			ids[name] = id
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

// warm raises one event on each object so every entry is cached, then
// returns a probe func reporting which objects currently hit the cache.
func warmAll(t *testing.T, db *Database, ids map[string]oid.OID) func() map[string]bool {
	t.Helper()
	raise := func() {
		for _, id := range ids {
			if err := db.Atomically(func(tx *Tx) error {
				_, err := db.Send(tx, id, "Set", value.Float(1))
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	raise()
	return func() map[string]bool {
		cached := make(map[string]bool, len(ids))
		epoch := db.subEpoch.Load()
		db.ccMu.RLock()
		for name, id := range ids {
			e := db.objConsumers[id]
			cached[name] = e != nil && e.epoch == epoch
		}
		db.ccMu.RUnlock()
		return cached
	}
}

func wantCached(t *testing.T, got map[string]bool, want map[string]bool) {
	t.Helper()
	for name, w := range want {
		if got[name] != w {
			t.Errorf("entry for %s cached = %v, want %v (all: %v)", name, got[name], w, got)
		}
	}
}

// TestClassScopeBlastRadius: a class-level rule mutation on Mid must stale
// exactly Mid and Leaf (its registered subtree) — Base and the unrelated
// Other keep their entries.
func TestClassScopeBlastRadius(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hierClasses(t, db)
	probe := warmAll(t, db, ids)

	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.CreateRule(tx, RuleSpec{
			Name: "midrule", EventSrc: "end Base::Set(float v)", ClassLevel: "Mid",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantCached(t, probe(), map[string]bool{"Base": true, "Other": true, "Mid": false, "Leaf": false})

	// The class entries for the subtree are gone too.
	db.ccMu.RLock()
	_, midOK := db.classConsumers["Mid"]
	_, leafOK := db.classConsumers["Leaf"]
	_, baseOK := db.classConsumers["Base"]
	db.ccMu.RUnlock()
	if midOK || leafOK || !baseOK {
		t.Errorf("class entries after Mid rule: Mid=%v Leaf=%v Base=%v, want false/false/true", midOK, leafOK, baseOK)
	}

	// After re-warming, the subtree instances see the rule through their
	// MRO, the others do not.
	warmAll(t, db, ids)
	for name, id := range ids {
		rules, _ := db.consumersOf(db.objectByID(id))
		want := 0
		if name == "Mid" || name == "Leaf" {
			want = 1
		}
		if len(rules) != want {
			t.Errorf("%s sees %d rules, want %d", name, len(rules), want)
		}
	}
}

// TestObjScopeBlastRadius: an instance subscription stales only that
// object's entry.
func TestObjScopeBlastRadius(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hierClasses(t, db)

	var rid oid.OID
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "inst", EventSrc: "end Base::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		if err != nil {
			return err
		}
		rid = r.ID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	probe := warmAll(t, db, ids)
	if err := db.Atomically(func(tx *Tx) error {
		return db.Subscribe(tx, ids["Leaf"], rid)
	}); err != nil {
		t.Fatal(err)
	}
	wantCached(t, probe(), map[string]bool{"Base": true, "Mid": true, "Other": true, "Leaf": false})

	if err := db.Atomically(func(tx *Tx) error {
		return db.Unsubscribe(tx, ids["Leaf"], rid)
	}); err != nil {
		t.Fatal(err)
	}
	wantCached(t, probe(), map[string]bool{"Base": true, "Mid": true, "Other": true, "Leaf": false})
}

// TestAbortReinvalidates: the single undo closure registered by
// invalidateConsumers must restore the catalog *and then* re-invalidate,
// so an aborted mutation leaves neither its effect nor a stale entry.
func TestAbortReinvalidates(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hierClasses(t, db)
	warmAll(t, db, ids)

	// Inside a tx: create a class rule, raise (fires and caches an entry
	// containing the rule), abort.
	var fired int
	tx := db.Begin()
	if _, err := db.CreateRule(tx, RuleSpec{
		Name: "doomed", EventSrc: "end Base::Set(float v)", ClassLevel: "Base",
		Action: func(rule.ExecContext, event.Detection) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Send(tx, ids["Base"], "Set", value.Float(2)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("rule fired %d times inside tx, want 1", fired)
	}
	db.Abort(tx)

	// After abort the cached entry from inside the tx must be stale: the
	// rule is gone and must not fire again.
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, ids["Base"], "Set", value.Float(3))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("aborted rule fired again (%d total): stale consumer entry survived abort", fired)
	}
}

// TestConsumerStatePruning is the map-hygiene regression test: per-object
// bookkeeping (entry, generation, classDeps back-reference) disappears when
// the object's delete commits, and class entries for an evolved class are
// removed rather than left to accumulate per evolve round.
func TestConsumerStatePruning(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	const n = 32
	ids := hotPathClass(t, db, n)

	// Subscribe/unsubscribe churn on each object (to populate objGen),
	// then raise to warm every entry.
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "churn", EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := db.Subscribe(tx, id, r.ID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, id, "Set", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.ccMu.RLock()
	entries, gens := len(db.objConsumers), len(db.objGen)
	deps := len(db.classDeps["P"])
	db.ccMu.RUnlock()
	if entries < n || gens < n || deps < n {
		t.Fatalf("warm state: %d entries, %d gens, %d deps; want ≥%d each", entries, gens, deps, n)
	}

	// Delete every object; commit must prune all per-object state.
	if err := db.Atomically(func(tx *Tx) error {
		for _, id := range ids {
			if err := db.DeleteObject(tx, id); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db.ccMu.RLock()
	for _, id := range ids {
		if _, ok := db.objConsumers[id]; ok {
			t.Errorf("objConsumers[%s] survived delete commit", id)
		}
		if _, ok := db.objGen[id]; ok {
			t.Errorf("objGen[%s] survived delete commit", id)
		}
		if _, ok := db.classDeps["P"][id]; ok {
			t.Errorf("classDeps[P][%s] survived delete commit", id)
		}
	}
	db.ccMu.RUnlock()

	// Evolve churn: the class entry must be dropped each round, not
	// accumulate stale versions; the maps stay bounded by live keys.
	surv := hotPathClass2(t, db, "Q")
	for round := 0; round < 10; round++ {
		if err := db.Atomically(func(tx *Tx) error {
			c := schema.NewClass("Q")
			c.Classification = schema.ReactiveClass
			c.Attr("x", value.TypeFloat)
			c.Attr(fmt.Sprintf("extra%d", round), value.TypeInt)
			c.AddMethod(&schema.Method{
				Name:       "Set",
				Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
				Visibility: schema.Public,
				EventGen:   schema.GenEnd,
				Body: func(ctx schema.CallContext) (value.Value, error) {
					return value.Nil, ctx.Set("x", ctx.Arg(0))
				},
			})
			return db.EvolveClass(tx, c, "")
		}); err != nil {
			t.Fatal(err)
		}
		db.ccMu.RLock()
		_, present := db.classConsumers["Q"]
		db.ccMu.RUnlock()
		if present {
			t.Fatalf("round %d: classConsumers[Q] survived EvolveClass", round)
		}
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, surv, "Set", value.Float(float64(round)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.ccMu.RLock()
	classEntries := len(db.classConsumers)
	classGens := len(db.classGen)
	db.ccMu.RUnlock()
	// Bounded by distinct class names ever raised on (P died with its
	// instances' entries; Q live; no per-round growth).
	if classEntries > 4 || classGens > 4 {
		t.Errorf("class maps grew with churn: %d entries, %d gens", classEntries, classGens)
	}
}

// hotPathClass2 registers one reactive class with the given name and a
// Set(float v) end-event method, returning a single instance.
func hotPathClass2(t *testing.T, db *Database, name string) oid.OID {
	t.Helper()
	cls := schema.NewClass(name)
	cls.Classification = schema.ReactiveClass
	cls.Attr("x", value.TypeFloat)
	cls.AddMethod(&schema.Method{
		Name:       "Set",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("x", ctx.Arg(0))
		},
	})
	db.MustRegisterClass(cls)
	var id oid.OID
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		id, err = db.NewObject(tx, name, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestZeroAllocsAfterChurn re-pins the hot-path allocation contract after
// heavy invalidation traffic: once churn goes idle and the cache re-warms,
// a raise is again one epoch load + one map read with zero allocations
// (including the hit-counter increment).
func TestZeroAllocsAfterChurn(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hotPathClass(t, db, 2)
	watched := ids[1]

	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "w", EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, watched, r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	// Churn: 50 rounds of rule create/delete, subscribe/unsubscribe and
	// enable/disable against the same class and object.
	for k := 0; k < 50; k++ {
		name := fmt.Sprintf("c%d", k)
		if err := db.Atomically(func(tx *Tx) error {
			r, err := db.CreateRule(tx, RuleSpec{
				Name: name, EventSrc: "end P::Set(float v)", ClassLevel: "P",
				Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
			})
			if err != nil {
				return err
			}
			if err := db.Subscribe(tx, watched, r.ID()); err != nil {
				return err
			}
			return db.DisableRule(tx, name)
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Atomically(func(tx *Tx) error {
			return db.DeleteRule(tx, name)
		}); err != nil {
			t.Fatal(err)
		}
	}

	tx := db.Begin()
	defer db.Abort(tx)
	quietSrc := db.objectByID(ids[0])
	src := db.objectByID(watched)
	args := []value.Value{value.Float(1)}
	for i := 0; i < 3; i++ {
		if err := db.raise(tx, quietSrc, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := db.raise(tx, quietSrc, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("no-consumer raise after churn: %v allocs/op, want 0", n)
	}
	db.consumersOf(src) // warm
	if n := testing.AllocsPerRun(200, func() {
		rules, fns := db.consumersOf(src)
		if len(rules) != 1 || len(fns) != 0 {
			t.Fatalf("consumersOf = %d rules, %d fns; want 1, 0", len(rules), len(fns))
		}
	}); n != 0 {
		t.Errorf("cached consumersOf after churn: %v allocs/op, want 0", n)
	}

	// The cache counters saw the workload and are surfaced in Stats.
	s := db.Stats().Rules
	if s.CacheHits == 0 || s.CacheMisses == 0 || s.CacheInvalidations == 0 || s.CacheEntries == 0 {
		t.Errorf("cache stats missed the workload: %+v", s)
	}
}

// TestGlobalReferenceMode pins the GlobalConsumerInvalidation escape
// hatch: every mutation — including enable/disable, which the selective
// scheme ignores — bumps the global epoch, and firing behaviour matches
// the selective mode.
func TestGlobalReferenceMode(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, GlobalConsumerInvalidation: true})
	ids := hierClasses(t, db)
	probe := warmAll(t, db, ids)

	before := db.subEpoch.Load()
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.CreateRule(tx, RuleSpec{
			Name: "g", EventSrc: "end Base::Set(float v)", ClassLevel: "Mid",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if db.subEpoch.Load() == before {
		t.Fatal("global mode did not bump the epoch on CreateRule")
	}
	// Everything is stale, not just the subtree.
	wantCached(t, probe(), map[string]bool{"Base": false, "Mid": false, "Leaf": false, "Other": false})

	epoch := db.subEpoch.Load()
	if err := db.Atomically(func(tx *Tx) error { return db.DisableRule(tx, "g") }); err != nil {
		t.Fatal(err)
	}
	if db.subEpoch.Load() == epoch {
		t.Fatal("global mode did not bump the epoch on DisableRule")
	}

	warmAll(t, db, ids)
	for name, id := range ids {
		rules, _ := db.consumersOf(db.objectByID(id))
		want := 0
		if name == "Mid" || name == "Leaf" {
			want = 1
		}
		if len(rules) != want {
			t.Errorf("global mode: %s sees %d rules, want %d", name, len(rules), want)
		}
	}
}
