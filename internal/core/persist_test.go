package core_test

// Persistence and crash-recovery tests: rules, events, subscriptions and
// name bindings are first-class persistent objects and come back through
// clean reopen AND WAL crash recovery.

import (
	"io"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

func persistentOpts(dir string) core.Options {
	return core.Options{Dir: dir, SyncOnCommit: true, Output: io.Discard}
}

func orgOpts(dir string) core.Options {
	o := persistentOpts(dir)
	o.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
	return o
}

func TestCrashRecoveryObjects(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	// Checkpoint, then more committed work that lives only in the WAL.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mary := mkEmployee(t, db, "mary", 200)
	if err := db.Atomically(func(tx *core.Tx) error {
		return db.SetSys(tx, fred, "salary", value.Float(555))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatalf("crash recovery: %v", err)
	}
	defer db2.Close()
	if !db2.Exists(fred) || !db2.Exists(mary) {
		t.Fatal("objects lost in crash recovery")
	}
	if err := db2.Atomically(func(tx *core.Tx) error {
		v, err := db2.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 555 {
			t.Errorf("salary = %v, want 555", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// New OIDs do not collide with recovered ones.
	bob := mkEmployee(t, db2, "bob", 1)
	if bob == fred || bob == mary {
		t.Fatal("OID allocator not advanced past recovered objects")
	}
}

func TestCrashRecoveryUncommittedInvisible(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	// An open transaction's writes must not survive the crash.
	tx := db.Begin()
	if err := db.SetSys(tx, fred, "salary", value.Float(999)); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Atomically(func(tx *core.Tx) error {
		v, err := db2.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 100 {
			t.Errorf("uncommitted write survived: salary = %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryDeletes(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Delete fred after the checkpoint: only the WAL knows.
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteObject(tx, fred) }); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Exists(fred) {
		t.Fatal("deleted object resurrected by crash recovery")
	}
	if !db2.Exists(mary) {
		t.Fatal("innocent object lost")
	}
}

func TestRuleAndSubscriptionRecovery(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:      "cap",
			EventSrc:  "end Employee::SetSalary(float amount)",
			CondSrc:   "amount > 500.0",
			ActionSrc: `abort "cap"`,
			Coupling:  "deferred",
			Priority:  7,
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil { // crash, not clean close
		t.Fatal(err)
	}

	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := db2.LookupRule("cap")
	if r == nil {
		t.Fatal("rule lost")
	}
	if r.Coupling != rule.Deferred || r.Priority != 7 {
		t.Fatalf("rule metadata lost: %v", r)
	}
	// It still enforces.
	err = db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(501))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("recovered rule did not fire: %v", err)
	}
	if err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(400))
		return err
	}); err != nil {
		t.Fatalf("benign update blocked: %v", err)
	}
}

func TestDisabledRuleStaysDisabledAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "w", EventSrc: "end Employee::SetSalary(float amount)",
			ActionSrc: `print("x")`,
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DisableRule(tx, "w") }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.LookupRule("w").Enabled() {
		t.Fatal("disabled state lost across reopen")
	}
}

func TestDeletedRuleStaysDeletedAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{Name: "victim", EventSrc: "end Employee::SetSalary(float a)"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteRule(tx, "victim") }); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.LookupRule("victim") != nil {
		t.Fatal("deleted rule resurrected")
	}
}

func TestGoConditionRebindsOnReopen(t *testing.T) {
	dir := t.TempDir()
	fired := 0
	mkOpts := func() core.Options {
		o := persistentOpts(dir)
		o.Schema = func(db *core.Database) error {
			if err := bench.InstallOrgSchema(db); err != nil {
				return err
			}
			db.RegisterCondition("overBudget", func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				a, _ := det.Last().Args[0].Numeric()
				return a > 100, nil
			})
			db.RegisterAction("count", func(ctx rule.ExecContext, det event.Detection) error {
				fired++
				return nil
			})
			return nil
		}
		return o
	}
	db := core.MustOpen(mkOpts())
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "g", EventSrc: "end Employee::SetSalary(float amount)",
			CondSrc: "go:overBudget", ActionSrc: "go:count",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Atomically(func(tx *core.Tx) error {
		if _, err := db2.Send(tx, fred, "SetSalary", value.Float(50)); err != nil {
			return err
		}
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(500))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("rebound go: rule fired %d times, want 1", fired)
	}

	// Reopening WITHOUT registering the functions fails loudly.
	db2.Close()
	if _, err := core.Open(orgOpts(dir)); err == nil {
		t.Fatal("open without registered go: functions should fail")
	}
}

func TestDSLClassSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(persistentOpts(dir))
	if err := db.Exec(`
		class Gadget reactive persistent {
			attr name string
			attr uses int
			event end method Use() { self.uses := self.uses + 1 }
		}
		class SuperGadget extends Gadget persistent {
			method Boost() { self.uses := self.uses + 10 }
		}
		bind G new SuperGadget(name: "g1")
	`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`G!Use() G!Boost()`); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(persistentOpts(dir))
	if err != nil {
		t.Fatalf("DSL classes did not replay: %v", err)
	}
	defer db2.Close()
	v, err := db2.Eval(`G.uses`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Int(11)) {
		t.Fatalf("uses = %v, want 11", v)
	}
	// The interpreted methods still run.
	if err := db2.Exec(`G!Use()`); err != nil {
		t.Fatal(err)
	}
	v, _ = db2.Eval(`G.uses`)
	if !v.Equal(value.Int(12)) {
		t.Fatalf("post-recovery uses = %v", v)
	}
}

func TestNamedEventSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	e, ok := db2.LookupEvent("Raise")
	if !ok {
		t.Fatal("named event lost")
	}
	if e.String() != "end Employee::SetSalary" {
		t.Fatalf("event = %s", e)
	}
	// Usable in new rules.
	if err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.CreateRule(tx, core.RuleSpec{Name: "r", EventSrc: "Raise"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	for i := 0; i < 50; i++ {
		mkEmployee(t, db, "e", 1)
	}
	before := db.WALSize()
	if before == 0 {
		t.Fatal("WAL empty after 50 creates")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.WALSize() >= before {
		t.Fatalf("checkpoint did not shrink WAL: %d -> %d", before, db.WALSize())
	}
	db.Close()
}

func TestTransientClassesNotPersisted(t *testing.T) {
	dir := t.TempDir()
	opts := persistentOpts(dir)
	opts.Schema = func(db *core.Database) error {
		c := schema.NewClass("Scratch") // not persistent
		c.Attr("x", value.TypeInt)
		return db.RegisterClass(c)
	}
	db := core.MustOpen(opts)
	var id oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		id, err = db.NewObject(tx, "Scratch", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Exists(id) {
		t.Fatal("transient object persisted")
	}
}
