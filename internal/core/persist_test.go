package core_test

// Persistence and crash-recovery tests: rules, events, subscriptions and
// name bindings are first-class persistent objects and come back through
// clean reopen AND WAL crash recovery.

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
	"sentinel/internal/wal"
)

func persistentOpts(dir string) core.Options {
	return core.Options{Dir: dir, SyncOnCommit: true, Output: io.Discard}
}

func orgOpts(dir string) core.Options {
	o := persistentOpts(dir)
	o.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
	return o
}

func TestCrashRecoveryObjects(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	// Checkpoint, then more committed work that lives only in the WAL.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mary := mkEmployee(t, db, "mary", 200)
	if err := db.Atomically(func(tx *core.Tx) error {
		return db.SetSys(tx, fred, "salary", value.Float(555))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatalf("crash recovery: %v", err)
	}
	defer db2.Close()
	if !db2.Exists(fred) || !db2.Exists(mary) {
		t.Fatal("objects lost in crash recovery")
	}
	if err := db2.Atomically(func(tx *core.Tx) error {
		v, err := db2.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 555 {
			t.Errorf("salary = %v, want 555", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// New OIDs do not collide with recovered ones.
	bob := mkEmployee(t, db2, "bob", 1)
	if bob == fred || bob == mary {
		t.Fatal("OID allocator not advanced past recovered objects")
	}
}

func TestCrashRecoveryUncommittedInvisible(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	// An open transaction's writes must not survive the crash.
	tx := db.Begin()
	if err := db.SetSys(tx, fred, "salary", value.Float(999)); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Atomically(func(tx *core.Tx) error {
		v, err := db2.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 100 {
			t.Errorf("uncommitted write survived: salary = %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryDeletes(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Delete fred after the checkpoint: only the WAL knows.
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteObject(tx, fred) }); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Exists(fred) {
		t.Fatal("deleted object resurrected by crash recovery")
	}
	if !db2.Exists(mary) {
		t.Fatal("innocent object lost")
	}
}

func TestRuleAndSubscriptionRecovery(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:      "cap",
			EventSrc:  "end Employee::SetSalary(float amount)",
			CondSrc:   "amount > 500.0",
			ActionSrc: `abort "cap"`,
			Coupling:  "deferred",
			Priority:  7,
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil { // crash, not clean close
		t.Fatal(err)
	}

	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := db2.LookupRule("cap")
	if r == nil {
		t.Fatal("rule lost")
	}
	if r.Coupling != rule.Deferred || r.Priority != 7 {
		t.Fatalf("rule metadata lost: %v", r)
	}
	// It still enforces.
	err = db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(501))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("recovered rule did not fire: %v", err)
	}
	if err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(400))
		return err
	}); err != nil {
		t.Fatalf("benign update blocked: %v", err)
	}
}

func TestDisabledRuleStaysDisabledAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "w", EventSrc: "end Employee::SetSalary(float amount)",
			ActionSrc: `print("x")`,
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DisableRule(tx, "w") }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.LookupRule("w").Enabled() {
		t.Fatal("disabled state lost across reopen")
	}
}

func TestDeletedRuleStaysDeletedAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{Name: "victim", EventSrc: "end Employee::SetSalary(float a)"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteRule(tx, "victim") }); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.LookupRule("victim") != nil {
		t.Fatal("deleted rule resurrected")
	}
}

func TestGoConditionRebindsOnReopen(t *testing.T) {
	dir := t.TempDir()
	fired := 0
	mkOpts := func() core.Options {
		o := persistentOpts(dir)
		o.Schema = func(db *core.Database) error {
			if err := bench.InstallOrgSchema(db); err != nil {
				return err
			}
			db.RegisterCondition("overBudget", func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				a, _ := det.Last().Args[0].Numeric()
				return a > 100, nil
			})
			db.RegisterAction("count", func(ctx rule.ExecContext, det event.Detection) error {
				fired++
				return nil
			})
			return nil
		}
		return o
	}
	db := core.MustOpen(mkOpts())
	fred := mkEmployee(t, db, "fred", 100)
	if err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "g", EventSrc: "end Employee::SetSalary(float amount)",
			CondSrc: "go:overBudget", ActionSrc: "go:count",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Atomically(func(tx *core.Tx) error {
		if _, err := db2.Send(tx, fred, "SetSalary", value.Float(50)); err != nil {
			return err
		}
		_, err := db2.Send(tx, fred, "SetSalary", value.Float(500))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("rebound go: rule fired %d times, want 1", fired)
	}

	// Reopening WITHOUT registering the functions fails loudly.
	db2.Close()
	if _, err := core.Open(orgOpts(dir)); err == nil {
		t.Fatal("open without registered go: functions should fail")
	}
}

func TestDSLClassSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(persistentOpts(dir))
	if err := db.Exec(`
		class Gadget reactive persistent {
			attr name string
			attr uses int
			event end method Use() { self.uses := self.uses + 1 }
		}
		class SuperGadget extends Gadget persistent {
			method Boost() { self.uses := self.uses + 10 }
		}
		bind G new SuperGadget(name: "g1")
	`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`G!Use() G!Boost()`); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(persistentOpts(dir))
	if err != nil {
		t.Fatalf("DSL classes did not replay: %v", err)
	}
	defer db2.Close()
	v, err := db2.Eval(`G.uses`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Int(11)) {
		t.Fatalf("uses = %v, want 11", v)
	}
	// The interpreted methods still run.
	if err := db2.Exec(`G!Use()`); err != nil {
		t.Fatal(err)
	}
	v, _ = db2.Eval(`G.uses`)
	if !v.Equal(value.Int(12)) {
		t.Fatalf("post-recovery uses = %v", v)
	}
}

func TestNamedEventSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(orgOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	e, ok := db2.LookupEvent("Raise")
	if !ok {
		t.Fatal("named event lost")
	}
	if e.String() != "end Employee::SetSalary" {
		t.Fatalf("event = %s", e)
	}
	// Usable in new rules.
	if err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.CreateRule(tx, core.RuleSpec{Name: "r", EventSrc: "Raise"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(orgOpts(dir))
	for i := 0; i < 50; i++ {
		mkEmployee(t, db, "e", 1)
	}
	before := db.WALSize()
	if before == 0 {
		t.Fatal("WAL empty after 50 creates")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.WALSize() >= before {
		t.Fatalf("checkpoint did not shrink WAL: %d -> %d", before, db.WALSize())
	}
	db.Close()
}

// TestCrashRecoveryAbortedAndTornTail drives the replay path with a log
// that mixes, after the last checkpoint: an explicitly aborted transaction
// (RecAbort), a committed transaction, an uncommitted transaction (no
// terminator), and finally a torn partial frame. Recovery must apply
// exactly the committed transaction, ignore the rest, and stop cleanly at
// the torn tail.
func TestCrashRecoveryAbortedAndTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := persistentOpts(dir)
	opts.Schema = func(db *core.Database) error {
		c := schema.NewClass("Rec")
		c.Persistent = true
		c.Attr("v", value.TypeInt)
		return db.RegisterClass(c)
	}

	db := core.MustOpen(opts)
	var fred oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		fred, err = db.NewObject(tx, "Rec", map[string]value.Value{"v": value.Int(100)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // heap has fred, WAL empty
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil { // no clean-close checkpoint
		t.Fatal(err)
	}

	// Hand-append the post-checkpoint tail: Encode layout is
	// class-name, field count, fields (see object.Encode).
	img := func(v int64) []byte {
		b := value.AppendValue(nil, value.Str("Rec"))
		b = value.AppendValue(b, value.Int(1))
		return value.AppendValue(b, value.Int(v))
	}
	mary := fred + 1000 // fresh OID, clear of everything allocated so far
	log, err := wal.Open(filepath.Join(dir, "sentinel.wal"))
	if err != nil {
		t.Fatal(err)
	}
	recs := []wal.Record{
		{Type: wal.RecUpdate, Tx: 7, OID: fred, Data: img(700)},
		{Type: wal.RecAbort, Tx: 7},
		{Type: wal.RecUpdate, Tx: 8, OID: mary, Data: img(800)},
		{Type: wal.RecCommit, Tx: 8},
		{Type: wal.RecUpdate, Tx: 9, OID: fred, Data: img(900)}, // never commits
	}
	if err := log.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: a few garbage bytes shorter than a frame header.
	f, err := os.OpenFile(filepath.Join(dir, "sentinel.wal"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := core.Open(opts)
	if err != nil {
		t.Fatalf("recovery over aborted+torn log: %v", err)
	}
	defer db2.Close()
	readV := func(id oid.OID) int64 {
		var got int64
		if err := db2.Atomically(func(tx *core.Tx) error {
			v, err := db2.GetSys(tx, id, "v")
			if err != nil {
				return err
			}
			got, _ = v.AsInt()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if v := readV(fred); v != 100 {
		t.Errorf("fred.v = %d, want 100 (aborted tx 7 / uncommitted tx 9 leaked)", v)
	}
	if !db2.Exists(mary) {
		t.Fatal("committed tx 8 lost")
	}
	if v := readV(mary); v != 800 {
		t.Errorf("mary.v = %d, want 800", v)
	}
	db2.MustBeConsistent()
}

func TestTransientClassesNotPersisted(t *testing.T) {
	dir := t.TempDir()
	opts := persistentOpts(dir)
	opts.Schema = func(db *core.Database) error {
		c := schema.NewClass("Scratch") // not persistent
		c.Attr("x", value.TypeInt)
		return db.RegisterClass(c)
	}
	db := core.MustOpen(opts)
	var id oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		id, err = db.NewObject(tx, "Scratch", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Exists(id) {
		t.Fatal("transient object persisted")
	}
}
