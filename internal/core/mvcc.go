package core

// mvcc.go coordinates the copy-on-write multi-versioning built into the
// resident directory (directory.go): commit-LSN allocation, the snapshot
// registry, the low-watermark protocol, version installation at commit, and
// the read-only snapshot transaction API.
//
// The protocol in one paragraph: every committing transaction allocates an
// LSN C from the tracker (begin), installs its write set's versions at C
// with 2PL locks still held, and then marks C done (end). The tracker's
// `stable` LSN is the highest C below which every allocation has ended, so
// a state labeled `stable` is fully installed. Snapshots are acquired AT
// the stable LSN under the registry mutex; the watermark W — the prune /
// eviction / tombstone-drop bound — is min(oldest active snapshot, stable),
// computed under the same mutex. That makes the acquire-vs-prune race
// benign: any snapshot acquired after a watermark computation reads
// stable ≥ W, so versions dead under W stay dead forever.

import (
	"fmt"
	"sync"

	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// lsnTracker allocates commit LSNs and tracks which are fully installed.
type lsnTracker struct {
	mu     sync.Mutex
	next   uint64          // last LSN handed out
	stable uint64          // highest LSN with no open allocation at or below it
	open   map[uint64]bool // allocated, not yet ended
}

// begin allocates the next commit LSN. The caller must pair it with end
// after installing (or abandoning) the commit at that LSN.
func (tr *lsnTracker) begin() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.next++
	if tr.open == nil {
		tr.open = make(map[uint64]bool)
	}
	tr.open[tr.next] = true
	return tr.next
}

// end marks l installed and advances stable over the contiguous done prefix.
func (tr *lsnTracker) end(l uint64) {
	tr.mu.Lock()
	delete(tr.open, l)
	for tr.stable < tr.next && !tr.open[tr.stable+1] {
		tr.stable++
	}
	tr.mu.Unlock()
}

// stableLSN reads the highest fully installed LSN.
func (tr *lsnTracker) stableLSN() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.stable
}

// snapRegistry tracks active snapshots. Acquire reads the tracker's stable
// LSN and registers under one critical section, so watermark (same mutex)
// can never observe a snapshot older than a bound it already returned.
type snapRegistry struct {
	mu     sync.Mutex
	nextID uint64
	active map[uint64]uint64 // registration ID → snapshot LSN
}

// acquire registers a new snapshot at the current stable LSN.
func (r *snapRegistry) acquire(tr *lsnTracker) (id, lsn uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	if r.active == nil {
		r.active = make(map[uint64]uint64)
	}
	lsn = tr.stableLSN()
	r.active[r.nextID] = lsn
	return r.nextID, lsn
}

// release deregisters a snapshot.
func (r *snapRegistry) release(id uint64) {
	r.mu.Lock()
	delete(r.active, id)
	r.mu.Unlock()
}

// watermark returns min(oldest active snapshot LSN, stable): versions and
// tombstones at or below it can never be needed again, and heap images at
// or below it are visible to every current and future snapshot.
func (r *snapRegistry) watermark(tr *lsnTracker) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := tr.stableLSN()
	for _, s := range r.active {
		if s < w {
			w = s
		}
	}
	return w
}

// activeCount reports how many snapshots are registered.
func (r *snapRegistry) activeCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// watermark computes the database's current MVCC low-watermark.
func (db *Database) watermark() uint64 {
	return db.snaps.watermark(&db.lsn)
}

// installVersions publishes the transaction's write set at commit LSN c.
// Runs inside the durability callback — 2PL locks still held, c not yet
// ended — so no snapshot at or above c exists until every entry below is
// installed.
func (db *Database) installVersions(t *Tx, c uint64) {
	w := db.watermark()
	pruned := 0
	for id := range t.created {
		if t.deleted[id] {
			continue
		}
		db.dir.commitCreate(id, c)
	}
	for id := range t.dirty {
		if t.created[id] || t.deleted[id] {
			continue
		}
		pruned += db.dir.commitWrite(id, c, w)
	}
	for id := range t.deleted {
		db.dir.commitDelete(id, c)
	}
	if pruned > 0 {
		db.met.versionPrunes.Add(uint64(pruned))
	}
}

// maybeSweepChains prunes version chains and expired tombstones after a
// commit. The chainedCount fast path makes it free while no MVCC baggage
// exists, and the lastSweep CAS dedups concurrent committers: only the one
// that advances the recorded watermark pays for the sweep.
func (db *Database) maybeSweepChains() {
	if db.dir.chainedCount.Load() == 0 {
		return
	}
	w := db.watermark()
	last := db.lastSweep.Load()
	if w <= last || !db.lastSweep.CompareAndSwap(last, w) {
		return
	}
	pruned, _ := db.dir.pruneChains(w)
	if pruned > 0 {
		db.met.versionPrunes.Add(uint64(pruned))
	}
}

// ---- read-only snapshot transactions ----

// errReadOnlyTx rejects writes through a snapshot transaction.
var errReadOnlyTx = fmt.Errorf("core: snapshot transaction is read-only")

// BeginSnapshot starts a read-only transaction that reads a consistent
// snapshot of the database as of the current stable commit LSN. Snapshot
// transactions take no object locks and never block (or abort) writers:
// reads resolve through the directory's version chains. All mutation entry
// points reject the transaction. Finish it with Commit or Abort (they are
// equivalent — there is nothing to roll back) to release the snapshot so
// the watermark can advance and chains can be pruned.
func (db *Database) BeginSnapshot() *Tx {
	t := db.Begin()
	t.snapID, t.snapLSN = db.snaps.acquire(&db.lsn)
	t.snapReads = make(map[oid.OID]*object.Object)
	return t
}

// Snapshot reports whether the transaction is a read-only snapshot, and at
// which commit LSN it reads.
func (t *Tx) Snapshot() (lsn uint64, ok bool) { return t.snapLSN, t.snapID != 0 }

// releaseSnapshot deregisters the transaction's snapshot (no-op for
// ordinary transactions); called from every Commit/Abort epilogue.
func (t *Tx) releaseSnapshot() {
	if t.snapID != 0 {
		t.db.snaps.release(t.snapID)
		t.snapID = 0
		t.snapReads = nil
	}
}

// snapshotObject resolves id inside a snapshot transaction, caching the
// materialized object so repeated reads return the same instance. Missing,
// deleted-at-snapshot and created-after-snapshot objects all report the
// same "no object" error ordinary reads produce.
func (db *Database) snapshotObject(t *Tx, id oid.OID) (*object.Object, error) {
	if o, ok := t.snapReads[id]; ok {
		if o == nil {
			return nil, fmt.Errorf("core: no object %s", id)
		}
		return o, nil
	}
	o, err := db.resolveSnapshot(id, t.snapLSN)
	if err != nil {
		return nil, err
	}
	t.snapReads[id] = o
	if o == nil {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	return o, nil
}

// resolveSnapshot materializes the version of id visible at snapshot LSN s
// (nil when none is). A directory miss falls through to the heap: the
// eviction watermark guard guarantees any evicted entry's heap image is at
// an LSN ≤ every active snapshot, so the image is visible at s. The object
// is faulted in resident first (so a chain can anchor on it if a writer
// arrives) and re-read through the snapshot protocol; if it was evicted
// again in between, a transient decode serves the read.
func (db *Database) resolveSnapshot(id oid.OID, s uint64) (*object.Object, error) {
	o, st := db.dir.snapshotGet(id, s)
	switch st {
	case snapOK:
		return o, nil
	case snapGone, snapInvisible:
		return nil, nil
	}
	if db.store == nil {
		return nil, nil
	}
	if _, err := db.faultObject(id); err != nil {
		return nil, err
	}
	if o, st := db.dir.snapshotGet(id, s); st != snapMiss {
		if st == snapOK {
			return o, nil
		}
		return nil, nil
	}
	return db.loadFromHeap(id, false)
}

// ---- snapshot scans ----

// InstancesOfAt returns the OIDs of all instances of the named class (and
// subclasses) visible to t's snapshot, sorted. For an ordinary transaction
// (or nil) it behaves exactly like InstancesOf. The scan unions the
// directory's snapshot view with the heap-class catalog; catalog entries
// that gained a directory entry after the shard scan are re-checked through
// the snapshot protocol so post-snapshot commits cannot leak in.
func (db *Database) InstancesOfAt(t *Tx, class string) []oid.OID {
	if t == nil || t.snapID == 0 {
		return db.InstancesOf(class)
	}
	c := db.reg.Lookup(class)
	if c == nil {
		return nil
	}
	s := t.snapLSN
	var out []oid.OID
	present := make(map[oid.OID]bool)
	db.dir.forEachSnapshot(s, func(id oid.OID, vc *schema.Class) {
		present[id] = true
		if vc != nil && vc.IsSubclassOf(c) {
			out = append(out, id)
		}
	})
	if db.store != nil {
		var heapIDs []oid.OID
		var heapCls []string
		db.catMu.RLock()
		for id, cls := range db.heapCat {
			if !present[id] {
				heapIDs = append(heapIDs, id)
				heapCls = append(heapCls, cls)
			}
		}
		db.catMu.RUnlock()
		isSub := make(map[string]bool)
		for i, id := range heapIDs {
			cls := heapCls[i]
			sub, cached := isSub[cls]
			if !cached {
				cc := db.reg.Lookup(cls)
				sub = cc != nil && cc.IsSubclassOf(c)
				isSub[cls] = sub
			}
			if !sub {
				continue
			}
			switch o, st := db.dir.snapshotGet(id, s); st {
			case snapMiss:
				// Truly heap-only: committed at or below the watermark,
				// hence visible at s.
				out = append(out, id)
			case snapOK:
				if o.Class().IsSubclassOf(c) {
					out = append(out, id)
				}
			}
		}
	}
	value.SortRefs(out)
	return out
}

// forEachSnapshotObject streams every object visible to t's snapshot,
// materialized at the snapshot's LSN. Unlike forEachLiveObject it is safe
// to run concurrently with writers: the view is the snapshot's, not a
// racy union.
func (db *Database) forEachSnapshotObject(t *Tx, fn func(id oid.OID, o *object.Object) error) error {
	if t == nil || t.snapID == 0 {
		return fmt.Errorf("core: forEachSnapshotObject requires a snapshot transaction")
	}
	s := t.snapLSN
	present := make(map[oid.OID]bool)
	var ids []oid.OID
	db.dir.forEachSnapshot(s, func(id oid.OID, vc *schema.Class) {
		present[id] = true
		if vc != nil {
			ids = append(ids, id)
		}
	})
	if db.store != nil {
		db.catMu.RLock()
		for id := range db.heapCat {
			if !present[id] {
				ids = append(ids, id)
			}
		}
		db.catMu.RUnlock()
	}
	for _, id := range ids {
		o, err := db.resolveSnapshot(id, s)
		if err != nil {
			return err
		}
		if o == nil {
			continue
		}
		if err := fn(id, o); err != nil {
			return err
		}
	}
	return nil
}

// CheckRefsAt verifies referential integrity — every reference attribute
// points at an object visible in the same snapshot — against t's snapshot,
// returning a sorted-order-independent problem list. It is the
// snapshot-consistent subset of CheckIntegrity that can run concurrently
// with active writers: both sides of every edge are resolved at one LSN, so
// in-flight transactions can never produce false dangling references.
func (db *Database) CheckRefsAt(t *Tx) []string {
	if t == nil || t.snapID == 0 {
		return []string{"core: CheckRefsAt requires a snapshot transaction"}
	}
	visible := make(map[oid.OID]bool)
	db.dir.forEachSnapshot(t.snapLSN, func(id oid.OID, vc *schema.Class) {
		if vc != nil {
			visible[id] = true
		}
	})
	if db.store != nil {
		db.catMu.RLock()
		heapIDs := make([]oid.OID, 0, len(db.heapCat))
		for id := range db.heapCat {
			heapIDs = append(heapIDs, id)
		}
		db.catMu.RUnlock()
		for _, id := range heapIDs {
			if visible[id] {
				continue
			}
			if _, st := db.dir.snapshotGet(id, t.snapLSN); st == snapMiss {
				visible[id] = true
			}
		}
	}
	var problems []string
	err := db.forEachSnapshotObject(t, func(id oid.OID, o *object.Object) error {
		for _, a := range o.Class().Layout() {
			checkRefs(o.GetSlot(a.Slot()), func(ref oid.OID) {
				if !visible[ref] {
					problems = append(problems, fmt.Sprintf(
						"object %s (%s): attribute %s references missing object %s",
						id, o.Class().Name, a.Name, ref))
				}
			})
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("snapshot scan failed: %v", err))
	}
	return problems
}
