package core

import (
	"io"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// employeeSchema registers a minimal Employee class with a reactive
// SetSalary method (eom generator), mirroring Fig. 8.
func employeeSchema(t *testing.T, db *Database) *schema.Class {
	t.Helper()
	emp := schema.NewClass("Employee")
	emp.Classification = schema.ReactiveClass
	emp.Persistent = true
	emp.Attr("name", value.TypeString)
	emp.Attr("salary", value.TypeFloat)
	emp.AddMethod(&schema.Method{
		Name:       "SetSalary",
		Params:     []schema.Param{{Name: "amount", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("salary", ctx.Arg(0))
		},
	})
	emp.AddMethod(&schema.Method{
		Name:       "Salary",
		Returns:    value.TypeFloat,
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return ctx.Get("salary")
		},
	})
	if err := db.RegisterClass(emp); err != nil {
		t.Fatalf("register Employee: %v", err)
	}
	return emp
}

func TestSmokeImmediateRule(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	employeeSchema(t, db)

	var fired []float64
	err := db.Atomically(func(tx *Tx) error {
		fred, err := db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("Fred")})
		if err != nil {
			return err
		}
		r, err := db.CreateRule(tx, RuleSpec{
			Name:     "WatchSalary",
			EventSrc: "end Employee::SetSalary(float amount)",
			Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				return det.Last().Args[0].MustFloat() > 1000, nil
			},
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				fired = append(fired, det.Last().Args[0].MustFloat())
				return nil
			},
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, r.ID()); err != nil {
			return err
		}
		if _, err := db.Send(tx, fred, "SetSalary", value.Float(500)); err != nil {
			return err
		}
		if _, err := db.Send(tx, fred, "SetSalary", value.Float(2000)); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("atomically: %v", err)
	}
	if len(fired) != 1 || fired[0] != 2000 {
		t.Fatalf("expected one firing at 2000, got %v", fired)
	}
}

func TestSmokeDSLRoundtrip(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	if err := db.Exec(`
		class Account reactive persistent {
			attr owner string
			attr balance float
			event end method Deposit(amount float) {
				self.balance := self.balance + amount
			}
			event begin method Withdraw(amount float) {
				self.balance := self.balance - amount
			}
		}
		rule NoOverdraft on begin Account::Withdraw(float amount)
			if amount > self.balance
			then abort "insufficient funds"
	`); err != nil {
		t.Fatalf("exec: %v", err)
	}

	var acct oid.OID
	err := db.Atomically(func(tx *Tx) error {
		id, err := db.NewObject(tx, "Account", map[string]value.Value{"owner": value.Str("alice")})
		if err != nil {
			return err
		}
		acct = id
		r := db.LookupRule("NoOverdraft")
		if r == nil {
			t.Fatal("rule NoOverdraft not found")
		}
		if err := db.Subscribe(tx, acct, r.ID()); err != nil {
			return err
		}
		_, err = db.Send(tx, acct, "Deposit", value.Float(100))
		return err
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}

	// A withdrawal within balance succeeds.
	err = db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, acct, "Withdraw", value.Float(40))
		return err
	})
	if err != nil {
		t.Fatalf("withdraw 40: %v", err)
	}

	// An overdraft aborts the whole transaction.
	err = db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, acct, "Withdraw", value.Float(1000))
		return err
	})
	if !IsAbort(err) {
		t.Fatalf("expected abort, got %v", err)
	}

	var bal value.Value
	if err := db.Atomically(func(tx *Tx) error {
		v, err := db.Get(tx, acct, "balance")
		bal = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := bal.MustFloat(); got != 60 {
		t.Fatalf("balance = %v, want 60", got)
	}
}

func TestSmokePersistenceReopen(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{Dir: dir, SyncOnCommit: true, Output: io.Discard})
	if err := db.Exec(`
		class Stock reactive persistent {
			attr symbol string
			attr price float
			event end method SetPrice(p float) { self.price := p }
		}
		rule PriceWatch on end Stock::SetPrice(float p)
			if p < 80
			then print("cheap")
		let ibm := new Stock(symbol: "IBM", price: 100.0)
		bind IBM ibm
		subscribe PriceWatch to ibm
	`); err != nil {
		t.Fatalf("exec: %v", err)
	}
	if err := db.Exec(`IBM!SetPrice(95.5)`); err != nil {
		t.Fatalf("set price: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2, err := Open(Options{Dir: dir, Output: io.Discard})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()

	ibm, ok := db2.Lookup("IBM")
	if !ok {
		t.Fatal("IBM binding not recovered")
	}
	var price value.Value
	if err := db2.Atomically(func(tx *Tx) error {
		v, err := db2.Get(tx, ibm, "price")
		price = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := price.MustFloat(); got != 95.5 {
		t.Fatalf("price = %v, want 95.5", got)
	}
	if db2.LookupRule("PriceWatch") == nil {
		t.Fatal("rule PriceWatch not recovered")
	}
	if subs := db2.Subscribers(ibm); len(subs) != 1 {
		t.Fatalf("subscription not recovered: %v", subs)
	}
	// The recovered rule still fires.
	if err := db2.Exec(`IBM!SetPrice(70.0)`); err != nil {
		t.Fatalf("post-recovery send: %v", err)
	}
	r := db2.LookupRule("PriceWatch")
	if _, _, fired := r.Stats(); fired != 1 {
		t.Fatalf("recovered rule fired %d times, want 1", fired)
	}
}
