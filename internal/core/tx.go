package core

import (
	"errors"
	"fmt"
	"time"

	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
	"sentinel/internal/wal"
)

// AbortError is the error a rule action (or method body) raises to abort
// the triggering transaction — the paper's `A: abort` action (Fig. 9).
// Database.Commit and Database.Atomically treat it as a rollback request.
type AbortError struct {
	Reason string
}

// Error implements error.
func (e *AbortError) Error() string { return "transaction aborted: " + e.Reason }

// IsAbort reports whether err is (or wraps) an AbortError.
func IsAbort(err error) bool {
	var ae *AbortError
	return errors.As(err, &ae)
}

// Tx is a database transaction. All object access, rule definition and
// subscription maintenance happens inside one; Database.Atomically is the
// convenience wrapper. Tx is not safe for concurrent use by multiple
// goroutines.
type Tx struct {
	db    *Database
	inner *txn.Tx

	dirty   map[oid.OID]bool
	created map[oid.OID]bool
	deleted map[oid.OID]bool

	// pinned tracks the directory entries this transaction holds a pin on
	// (one pin per object per transaction, taken by lockObject when
	// eviction is enabled). Pins guarantee pointer stability: undo
	// closures and execution frames capture *object.Object, so the
	// evictor must not reclaim entries a live transaction references.
	// Lazily allocated; nil when paging is off.
	pinned map[oid.OID]bool

	deferred *rule.Agenda
	detached []rule.Firing

	// touched holds the tx-scoped rules this transaction delivered events
	// to; their detectors reset when the transaction ends.
	touched map[*rule.Rule]bool

	// fireScratch is the reusable buffer for the immediate firing batch of
	// a raise; each raise takes ownership for its duration (see raise), so
	// steady-state event traffic schedules immediate rules without
	// allocating.
	fireScratch []rule.Firing

	// framePool recycles execution frames for method bodies and rule
	// evaluations. Frames are strictly call-scoped (callees must not retain
	// their CallContext/ExecContext past the call), so a LIFO free list
	// makes the send → body → raise hot path frame-allocation-free.
	framePool []*frame

	finished bool
}

// getFrame returns a zeroed frame, reusing a recycled one when available.
// Tx is single-goroutine, so no locking.
func (t *Tx) getFrame() *frame {
	if n := len(t.framePool); n > 0 {
		f := t.framePool[n-1]
		t.framePool = t.framePool[:n-1]
		return f
	}
	return &frame{}
}

// putFrame recycles a frame once its call returns. The frame is zeroed so
// the pool does not pin objects, methods or detections.
func (t *Tx) putFrame(f *frame) {
	*f = frame{}
	t.framePool = append(t.framePool, f)
}

// Begin starts a transaction.
func (db *Database) Begin() *Tx {
	t := &Tx{
		db:       db,
		inner:    db.tm.Begin(),
		dirty:    make(map[oid.OID]bool),
		created:  make(map[oid.OID]bool),
		deleted:  make(map[oid.OID]bool),
		deferred: rule.NewAgenda(db.currentStrategy()),
	}
	if tr := db.tracer.Load(); tr != nil && tr.TxBegin != nil {
		tr.TxBegin(obs.TxInfo{Tx: uint64(t.inner.ID())})
	}
	return t
}

// ID returns the transaction identifier.
func (t *Tx) ID() txn.ID { return t.inner.ID() }

// Active reports whether the transaction can still do work.
func (t *Tx) Active() bool { return !t.finished && t.inner.Active() }

// Commit finishes the transaction: deferred rules run first (inside the
// transaction — they can still abort it), then the write set is logged and
// applied, then detached rules launch in fresh transactions. An AbortError
// from a deferred rule rolls everything back and is returned.
func (db *Database) Commit(t *Tx) error {
	if t.db != db {
		return fmt.Errorf("core: transaction belongs to a different database")
	}
	if !t.Active() {
		return txn.ErrNotActive
	}
	// Commits are low-frequency relative to raises, so the full duration —
	// deferred drain, logging, fsync, detached dispatch — is always timed.
	start := time.Now()
	err := db.doCommit(t)
	d := time.Since(start)
	db.met.commitH.Observe(d)
	if tr := db.tracer.Load(); tr != nil && tr.TxCommit != nil {
		tr.TxCommit(obs.TxInfo{Tx: uint64(t.inner.ID()), Duration: d, Err: err})
	}
	return err
}

func (db *Database) doCommit(t *Tx) error {
	// Phase 1: deferred coupling — drain until quiescent (§4.4). Rules
	// fired here may write, raise events, and schedule more deferred work.
	for t.deferred.Len() > 0 {
		batch := t.deferred.Drain()
		for i := range batch {
			if err := db.runFiring(t, &batch[i], 1); err != nil {
				db.Abort(t)
				return err
			}
		}
	}

	// Phase 2: durability, with locks still held.
	durable := func() error { return db.writeCommit(t) }

	detached := t.detached
	t.detached = nil
	t.finished = true
	t.resetTouched()
	if err := t.inner.Commit(durable); err != nil {
		t.releasePins()
		return err
	}
	t.releasePins()
	// Committed deletes: drop the tombstoned entries for good (the heap
	// images are already gone via writeCommit).
	for id := range t.deleted {
		db.dir.remove(id)
	}
	db.maybeAutoCheckpoint()
	// Create-heavy transactions grow residency without faulting; commit is
	// the point where their entries turn clean and evictable.
	db.maybeEvict()

	// Phase 3: detached coupling — each firing runs in its own
	// transaction after the triggering transaction committed (§4.4). An
	// aborting detached rule affects only its own transaction. With
	// Options.AsyncDetached the firings run on a background worker (the
	// fully asynchronous propagation of §3.1); WaitIdle quiesces.
	if len(detached) > 0 {
		agenda := rule.NewAgenda(db.currentStrategy())
		for _, f := range detached {
			agenda.Add(f.Rule, f.Detection)
		}
		ordered := agenda.Drain()
		if db.opts.AsyncDetached {
			db.dispatchDetached(ordered)
		} else {
			for _, f := range ordered {
				db.execDetached(f)
			}
		}
	}
	return nil
}

// execDetached runs one detached firing in its own transaction.
func (db *Database) execDetached(f rule.Firing) {
	dtx := db.Begin()
	if err := db.runFiring(dtx, &f, 1); err != nil {
		db.Abort(dtx)
		return
	}
	// Commit rolls back on its own failures.
	_ = db.Commit(dtx)
}

// dispatchDetached hands an ordered batch of detached firings to the
// background executor, lazily starting it. The pending count is bumped
// under detachedMu and before any send, so the idle wait (which runs under
// the same mutex after flipping detachedStopped) covers every dispatch
// that got past the stopped check. A dispatch racing past shutdown falls
// back to synchronous execution — firings are never dropped.
func (db *Database) dispatchDetached(ordered []rule.Firing) {
	db.detachedMu.Lock()
	if db.detachedStopped {
		db.detachedMu.Unlock()
		for _, f := range ordered {
			db.execDetached(f)
		}
		return
	}
	if db.detachedCh == nil {
		db.detachedCh = make(chan rule.Firing, 1024)
		db.detachedQuit = make(chan struct{})
		db.detachedDone = make(chan struct{})
		go db.detachedWorker(db.detachedCh, db.detachedQuit, db.detachedDone)
	}
	ch := db.detachedCh
	db.detachedPending += len(ordered)
	db.detachedMu.Unlock()
	// Send outside the lock: a chained dispatch from the worker itself
	// (a detached rule whose commit schedules more detached work) must be
	// able to take detachedMu while another committer is blocked on a full
	// channel.
	for _, f := range ordered {
		ch <- f
	}
}

// finishDetached marks one dispatched firing complete, waking idle waiters
// when the count drains. Chained firings were added before their parent
// completes (execDetached's commit dispatches under the same mutex), so
// the count only reaches zero at true quiescence.
func (db *Database) finishDetached() {
	db.detachedMu.Lock()
	db.detachedPending--
	if db.detachedPending == 0 {
		db.detachedIdle.Broadcast()
	}
	db.detachedMu.Unlock()
}

// detachedWorker is the background executor loop. On quit it finishes
// whatever is still queued (stopDetachedWorker has already waited for the
// pending count, so the drain loop is a safety net) and closes done.
func (db *Database) detachedWorker(ch chan rule.Firing, quit, done chan struct{}) {
	defer close(done)
	for {
		select {
		case f := <-ch:
			db.execDetached(f)
			db.finishDetached()
		case <-quit:
			for {
				select {
				case f := <-ch:
					db.execDetached(f)
					db.finishDetached()
				default:
					return
				}
			}
		}
	}
}

// stopDetachedWorker drains in-flight detached work and retires the
// background executor. Idempotent; later dispatches execute synchronously.
func (db *Database) stopDetachedWorker() {
	db.detachedMu.Lock()
	if db.detachedStopped {
		db.detachedMu.Unlock()
		return
	}
	db.detachedStopped = true
	// Every dispatch that saw detachedStopped == false has already bumped
	// the pending count, so this wait covers all enqueued (and chained)
	// firings; afterwards the queue is empty and the worker exits promptly.
	// Cond.Wait releases detachedMu, so the worker's finishDetached (and
	// chained dispatches, which now run synchronously) make progress.
	for db.detachedPending > 0 {
		db.detachedIdle.Wait()
	}
	quit, done := db.detachedQuit, db.detachedDone
	db.detachedMu.Unlock()
	if quit == nil {
		return // worker never started
	}
	close(quit)
	<-done
}

// WaitIdle blocks until every asynchronously dispatched detached rule has
// finished, including detached work those rules' own commits enqueued (a
// chained firing bumps the pending count before its parent completes, so
// the counter only reaches zero at true quiescence). A no-op when
// AsyncDetached is off.
func (db *Database) WaitIdle() {
	db.detachedMu.Lock()
	for db.detachedPending > 0 {
		db.detachedIdle.Wait()
	}
	db.detachedMu.Unlock()
}

// Abort rolls the transaction back.
func (db *Database) Abort(t *Tx) {
	if t.finished {
		return
	}
	t.finished = true
	t.deferred.Clear()
	t.detached = nil
	t.resetTouched()
	t.inner.Abort()
	t.releasePins()
	if tr := db.tracer.Load(); tr != nil && tr.TxAbort != nil {
		tr.TxAbort(obs.TxInfo{Tx: uint64(t.inner.ID())})
	}
}

// releasePins drops every directory pin the transaction holds. Runs after
// the inner transaction finished (undo closures may still dereference the
// pinned objects while rolling back). Entries removed by an aborted
// create's undo are tolerated by unpin.
func (t *Tx) releasePins() {
	if t.pinned == nil {
		return
	}
	for id := range t.pinned {
		t.db.dir.unpin(id)
	}
	t.pinned = nil
}

// pin records a directory pin taken on behalf of this transaction.
func (t *Tx) pin(id oid.OID) {
	if t.pinned == nil {
		t.pinned = make(map[oid.OID]bool)
	}
	t.pinned[id] = true
}

// resetTouched clears detection state of tx-scoped rules fed by this
// transaction.
func (t *Tx) resetTouched() {
	for r := range t.touched {
		r.ResetDetection()
	}
	t.touched = nil
}

// Atomically runs fn inside a transaction, committing on nil and aborting
// on error (returning the error). An AbortError raised by a rule or method
// is returned as-is after rollback.
func (db *Database) Atomically(fn func(*Tx) error) error {
	t := db.Begin()
	if err := fn(t); err != nil {
		db.Abort(t)
		return err
	}
	return db.Commit(t)
}

// writeCommit assembles and syncs the WAL records for the transaction,
// applies the write set to the heap, updates the heap-class catalog, and
// marks the written directory entries clean (eligible for eviction again).
// No-op for in-memory databases. Runs under ckptMu shared so a concurrent
// checkpoint cannot truncate the log between our append and the heap apply.
func (db *Database) writeCommit(t *Tx) error {
	// Bump versions on touched objects regardless of persistence.
	for id := range t.dirty {
		if o := db.objectByID(id); o != nil {
			o.BumpVersion()
		}
	}
	if db.store == nil {
		return nil
	}
	db.ckptMu.RLock()
	defer db.ckptMu.RUnlock()
	var recs []wal.Record
	var classes []string // class name per record, aligned with recs
	txid := uint64(t.inner.ID())
	addUpdate := func(id oid.OID) {
		o := db.objectByID(id)
		if o == nil || !db.persistentObject(o) {
			return
		}
		recs = append(recs, wal.Record{Type: wal.RecUpdate, Tx: txid, OID: id, Data: o.Encode(nil)})
		classes = append(classes, o.Class().Name)
	}
	for id := range t.created {
		if t.deleted[id] {
			continue
		}
		addUpdate(id)
	}
	for id := range t.dirty {
		if t.created[id] || t.deleted[id] {
			continue
		}
		addUpdate(id)
	}
	for id := range t.deleted {
		if t.created[id] {
			continue
		}
		recs = append(recs, wal.Record{Type: wal.RecDelete, Tx: txid, OID: id})
		classes = append(classes, "")
	}
	if len(recs) == 0 {
		return nil
	}
	recs = append(recs, wal.Record{Type: wal.RecCommit, Tx: txid})
	if err := db.log.AppendBatch(recs); err != nil {
		return err
	}
	if db.opts.SyncOnCommit {
		// Group commit: concurrent committers share one fsync.
		if err := db.log.SyncBarrier(); err != nil {
			return err
		}
	}
	// Apply to the heap (redo applied eagerly; the log protects it). The
	// commit record is last, so every update/delete index is in classes.
	for i, r := range recs {
		switch r.Type {
		case wal.RecUpdate:
			if err := db.store.Put(r.OID, r.Data); err != nil {
				return err
			}
			db.setHeapClass(r.OID, classes[i])
			// The heap image now matches memory: clean, evictable again.
			db.dir.setDirty(r.OID, false)
		case wal.RecDelete:
			if err := db.store.Delete(r.OID); err != nil {
				return err
			}
			db.delHeapClass(r.OID)
		}
	}
	return nil
}

// persistentObject reports whether the object's class is marked persistent.
func (db *Database) persistentObject(o *object.Object) bool {
	return o.Class().Persistent
}

// ---- object primitives ----

// NewObject creates an instance of the named class with the given attribute
// initializers (constructor semantics: initializers bypass visibility, like
// a C++ constructor's member-init list) and returns its OID. Creation does
// not raise events; the paper's events come from message sends.
func (db *Database) NewObject(t *Tx, class string, inits map[string]value.Value) (oid.OID, error) {
	if !t.Active() {
		return oid.Nil, txn.ErrNotActive
	}
	c := db.reg.Lookup(class)
	if c == nil {
		return oid.Nil, fmt.Errorf("core: unknown class %q", class)
	}
	id := db.alloc.Next()
	o, err := object.New(id, c)
	if err != nil {
		return oid.Nil, err
	}
	for k, v := range inits {
		if c.AttributeNamed(k) == nil {
			return oid.Nil, fmt.Errorf("core: class %s has no attribute %q", class, k)
		}
		if err := o.Set(k, v); err != nil {
			return oid.Nil, err
		}
	}
	if err := t.inner.Lock(txn.Lockable(id), txn.Exclusive); err != nil {
		return oid.Nil, err
	}
	// System objects and instances of non-persistent classes are wired
	// resident (they have no rebuildable heap image, or the runtime
	// catalogs reference them); everything else starts dirty — it has no
	// heap image yet — and becomes evictable once writeCommit stores it.
	noEvict := IsSystemClass(class) || !c.Persistent
	var pins int32
	if db.pagingEnabled() {
		pins = 1
		t.pin(id)
	}
	db.dir.insert(id, o, pins, !noEvict, noEvict)
	t.created[id] = true
	t.inner.OnUndo(func() { db.dir.remove(id) })
	db.indexObjectAdd(t, o)
	return id, nil
}

// lockObject locks and returns the object, faulting it in from the heap if
// necessary and erroring if it does not exist. When eviction is enabled the
// object is also pinned for the rest of the transaction, so the returned
// pointer stays valid for undo closures and frames. The resident-hit path
// is allocation-free after the first touch per (transaction, object).
func (db *Database) lockObject(t *Tx, id oid.OID, mode txn.Mode) (*object.Object, error) {
	if !t.Active() {
		return nil, txn.ErrNotActive
	}
	if err := t.inner.Lock(txn.Lockable(id), mode); err != nil {
		return nil, err
	}
	if db.pagingEnabled() {
		return db.lockPinned(t, id)
	}
	o, err := db.faultObject(id)
	if err != nil {
		return nil, err
	}
	if o == nil {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	return o, nil
}

// lockPinned resolves and pins a locked object under eviction pressure.
// Pinning is atomic with the residency check (dir.pin under the shard read
// lock excludes the evictor's write-locked sweep), so a pinned pointer
// cannot be reclaimed.
func (db *Database) lockPinned(t *Tx, id oid.OID) (*object.Object, error) {
	if t.pinned[id] {
		// Already pinned by this transaction: the entry cannot have been
		// evicted; a nil here means we tombstoned it ourselves.
		if o, _ := db.dir.get(id); o != nil {
			return o, nil
		}
		return nil, fmt.Errorf("core: no object %s", id)
	}
	if o, found, tomb := db.dir.pin(id); found {
		if tomb {
			return nil, fmt.Errorf("core: no object %s", id)
		}
		t.pin(id)
		return o, nil
	}
	fo, err := db.faultObject(id)
	if err != nil {
		return nil, err
	}
	if fo == nil {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	// The freshly faulted entry may already have been swept again; pin
	// whatever is resident now, or (re)install our decode pinned.
	o, tomb := db.dir.pinOrInsert(id, fo)
	if tomb {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	t.pin(id)
	return o, nil
}

// recordWrite snapshots the object once per transaction for rollback and
// marks it dirty — in the transaction's write set and, under eviction, on
// the directory entry (a dirty entry is wired until writeCommit stores it;
// the undo hook restores the prior bit because after rollback the fields
// match the heap image again).
func (t *Tx) recordWrite(o *object.Object) {
	id := o.ID()
	if t.dirty[id] || t.created[id] {
		t.dirty[id] = true
		return
	}
	t.dirty[id] = true
	snap := o.CopyFields()
	if t.db.pagingEnabled() {
		wasDirty := t.db.dir.setDirty(id, true)
		t.inner.OnUndo(func() {
			o.RestoreFields(snap)
			t.db.dir.setDirty(id, wasDirty)
		})
		return
	}
	t.inner.OnUndo(func() { o.RestoreFields(snap) })
}

// checkAttrVisible enforces member visibility for an attribute access by
// code of class `caller` (nil = application code; system access passes
// sysAccess=true).
func checkAttrVisible(a *schema.Attribute, caller *schema.Class, sysAccess bool) error {
	if sysAccess || a.Visibility == schema.Public {
		return nil
	}
	if caller == nil {
		return fmt.Errorf("core: attribute %s.%s is %s", a.Owner().Name, a.Name, a.Visibility)
	}
	switch a.Visibility {
	case schema.Protected:
		if caller.IsSubclassOf(a.Owner()) {
			return nil
		}
	case schema.Private:
		if caller == a.Owner() {
			return nil
		}
	}
	return fmt.Errorf("core: attribute %s.%s is %s (caller %s)", a.Owner().Name, a.Name, a.Visibility, caller.Name)
}

// checkMethodVisible is the method counterpart.
func checkMethodVisible(m *schema.Method, caller *schema.Class, sysAccess bool) error {
	if sysAccess || m.Visibility == schema.Public {
		return nil
	}
	if caller == nil {
		return fmt.Errorf("core: method %s is %s", m.Signature(), m.Visibility)
	}
	switch m.Visibility {
	case schema.Protected:
		if caller.IsSubclassOf(m.Owner()) {
			return nil
		}
	case schema.Private:
		if caller == m.Owner() {
			return nil
		}
	}
	return fmt.Errorf("core: method %s is %s (caller %s)", m.Signature(), m.Visibility, caller.Name)
}

// getAttr reads an attribute with visibility checking.
func (db *Database) getAttr(t *Tx, id oid.OID, attr string, caller *schema.Class, sysAccess bool) (value.Value, error) {
	o, err := db.lockObject(t, id, txn.Shared)
	if err != nil {
		return value.Nil, err
	}
	a := o.Class().AttributeNamed(attr)
	if a == nil {
		return value.Nil, fmt.Errorf("core: class %s has no attribute %q", o.Class().Name, attr)
	}
	if err := checkAttrVisible(a, caller, sysAccess); err != nil {
		return value.Nil, err
	}
	return o.GetSlot(a.Slot()), nil
}

// setAttr writes an attribute with visibility checking, undo logging and
// dirty tracking. Direct attribute writes do not raise events (state
// changes of interest go through methods declared in the event interface).
func (db *Database) setAttr(t *Tx, id oid.OID, attr string, v value.Value, caller *schema.Class, sysAccess bool) error {
	o, err := db.lockObject(t, id, txn.Exclusive)
	if err != nil {
		return err
	}
	a := o.Class().AttributeNamed(attr)
	if a == nil {
		return fmt.Errorf("core: class %s has no attribute %q", o.Class().Name, attr)
	}
	if err := checkAttrVisible(a, caller, sysAccess); err != nil {
		return err
	}
	if !a.Type.Accepts(v.Kind()) {
		return fmt.Errorf("core: %s.%s: want %s, got %s", o.Class().Name, attr, a.Type, v.Kind())
	}
	t.recordWrite(o)
	oldV := o.GetSlot(a.Slot())
	newV := a.Type.Widen(v)
	o.SetSlot(a.Slot(), newV)
	db.indexWrite(t, o, attr, oldV, newV)
	return nil
}

// Get reads a public attribute (application-level access).
func (db *Database) Get(t *Tx, id oid.OID, attr string) (value.Value, error) {
	return db.getAttr(t, id, attr, nil, false)
}

// Set writes a public attribute (application-level access; no events).
func (db *Database) Set(t *Tx, id oid.OID, attr string, v value.Value) error {
	return db.setAttr(t, id, attr, v, nil, false)
}

// DeleteObject removes an object. Subscriptions from or to it are dropped.
func (db *Database) DeleteObject(t *Tx, id oid.OID) error {
	o, err := db.lockObject(t, id, txn.Exclusive)
	if err != nil {
		return err
	}
	db.indexObjectRemove(t, o)
	// Tombstone, don't remove: the entry keeps the object for the undo
	// closure and blocks fault-in from resurrecting the stale heap image
	// while the delete is uncommitted. Commit sweeps tombstones away.
	db.dir.setTomb(id, true)
	db.mu.Lock()
	savedSubs := db.subs[id]
	delete(db.subs, id)
	savedFns := db.funcConsumers[id]
	delete(db.funcConsumers, id)
	db.mu.Unlock()
	db.dropConsumerEntry(id)
	db.bumpConsumerEpoch()
	t.deleted[id] = true
	t.inner.OnUndo(func() {
		db.dir.setTomb(id, false)
		db.mu.Lock()
		if savedSubs != nil {
			db.subs[id] = savedSubs
		}
		if savedFns != nil {
			db.funcConsumers[id] = savedFns
		}
		db.mu.Unlock()
		db.bumpConsumerEpoch()
		delete(t.deleted, id)
	})
	return nil
}

// Exists reports whether an object with the given OID is live.
func (db *Database) Exists(id oid.OID) bool { return db.objectByID(id) != nil }

// ClassOf returns the class of a live object (nil if absent).
func (db *Database) ClassOf(id oid.OID) *schema.Class {
	o := db.objectByID(id)
	if o == nil {
		return nil
	}
	return o.Class()
}

// GetSys reads an attribute with system visibility (tooling/baselines).
func (db *Database) GetSys(t *Tx, id oid.OID, attr string) (value.Value, error) {
	return db.getAttr(t, id, attr, nil, true)
}

// SetSys writes an attribute with system visibility (tooling/baselines).
func (db *Database) SetSys(t *Tx, id oid.OID, attr string, v value.Value) error {
	return db.setAttr(t, id, attr, v, nil, true)
}

// InstancesOf returns the OIDs of all live instances of the named class and
// its subclasses, sorted. The result is the union of the resident directory
// (which sees uncommitted creates and hides uncommitted deletes) and the
// heap-class catalog (committed cold objects), so it is identical whether
// an instance is resident or evicted.
func (db *Database) InstancesOf(class string) []oid.OID {
	c := db.reg.Lookup(class)
	if c == nil {
		return nil
	}
	var out []oid.OID
	present := make(map[oid.OID]bool)
	db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
		present[id] = true
		if !tomb && o.Class().IsSubclassOf(c) {
			out = append(out, id)
		}
	})
	if db.store != nil {
		isSub := make(map[string]bool)
		db.catMu.RLock()
		for id, cls := range db.heapCat {
			if present[id] {
				continue
			}
			sub, cached := isSub[cls]
			if !cached {
				cc := db.reg.Lookup(cls)
				sub = cc != nil && cc.IsSubclassOf(c)
				isSub[cls] = sub
			}
			if sub {
				out = append(out, id)
			}
		}
		db.catMu.RUnlock()
	}
	value.SortRefs(out)
	return out
}
