package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
	"sentinel/internal/wal"
)

// AbortError is the error a rule action (or method body) raises to abort
// the triggering transaction — the paper's `A: abort` action (Fig. 9).
// Database.Commit and Database.Atomically treat it as a rollback request.
type AbortError struct {
	Reason string
}

// Error implements error.
func (e *AbortError) Error() string { return "transaction aborted: " + e.Reason }

// IsAbort reports whether err is (or wraps) an AbortError.
func IsAbort(err error) bool {
	var ae *AbortError
	return errors.As(err, &ae)
}

// Tx is a database transaction. All object access, rule definition and
// subscription maintenance happens inside one; Database.Atomically is the
// convenience wrapper. Tx is not safe for concurrent use by multiple
// goroutines.
type Tx struct {
	db    *Database
	inner *txn.Tx

	dirty   map[oid.OID]bool
	created map[oid.OID]bool
	deleted map[oid.OID]bool

	// pinned tracks the directory entries this transaction holds a pin on
	// (one pin per object per transaction, taken by lockObject when
	// eviction is enabled). Pins guarantee pointer stability: undo
	// closures and execution frames capture *object.Object, so the
	// evictor must not reclaim entries a live transaction references.
	// Lazily allocated; nil when paging is off.
	pinned map[oid.OID]bool

	deferred *rule.Agenda
	detached []rule.Firing

	// pushes holds remote-sink deliveries matched during raise; they fan
	// out only after the commit is durable (and are dropped on abort), so a
	// remote subscriber never observes an occurrence of an aborted
	// transaction. See sink.go.
	pushes []pendingPush

	// replOccs holds every occurrence raised while a replication shipper is
	// installed; they ride the transaction's shipped WAL batch (or an
	// event-only batch when the commit wrote nothing durable) so followers
	// can fan them out to their own subscribers. Dropped on abort. See
	// repl.go.
	replOccs []event.Occurrence

	// replShippedLSN is the replication LSN writeCommit assigned to this
	// transaction's WAL batch (0 for read-only commits): the position the
	// quorum-commit wait blocks on once the locks drop. See shipCommit.
	replShippedLSN uint64

	// touched holds the tx-scoped rules this transaction delivered events
	// to; their detectors reset when the transaction ends.
	touched map[*rule.Rule]bool

	// fireScratch is the reusable buffer for the immediate firing batch of
	// a raise; each raise takes ownership for its duration (see raise), so
	// steady-state event traffic schedules immediate rules without
	// allocating.
	fireScratch []rule.Firing

	// framePool recycles execution frames for method bodies and rule
	// evaluations. Frames are strictly call-scoped (callees must not retain
	// their CallContext/ExecContext past the call), so a LIFO free list
	// makes the send → body → raise hot path frame-allocation-free.
	framePool []*frame

	// fromDetachedWorker marks transactions begun by the detached executor
	// pool: their own detached dispatches (chained firings) bypass queue
	// backpressure, which is what makes the bounded queue deadlock-free
	// (see detached.go).
	fromDetachedWorker bool

	// Snapshot state (BeginSnapshot, mvcc.go). snapID != 0 marks a
	// read-only snapshot transaction reading as of commit LSN snapLSN;
	// snapReads caches materialized versions per OID so repeated reads
	// return the same instance.
	snapID    uint64
	snapLSN   uint64
	snapReads map[oid.OID]*object.Object

	finished bool
}

// writeSetOIDs snapshots the transaction's write set (dirty ∪ created ∪
// deleted) at detached-scheduling time. The conflict-aware executor keys
// on it, so firings scheduled by transactions over disjoint objects run
// in parallel. The returned slice is shared read-only by every detached
// firing of one raise.
func (t *Tx) writeSetOIDs() []oid.OID {
	n := len(t.dirty) + len(t.created) + len(t.deleted)
	if n == 0 {
		return nil
	}
	ws := make([]oid.OID, 0, n)
	for id := range t.dirty {
		ws = append(ws, id)
	}
	for id := range t.created {
		if !t.dirty[id] {
			ws = append(ws, id)
		}
	}
	for id := range t.deleted {
		if !t.dirty[id] && !t.created[id] {
			ws = append(ws, id)
		}
	}
	return ws
}

// getFrame returns a zeroed frame, reusing a recycled one when available.
// Tx is single-goroutine, so no locking.
func (t *Tx) getFrame() *frame {
	if n := len(t.framePool); n > 0 {
		f := t.framePool[n-1]
		t.framePool = t.framePool[:n-1]
		return f
	}
	return &frame{}
}

// putFrame recycles a frame once its call returns. The frame is zeroed so
// the pool does not pin objects, methods or detections.
func (t *Tx) putFrame(f *frame) {
	*f = frame{}
	t.framePool = append(t.framePool, f)
}

// Begin starts a transaction.
func (db *Database) Begin() *Tx {
	t := &Tx{
		db:       db,
		inner:    db.tm.Begin(),
		dirty:    make(map[oid.OID]bool),
		created:  make(map[oid.OID]bool),
		deleted:  make(map[oid.OID]bool),
		deferred: rule.NewAgenda(db.currentStrategy()),
	}
	if tr := db.tracer.Load(); tr != nil && tr.TxBegin != nil {
		tr.TxBegin(obs.TxInfo{Tx: uint64(t.inner.ID())})
	}
	return t
}

// ID returns the transaction identifier.
func (t *Tx) ID() txn.ID { return t.inner.ID() }

// Active reports whether the transaction can still do work.
func (t *Tx) Active() bool { return !t.finished && t.inner.Active() }

// Commit finishes the transaction: deferred rules run first (inside the
// transaction — they can still abort it), then the write set is logged and
// applied, then detached rules launch in fresh transactions. An AbortError
// from a deferred rule rolls everything back and is returned.
//
// With Options.AsyncDetached, Commit returns ErrDetachedStopped when the
// executor pool was already stopped by Close: the transaction itself is
// durably committed — only its detached firings were dropped.
func (db *Database) Commit(t *Tx) error {
	if t.db != db {
		return fmt.Errorf("core: transaction belongs to a different database")
	}
	if !t.Active() {
		return txn.ErrNotActive
	}
	// Commits are low-frequency relative to raises, so the full duration —
	// deferred drain, logging, fsync, detached dispatch — is always timed.
	start := time.Now()
	err := db.doCommit(t)
	d := time.Since(start)
	db.met.commitH.Observe(d)
	if tr := db.tracer.Load(); tr != nil && tr.TxCommit != nil {
		tr.TxCommit(obs.TxInfo{Tx: uint64(t.inner.ID()), Duration: d, Err: err})
	}
	return err
}

func (db *Database) doCommit(t *Tx) error {
	// Phase 1: deferred coupling — drain until quiescent (§4.4). Rules
	// fired here may write, raise events, and schedule more deferred work.
	for t.deferred.Len() > 0 {
		batch := t.deferred.Drain()
		for i := range batch {
			if err := db.runFiring(t, &batch[i], 1); err != nil {
				db.Abort(t)
				return err
			}
		}
	}

	// Phase 2: durability, with locks still held.
	durable := func() error { return db.writeCommit(t) }

	detached := t.detached
	t.detached = nil
	pushes := t.pushes
	t.pushes = nil
	t.finished = true
	t.resetTouched()
	if err := t.inner.Commit(durable); err != nil {
		t.releasePins()
		t.releaseSnapshot()
		return err
	}
	t.releasePins()
	t.releaseSnapshot()
	// Quorum commit (Options.SyncReplicas): block until K followers have
	// durably acked this commit's shipped batch. Runs after local
	// durability with every lock released — the 2PL locks, pins and the
	// snapshot registration are gone, and the ack path (follower sessions →
	// Primary.Ack) touches none of this goroutine's state — so the wait can
	// time out (degrade to async, counted) but never deadlock. ErrFenced
	// here means a follower was promoted while we waited: the commit is
	// durable locally but will never be acknowledged, and rejoining as a
	// follower discards it.
	if lsn := t.replShippedLSN; lsn != 0 {
		t.replShippedLSN = 0
		if err := db.waitReplQuorum(lsn); err != nil {
			return err
		}
	}
	// Remote-sink fan-out: the commit is durable, so matched occurrences
	// may now leave the process. Wait-free (each delivery is a bounded
	// enqueue), and ahead of detached dispatch so a subscriber watching
	// both the event and a detached rule's effect sees them in that order.
	if len(pushes) > 0 {
		db.fanoutPushes(pushes)
	}
	// Occurrences not carried by a shipped WAL batch (the commit wrote
	// nothing durable) still reach followers, as an event-only batch —
	// otherwise a follower's subscriber would miss events its primary-side
	// twin sees. Ships after durability for the same reason fan-out does.
	if len(t.replOccs) > 0 {
		db.shipEventOnly(t.replOccs)
		t.replOccs = nil
	}
	// Committed deletes: drop the tombstoned entries once no active snapshot
	// can still read them (usually immediately — the watermark has already
	// advanced past our commit LSN unless an older snapshot is live, in
	// which case pruneChains removes them when it releases).
	if len(t.deleted) > 0 {
		w := db.watermark()
		for id := range t.deleted {
			db.dir.dropDeleted(id, w)
			db.pruneConsumerState(id)
		}
	}
	db.maybeSweepChains()
	db.maybeAutoCheckpoint()
	// Create-heavy transactions grow residency without faulting; commit is
	// the point where their entries turn clean and evictable.
	db.maybeEvict()

	// Phase 3: detached coupling — each firing runs in its own
	// transaction after the triggering transaction committed (§4.4). An
	// aborting detached rule affects only its own transaction. With
	// Options.AsyncDetached the firings go to the conflict-aware executor
	// pool (the fully asynchronous propagation of §3.1; see detached.go);
	// WaitIdle quiesces.
	if len(detached) > 0 {
		agenda := rule.NewAgenda(db.currentStrategy())
		for _, f := range detached {
			agenda.AddFiring(f)
		}
		ordered := agenda.Drain()
		if db.opts.AsyncDetached {
			if err := db.dispatchDetached(t, ordered); err != nil {
				return err
			}
		} else {
			for i := range ordered {
				db.execDetached(ordered[i])
			}
		}
	}
	return nil
}

// execDetached runs one detached firing in its own transaction
// (synchronous mode: AsyncDetached off).
func (db *Database) execDetached(f rule.Firing) {
	dtx := db.Begin()
	if err := db.runDetachedFiring(dtx, &f, 1); err != nil {
		db.Abort(dtx)
		return
	}
	// Commit rolls back on its own failures.
	_ = db.Commit(dtx)
}

// dispatchDetached hands an ordered batch of detached firings to the
// executor pool. The batch is enqueued atomically; once Close stopped the
// pool the batch is rejected with ErrDetachedStopped (the transaction is
// already durable — only its firings are dropped). Before Open finishes
// the pool may not exist yet (schema hooks run early); those firings
// execute synchronously, matching the AsyncDetached-off path.
func (db *Database) dispatchDetached(t *Tx, ordered []rule.Firing) error {
	if db.detached == nil {
		for i := range ordered {
			db.execDetached(ordered[i])
		}
		return nil
	}
	return db.detached.enqueue(ordered, t.fromDetachedWorker)
}

// WaitIdle blocks until every asynchronously dispatched detached rule has
// finished, including detached work those rules' own commits enqueued (a
// chained firing enqueues while its parent is still in flight, so the
// pool's pending count only reaches zero at true quiescence). A no-op
// when AsyncDetached is off.
func (db *Database) WaitIdle() {
	if db.detached != nil {
		db.detached.waitIdle()
	}
}

// Abort rolls the transaction back.
func (db *Database) Abort(t *Tx) {
	if t.finished {
		return
	}
	t.finished = true
	t.deferred.Clear()
	t.detached = nil
	t.pushes = nil
	t.replOccs = nil
	t.resetTouched()
	t.inner.Abort()
	t.releasePins()
	t.releaseSnapshot()
	if tr := db.tracer.Load(); tr != nil && tr.TxAbort != nil {
		tr.TxAbort(obs.TxInfo{Tx: uint64(t.inner.ID())})
	}
}

// releasePins drops every directory pin the transaction holds. Runs after
// the inner transaction finished (undo closures may still dereference the
// pinned objects while rolling back). Entries removed by an aborted
// create's undo are tolerated by unpin.
func (t *Tx) releasePins() {
	if t.pinned == nil {
		return
	}
	for id := range t.pinned {
		t.db.dir.unpin(id)
	}
	t.pinned = nil
}

// pin records a directory pin taken on behalf of this transaction.
func (t *Tx) pin(id oid.OID) {
	if t.pinned == nil {
		t.pinned = make(map[oid.OID]bool)
	}
	t.pinned[id] = true
}

// resetTouched clears detection state of tx-scoped rules fed by this
// transaction.
func (t *Tx) resetTouched() {
	for r := range t.touched {
		r.ResetDetection()
	}
	t.touched = nil
}

// Atomically runs fn inside a transaction, committing on nil and aborting
// on error (returning the error). An AbortError raised by a rule or method
// is returned as-is after rollback.
func (db *Database) Atomically(fn func(*Tx) error) error {
	t := db.Begin()
	if err := fn(t); err != nil {
		db.Abort(t)
		return err
	}
	return db.Commit(t)
}

// commitScratch is the reusable per-commit encoding state: the record and
// class slices plus one flat buffer every object image of the batch is
// encoded into, so record framing stops allocating per record. Commits can
// run concurrently (writeCommit holds ckptMu only shared), hence a
// sync.Pool rather than a Database field.
type commitScratch struct {
	recs    []wal.Record
	classes []string
	buf     []byte
}

var commitScratchPool = sync.Pool{New: func() any { return new(commitScratch) }}

// Retention bounds so one huge commit does not pin a huge scratch forever.
const (
	maxCommitScratchBytes = 1 << 20
	maxCommitScratchRecs  = 1024
)

// writeCommit assembles and syncs the WAL records for the transaction,
// applies the write set to the heap, updates the heap-class catalog, and
// marks the written directory entries clean (eligible for eviction again).
// Runs under ckptMu shared so a concurrent checkpoint cannot truncate the
// log between our append and the heap apply.
//
// It also drives the MVCC install: a commit LSN is allocated up front and
// the write set's versions are published at it (installVersions) on
// success, all before the LSN is marked stable — and all with the 2PL
// locks still held, since this is the txn layer's durability callback. On
// a durability error nothing installs; the transaction aborts and its undo
// closures pop the pushed versions instead.
func (db *Database) writeCommit(t *Tx) (err error) {
	if len(t.dirty) == 0 && len(t.created) == 0 && len(t.deleted) == 0 {
		return nil // read-only (incl. snapshot transactions): nothing to install
	}
	// A fenced (deposed) primary aborts data-bearing commits before
	// anything reaches the WAL: the durability callback's error path undoes
	// the transaction cleanly, and nothing a fenced node writes can ever be
	// acknowledged (see Database.Fence).
	if db.fenced.Load() {
		db.met.fencedWrites.Add(1)
		return ErrFenced
	}
	// Bump versions on touched objects regardless of persistence. Safe
	// against concurrent snapshot readers: every dirty object either has an
	// open writer window (readers serve its chain, not the object) or is an
	// uncommitted create (invisible to every snapshot).
	for id := range t.dirty {
		if o := db.objectByID(id); o != nil {
			o.BumpVersion()
		}
	}
	c := db.lsn.begin()
	defer func() {
		if err == nil {
			db.installVersions(t, c)
		}
		db.lsn.end(c)
	}()
	if db.store == nil {
		return nil
	}
	db.ckptMu.RLock()
	defer db.ckptMu.RUnlock()
	sc := commitScratchPool.Get().(*commitScratch)
	recs := sc.recs[:0]
	classes := sc.classes[:0] // class name per record, aligned with recs
	buf := sc.buf[:0]
	defer func() {
		// Data slices point into buf (or into superseded backing arrays);
		// both the WAL append and the heap apply copy, so nothing retains
		// them past this function. Zero the pointers before pooling.
		for i := range recs {
			recs[i].Data = nil
		}
		if cap(recs) <= maxCommitScratchRecs {
			sc.recs = recs[:0]
			sc.classes = classes[:0]
		} else {
			sc.recs, sc.classes = nil, nil
		}
		if cap(buf) <= maxCommitScratchBytes {
			sc.buf = buf[:0]
		} else {
			sc.buf = nil
		}
		commitScratchPool.Put(sc)
	}()
	txid := uint64(t.inner.ID())
	addUpdate := func(id oid.OID) {
		o := db.objectByID(id)
		if o == nil || !db.persistentObject(o) {
			return
		}
		// Encode into the shared buffer; the record's Data is a capped
		// sub-slice, so a later realloc of buf cannot alias over it.
		start := len(buf)
		buf = o.Encode(buf)
		recs = append(recs, wal.Record{Type: wal.RecUpdate, Tx: txid, OID: id, Data: buf[start:len(buf):len(buf)]})
		classes = append(classes, o.Class().Name)
	}
	for id := range t.created {
		if t.deleted[id] {
			continue
		}
		addUpdate(id)
	}
	for id := range t.dirty {
		if t.created[id] || t.deleted[id] {
			continue
		}
		addUpdate(id)
	}
	for id := range t.deleted {
		if t.created[id] {
			continue
		}
		recs = append(recs, wal.Record{Type: wal.RecDelete, Tx: txid, OID: id})
		classes = append(classes, "")
	}
	if len(recs) == 0 {
		return nil
	}
	recs = append(recs, wal.Record{Type: wal.RecCommit, Tx: txid})
	// Group commit: concurrent committers coalesce their batches into one
	// write (and, with SyncOnCommit, one shared fsync) through the WAL's
	// leader/follower protocol. An uncontended commit flushes immediately at
	// single-commit latency.
	if err := db.log.CommitBatch(recs, db.opts.SyncOnCommit); err != nil {
		return err
	}
	// Apply to the heap (redo applied eagerly; the log protects it). The
	// commit record is last, so every update/delete index is in classes.
	for i, r := range recs {
		switch r.Type {
		case wal.RecUpdate:
			if err := db.store.Put(r.OID, r.Data); err != nil {
				return err
			}
			db.setHeapClass(r.OID, classes[i])
			// The heap image now matches memory: clean, evictable again.
			db.dir.setDirty(r.OID, false)
		case wal.RecDelete:
			if err := db.store.Delete(r.OID); err != nil {
				return err
			}
			db.delHeapClass(r.OID)
		}
	}
	// Assign the replication LSN and hand the batch to the shipper while
	// the 2PL locks are still held: conflicting commits are strictly
	// ordered here, so followers apply every pair of dependent batches in
	// commit order. Runs after the heap apply and still under ckptMu
	// shared, so a base-state sync (which holds ckptMu exclusively) sees
	// the heap at exactly its recorded LSN. See repl.go for the no-stall
	// contract: the shipper only encodes and buffers under replMu.
	db.shipCommit(t, recs)
	return nil
}

// persistentObject reports whether the object's class is marked persistent.
func (db *Database) persistentObject(o *object.Object) bool {
	return o.Class().Persistent
}

// ---- object primitives ----

// NewObject creates an instance of the named class with the given attribute
// initializers (constructor semantics: initializers bypass visibility, like
// a C++ constructor's member-init list) and returns its OID. Creation does
// not raise events; the paper's events come from message sends.
func (db *Database) NewObject(t *Tx, class string, inits map[string]value.Value) (oid.OID, error) {
	if !t.Active() {
		return oid.Nil, txn.ErrNotActive
	}
	if t.snapID != 0 {
		return oid.Nil, errReadOnlyTx
	}
	if db.replicaWriteBlocked() {
		return oid.Nil, ErrReplicaWrite
	}
	c := db.reg.Lookup(class)
	if c == nil {
		return oid.Nil, fmt.Errorf("core: unknown class %q", class)
	}
	id := db.alloc.Next()
	o, err := object.New(id, c)
	if err != nil {
		return oid.Nil, err
	}
	for k, v := range inits {
		if c.AttributeNamed(k) == nil {
			return oid.Nil, fmt.Errorf("core: class %s has no attribute %q", class, k)
		}
		if err := o.Set(k, v); err != nil {
			return oid.Nil, err
		}
	}
	if err := t.inner.Lock(txn.Lockable(id), txn.Exclusive); err != nil {
		return oid.Nil, err
	}
	// System objects and instances of non-persistent classes are wired
	// resident (they have no rebuildable heap image, or the runtime
	// catalogs reference them); everything else starts dirty — it has no
	// heap image yet — and becomes evictable once writeCommit stores it.
	noEvict := IsSystemClass(class) || !c.Persistent
	var pins int32
	if db.pagingEnabled() {
		pins = 1
		t.pin(id)
	}
	db.dir.insert(id, o, pins, !noEvict, noEvict, lsnNone)
	t.created[id] = true
	t.inner.OnUndo(func() { db.dir.remove(id) })
	db.indexObjectAdd(t, o)
	return id, nil
}

// lockObject locks and returns the object, faulting it in from the heap if
// necessary and erroring if it does not exist. When eviction is enabled the
// object is also pinned for the rest of the transaction, so the returned
// pointer stays valid for undo closures and frames. The resident-hit path
// is allocation-free after the first touch per (transaction, object).
func (db *Database) lockObject(t *Tx, id oid.OID, mode txn.Mode) (*object.Object, error) {
	if !t.Active() {
		return nil, txn.ErrNotActive
	}
	// Snapshot transactions take no locks and no pins: reads resolve
	// through the version chains at the snapshot LSN, so they neither block
	// writers nor are blocked by them. Write intents are rejected.
	if t.snapID != 0 {
		if mode == txn.Exclusive {
			return nil, errReadOnlyTx
		}
		return db.snapshotObject(t, id)
	}
	if mode == txn.Exclusive && db.replicaWriteBlocked() {
		return nil, ErrReplicaWrite
	}
	if err := t.inner.Lock(txn.Lockable(id), mode); err != nil {
		return nil, err
	}
	if db.pagingEnabled() {
		return db.lockPinned(t, id)
	}
	o, err := db.faultObject(id)
	if err != nil {
		return nil, err
	}
	if o == nil {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	return o, nil
}

// lockPinned resolves and pins a locked object under eviction pressure.
// Pinning is atomic with the residency check (dir.pin under the shard read
// lock excludes the evictor's write-locked sweep), so a pinned pointer
// cannot be reclaimed.
func (db *Database) lockPinned(t *Tx, id oid.OID) (*object.Object, error) {
	if t.pinned[id] {
		// Already pinned by this transaction: the entry cannot have been
		// evicted; a nil here means we tombstoned it ourselves.
		if o, _ := db.dir.get(id); o != nil {
			return o, nil
		}
		return nil, fmt.Errorf("core: no object %s", id)
	}
	if o, found, tomb := db.dir.pin(id); found {
		if tomb {
			return nil, fmt.Errorf("core: no object %s", id)
		}
		t.pin(id)
		return o, nil
	}
	fo, err := db.faultObject(id)
	if err != nil {
		return nil, err
	}
	if fo == nil {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	// The freshly faulted entry may already have been swept again; pin
	// whatever is resident now, or (re)install our decode pinned.
	o, tomb := db.dir.pinOrInsert(id, fo)
	if tomb {
		return nil, fmt.Errorf("core: no object %s", id)
	}
	t.pin(id)
	return o, nil
}

// recordWrite snapshots the object once per transaction for rollback and
// marks it dirty — in the transaction's write set and, under eviction, on
// the directory entry (a dirty entry is wired until writeCommit stores it;
// the undo hook restores the prior bit because after rollback the fields
// match the heap image again).
//
// It also opens the entry's MVCC writer window: pushVersion archives the
// committed image into the version chain under the shard write lock BEFORE
// the caller's first in-place mutation, so snapshot readers either cloned
// the object while it was still clean or serve the immutable chain head.
// On abort the version pops after the fields are restored.
func (t *Tx) recordWrite(o *object.Object) {
	id := o.ID()
	if t.dirty[id] || t.created[id] {
		t.dirty[id] = true
		return
	}
	t.dirty[id] = true
	snap := o.CopyFields()
	pushed := t.db.dir.pushVersion(id)
	if t.db.pagingEnabled() {
		wasDirty := t.db.dir.setDirty(id, true)
		t.inner.OnUndo(func() {
			o.RestoreFields(snap)
			t.db.dir.setDirty(id, wasDirty)
			if pushed {
				t.db.dir.popVersion(id)
			}
		})
		return
	}
	t.inner.OnUndo(func() {
		o.RestoreFields(snap)
		if pushed {
			t.db.dir.popVersion(id)
		}
	})
}

// checkAttrVisible enforces member visibility for an attribute access by
// code of class `caller` (nil = application code; system access passes
// sysAccess=true).
func checkAttrVisible(a *schema.Attribute, caller *schema.Class, sysAccess bool) error {
	if sysAccess || a.Visibility == schema.Public {
		return nil
	}
	if caller == nil {
		return fmt.Errorf("core: attribute %s.%s is %s", a.Owner().Name, a.Name, a.Visibility)
	}
	switch a.Visibility {
	case schema.Protected:
		if caller.IsSubclassOf(a.Owner()) {
			return nil
		}
	case schema.Private:
		if caller == a.Owner() {
			return nil
		}
	}
	return fmt.Errorf("core: attribute %s.%s is %s (caller %s)", a.Owner().Name, a.Name, a.Visibility, caller.Name)
}

// checkMethodVisible is the method counterpart.
func checkMethodVisible(m *schema.Method, caller *schema.Class, sysAccess bool) error {
	if sysAccess || m.Visibility == schema.Public {
		return nil
	}
	if caller == nil {
		return fmt.Errorf("core: method %s is %s", m.Signature(), m.Visibility)
	}
	switch m.Visibility {
	case schema.Protected:
		if caller.IsSubclassOf(m.Owner()) {
			return nil
		}
	case schema.Private:
		if caller == m.Owner() {
			return nil
		}
	}
	return fmt.Errorf("core: method %s is %s (caller %s)", m.Signature(), m.Visibility, caller.Name)
}

// getAttr reads an attribute with visibility checking.
func (db *Database) getAttr(t *Tx, id oid.OID, attr string, caller *schema.Class, sysAccess bool) (value.Value, error) {
	o, err := db.lockObject(t, id, txn.Shared)
	if err != nil {
		return value.Nil, err
	}
	a := o.Class().AttributeNamed(attr)
	if a == nil {
		return value.Nil, fmt.Errorf("core: class %s has no attribute %q", o.Class().Name, attr)
	}
	if err := checkAttrVisible(a, caller, sysAccess); err != nil {
		return value.Nil, err
	}
	return o.GetSlot(a.Slot()), nil
}

// setAttr writes an attribute with visibility checking, undo logging and
// dirty tracking. Direct attribute writes do not raise events (state
// changes of interest go through methods declared in the event interface).
func (db *Database) setAttr(t *Tx, id oid.OID, attr string, v value.Value, caller *schema.Class, sysAccess bool) error {
	o, err := db.lockObject(t, id, txn.Exclusive)
	if err != nil {
		return err
	}
	a := o.Class().AttributeNamed(attr)
	if a == nil {
		return fmt.Errorf("core: class %s has no attribute %q", o.Class().Name, attr)
	}
	if err := checkAttrVisible(a, caller, sysAccess); err != nil {
		return err
	}
	if !a.Type.Accepts(v.Kind()) {
		return fmt.Errorf("core: %s.%s: want %s, got %s", o.Class().Name, attr, a.Type, v.Kind())
	}
	t.recordWrite(o)
	oldV := o.GetSlot(a.Slot())
	newV := a.Type.Widen(v)
	o.SetSlot(a.Slot(), newV)
	db.indexWrite(t, o, attr, oldV, newV)
	return nil
}

// Get reads a public attribute (application-level access).
func (db *Database) Get(t *Tx, id oid.OID, attr string) (value.Value, error) {
	return db.getAttr(t, id, attr, nil, false)
}

// Set writes a public attribute (application-level access; no events).
func (db *Database) Set(t *Tx, id oid.OID, attr string, v value.Value) error {
	return db.setAttr(t, id, attr, v, nil, false)
}

// DeleteObject removes an object. Subscriptions from or to it are dropped.
func (db *Database) DeleteObject(t *Tx, id oid.OID) error {
	o, err := db.lockObject(t, id, txn.Exclusive)
	if err != nil {
		return err
	}
	db.indexObjectRemove(t, o)
	// Tombstone, don't remove: the entry keeps the object for the undo
	// closure and blocks fault-in from resurrecting the stale heap image
	// while the delete is uncommitted. Commit sweeps tombstones away.
	db.dir.setTomb(id, true)
	db.mu.Lock()
	savedSubs := db.subs[id]
	delete(db.subs, id)
	savedFns := db.funcConsumers[id]
	delete(db.funcConsumers, id)
	db.mu.Unlock()
	t.deleted[id] = true
	db.invalidateConsumers(t, scopeObj(id), func() {
		db.dir.setTomb(id, false)
		db.mu.Lock()
		if savedSubs != nil {
			db.subs[id] = savedSubs
		}
		if savedFns != nil {
			db.funcConsumers[id] = savedFns
		}
		db.mu.Unlock()
		delete(t.deleted, id)
	})
	return nil
}

// Exists reports whether an object with the given OID is live.
func (db *Database) Exists(id oid.OID) bool { return db.objectByID(id) != nil }

// ClassOf returns the class of a live object (nil if absent).
func (db *Database) ClassOf(id oid.OID) *schema.Class {
	o := db.objectByID(id)
	if o == nil {
		return nil
	}
	return o.Class()
}

// GetSys reads an attribute with system visibility (tooling/baselines).
func (db *Database) GetSys(t *Tx, id oid.OID, attr string) (value.Value, error) {
	return db.getAttr(t, id, attr, nil, true)
}

// SetSys writes an attribute with system visibility (tooling/baselines).
func (db *Database) SetSys(t *Tx, id oid.OID, attr string, v value.Value) error {
	return db.setAttr(t, id, attr, v, nil, true)
}

// InstancesOf returns the OIDs of all live instances of the named class and
// its subclasses, sorted. The result is the union of the resident directory
// (which sees uncommitted creates and hides uncommitted deletes) and the
// heap-class catalog (committed cold objects), so it is identical whether
// an instance is resident or evicted.
func (db *Database) InstancesOf(class string) []oid.OID {
	c := db.reg.Lookup(class)
	if c == nil {
		return nil
	}
	var out []oid.OID
	present := make(map[oid.OID]bool)
	db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
		present[id] = true
		if !tomb && o.Class().IsSubclassOf(c) {
			out = append(out, id)
		}
	})
	if db.store != nil {
		isSub := make(map[string]bool)
		db.catMu.RLock()
		for id, cls := range db.heapCat {
			if present[id] {
				continue
			}
			sub, cached := isSub[cls]
			if !cached {
				cc := db.reg.Lookup(cls)
				sub = cc != nil && cc.IsSubclassOf(c)
				isSub[cls] = sub
			}
			if sub {
				out = append(out, id)
			}
		}
		db.catMu.RUnlock()
	}
	value.SortRefs(out)
	return out
}
