package core_test

// Semantics tests: coupling modes, cascades, conflict resolution,
// visibility, inheritance dispatch, transactional rollback of rule/event/
// subscription management, and explicit events.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// watchRule creates a rule with the given coupling that appends to log.
func watchRule(t *testing.T, db *core.Database, name, coupling string, target oid.OID, log *[]string) *rule.Rule {
	t.Helper()
	var r *rule.Rule
	err := db.Atomically(func(tx *core.Tx) error {
		var err error
		r, err = db.CreateRule(tx, core.RuleSpec{
			Name:     name,
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				*log = append(*log, name)
				return nil
			},
			Coupling: coupling,
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, target, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCouplingModes(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var log []string
	watchRule(t, db, "imm", "immediate", fred, &log)
	watchRule(t, db, "def", "deferred", fred, &log)
	watchRule(t, db, "det", "detached", fred, &log)

	tx := db.Begin()
	if _, err := db.Send(tx, fred, "SetSalary", value.Float(1)); err != nil {
		t.Fatal(err)
	}
	// Immediate ran inline; deferred and detached have not.
	if strings.Join(log, ",") != "imm" {
		t.Fatalf("during tx: %v", log)
	}
	if _, err := db.Send(tx, fred, "SetSalary", value.Float(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Deferred ran at commit (once per detection), detached after.
	want := "imm,imm,def,def,det,det"
	if strings.Join(log, ",") != want {
		t.Fatalf("after commit: %v, want %s", log, want)
	}
}

func TestAbortDropsDeferredAndDetached(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var log []string
	watchRule(t, db, "def", "deferred", fred, &log)
	watchRule(t, db, "det", "detached", fred, &log)

	tx := db.Begin()
	if _, err := db.Send(tx, fred, "SetSalary", value.Float(1)); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if len(log) != 0 {
		t.Fatalf("aborted tx still ran rules: %v", log)
	}
}

func TestDeferredRuleCanAbortTransaction(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:      "defAbort",
			EventSrc:  "end Employee::SetSalary(float amount)",
			CondSrc:   "amount > 100.0",
			ActionSrc: `abort "too much (checked at commit)"`,
			Coupling:  "deferred",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(500))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("deferred abort: %v", err)
	}
	// The write rolled back.
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 100 {
			t.Errorf("salary = %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDetachedAbortOnlyAffectsItsOwnTransaction(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "detAbort",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				// Write something, then abort: neither survives, but the
				// triggering transaction already committed.
				if err := ctx.SetAttr(fred, "name", value.Str("clobbered")); err != nil {
					return err
				}
				return ctx.Abort("detached tantrum")
			},
			Coupling: "detached",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	// The triggering transaction commits fine.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(777))
		return err
	}); err != nil {
		t.Fatalf("triggering tx failed: %v", err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		sal, err := db.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := sal.Numeric(); f != 777 {
			t.Errorf("salary = %v (triggering tx must commit)", sal)
		}
		name, err := db.GetSys(tx, fred, "name")
		if err != nil {
			return err
		}
		if !name.Equal(value.Str("fred")) {
			t.Errorf("name = %v (detached write must roll back)", name)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictResolutionStrategies(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var log []string
	mk := func(name string, prio int) {
		err := db.Atomically(func(tx *core.Tx) error {
			r, err := db.CreateRule(tx, core.RuleSpec{
				Name:     name,
				EventSrc: "end Employee::SetSalary(float amount)",
				Priority: prio,
				Action: func(ctx rule.ExecContext, det event.Detection) error {
					log = append(log, name)
					return nil
				},
			})
			if err != nil {
				return err
			}
			return db.Subscribe(tx, fred, r.ID())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("low", 1)
	mk("high", 9)
	mk("mid", 5)

	fire := func() {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, fred, "SetSalary", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	fire()
	if strings.Join(log, ",") != "high,mid,low" {
		t.Fatalf("priority strategy: %v", log)
	}
	log = nil
	if err := db.SetStrategy("fifo"); err != nil {
		t.Fatal(err)
	}
	fire()
	if strings.Join(log, ",") != "low,high,mid" {
		t.Fatalf("fifo strategy: %v", log)
	}
	log = nil
	if err := db.SetStrategy("lifo"); err != nil {
		t.Fatal(err)
	}
	fire()
	if strings.Join(log, ",") != "mid,high,low" {
		t.Fatalf("lifo strategy: %v", log)
	}
	if err := db.SetStrategy("nope"); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

func TestCascadeDepthLimit(t *testing.T) {
	db := core.MustOpen(core.Options{MaxCascadeDepth: 5, Output: nil})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	fred := mkEmployee(t, db, "fred", 100)
	// A rule that re-triggers itself: SetSalary → action → SetSalary ...
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "loop",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				amt, _ := det.Last().Args[0].Numeric()
				_, err := ctx.Send(fred, "SetSalary", value.Float(amt+1))
				return err
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(1))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "cascade") {
		t.Fatalf("runaway cascade not stopped: %v", err)
	}
}

func TestRuleCreationRollsBackOnAbort(t *testing.T) {
	db := orgDB(t)
	tx := db.Begin()
	if _, err := db.CreateRule(tx, core.RuleSpec{Name: "ghost", EventSrc: "end Employee::SetSalary(float a)"}); err != nil {
		t.Fatal(err)
	}
	if db.LookupRule("ghost") == nil {
		t.Fatal("rule not visible inside its transaction")
	}
	db.Abort(tx)
	if db.LookupRule("ghost") != nil {
		t.Fatal("aborted rule creation survived")
	}
	// The name is reusable.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{Name: "ghost", EventSrc: "end Employee::SetSalary(float a)"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSubscriptionRollsBackOnAbort(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var r *rule.Rule
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		r, err = db.CreateRule(tx, core.RuleSpec{Name: "w", EventSrc: "end Employee::SetSalary(float a)"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := db.Subscribe(tx, fred, r.ID()); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if len(db.Subscribers(fred)) != 0 {
		t.Fatal("aborted subscription survived")
	}
	// And the reverse: unsubscribe rolls back too.
	if err := db.Atomically(func(tx *core.Tx) error { return db.Subscribe(tx, fred, r.ID()) }); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	if err := db.Unsubscribe(tx, fred, r.ID()); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if len(db.Subscribers(fred)) != 1 {
		t.Fatal("aborted unsubscribe went through")
	}
}

func TestDeleteRuleRemovesSubscriptions(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var r *rule.Rule
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		r, err = db.CreateRule(tx, core.RuleSpec{Name: "w", EventSrc: "end Employee::SetSalary(float a)"})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteRule(tx, "w") }); err != nil {
		t.Fatal(err)
	}
	if db.LookupRule("w") != nil || len(db.Subscribers(fred)) != 0 {
		t.Fatal("delete left residue")
	}
	if db.Exists(r.ID()) {
		t.Fatal("rule object still live")
	}
	// Sending events is harmless afterwards.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNamedEventLifecycle(t *testing.T) {
	db := orgDB(t)
	err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate definition fails.
	err = db.Atomically(func(tx *core.Tx) error {
		_, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)")
		return err
	})
	if err == nil {
		t.Fatal("duplicate event accepted")
	}
	// Deletion removes it from the catalog.
	if err := db.Atomically(func(tx *core.Tx) error { return db.DeleteEvent(tx, "Raise") }); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.LookupEvent("Raise"); ok {
		t.Fatal("deleted event still visible")
	}
	// Event creation rolls back with the transaction.
	tx := db.Begin()
	if _, err := db.DefineEvent(tx, "Temp", "end Employee::SetSalary(float a)"); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if _, ok := db.LookupEvent("Temp"); ok {
		t.Fatal("aborted event definition survived")
	}
}

func TestVirtualDispatchThroughInheritance(t *testing.T) {
	db := core.MustOpen(quiet())
	base := schema.NewClass("Shape")
	base.Classification = schema.ReactiveClass
	base.Attr("name", value.TypeString)
	base.AddMethod(&schema.Method{
		Name: "Describe", Visibility: schema.Public, Returns: value.TypeString,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			// Calls the VIRTUAL Area: the subclass override must win.
			a, err := ctx.Send(ctx.Self(), "Area")
			if err != nil {
				return value.Nil, err
			}
			return value.Str(fmt.Sprintf("area=%s", a)), nil
		},
	})
	base.AddMethod(&schema.Method{
		Name: "Area", Visibility: schema.Public, Returns: value.TypeFloat,
		Body: func(ctx schema.CallContext) (value.Value, error) { return value.Float(0), nil },
	})
	db.MustRegisterClass(base)

	square := schema.NewClass("Square", base)
	square.Attr("side", value.TypeFloat)
	square.AddMethod(&schema.Method{
		Name: "Area", Visibility: schema.Public, Returns: value.TypeFloat,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			s, err := ctx.Get("side")
			if err != nil {
				return value.Nil, err
			}
			f, _ := s.Numeric()
			return value.Float(f * f), nil
		},
	})
	db.MustRegisterClass(square)

	var sq oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		sq, err = db.NewObject(tx, "Square", map[string]value.Value{"side": value.Float(3)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var got value.Value
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		got, err = db.Send(tx, sq, "Describe")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(value.Str("area=9")) {
		t.Fatalf("Describe = %v", got)
	}
}

func TestVisibilityEnforcement(t *testing.T) {
	db := core.MustOpen(quiet())
	c := schema.NewClass("Sealed")
	c.AddAttribute(&schema.Attribute{Name: "pub", Type: value.TypeInt, Visibility: schema.Public})
	c.AddAttribute(&schema.Attribute{Name: "prot", Type: value.TypeInt, Visibility: schema.Protected})
	c.AddAttribute(&schema.Attribute{Name: "priv", Type: value.TypeInt, Visibility: schema.Private})
	c.AddMethod(&schema.Method{
		Name: "Secret", Visibility: schema.Private,
		Body: func(ctx schema.CallContext) (value.Value, error) { return value.Int(42), nil },
	})
	c.AddMethod(&schema.Method{
		Name: "CallSecret", Visibility: schema.Public, Returns: value.TypeInt,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return ctx.Send(ctx.Self(), "Secret") // own class: allowed
		},
	})
	c.AddMethod(&schema.Method{
		Name: "ReadPriv", Visibility: schema.Public, Returns: value.TypeInt,
		Body: func(ctx schema.CallContext) (value.Value, error) { return ctx.Get("priv") },
	})
	db.MustRegisterClass(c)

	sub := schema.NewClass("SealedSub", c)
	sub.AddMethod(&schema.Method{
		Name: "ReadProt", Visibility: schema.Public, Returns: value.TypeInt,
		Body: func(ctx schema.CallContext) (value.Value, error) { return ctx.Get("prot") }, // protected from subclass: allowed
	})
	sub.AddMethod(&schema.Method{
		Name: "ReadPrivFromSub", Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) { return ctx.Get("priv") }, // private from subclass: denied
	})
	db.MustRegisterClass(sub)

	var obj oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		obj, err = db.NewObject(tx, "SealedSub", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if err := db.Atomically(func(tx *core.Tx) error {
		// Application code: public ok, protected/private denied.
		if _, err := db.Get(tx, obj, "pub"); err != nil {
			t.Errorf("public attr denied: %v", err)
		}
		if _, err := db.Get(tx, obj, "prot"); err == nil {
			t.Error("protected attr readable from application code")
		}
		if _, err := db.Get(tx, obj, "priv"); err == nil {
			t.Error("private attr readable from application code")
		}
		if _, err := db.Send(tx, obj, "Secret"); err == nil {
			t.Error("private method callable from application code")
		}
		// Through methods: own-class private ok, subclass-protected ok,
		// subclass-private denied.
		if _, err := db.Send(tx, obj, "CallSecret"); err != nil {
			t.Errorf("own-class private call denied: %v", err)
		}
		if _, err := db.Send(tx, obj, "ReadPriv"); err != nil {
			t.Errorf("own-class private read denied: %v", err)
		}
		if _, err := db.Send(tx, obj, "ReadProt"); err != nil {
			t.Errorf("subclass protected read denied: %v", err)
		}
		if _, err := db.Send(tx, obj, "ReadPrivFromSub"); err == nil {
			t.Error("subclass read private attribute of base")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitRaise(t *testing.T) {
	db := core.MustOpen(quiet())
	c := schema.NewClass("Boiler")
	c.Classification = schema.ReactiveClass
	c.Attr("temp", value.TypeFloat)
	c.AddMethod(&schema.Method{
		Name: "SetTemp", Params: []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			if err := ctx.Set("temp", ctx.Arg(0)); err != nil {
				return value.Nil, err
			}
			if f, _ := ctx.Arg(0).Numeric(); f > 100 {
				// §3.1 footnote 3: explicit primitive events from inside a
				// method body.
				return value.Nil, ctx.Raise("Overheat", ctx.Arg(0))
			}
			return value.Nil, nil
		},
	})
	db.MustRegisterClass(c)

	var b oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		b, err = db.NewObject(tx, "Boiler", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "hot",
			EventSrc: "event Boiler::Overheat",
			Action:   func(rule.ExecContext, event.Detection) error { fired++; return nil },
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, b, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, b, "SetTemp", value.Float(50)); err != nil {
			return err
		}
		_, err := db.Send(tx, b, "SetTemp", value.Float(150))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("explicit event fired %d times", fired)
	}
	// RaiseExplicit from outside a method body works too.
	if err := db.Atomically(func(tx *core.Tx) error {
		return db.RaiseExplicit(tx, b, "Overheat", value.Float(200))
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("RaiseExplicit fired %d times", fired)
	}
}

func TestConcurrentTransactionsSerialize(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 0)
	var wg sync.WaitGroup
	const workers, iters = 4, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					err := db.Atomically(func(tx *core.Tx) error {
						v, err := db.GetSys(tx, fred, "salary")
						if err != nil {
							return err
						}
						f, _ := v.Numeric()
						return db.SetSys(tx, fred, "salary", value.Float(f+1))
					})
					if err == nil {
						break
					}
					if !errors.Is(err, txn.ErrDeadlock) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.GetSys(tx, fred, "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != workers*iters {
			t.Errorf("salary = %v, want %d (lost updates)", v, workers*iters)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestClassLevelRuleCoversSubclasses(t *testing.T) {
	db := orgDB(t)
	fired := 0
	err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{
			Name:       "empWatch",
			EventSrc:   "end Employee::SetSalary(float amount)",
			Action:     func(rule.ExecContext, event.Detection) error { fired++; return nil },
			ClassLevel: "Employee",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var mgr oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		mgr, err = db.NewObject(tx, "Manager", map[string]value.Value{"name": value.Str("m")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, mgr, "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("class-level rule on Employee fired %d times for a Manager event", fired)
	}
}

func TestSendErrors(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, fred, "NoSuchMethod"); err == nil {
			t.Error("unknown method accepted")
		}
		if _, err := db.Send(tx, fred, "SetSalary"); err == nil {
			t.Error("wrong arity accepted")
		}
		if _, err := db.Send(tx, fred, "SetSalary", value.Str("x")); err == nil {
			t.Error("wrong argument kind accepted")
		}
		if _, err := db.Send(tx, oid.OID(424242), "SetSalary", value.Float(1)); err == nil {
			t.Error("send to missing object accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewObjectErrors(t *testing.T) {
	db := orgDB(t)
	err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.NewObject(tx, "NoClass", nil); err == nil {
			t.Error("unknown class accepted")
		}
		if _, err := db.NewObject(tx, "Employee", map[string]value.Value{"bogus": value.Int(1)}); err == nil {
			t.Error("unknown init attribute accepted")
		}
		if _, err := db.NewObject(tx, "Employee", map[string]value.Value{"salary": value.Str("x")}); err == nil {
			t.Error("mistyped init accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectCreationRollsBack(t *testing.T) {
	db := orgDB(t)
	tx := db.Begin()
	id, err := db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("ghost")})
	if err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if db.Exists(id) {
		t.Fatal("aborted object creation survived")
	}
}

func TestDeleteObjectRollsBack(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	tx := db.Begin()
	if err := db.DeleteObject(tx, fred); err != nil {
		t.Fatal(err)
	}
	if db.Exists(fred) {
		t.Fatal("object visible after delete in tx")
	}
	db.Abort(tx)
	if !db.Exists(fred) {
		t.Fatal("aborted delete went through")
	}
}

func TestBindRebindAndRollback(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)
	if err := db.Atomically(func(tx *core.Tx) error { return db.Bind(tx, "star", fred) }); err != nil {
		t.Fatal(err)
	}
	// Rebind in an aborted transaction reverts.
	tx := db.Begin()
	if err := db.Bind(tx, "star", mary); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if id, _ := db.Lookup("star"); id != fred {
		t.Fatalf("star = %v after aborted rebind, want fred", id)
	}
	// Committed rebind sticks.
	if err := db.Atomically(func(tx *core.Tx) error { return db.Bind(tx, "star", mary) }); err != nil {
		t.Fatal(err)
	}
	if id, _ := db.Lookup("star"); id != mary {
		t.Fatalf("star = %v, want mary", id)
	}
}
