package core

import (
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
)

// Consumer-resolution cache. The paper's performance argument (§3.5) is
// that per-object subscription makes propagation cheap: a raise should cost
// what the *consumers of this object* cost, not what the whole rule base
// costs. The naive implementation still re-derived the consumer set — walk
// the instance subscriptions, walk the MRO for class-level rules, dedup
// through a map — under the global catalog lock on every single raise.
//
// This cache memoizes that derivation. Invalidation is selective: every
// cached entry records the keys it was derived from — the source OID for
// instance subscriptions and func consumers, the exact class name for the
// MRO-walked class-level rules — and a mutation deletes only the entries
// whose key sets intersect the change (see invalidateConsumers for the
// mutation → blast-radius table). A global subscription epoch
// (db.subEpoch) remains as the safe fallback: recovery, base-state
// replacement and the GlobalConsumerInvalidation reference mode bump it,
// instantly staling every entry. The raise fast path is unchanged from the
// epoch-only scheme: one atomic epoch load + one shared-lock map read, zero
// allocations; an entry is valid iff it is present and carries the current
// epoch.
//
// Deletion-based invalidation has an ABA hazard the epoch scheme did not:
// a refresh that read the catalog *before* a mutation could publish its
// entry *after* the mutation deleted the (older) entry, installing a stale
// set that nothing would ever invalidate again. Per-key generation
// counters close it: mutators first mutate the catalog (under db.mu), then
// bump the affected generations and delete entries (under ccMu); a refresh
// snapshots the generations of its keys before reading the catalog and
// publishes under ccMu only if they are unchanged. Any mutation that lands
// between the snapshot and the publish either staled the snapshot (bump
// before snapshot ⇒ the refresh reads post-mutation state) or fails the
// publish check — the refresh then returns its computed slices for this
// one raise and lets the next raise recompute, the same non-guarantee a
// raise concurrent with a mutation always had.
//
// Entries are immutable once published (refreshes install a new entry), so
// readers can use the slices without holding any lock; callers must not
// mutate them.

// consumerEntry memoizes one reactive object's full consumer set. class
// records the derivation key linking it into db.classDeps so class-scoped
// invalidation can find it and entry removal can clean the back-reference.
type consumerEntry struct {
	epoch uint64
	class string
	rules []*rule.Rule
	fns   []*FuncConsumer
}

// classConsumerEntry memoizes the class-level rules visible from one class
// (its own and every MRO ancestor's), so computing a per-object entry does
// not re-walk the MRO for each instance of a hot class. Keyed by — and
// invalidated through — the exact class name: a mutation on an ancestor
// expands to the subtree at mutation time (see applyConsumerInvalidation),
// so the entry never needs to track its ancestors itself.
type classConsumerEntry struct {
	epoch uint64
	rules []*rule.Rule
}

// consumerScope names the blast radius of one catalog mutation.
//
//	mutation                      scope         entries invalidated
//	─────────────────────────────────────────────────────────────────────
//	Subscribe/Unsubscribe         obj(o)        o's entry
//	SubscribeFunc/unsubscribe     obj(o)        o's entry
//	DeleteObject                  obj(o)        o's entry (+ gen prune at
//	                                            commit, tombstone sweep)
//	CreateRule/DeleteRule (class) class(C)      C ∪ subclasses(C): class
//	                                            entries + their instances
//	CreateRule/DeleteRule (inst.) none          nothing (Subscribe carries
//	                                            the per-object scope)
//	EvolveClass                   class(C)      C's subtree (evolve demands
//	                                            no subclasses, so = C)
//	Enable/DisableRule            none          nothing (Notify checks
//	                                            enabledness per delivery)
//	recovery, ApplyBaseState      all           everything (epoch bump)
type consumerScope struct {
	kind scopeKind
	id   oid.OID // kindObj
	name string  // kindClass
}

type scopeKind uint8

const (
	scopeKindNone scopeKind = iota
	scopeKindObj
	scopeKindClass
	scopeKindAll
)

func scopeNone() consumerScope            { return consumerScope{kind: scopeKindNone} }
func scopeObj(id oid.OID) consumerScope   { return consumerScope{kind: scopeKindObj, id: id} }
func scopeClass(name string) consumerScope {
	return consumerScope{kind: scopeKindClass, name: name}
}
func scopeAll() consumerScope { return consumerScope{kind: scopeKindAll} }

// invalidateConsumers is the single entry point every catalog mutation
// uses: it applies the scope's invalidation now and, when the mutation is
// transactional, registers ONE undo closure that restores the caller's
// catalog state and then re-applies the same invalidation — so an abort
// path can never forget its bump, and the invalidation always runs *after*
// the state restore (running it before would let a concurrent refresh
// cache the still-unrestored state as current).
//
// Call it after releasing db.mu; the scope application takes ccMu (and,
// for class scopes, the schema registry's read lock) itself.
func (db *Database) invalidateConsumers(t *Tx, sc consumerScope, undo func()) {
	db.applyConsumerInvalidation(sc)
	if undo != nil {
		t.inner.OnUndo(func() {
			undo()
			db.applyConsumerInvalidation(sc)
		})
	}
}

// applyConsumerInvalidation executes one scope. In the
// GlobalConsumerInvalidation reference mode every scope — including
// scopeNone, matching the pre-selective behaviour of bumping on each
// rule-state transition — escalates to a global epoch bump.
func (db *Database) applyConsumerInvalidation(sc consumerScope) {
	if db.opts.GlobalConsumerInvalidation {
		db.subEpoch.Add(1)
		db.met.ccInvalidations.Inc()
		return
	}
	switch sc.kind {
	case scopeKindNone:
		return
	case scopeKindAll:
		db.subEpoch.Add(1)
	case scopeKindObj:
		db.ccMu.Lock()
		db.dropObjEntryLocked(sc.id)
		db.objGen[sc.id]++
		db.ccMu.Unlock()
	case scopeKindClass:
		// Expand the blast radius to the registered subtree outside ccMu
		// (registry lock only); instances of a subclass see the mutated
		// ancestor's rules through their own class's MRO walk.
		names := []string{sc.name}
		if c := db.reg.Lookup(sc.name); c != nil {
			subs := db.reg.Subclasses(c)
			names = names[:0]
			for _, s := range subs {
				names = append(names, s.Name)
			}
		}
		db.ccMu.Lock()
		for _, n := range names {
			db.classGen[n]++
			delete(db.classConsumers, n)
			for id := range db.classDeps[n] {
				delete(db.objConsumers, id)
			}
			delete(db.classDeps, n)
		}
		db.ccMu.Unlock()
	}
	db.met.ccInvalidations.Inc()
}

// dropObjEntryLocked removes one object entry and its classDeps
// back-reference. Caller holds ccMu exclusively.
func (db *Database) dropObjEntryLocked(id oid.OID) {
	e := db.objConsumers[id]
	if e == nil {
		return
	}
	delete(db.objConsumers, id)
	if deps := db.classDeps[e.class]; deps != nil {
		delete(deps, id)
		if len(deps) == 0 {
			delete(db.classDeps, e.class)
		}
	}
}

// pruneConsumerState discards every per-key trace of a committed object
// deletion: the entry (already gone since DeleteObject's obj scope, but a
// stale-epoch entry may linger after a global bump), the classDeps
// back-reference, and the generation counter. Safe exactly at commit:
// strict 2PL means no raise — hence no in-flight refresh — can exist for
// an object whose deleting transaction still held its exclusive lock, and
// OIDs are never reused, so the generation cannot be observed again.
func (db *Database) pruneConsumerState(id oid.OID) {
	db.ccMu.Lock()
	db.dropObjEntryLocked(id)
	delete(db.objGen, id)
	db.ccMu.Unlock()
}

// consumersOf returns the notifiable consumers of a reactive object:
// instance-level subscriptions (rules and Go callbacks, §3.5) plus
// class-level rules over the MRO (§4.7). The common path is a cache hit:
// epoch load + one shared-lock map read, no allocations. The returned
// slices are shared and must not be mutated.
func (db *Database) consumersOf(src *object.Object) ([]*rule.Rule, []*FuncConsumer) {
	epoch := db.subEpoch.Load()
	id := src.ID()
	db.ccMu.RLock()
	e := db.objConsumers[id]
	db.ccMu.RUnlock()
	if e != nil && e.epoch == epoch {
		db.met.ccHits.Inc()
		return e.rules, e.fns
	}
	return db.refreshConsumers(src, epoch)
}

// refreshConsumers recomputes and publishes an object's consumer entry.
// Generation discipline: snapshot the object and class generations first,
// read the catalogs, then publish only if both generations are unchanged —
// see the file comment for why that closes the delete/publish race. A
// skipped publish still returns the computed slices; they are correct for
// this raise (it is concurrent with the mutation, so either ordering is a
// valid serialization).
func (db *Database) refreshConsumers(src *object.Object, epoch uint64) ([]*rule.Rule, []*FuncConsumer) {
	db.met.ccMisses.Inc()
	id := src.ID()
	cls := src.Class()

	db.ccMu.RLock()
	og := db.objGen[id]
	cg := db.classGen[cls.Name]
	ce := db.classConsumers[cls.Name]
	db.ccMu.RUnlock()

	var classRules []*rule.Rule
	if ce != nil && ce.epoch == epoch {
		classRules = ce.rules
	} else {
		classRules = db.refreshClassConsumers(cls.Name, cls.MRO(), epoch, cg)
	}

	db.mu.RLock()
	instSubs := db.subs[id]
	fns := db.funcConsumers[id]

	var rules []*rule.Rule
	if len(instSubs) == 0 {
		// No instance subscriptions: the class-level slice is the whole
		// rule set, shared as-is (entries are immutable).
		rules = classRules
	} else {
		rules = make([]*rule.Rule, 0, len(instSubs)+len(classRules))
		var seen map[oid.OID]bool
		if len(instSubs) > 1 || len(classRules) > 0 {
			seen = make(map[oid.OID]bool, len(instSubs)+len(classRules))
		}
		for _, rid := range instSubs {
			if r := db.rules[rid]; r != nil && (seen == nil || !seen[rid]) {
				if seen != nil {
					seen[rid] = true
				}
				rules = append(rules, r)
			}
		}
		for _, r := range classRules {
			if !seen[r.ID()] {
				seen[r.ID()] = true
				rules = append(rules, r)
			}
		}
	}
	db.mu.RUnlock()

	db.ccMu.Lock()
	if db.objGen[id] == og && db.classGen[cls.Name] == cg {
		db.objConsumers[id] = &consumerEntry{epoch: epoch, class: cls.Name, rules: rules, fns: fns}
		deps := db.classDeps[cls.Name]
		if deps == nil {
			deps = make(map[oid.OID]struct{}, 4)
			db.classDeps[cls.Name] = deps
		}
		deps[id] = struct{}{}
	}
	db.ccMu.Unlock()
	return rules, fns
}

// refreshClassConsumers recomputes the deduplicated class-level rules for
// one class name (walking the given MRO) and publishes the entry if the
// class generation cg — snapshotted by the caller before any catalog read
// — is still current.
func (db *Database) refreshClassConsumers(name string, mro []*schema.Class, epoch, cg uint64) []*rule.Rule {
	db.mu.RLock()
	var rules []*rule.Rule
	var seen map[oid.OID]bool
	for _, k := range mro {
		for _, r := range db.classRules[k.Name] {
			if seen == nil {
				seen = make(map[oid.OID]bool, 4)
			}
			if !seen[r.ID()] {
				seen[r.ID()] = true
				rules = append(rules, r)
			}
		}
	}
	db.mu.RUnlock()

	db.ccMu.Lock()
	if db.classGen[name] == cg {
		db.classConsumers[name] = &classConsumerEntry{epoch: epoch, rules: rules}
	}
	db.ccMu.Unlock()
	return rules
}

// consumerCacheEntries reports the live entry count across both cache
// maps (the sentinel_consumer_cache_entries gauge).
func (db *Database) consumerCacheEntries() int {
	db.ccMu.RLock()
	n := len(db.objConsumers) + len(db.classConsumers)
	db.ccMu.RUnlock()
	return n
}
