package core

import (
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
)

// Consumer-resolution cache. The paper's performance argument (§3.5) is
// that per-object subscription makes propagation cheap: a raise should cost
// what the *consumers of this object* cost, not what the whole rule base
// costs. The naive implementation still re-derived the consumer set — walk
// the instance subscriptions, walk the MRO for class-level rules, dedup
// through a map — under the global catalog lock on every single raise.
//
// This cache memoizes that derivation. Validity is tracked by a single
// monotonically increasing subscription epoch (db.subEpoch): every mutation
// that can change any object's consumer set — Subscribe/Unsubscribe (rule
// and func consumers), rule create/delete/enable/disable, object deletion,
// schema evolution, recovery — bumps the epoch. A cache entry records the
// epoch it was computed at; a raise whose entry matches the current epoch
// returns the memoized slices with zero allocations and only shared locks
// on the two small cache maps. On mismatch the entry is recomputed lazily.
//
// Entries are immutable once published (refreshes install a new entry), so
// readers can use the slices without holding any lock; callers must not
// mutate them.

// consumerEntry memoizes one reactive object's full consumer set.
type consumerEntry struct {
	epoch uint64
	rules []*rule.Rule
	fns   []*FuncConsumer
}

// classConsumerEntry memoizes the class-level rules visible from one class
// (its own and every MRO ancestor's), so computing a per-object entry does
// not re-walk the MRO for each instance of a hot class.
type classConsumerEntry struct {
	epoch uint64
	rules []*rule.Rule
}

// bumpConsumerEpoch invalidates every cached consumer set. Cheap (one
// atomic add); staleness is resolved lazily at the next raise.
func (db *Database) bumpConsumerEpoch() {
	db.subEpoch.Add(1)
}

// dropConsumerEntry removes a deleted object's cache entry so the map does
// not accumulate tombstones.
func (db *Database) dropConsumerEntry(id oid.OID) {
	db.ccMu.Lock()
	delete(db.objConsumers, id)
	db.ccMu.Unlock()
}

// consumersOf returns the notifiable consumers of a reactive object:
// instance-level subscriptions (rules and Go callbacks, §3.5) plus
// class-level rules over the MRO (§4.7). The common path is a cache hit:
// epoch load + one shared-lock map read, no allocations. The returned
// slices are shared and must not be mutated.
func (db *Database) consumersOf(src *object.Object) ([]*rule.Rule, []*FuncConsumer) {
	epoch := db.subEpoch.Load()
	id := src.ID()
	db.ccMu.RLock()
	e := db.objConsumers[id]
	db.ccMu.RUnlock()
	if e != nil && e.epoch == epoch {
		return e.rules, e.fns
	}
	return db.refreshConsumers(src, epoch)
}

// refreshConsumers recomputes and publishes an object's consumer entry at
// the given epoch. If a mutation lands during the recomputation the stored
// epoch is already stale and the next raise recomputes again — the entry
// can under- or over-approximate only for raises concurrent with the
// mutation, which have no ordering guarantee anyway.
func (db *Database) refreshConsumers(src *object.Object, epoch uint64) ([]*rule.Rule, []*FuncConsumer) {
	db.met.ccMisses.Inc()
	classRules := db.classConsumersOf(src, epoch)

	id := src.ID()
	db.mu.RLock()
	instSubs := db.subs[id]
	fns := db.funcConsumers[id]

	var rules []*rule.Rule
	if len(instSubs) == 0 {
		// No instance subscriptions: the class-level slice is the whole
		// rule set, shared as-is (entries are immutable).
		rules = classRules
	} else {
		rules = make([]*rule.Rule, 0, len(instSubs)+len(classRules))
		var seen map[oid.OID]bool
		if len(instSubs) > 1 || len(classRules) > 0 {
			seen = make(map[oid.OID]bool, len(instSubs)+len(classRules))
		}
		for _, rid := range instSubs {
			if r := db.rules[rid]; r != nil && (seen == nil || !seen[rid]) {
				if seen != nil {
					seen[rid] = true
				}
				rules = append(rules, r)
			}
		}
		for _, r := range classRules {
			if !seen[r.ID()] {
				seen[r.ID()] = true
				rules = append(rules, r)
			}
		}
	}
	db.mu.RUnlock()

	db.ccMu.Lock()
	db.objConsumers[id] = &consumerEntry{epoch: epoch, rules: rules, fns: fns}
	db.ccMu.Unlock()
	return rules, fns
}

// classConsumersOf returns the deduplicated class-level rules for the
// object's class, memoized per class name at the given epoch.
func (db *Database) classConsumersOf(src *object.Object, epoch uint64) []*rule.Rule {
	cls := src.Class()
	db.ccMu.RLock()
	ce := db.classConsumers[cls.Name]
	db.ccMu.RUnlock()
	if ce != nil && ce.epoch == epoch {
		return ce.rules
	}

	db.mu.RLock()
	var rules []*rule.Rule
	var seen map[oid.OID]bool
	for _, k := range cls.MRO() {
		for _, r := range db.classRules[k.Name] {
			if seen == nil {
				seen = make(map[oid.OID]bool, 4)
			}
			if !seen[r.ID()] {
				seen[r.ID()] = true
				rules = append(rules, r)
			}
		}
	}
	db.mu.RUnlock()

	db.ccMu.Lock()
	db.classConsumers[cls.Name] = &classConsumerEntry{epoch: epoch, rules: rules}
	db.ccMu.Unlock()
	return rules
}
