package core_test

// Schema evolution: EvolveClass / `evolve class` replace a class definition
// and migrate live instances in place, transactionally.

import (
	"io"
	"strings"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

const gadgetV1 = `
	class Gadget reactive persistent {
		attr name string
		attr uses int
		event end method Use() { self.uses := self.uses + 1 }
	}
`

const gadgetV2 = `
	evolve class Gadget reactive persistent {
		attr name string
		attr uses int
		attr rating float = 5.0
		event end method Use() { self.uses := self.uses + 2 }
		method Describe() string { return self.name + "/" + str(self.uses) }
	}
`

func TestEvolveDSLAddsAttributesAndChangesBehaviour(t *testing.T) {
	var out strings.Builder
	db := core.MustOpen(core.Options{Output: &out})
	if err := db.Exec(gadgetV1 + `
		bind G new Gadget(name: "g", uses: 3)
		G!Use()
	`); err != nil {
		t.Fatal(err)
	}

	if err := db.Exec(gadgetV2); err != nil {
		t.Fatalf("evolve: %v", err)
	}

	// Existing values survived; the new attribute took its default.
	v, err := db.Eval(`G.uses`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Int(4)) {
		t.Fatalf("uses = %v, want 4 (pre-evolution value)", v)
	}
	r, err := db.Eval(`G.rating`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(value.Float(5)) {
		t.Fatalf("rating = %v, want default 5.0", r)
	}
	// New behaviour: Use now increments by 2; Describe exists.
	if err := db.Exec(`G!Use() print(G!Describe())`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "g/6") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestEvolvePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(persistentOpts(dir))
	if err := db.Exec(gadgetV1 + `bind G new Gadget(name: "g", uses: 1)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(gadgetV2); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`G.rating := 9.5`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(persistentOpts(dir))
	if err != nil {
		t.Fatalf("reopen after evolve: %v", err)
	}
	defer db2.Close()
	// The evolved definition replayed: the new attribute is live with its
	// persisted value, and the evolved method body runs.
	v, err := db2.Eval(`G.rating`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Float(9.5)) {
		t.Fatalf("rating after reopen = %v", v)
	}
	if err := db2.Exec(`G!Use()`); err != nil {
		t.Fatal(err)
	}
	uses, _ := db2.Eval(`G.uses`)
	if !uses.Equal(value.Int(3)) { // 1 + 2 (evolved increment)
		t.Fatalf("uses after reopen+Use = %v", uses)
	}
}

func TestEvolveRollsBackOnAbort(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := db.Exec(gadgetV1 + `bind G new Gadget(name: "g", uses: 7)`); err != nil {
		t.Fatal(err)
	}
	g, _ := db.Lookup("G")

	tx := db.Begin()
	newCls := schema.NewClass("Gadget")
	newCls.Classification = schema.ReactiveClass
	newCls.Persistent = true
	newCls.Attr("name", value.TypeString)
	// note: `uses` removed in this version
	if err := db.EvolveClass(tx, newCls, ""); err != nil {
		t.Fatal(err)
	}
	// Inside the transaction the new layout is live (uses is gone).
	if _, err := db.GetSys(tx, g, "uses"); err == nil {
		t.Fatal("removed attribute still visible inside evolving tx")
	}
	db.Abort(tx)

	// After abort the old definition and values are back.
	v, err := db.Eval(`G.uses`)
	if err != nil {
		t.Fatalf("uses gone after aborted evolve: %v", err)
	}
	if !v.Equal(value.Int(7)) {
		t.Fatalf("uses = %v", v)
	}
	if err := db.Exec(`G!Use()`); err != nil {
		t.Fatalf("old method gone after aborted evolve: %v", err)
	}
}

func TestEvolveGuards(t *testing.T) {
	db := orgDB(t) // Person <- Employee <- Manager
	// A class with subclasses cannot evolve.
	err := db.Atomically(func(tx *core.Tx) error {
		c := schema.NewClass("Employee")
		c.Attr("name", value.TypeString)
		return db.EvolveClass(tx, c, "")
	})
	if err == nil || !strings.Contains(err.Error(), "inherits") {
		t.Fatalf("evolving a class with subclasses: %v", err)
	}
	// Unknown class.
	err = db.Atomically(func(tx *core.Tx) error {
		return db.EvolveClass(tx, schema.NewClass("Ghost"), "")
	})
	if err == nil {
		t.Fatal("unknown class accepted")
	}
	// Index on a removed attribute blocks evolution.
	db2 := core.MustOpen(core.Options{Output: io.Discard})
	if err := db2.Exec(gadgetV1 + `index Gadget.uses`); err != nil {
		t.Fatal(err)
	}
	err = db2.Atomically(func(tx *core.Tx) error {
		c := schema.NewClass("Gadget")
		c.Classification = schema.ReactiveClass
		c.Attr("name", value.TypeString) // uses removed
		return db2.EvolveClass(tx, c, "")
	})
	if err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("evolve over live index: %v", err)
	}
}

func TestEvolveTypeChangeResetsIncompatibleValues(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := db.Exec(`
		class Box persistent { attr tag int }
		bind B new Box(tag: 42)
	`); err != nil {
		t.Fatal(err)
	}
	err := db.Atomically(func(tx *core.Tx) error {
		c := schema.NewClass("Box")
		c.Persistent = true
		c.AddAttribute(&schema.Attribute{Name: "tag", Type: value.TypeString, Visibility: schema.Public, Default: value.Str("none")})
		return db.EvolveClass(tx, c, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Eval(`B.tag`)
	if err != nil {
		t.Fatal(err)
	}
	// int 42 is not accepted by a string slot: reset to the default.
	if !v.Equal(value.Str("none")) {
		t.Fatalf("tag = %v, want default", v)
	}
}
