package core

import (
	"fmt"
	"strings"

	"sentinel/internal/event"
	"sentinel/internal/lang"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// RegisterClass registers a Go-defined class and instantiates its
// class-level rule declarations (paper §4.7: class-level rules are declared
// with the class and apply to every instance). Classes must be registered
// bottom-up (bases first).
func (db *Database) RegisterClass(c *schema.Class) error {
	if IsSystemClass(c.Name) {
		return fmt.Errorf("core: class name %s is reserved", c.Name)
	}
	if err := db.reg.Register(c); err != nil {
		return err
	}
	for _, d := range c.OwnRuleDecls() {
		spec := RuleSpec{
			Name:       d.Name,
			EventSrc:   d.Event,
			CondSrc:    d.Condition,
			ActionSrc:  d.Action,
			Coupling:   d.Coupling,
			Priority:   d.Priority,
			ClassLevel: c.Name,
		}
		db.pendingClassRules = append(db.pendingClassRules, spec)
	}
	if !db.ready {
		// During Options.Schema, before recovery: the declarations stay
		// queued so reopening a persistent database does not duplicate the
		// __Rule objects already in the catalog (flushPendingClassRules
		// skips names the load rebuilt).
		return nil
	}
	return db.flushPendingClassRules()
}

// flushPendingClassRules instantiates queued class-level rule declarations
// whose names are not already present (i.e. not rebuilt from the persistent
// catalog).
func (db *Database) flushPendingClassRules() error {
	pending := db.pendingClassRules
	db.pendingClassRules = nil
	for _, spec := range pending {
		if db.LookupRule(spec.Name) != nil {
			continue
		}
		err := db.Atomically(func(t *Tx) error {
			_, err := db.CreateRule(t, spec)
			return err
		})
		if err != nil {
			return fmt.Errorf("core: class %s rule %s: %w", spec.ClassLevel, spec.Name, err)
		}
	}
	return nil
}

// MustRegisterClass is RegisterClass that panics on error.
func (db *Database) MustRegisterClass(c *schema.Class) *schema.Class {
	if err := db.RegisterClass(c); err != nil {
		panic(err)
	}
	return c
}

// RegisterCondition registers a named Go condition function, referenceable
// from rule specs as "go:name" — the persistable analogue of the paper's
// pointer-to-member-function conditions.
func (db *Database) RegisterCondition(name string, fn rule.Condition) {
	db.fnMu.Lock()
	defer db.fnMu.Unlock()
	db.condFns[name] = fn
}

// RegisterAction registers a named Go action function ("go:name").
func (db *Database) RegisterAction(name string, fn rule.Action) {
	db.fnMu.Lock()
	defer db.fnMu.Unlock()
	db.actFns[name] = fn
}

// eventResolver resolves named events for the parser.
func (db *Database) eventResolver() lang.EventResolver {
	return func(name string) (*event.Expr, bool) {
		return db.LookupEvent(name)
	}
}

// ParseEvent parses an event expression against the named-event catalog —
// the programmatic form of `new Primitive("end Employee::SetSalary(...)")`
// (§4.6).
func (db *Database) ParseEvent(src string) (*event.Expr, error) {
	return lang.ParseEventExpr(src, db.eventResolver())
}

// DefineEvent names an event definition and materializes it as a
// first-class persistent __Event object (§4.6: "events are created,
// modified and deleted in the same manner as other objects").
func (db *Database) DefineEvent(t *Tx, name string, src string) (*event.Expr, error) {
	if _, dup := db.LookupEvent(name); dup {
		return nil, fmt.Errorf("core: event %q already defined", name)
	}
	e, err := db.ParseEvent(src)
	if err != nil {
		return nil, err
	}
	id, err := db.NewObject(t, SysEventClass, map[string]value.Value{
		"name":   value.Str(name),
		"source": value.Str(src),
	})
	if err != nil {
		return nil, err
	}
	e.SetID(id)
	db.mu.Lock()
	db.namedEvents[name] = e
	db.eventObjs[name] = id
	db.mu.Unlock()
	t.inner.OnUndo(func() {
		db.mu.Lock()
		delete(db.namedEvents, name)
		delete(db.eventObjs, name)
		db.mu.Unlock()
	})
	return e, nil
}

// DeleteEvent removes a named event definition. Rules already compiled
// against it keep their structure (they embedded the definition).
func (db *Database) DeleteEvent(t *Tx, name string) error {
	db.mu.RLock()
	id, ok := db.eventObjs[name]
	e := db.namedEvents[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown event %q", name)
	}
	if err := db.DeleteObject(t, id); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.namedEvents, name)
	delete(db.eventObjs, name)
	db.mu.Unlock()
	t.inner.OnUndo(func() {
		db.mu.Lock()
		db.namedEvents[name] = e
		db.eventObjs[name] = id
		db.mu.Unlock()
	})
	return nil
}

// RuleSpec describes a rule to create. Exactly one of Event/EventSrc must
// be set; Condition/Action may be Go funcs, "go:name" references, or
// SentinelQL source in CondSrc/ActionSrc.
type RuleSpec struct {
	Name string

	// Event is a prebuilt definition; EventSrc is SentinelQL source.
	Event    *event.Expr
	EventSrc string

	// Condition, or CondSrc ("go:name" / SentinelQL expression / "" for
	// always-true).
	Condition rule.Condition
	CondSrc   string

	// Action, or ActionSrc ("go:name" / SentinelQL statements).
	Action    rule.Action
	ActionSrc string

	// Coupling: "immediate" (default), "deferred", "detached".
	Coupling string
	Priority int
	// Context: parameter context ("paper" default, "recent", "chronicle",
	// "continuous", "cumulative").
	Context string

	// ClassLevel makes this a class-level rule of the named class,
	// applying to all its (current and future) instances including
	// subclass instances. Empty = instance-level: subscribe explicitly.
	ClassLevel string

	// TxScoped resets the rule's event-detection state at the end of every
	// transaction that fed it events.
	TxScoped bool
}

// CreateRule creates a rule as a first-class notifiable object: the runtime
// rule plus its persistent __Rule system object, inside the transaction
// (rule creation aborts with it).
func (db *Database) CreateRule(t *Tx, spec RuleSpec) (*rule.Rule, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("core: rule needs a name")
	}
	if db.LookupRule(spec.Name) != nil {
		return nil, fmt.Errorf("core: rule %q already exists", spec.Name)
	}

	ev := spec.Event
	if ev == nil {
		if spec.EventSrc == "" {
			return nil, fmt.Errorf("core: rule %s: no event", spec.Name)
		}
		var err error
		ev, err = db.ParseEvent(spec.EventSrc)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s event: %w", spec.Name, err)
		}
	} else if spec.EventSrc == "" {
		spec.EventSrc = ev.String()
	}

	coupling, err := rule.ParseCoupling(spec.Coupling)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s: %w", spec.Name, err)
	}
	pctx, err := event.ParseContext(spec.Context)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s: %w", spec.Name, err)
	}

	cond, condSrc, err := db.resolveCondition(spec)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s condition: %w", spec.Name, err)
	}
	act, actSrc, err := db.resolveAction(spec)
	if err != nil {
		return nil, fmt.Errorf("core: rule %s action: %w", spec.Name, err)
	}

	r := rule.New(spec.Name, ev, cond, act, coupling)
	r.Priority = spec.Priority
	r.Context = pctx
	r.CondSrc = condSrc
	r.ActSrc = actSrc
	r.CondClosure = spec.Condition != nil && spec.CondSrc == ""
	r.ActClosure = spec.Action != nil && spec.ActionSrc == ""
	r.ClassLevel = spec.ClassLevel
	r.TxScoped = spec.TxScoped
	if err := r.Compile(db.hierarchy()); err != nil {
		return nil, err
	}

	id, err := db.NewObject(t, SysRuleClass, map[string]value.Value{
		"name":       value.Str(spec.Name),
		"event":      value.Str(spec.EventSrc),
		"cond":       value.Str(condSrc),
		"action":     value.Str(actSrc),
		"coupling":   value.Int(int64(coupling)),
		"priority":   value.Int(int64(spec.Priority)),
		"enabled":    value.Bool(true),
		"classLevel": value.Str(spec.ClassLevel),
		"context":    value.Int(int64(pctx)),
		"txScoped":   value.Bool(spec.TxScoped),
	})
	if err != nil {
		return nil, err
	}
	r.SetID(id)
	ev.SetID(id) // anonymous per-rule events share the rule's identity

	db.mu.Lock()
	db.rules[id] = r
	db.rulesByName[spec.Name] = r
	if spec.ClassLevel != "" {
		db.classRules[spec.ClassLevel] = append(db.classRules[spec.ClassLevel], r)
	}
	db.mu.Unlock()
	// A class-level rule changes the consumer set of every instance in the
	// class's subtree; an instance-level rule reaches objects only through
	// Subscribe, which carries its own per-object invalidation.
	sc := scopeNone()
	if spec.ClassLevel != "" {
		sc = scopeClass(spec.ClassLevel)
	}
	db.invalidateConsumers(t, sc, func() {
		db.mu.Lock()
		delete(db.rules, id)
		delete(db.rulesByName, spec.Name)
		if spec.ClassLevel != "" {
			db.classRules[spec.ClassLevel] = removeRule(db.classRules[spec.ClassLevel], r)
		}
		db.mu.Unlock()
	})
	return r, nil
}

func removeRule(rs []*rule.Rule, r *rule.Rule) []*rule.Rule {
	out := rs[:0]
	for _, x := range rs {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

// DeleteRule removes a rule and its subscriptions — "rules can be added,
// deleted, and modified in the same manner as other objects" (§2).
func (db *Database) DeleteRule(t *Tx, name string) error {
	r := db.LookupRule(name)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", name)
	}
	id := r.ID()
	// Drop instance subscriptions pointing at it.
	db.mu.RLock()
	var subRecords []subKey
	for k := range db.subObjs {
		if k.consumer == id {
			subRecords = append(subRecords, k)
		}
	}
	db.mu.RUnlock()
	for _, k := range subRecords {
		if err := db.Unsubscribe(t, k.reactive, k.consumer); err != nil {
			return err
		}
	}
	if err := db.DeleteObject(t, id); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.rules, id)
	delete(db.rulesByName, name)
	if r.ClassLevel != "" {
		db.classRules[r.ClassLevel] = removeRule(db.classRules[r.ClassLevel], r)
	}
	db.mu.Unlock()
	sc := scopeNone() // instance subs were unsubscribed above, each with its own scope
	if r.ClassLevel != "" {
		sc = scopeClass(r.ClassLevel)
	}
	db.invalidateConsumers(t, sc, func() {
		db.mu.Lock()
		db.rules[id] = r
		db.rulesByName[name] = r
		if r.ClassLevel != "" {
			db.classRules[r.ClassLevel] = append(db.classRules[r.ClassLevel], r)
		}
		db.mu.Unlock()
	})
	return nil
}

// EnableRule enables a rule via its object's Enable method (raising the
// end __Rule::Enable event for any rule monitoring it).
func (db *Database) EnableRule(t *Tx, name string) error {
	r := db.LookupRule(name)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", name)
	}
	_, err := db.Send(t, r.ID(), "Enable")
	return err
}

// DisableRule disables a rule via its object's Disable method.
func (db *Database) DisableRule(t *Tx, name string) error {
	r := db.LookupRule(name)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", name)
	}
	_, err := db.Send(t, r.ID(), "Disable")
	return err
}

// resolveCondition turns a spec into an executable condition plus its
// persistent source form.
func (db *Database) resolveCondition(spec RuleSpec) (rule.Condition, string, error) {
	if spec.Condition != nil {
		return spec.Condition, spec.CondSrc, nil
	}
	src := strings.TrimSpace(spec.CondSrc)
	if src == "" {
		return rule.CondTrue, "", nil
	}
	if name, ok := strings.CutPrefix(src, "go:"); ok {
		db.fnMu.RLock()
		fn := db.condFns[name]
		db.fnMu.RUnlock()
		if fn == nil {
			return nil, "", fmt.Errorf("unregistered condition function %q", name)
		}
		return fn, src, nil
	}
	ast, err := lang.ParseCondition(src)
	if err != nil {
		return nil, "", err
	}
	return db.dslCondition(ast), src, nil
}

// resolveAction is the action counterpart.
func (db *Database) resolveAction(spec RuleSpec) (rule.Action, string, error) {
	if spec.Action != nil {
		return spec.Action, spec.ActionSrc, nil
	}
	src := strings.TrimSpace(spec.ActionSrc)
	if src == "" {
		return nil, "", nil
	}
	if name, ok := strings.CutPrefix(src, "go:"); ok {
		db.fnMu.RLock()
		fn := db.actFns[name]
		db.fnMu.RUnlock()
		if fn == nil {
			return nil, "", fmt.Errorf("unregistered action function %q", name)
		}
		return fn, src, nil
	}
	stmts, err := lang.ParseActions(src)
	if err != nil {
		return nil, "", err
	}
	return db.dslAction(stmts), src, nil
}

// detectionScope binds the parameters of every constituent occurrence into
// a fresh scope (later constituents shadow earlier ones), so a condition
// like `amount > 1000` reads the triggering call's actuals.
func detectionScope(det event.Detection) *lang.Scope {
	sc := lang.NewScope(nil)
	for _, occ := range det.Constituents {
		for i, n := range occ.ParamNames {
			if i < len(occ.Args) {
				sc.Define(n, occ.Args[i])
			}
		}
	}
	return sc
}

// dslCondition compiles a parsed condition into a rule.Condition. The
// ExecContext is always the runtime's *frame, which implements lang.Env.
func (db *Database) dslCondition(ast lang.Expr) rule.Condition {
	return func(ctx rule.ExecContext, det event.Detection) (bool, error) {
		fr, ok := ctx.(*frame)
		if !ok {
			return false, fmt.Errorf("core: DSL condition outside the runtime")
		}
		in := lang.NewInterp(fr, fr.Self(), detectionScope(det))
		return in.EvalCondition(ast)
	}
}

// dslAction compiles parsed statements into a rule.Action.
func (db *Database) dslAction(stmts []lang.Stmt) rule.Action {
	return func(ctx rule.ExecContext, det event.Detection) error {
		fr, ok := ctx.(*frame)
		if !ok {
			return fmt.Errorf("core: DSL action outside the runtime")
		}
		in := lang.NewInterp(fr, fr.Self(), detectionScope(det))
		return in.ExecStmts(stmts)
	}
}

// ---- subscriptions (§3.5, Fig. 4) ----

// Subscribe attaches a notifiable consumer (a rule, by OID) to a reactive
// object: after subscription the object's generated events propagate to the
// rule. The association is itself a first-class persistent object.
func (db *Database) Subscribe(t *Tx, reactive oid.OID, consumer oid.OID) error {
	o, err := db.lockObject(t, reactive, txn.Exclusive)
	if err != nil {
		return err
	}
	if !o.Class().Reactive() {
		return fmt.Errorf("core: class %s is passive; only reactive objects can be monitored", o.Class().Name)
	}
	db.mu.RLock()
	r := db.rules[consumer]
	_, dup := db.subObjs[subKey{reactive, consumer}]
	db.mu.RUnlock()
	if r == nil {
		return fmt.Errorf("core: consumer %s is not a rule object", consumer)
	}
	if dup {
		return nil // idempotent
	}
	subID, err := db.NewObject(t, SysSubClass, map[string]value.Value{
		"reactive": value.Ref(reactive),
		"consumer": value.Ref(consumer),
	})
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.subs[reactive] = append(db.subs[reactive], consumer)
	db.subObjs[subKey{reactive, consumer}] = subID
	db.mu.Unlock()
	db.invalidateConsumers(t, scopeObj(reactive), func() {
		db.mu.Lock()
		db.subs[reactive] = removeOID(db.subs[reactive], consumer)
		delete(db.subObjs, subKey{reactive, consumer})
		db.mu.Unlock()
	})
	return nil
}

// SubscribeRule is Subscribe by rule name.
func (db *Database) SubscribeRule(t *Tx, ruleName string, reactive oid.OID) error {
	r := db.LookupRule(ruleName)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", ruleName)
	}
	return db.Subscribe(t, reactive, r.ID())
}

// Unsubscribe reverses Subscribe.
func (db *Database) Unsubscribe(t *Tx, reactive oid.OID, consumer oid.OID) error {
	db.mu.RLock()
	subID, ok := db.subObjs[subKey{reactive, consumer}]
	db.mu.RUnlock()
	if !ok {
		return nil
	}
	if err := db.DeleteObject(t, subID); err != nil {
		return err
	}
	db.mu.Lock()
	db.subs[reactive] = removeOID(db.subs[reactive], consumer)
	delete(db.subObjs, subKey{reactive, consumer})
	db.mu.Unlock()
	db.invalidateConsumers(t, scopeObj(reactive), func() {
		db.mu.Lock()
		db.subs[reactive] = append(db.subs[reactive], consumer)
		db.subObjs[subKey{reactive, consumer}] = subID
		db.mu.Unlock()
	})
	return nil
}

// UnsubscribeRule is Unsubscribe by rule name.
func (db *Database) UnsubscribeRule(t *Tx, ruleName string, reactive oid.OID) error {
	r := db.LookupRule(ruleName)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", ruleName)
	}
	return db.Unsubscribe(t, reactive, r.ID())
}

// SubscribeFunc attaches a transient Go callback consumer to a reactive
// object (the bare Notifiable role; not persisted). It returns an
// unsubscribe function.
func (db *Database) SubscribeFunc(reactive oid.OID, name string, fn func(event.Occurrence)) (func(), error) {
	o := db.objectByID(reactive)
	if o == nil {
		return nil, fmt.Errorf("core: no object %s", reactive)
	}
	if !o.Class().Reactive() {
		return nil, fmt.Errorf("core: class %s is passive; only reactive objects can be monitored", o.Class().Name)
	}
	fc := &FuncConsumer{Name: name, Fn: fn}
	db.mu.Lock()
	db.funcConsumers[reactive] = append(db.funcConsumers[reactive], fc)
	db.mu.Unlock()
	db.applyConsumerInvalidation(scopeObj(reactive))
	return func() {
		db.mu.Lock()
		lst := db.funcConsumers[reactive]
		out := make([]*FuncConsumer, 0, len(lst))
		for _, x := range lst {
			if x != fc {
				out = append(out, x)
			}
		}
		db.funcConsumers[reactive] = out
		db.mu.Unlock()
		db.applyConsumerInvalidation(scopeObj(reactive))
	}, nil
}

// Subscribers returns the OIDs of rule consumers subscribed to a reactive
// object (instance-level only), sorted.
func (db *Database) Subscribers(reactive oid.OID) []oid.OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]oid.OID(nil), db.subs[reactive]...)
}

// ---- name bindings ----

// Bind names an object ("IBM", "Parker"), creating or updating the backing
// __Name object.
func (db *Database) Bind(t *Tx, name string, target oid.OID) error {
	if db.objectByID(target) == nil {
		return fmt.Errorf("core: no object %s to bind as %q", target, name)
	}
	db.mu.RLock()
	nameObj, exists := db.nameObjs[name]
	prev := db.names[name]
	db.mu.RUnlock()
	if exists {
		if err := db.setAttr(t, nameObj, "target", value.Ref(target), nil, true); err != nil {
			return err
		}
		db.mu.Lock()
		db.names[name] = target
		db.mu.Unlock()
		t.inner.OnUndo(func() {
			db.mu.Lock()
			db.names[name] = prev
			db.mu.Unlock()
		})
		return nil
	}
	id, err := db.NewObject(t, SysNameClass, map[string]value.Value{
		"name":   value.Str(name),
		"target": value.Ref(target),
	})
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.names[name] = target
	db.nameObjs[name] = id
	db.mu.Unlock()
	t.inner.OnUndo(func() {
		db.mu.Lock()
		delete(db.names, name)
		delete(db.nameObjs, name)
		db.mu.Unlock()
	})
	return nil
}

// Lookup resolves a bound name.
func (db *Database) Lookup(name string) (oid.OID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	return id, ok
}

// removeOID deletes the first occurrence of id from the slice, preserving
// order.
func removeOID(s []oid.OID, id oid.OID) []oid.OID {
	for i, x := range s {
		if x == id {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}
