package core_test

// Tests for paths the main suites reach only indirectly: bare-identifier
// self-attribute resolution in DSL rules, DSL raise/unsubscribe, public
// attribute writes, accessors, and dump of reference lists.

import (
	"io"
	"strings"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/value"
)

func TestDSLBareSelfAttributeResolution(t *testing.T) {
	var out strings.Builder
	db := core.MustOpen(core.Options{Output: &out})
	if err := db.Exec(`
		class Tank reactive persistent {
			attr level int
			attr capacity int
			event end method Fill(n int) {
				level := level + n      # bare names: self attributes
				if level > capacity {
					level := capacity
				}
			}
		}
		rule Full for Tank on end Tank::Fill(int n)
			if level == capacity      # bare names in a rule condition
			then print("tank full at", capacity)
		bind T new Tank(capacity: 10)
		T!Fill(4)
		T!Fill(9)
	`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tank full at 10") {
		t.Fatalf("output = %q", out.String())
	}
	v, _ := db.Eval(`T.level`)
	if !v.Equal(value.Int(10)) {
		t.Fatalf("level = %v", v)
	}
}

func TestDSLRaiseAndUnsubscribeInActions(t *testing.T) {
	var out strings.Builder
	db := core.MustOpen(core.Options{Output: &out})
	if err := db.Exec(`
		class Door reactive persistent {
			attr opens int
			event end method Open() {
				self.opens := self.opens + 1
				if self.opens >= 3 {
					raise WornOut(self.opens)
				}
			}
		}
		rule Creak on end Door::Open()
			then print("creak", self.opens)
		rule Maintenance for Door on event Door::WornOut
			then {
				print("replacing hinges after", self.opens, "opens")
				unsubscribe Creak from self
			}
		bind D new Door()
		subscribe Creak to D
		D!Open() D!Open() D!Open()
		D!Open()
	`); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Creak fires on the first two opens only: the third open raises the
	// explicit WornOut INSIDE the method body — before the eom event — so
	// Maintenance unsubscribes Creak before Creak's own trigger would fire
	// (§3.1 fn. 3: explicit events are raised within the body).
	if got := strings.Count(text, "creak"); got != 2 {
		t.Fatalf("creaks = %d, want 2\n%s", got, text)
	}
	if !strings.Contains(text, "replacing hinges after 3") {
		t.Fatalf("maintenance missing:\n%s", text)
	}
}

func TestSubscribeRuleByName(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 1)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{
			Name: "byname", EventSrc: "end Employee::SetSalary(float amount)", ActionSrc: `print("")`,
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.SubscribeRule(tx, "byname", fred) }); err != nil {
		t.Fatal(err)
	}
	if len(db.Subscribers(fred)) != 1 {
		t.Fatal("SubscribeRule failed")
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.UnsubscribeRule(tx, "byname", fred) }); err != nil {
		t.Fatal(err)
	}
	if len(db.Subscribers(fred)) != 0 {
		t.Fatal("UnsubscribeRule failed")
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.SubscribeRule(tx, "ghost", fred) }); err == nil {
		t.Fatal("unknown rule accepted")
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.UnsubscribeRule(tx, "ghost", fred) }); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestPublicSetAndAccessors(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 1)
	if err := db.Atomically(func(tx *core.Tx) error {
		// Public write path (Database.Set).
		if err := db.Set(tx, fred, "name", value.Str("freddy")); err != nil {
			return err
		}
		// Protected attribute refused on the public path.
		if err := db.Set(tx, fred, "salary", value.Float(2)); err == nil {
			t.Error("public Set wrote a protected attribute")
		}
		desc := db.DescribeObject(tx, fred)
		if !strings.Contains(desc, "freddy") {
			t.Errorf("DescribeObject = %q", desc)
		}
		if tx.ID() == 0 {
			t.Error("tx has zero id")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if db.Persistent() {
		t.Error("in-memory database claims persistence")
	}
	if db.Dir() != "" {
		t.Error("in-memory database has a directory")
	}
	// The logical clock advances exactly with event generation.
	before := db.Now()
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(5))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if db.Now() != before+1 {
		t.Errorf("clock moved %d ticks for one event", db.Now()-before)
	}
	ae := &core.AbortError{Reason: "r"}
	if ae.Error() != "transaction aborted: r" {
		t.Errorf("AbortError.Error = %q", ae.Error())
	}
}

func TestDumpListOfRefs(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := db.RestoreDSL(`
		class Team persistent {
			attr name string
			attr members list<ref>
		}
		class Player persistent { attr name string }
		let p1 := new Player(name: "ann")
		let p2 := new Player(name: "bob")
		let team := new Team(name: "reds")
		team.members := [p1, p2]
		bind Reds team
	`); err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	if err := db.DumpDSL(&dump); err != nil {
		t.Fatal(err)
	}
	db2 := core.MustOpen(core.Options{Output: io.Discard})
	if err := db2.RestoreDSL(dump.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, dump.String())
	}
	reds, ok := db2.Lookup("Reds")
	if !ok {
		t.Fatal("binding lost")
	}
	if err := db2.Atomically(func(tx *core.Tx) error {
		v, err := db2.Get(tx, reds, "members")
		if err != nil {
			return err
		}
		lst, _ := v.AsList()
		if len(lst) != 2 {
			t.Fatalf("members = %v", v)
		}
		for _, m := range lst {
			ref, _ := m.AsRef()
			if !db2.Exists(ref) {
				t.Fatalf("member ref %v dangling after restore", m)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db2.MustBeConsistent()
}

func TestEvolveParseErrors(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	// `evolve` must be followed by a class definition.
	if err := db.Exec(`evolve rule X on end A::a then abort`); err == nil {
		t.Fatal("evolve without class accepted")
	}
	// Evolving an unknown class fails at execution time.
	if err := db.Exec(`evolve class Nothing { attr x int }`); err == nil {
		t.Fatal("evolve of unknown class accepted")
	}
}

func TestInMemoryCheckpointIsNoop(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("in-memory checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("in-memory close: %v", err)
	}
	if db.WALSize() != 0 {
		t.Fatal("in-memory database has a WAL")
	}
}

func TestExecParseErrorsAbortCleanly(t *testing.T) {
	db := orgDB(t)
	before := db.Stats().Objects.Total
	// A script that fails mid-way rolls its earlier statements back.
	err := db.Exec(`
		let e := new Employee(name: "temp")
		this is not valid sentinelql ~~~
	`)
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if got := db.Stats().Objects.Total; got != before {
		t.Fatalf("objects leaked by failed script: %d -> %d", before, got)
	}
}
