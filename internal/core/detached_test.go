package core

// Tests for the conflict-aware detached executor pool: option validation,
// the typed ErrDetachedStopped contract after Close, chained dispatch under
// -race across every supported pool size, per-object ordering while Close
// races a committer, and the pooled commit-scratch allocation budget. These
// live in package core because they pin unexported internals (the pool,
// writeCommit's scratch) alongside the public Options surface.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

func TestDetachedWorkersValidate(t *testing.T) {
	if err := (Options{AsyncDetached: true, DetachedWorkers: -1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "DetachedWorkers") {
		t.Fatalf("negative DetachedWorkers: err = %v, want DetachedWorkers error", err)
	}
	if err := (Options{DetachedWorkers: 2}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "AsyncDetached") {
		t.Fatalf("DetachedWorkers without AsyncDetached: err = %v, want coupling error", err)
	}
	if err := (Options{AsyncDetached: true, DetachedWorkers: 4}).Validate(); err != nil {
		t.Fatalf("valid pool config rejected: %v", err)
	}
	// The default pool size is GOMAXPROCS, resolved before validation.
	o := Options{AsyncDetached: true}.withDefaults()
	if o.DetachedWorkers != runtime.GOMAXPROCS(0) {
		t.Fatalf("default DetachedWorkers = %d, want GOMAXPROCS = %d",
			o.DetachedWorkers, runtime.GOMAXPROCS(0))
	}
}

// TestDetachedStoppedTypedError pins the post-Close contract: a commit that
// schedules detached firings after the pool has stopped reports
// ErrDetachedStopped (the write itself is durable) instead of silently
// running the firings synchronously as the pre-pool implementation did.
func TestDetachedStoppedTypedError(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, AsyncDetached: true})
	ids := hotPathClass(t, db, 1)
	var ran atomic.Int64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "d", EventSrc: "end P::Set(float v)", Coupling: "detached",
			Action: func(rule.ExecContext, event.Detection) error {
				ran.Add(1)
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, ids[0], "Set", value.Float(1))
		return err
	})
	if !errors.Is(err, ErrDetachedStopped) {
		t.Fatalf("post-Close detached commit: err = %v, want ErrDetachedStopped", err)
	}
	// The rejected firing must not have run, and the write must be durable.
	if got := ran.Load(); got != 0 {
		t.Fatalf("detached action ran %d times after Close", got)
	}
	var x value.Value
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		x, err = db.Get(tx, ids[0], "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if f, ok := x.AsFloat(); !ok || f != 1 {
		t.Fatalf("post-Close write not durable: x = %v", x)
	}
}

// TestChainedDetachedDispatch stresses worker-to-worker dispatch: a
// detached action whose own transaction schedules another detached firing,
// at every supported pool size, with several committers racing. Chained
// enqueues come from pool workers, which bypass backpressure — under -race
// and with a queue sized at 64·workers this validates the no-deadlock
// argument in detached.go for each pool shape.
func TestChainedDetachedDispatch(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := MustOpen(Options{
				Output: io.Discard, AsyncDetached: true, DetachedWorkers: workers,
			})
			defer db.Close()
			const pairs = 4
			ids := hotPathClass(t, db, 2*pairs)
			heads, tails := ids[:pairs], ids[pairs:]

			var chained atomic.Int64
			if err := db.Atomically(func(tx *Tx) error {
				first, err := db.CreateRule(tx, RuleSpec{
					Name: "first", EventSrc: "end P::Set(float v)", Coupling: "detached",
					Action: func(ctx rule.ExecContext, det event.Detection) error {
						// Forward to the partner object: fires "second" in
						// this detached transaction.
						for i, h := range heads {
							if det.Last().Source == h {
								_, err := ctx.Send(tails[i], "Set", det.Last().Args[0])
								return err
							}
						}
						return nil
					},
				})
				if err != nil {
					return err
				}
				for _, h := range heads {
					if err := db.Subscribe(tx, h, first.ID()); err != nil {
						return err
					}
				}
				second, err := db.CreateRule(tx, RuleSpec{
					Name: "second", EventSrc: "end P::Set(float v)", Coupling: "detached",
					Action: func(rule.ExecContext, event.Detection) error {
						chained.Add(1)
						return nil
					},
				})
				if err != nil {
					return err
				}
				for _, tl := range tails {
					if err := db.Subscribe(tx, tl, second.ID()); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			const perG, gs = 40, 4
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if err := db.Atomically(func(tx *Tx) error {
							_, err := db.Send(tx, heads[(g+i)%pairs], "Set", value.Float(float64(i)))
							return err
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			db.WaitIdle()
			if got := chained.Load(); got != perG*gs {
				t.Fatalf("chained detached rule fired %d times, want %d", got, perG*gs)
			}
			s := db.Stats().Detached
			if s.Workers != workers {
				t.Fatalf("Stats().Detached.Workers = %d, want %d", s.Workers, workers)
			}
			if s.Executed != 2*perG*gs {
				t.Fatalf("Stats().Detached.Executed = %d, want %d", s.Executed, 2*perG*gs)
			}
			if s.Queued != 0 || s.InFlight != 0 {
				t.Fatalf("pool not idle after WaitIdle: queued=%d inflight=%d", s.Queued, s.InFlight)
			}
		})
	}
}

// TestCloseWhileDrainingOrdering races Close against a committer sending an
// increasing sequence to one object, and verifies the per-object ordering
// guarantee survives the shutdown drain: the detached actions observed must
// be exactly the accepted commits' values, in commit order, with nothing
// dropped, duplicated, or reordered.
func TestCloseWhileDrainingOrdering(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, AsyncDetached: true, DetachedWorkers: 4})
	ids := hotPathClass(t, db, 1)
	var mu sync.Mutex
	var seen []float64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "order", EventSrc: "end P::Set(float v)", Coupling: "detached",
			Action: func(_ rule.ExecContext, det event.Detection) error {
				mu.Lock()
				seen = append(seen, det.Last().Args[0].MustFloat())
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	accepted := make(chan int, 1)
	go func() {
		n := 0
		for i := 1; ; i++ {
			err := db.Atomically(func(tx *Tx) error {
				_, err := db.Send(tx, ids[0], "Set", value.Float(float64(i)))
				return err
			})
			if errors.Is(err, ErrDetachedStopped) {
				break
			}
			if err != nil {
				t.Error(err)
				break
			}
			n++
		}
		accepted <- n
	}()

	// Let a backlog build, then close under the committer. Close must drain
	// every accepted firing before returning.
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= 10 {
			break
		}
		runtime.Gosched()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	n := <-accepted

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("observed %d firings for %d accepted commits", len(seen), n)
	}
	for i, v := range seen {
		if v != float64(i+1) {
			t.Fatalf("firing %d observed value %v, want %d (per-object order violated)", i, v, i+1)
		}
	}
}

// TestCommitScratchBudget pins the pooled writeCommit scratch: the
// allocation cost of committing extra dirty records must stay within a
// small per-record budget. Before pooling, each record cost a fresh encode
// buffer plus a WAL payload slice on top of the locking bookkeeping; the
// budget below fails if either regresses.
func TestCommitScratchBudget(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Output: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 40
	ids := hotPathClass(t, db, n)
	v := value.Float(7)
	commit := func(k int) func() {
		return func() {
			if err := db.Atomically(func(tx *Tx) error {
				for _, id := range ids[:k] {
					if err := db.Set(tx, id, "x", v); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm pools (scratch, WAL frame buffer, lock tables) at full width.
	commit(n)()
	small := testing.AllocsPerRun(20, commit(8))
	large := testing.AllocsPerRun(20, commit(n))
	// Locking and undo bookkeeping legitimately cost ~6.5 allocations per
	// record; the unpooled WAL path added at least two more (a fresh encode
	// buffer and a payload slice per record), so a budget of 8 passes with
	// the pooled scratch and fails if either pool is removed. The framing
	// path itself is pinned at exactly zero in internal/wal.
	perRecord := (large - small) / (n - 8)
	if perRecord > 8 {
		t.Fatalf("commit allocations grew %.2f per record (small=%.0f large=%.0f); pooled budget is 8",
			perRecord, small, large)
	}
}
