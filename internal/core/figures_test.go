package core_test

// Tests named after the paper's figures: each pins the behaviour the figure
// describes. See DESIGN.md §3 for the figure → artifact index.

import (
	"io"
	"strings"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

func quiet() core.Options { return core.Options{Output: io.Discard} }

// orgDB opens an in-memory database with the Person/Employee/Manager
// schema.
func orgDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.MustOpen(quiet())
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func mkEmployee(t *testing.T, db *core.Database, name string, salary float64) oid.OID {
	t.Helper()
	var id oid.OID
	err := db.Atomically(func(tx *core.Tx) error {
		var err error
		id, err = db.NewObject(tx, "Employee", map[string]value.Value{
			"name": value.Str(name), "salary": value.Float(salary),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestFigure1ReactiveClass: a reactive class has both the conventional
// (synchronous) interface and the event interface; passive classes have
// only the former and never propagate anything.
func TestFigure1ReactiveClass(t *testing.T) {
	db := core.MustOpen(quiet())
	passive := schema.NewClass("PassiveBox")
	passive.Attr("v", value.TypeInt)
	passive.AddMethod(&schema.Method{
		Name: "Set", Params: []schema.Param{{Name: "x", Type: value.TypeInt}},
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("v", ctx.Arg(0))
		},
	})
	db.MustRegisterClass(passive)

	reactive := schema.NewClass("ReactiveBox")
	reactive.Classification = schema.ReactiveClass
	reactive.Attr("v", value.TypeInt)
	reactive.AddMethod(&schema.Method{
		Name: "Set", Params: []schema.Param{{Name: "x", Type: value.TypeInt}},
		Visibility: schema.Public, EventGen: schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("v", ctx.Arg(0))
		},
	})
	db.MustRegisterClass(reactive)

	var pid, rid oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		if pid, err = db.NewObject(tx, "PassiveBox", nil); err != nil {
			return err
		}
		rid, err = db.NewObject(tx, "ReactiveBox", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Passive objects cannot be monitored at all (§3.2).
	if _, err := db.SubscribeFunc(pid, "x", func(event.Occurrence) {}); err == nil {
		t.Fatal("subscribing to a passive object should fail")
	}

	var got []event.Occurrence
	unsub, err := db.SubscribeFunc(rid, "probe", func(o event.Occurrence) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	before := db.Stats().Events.Raised
	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, pid, "Set", value.Int(1)); err != nil {
			return err
		}
		_, err := db.Send(tx, rid, "Set", value.Int(2))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Events.Raised != before+1 {
		t.Fatalf("events raised = %d, want exactly 1 (the reactive send)", db.Stats().Events.Raised-before)
	}
	if len(got) != 1 || got[0].Method != "Set" || got[0].When != event.End {
		t.Fatalf("occurrences = %v", got)
	}
	// The synchronous interface still returned results through both.
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.Get(tx, rid, "v")
		if err != nil {
			return err
		}
		if !v.Equal(value.Int(2)) {
			t.Errorf("reactive state = %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2ProducerConsumer: two reactive producers of different classes,
// one rule consuming the conjunction through its local detector.
func TestFigure2ProducerConsumer(t *testing.T) {
	db := core.MustOpen(quiet())
	if err := bench.InstallMarketSchema(db); err != nil {
		t.Fatal(err)
	}
	m, err := bench.BuildMarket(db, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var detected []event.Detection
	err = db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name: "R1",
			Event: event.And(
				event.Primitive(event.End, "Stock", "SetPrice"),
				event.Primitive(event.End, "FinancialInfo", "SetValue"),
			),
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				detected = append(detected, det)
				return nil
			},
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, m.Stocks[0], r.ID()); err != nil {
			return err
		}
		return db.Subscribe(tx, m.DowJones, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, m.Stocks[0], "SetPrice", value.Float(75)); err != nil {
			return err
		}
		_, err := db.Send(tx, m.DowJones, "SetValue", value.Float(100))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(detected) != 1 {
		t.Fatalf("detections = %d", len(detected))
	}
	det := detected[0]
	if len(det.Constituents) != 2 {
		t.Fatalf("constituents = %d", len(det.Constituents))
	}
	if _, ok := det.ParamsOf(m.Stocks[0]); !ok {
		t.Error("e1 constituent missing")
	}
	if _, ok := det.ParamsOf(m.DowJones); !ok {
		t.Error("e2 constituent missing")
	}
}

// TestFigure3Hierarchy: the system classes exist, rules and events are
// instances with OIDs and persistence, __Rule is reactive AND notifiable
// (it consumes events and generates Enable/Disable events).
func TestFigure3Hierarchy(t *testing.T) {
	db := orgDB(t)
	for _, name := range []string{core.SysRuleClass, core.SysEventClass, core.SysSubClass, core.SysNameClass, core.SysClassDefClass} {
		c := db.Registry().Lookup(name)
		if c == nil {
			t.Fatalf("system class %s missing", name)
		}
		if !c.Persistent {
			t.Errorf("system class %s not persistent (zg-pos role)", name)
		}
	}
	rc := db.Registry().Lookup(core.SysRuleClass)
	if !rc.Reactive() || !rc.Notifiable() {
		t.Error("__Rule must be reactive+notifiable")
	}
	// A created rule is an object: it has an OID, a class, readable
	// attributes.
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{Name: "R", EventSrc: "end Employee::SetSalary(float a)"})
		if err != nil {
			return err
		}
		if r.ID().IsNil() {
			t.Error("rule has no OID")
		}
		if db.ClassOf(r.ID()).Name != core.SysRuleClass {
			t.Error("rule object has wrong class")
		}
		v, err := db.Get(tx, r.ID(), "name")
		if err != nil {
			return err
		}
		if !v.Equal(value.Str("R")) {
			t.Errorf("rule name attribute = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFigure4ReactiveAPI: Subscribe/Unsubscribe manage the consumers set;
// the m:n relationship holds (one reactive → many consumers, one consumer →
// many reactive objects).
func TestFigure4ReactiveAPI(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)

	mkRule := func(name string) *rule.Rule {
		var r *rule.Rule
		err := db.Atomically(func(tx *core.Tx) error {
			var err error
			r, err = db.CreateRule(tx, core.RuleSpec{
				Name:      name,
				EventSrc:  "end Employee::SetSalary(float amount)",
				Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
			})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := mkRule("r1"), mkRule("r2")

	subscribe := func(obj oid.OID, r *rule.Rule) {
		if err := db.Atomically(func(tx *core.Tx) error { return db.Subscribe(tx, obj, r.ID()) }); err != nil {
			t.Fatal(err)
		}
	}
	subscribe(fred, r1)
	subscribe(fred, r2) // 1 reactive → 2 consumers
	subscribe(mary, r1) // 1 consumer → 2 reactive

	if got := db.Subscribers(fred); len(got) != 2 {
		t.Fatalf("fred subscribers = %v", got)
	}
	if got := db.Subscribers(mary); len(got) != 1 {
		t.Fatalf("mary subscribers = %v", got)
	}

	// Notify reaches all subscribed consumers with the paper's message
	// tuple.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(500))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if recv, _, _ := r1.Stats(); recv != 1 {
		t.Errorf("r1 received %d", recv)
	}
	if recv, _, _ := r2.Stats(); recv != 1 {
		t.Errorf("r2 received %d", recv)
	}

	// Unsubscribe reverses Subscribe.
	if err := db.Atomically(func(tx *core.Tx) error { return db.Unsubscribe(tx, fred, r2.ID()) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(600))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if recv, _, _ := r2.Stats(); recv != 1 {
		t.Errorf("r2 received %d after unsubscribe, want still 1", recv)
	}
	if recv, _, _ := r1.Stats(); recv != 2 {
		t.Errorf("r1 received %d, want 2", recv)
	}

	// Subscribing to a nonexistent consumer fails.
	err := db.Atomically(func(tx *core.Tx) error { return db.Subscribe(tx, fred, oid.OID(99999)) })
	if err == nil {
		t.Fatal("subscribe to missing consumer accepted")
	}
}

// TestFigure5EventHierarchy: one event definition shared by two rules keeps
// independent detection state (the "local event detector"), and the
// definition is itself a first-class named object.
func TestFigure5EventHierarchy(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)

	err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.DefineEvent(tx, "Raise", "end Employee::SetSalary(float amount)"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.LookupEvent("Raise"); !ok {
		t.Fatal("named event not in catalog")
	}

	var r1Fired, r2Fired int
	err = db.Atomically(func(tx *core.Tx) error {
		r1, err := db.CreateRule(tx, core.RuleSpec{
			Name: "fredWatch", EventSrc: "Raise",
			Action: func(rule.ExecContext, event.Detection) error { r1Fired++; return nil },
		})
		if err != nil {
			return err
		}
		r2, err := db.CreateRule(tx, core.RuleSpec{
			Name: "maryWatch", EventSrc: "Raise",
			Action: func(rule.ExecContext, event.Detection) error { r2Fired++; return nil },
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, r1.ID()); err != nil {
			return err
		}
		return db.Subscribe(tx, mary, r2.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if r1Fired != 1 || r2Fired != 0 {
		t.Fatalf("fired = %d/%d: shared event definition leaked state across rules", r1Fired, r2Fired)
	}
}

// TestFigure6Conjunction: the Conjunction object's flag semantics.
func TestFigure6Conjunction(t *testing.T) {
	db := orgDB(t)
	if err := bench.InstallMarketSchema(db); err != nil {
		t.Fatal(err)
	}
	fred := mkEmployee(t, db, "fred", 100)
	var stock oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		stock, err = db.NewObject(tx, "Stock", map[string]value.Value{"symbol": value.Str("S")})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	fired := 0
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "conj",
			EventSrc: "end Employee::SetSalary(float amount) and end Stock::SetPrice(float price)",
			Action:   func(rule.ExecContext, event.Detection) error { fired++; return nil },
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, r.ID()); err != nil {
			return err
		}
		return db.Subscribe(tx, stock, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(obj oid.OID, method string, v float64) {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, obj, method, value.Float(v))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(fred, "SetSalary", 1) // one side only
	if fired != 0 {
		t.Fatal("conjunction fired on one operand")
	}
	send(stock, "SetPrice", 2) // both: fire, regardless of order
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	send(stock, "SetPrice", 3) // flags were consumed
	if fired != 1 {
		t.Fatalf("fired = %d after consume", fired)
	}
	send(fred, "SetSalary", 4) // completes again
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}

// TestFigure7RuleClass: rule operations Enable/Disable work through the
// rule object's methods and are themselves event generators (rules about
// rules).
func TestFigure7RuleClass(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)

	fired := 0
	var watchID oid.OID
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "watch",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action:   func(rule.ExecContext, event.Detection) error { fired++; return nil },
		})
		if err != nil {
			return err
		}
		watchID = r.ID()
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}

	// A meta-rule monitoring the watch rule's Disable events (§1: "rules on
	// any set of objects, including rules themselves").
	metaFired := 0
	err = db.Atomically(func(tx *core.Tx) error {
		meta, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "meta",
			EventSrc: "end __Rule::Disable()",
			Action:   func(rule.ExecContext, event.Detection) error { metaFired++; return nil },
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, watchID, meta.ID())
	})
	if err != nil {
		t.Fatal(err)
	}

	send := func(v float64) {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, fred, "SetSalary", value.Float(v))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.DisableRule(tx, "watch") }); err != nil {
		t.Fatal(err)
	}
	if metaFired != 1 {
		t.Fatalf("meta rule fired %d times on Disable", metaFired)
	}
	send(2)
	if fired != 1 {
		t.Fatal("disabled rule fired")
	}
	// The persistent attribute tracks the runtime state.
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.Get(tx, watchID, "enabled")
		if err != nil {
			return err
		}
		if v.Truthy() {
			t.Error("enabled attribute still true")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error { return db.EnableRule(tx, "watch") }); err != nil {
		t.Fatal(err)
	}
	send(3)
	if fired != 2 {
		t.Fatalf("re-enabled rule: fired = %d", fired)
	}
}

// TestFigure8EventInterface: only methods declared in the event interface
// generate events, at the declared moments; GetName-style methods cause no
// rule evaluation.
func TestFigure8EventInterface(t *testing.T) {
	db := core.MustOpen(quiet())
	cls := schema.NewClass("Emp8")
	cls.Classification = schema.ReactiveClass
	cls.Attr("age", value.TypeInt)
	cls.Attr("name", value.TypeString)
	body := func(ctx schema.CallContext) (value.Value, error) { return value.Int(1), nil }
	cls.AddMethod(&schema.Method{Name: "ChangeSalary", Visibility: schema.Private, EventGen: schema.GenBegin, Body: body,
		Params: []schema.Param{{Name: "x", Type: value.TypeFloat}}})
	cls.AddMethod(&schema.Method{Name: "GetSalary", Visibility: schema.Public, EventGen: schema.GenEnd, Body: body})
	cls.AddMethod(&schema.Method{Name: "GetAge", Visibility: schema.Public, EventGen: schema.GenBoth, Body: body})
	cls.AddMethod(&schema.Method{Name: "GetName", Visibility: schema.Public, Body: body})
	db.MustRegisterClass(cls)

	var id oid.OID
	if err := db.Atomically(func(tx *core.Tx) error {
		var err error
		id, err = db.NewObject(tx, "Emp8", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var moments []string
	unsub, _ := db.SubscribeFunc(id, "probe", func(o event.Occurrence) {
		moments = append(moments, o.When.String()+" "+o.Method)
	})
	defer unsub()

	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, id, "GetSalary"); err != nil {
			return err
		}
		if _, err := db.Send(tx, id, "GetAge"); err != nil {
			return err
		}
		_, err := db.Send(tx, id, "GetName")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"end GetSalary", "begin GetAge", "end GetAge"}
	if strings.Join(moments, ",") != strings.Join(want, ",") {
		t.Fatalf("moments = %v, want %v", moments, want)
	}
	// The event interface introspection matches Fig. 8.
	ifc := db.Registry().Lookup("Emp8").EventInterface()
	if len(ifc) != 3 {
		t.Fatalf("event interface size = %d", len(ifc))
	}
}

// TestFigure9ClassLevelRule: the Marriage rule — declared with the class,
// applicable to all instances (current and future), abort action.
func TestFigure9ClassLevelRule(t *testing.T) {
	db := core.MustOpen(quiet())
	person := schema.NewClass("Person9")
	person.Classification = schema.ReactiveClass
	person.Attr("sex", value.TypeString)
	person.AddAttribute(&schema.Attribute{Name: "spouse", Type: value.TypeRef("Person9"), Visibility: schema.Public})
	person.AddMethod(&schema.Method{
		Name: "Marry", Params: []schema.Param{{Name: "spouse", Type: value.TypeRef("Person9")}},
		Visibility: schema.Public, EventGen: schema.GenBegin,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("spouse", ctx.Arg(0))
		},
	})
	person.AddRule(schema.RuleDecl{
		Name:      "Marriage",
		Event:     "begin Person9::Marry(Person9 spouse)",
		Condition: "self.sex == spouse.sex",
		Action:    `abort "same sex"`,
		Coupling:  "immediate",
	})
	db.MustRegisterClass(person)

	mk := func(sex string) oid.OID {
		var id oid.OID
		if err := db.Atomically(func(tx *core.Tx) error {
			var err error
			id, err = db.NewObject(tx, "Person9", map[string]value.Value{"sex": value.Str(sex)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return id
	}
	alice, bob, carol := mk("f"), mk("m"), mk("f")

	// Valid marriage proceeds.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, alice, "Marry", value.Ref(bob))
		return err
	}); err != nil {
		t.Fatalf("valid marriage aborted: %v", err)
	}
	// Violating marriage aborts — with NO subscription ever made: the rule
	// is class-level and applies to every instance automatically.
	err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, alice, "Marry", value.Ref(carol))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("expected abort, got %v", err)
	}
	// The bom coupling means the state never changed.
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.Get(tx, alice, "spouse")
		if err != nil {
			return err
		}
		if r, _ := v.AsRef(); r != bob {
			t.Errorf("spouse = %v, want bob", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Future instances are covered too.
	dave := mk("m")
	err = db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, dave, "Marry", value.Ref(bob))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("class-level rule missed a future instance: %v", err)
	}
}

// TestFigure10InstanceLevelRule: IncomeLevel — one rule monitoring two
// specific instances of DIFFERENT classes via a disjunction event and
// runtime subscriptions; other instances are unaffected.
func TestFigure10InstanceLevelRule(t *testing.T) {
	db := orgDB(t)
	var fred, mike, bystander oid.OID
	err := db.Atomically(func(tx *core.Tx) error {
		var err error
		if mike, err = db.NewObject(tx, "Manager", map[string]value.Value{"name": value.Str("Mike"), "salary": value.Float(2000)}); err != nil {
			return err
		}
		if fred, err = db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("Fred"), "salary": value.Float(1000), "mgr": value.Ref(mike)}); err != nil {
			return err
		}
		bystander, err = db.NewObject(tx, "Employee", map[string]value.Value{"name": value.Str("Bob"), "salary": value.Float(500)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rule: when either changes income, make them equal (paper's
	// MakeEqual).
	err = db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "IncomeLevel",
			EventSrc: "end Employee::ChangeIncome(float amount) or end Manager::ChangeIncome(float amount)",
			Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				f, err := ctx.GetAttr(fred, "salary")
				if err != nil {
					return false, err
				}
				m, err := ctx.GetAttr(mike, "salary")
				if err != nil {
					return false, err
				}
				return !f.Equal(m), nil
			},
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				src := det.Last().Source
				newSal, _ := det.Last().Args[0].Numeric()
				other := fred
				if src == fred {
					other = mike
				}
				return ctx.SetAttr(other, "salary", value.Float(newSal))
			},
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, r.ID()); err != nil {
			return err
		}
		return db.Subscribe(tx, mike, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fred's raise propagates to Mike.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "ChangeIncome", value.Float(3000))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	check := func(id oid.OID, want float64) {
		t.Helper()
		if err := db.Atomically(func(tx *core.Tx) error {
			v, err := db.GetSys(tx, id, "salary")
			if err != nil {
				return err
			}
			if f, _ := v.Numeric(); f != want {
				t.Errorf("salary = %v, want %v", v, want)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	check(fred, 3000)
	check(mike, 3000)

	// Mike's change propagates back to Fred (m:n, both directions).
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, mike, "ChangeIncome", value.Float(4000))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	check(fred, 4000)

	// The bystander is NOT monitored: its change triggers nothing.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, bystander, "ChangeIncome", value.Float(9999))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	check(fred, 4000)
	check(mike, 4000)
}
