package core

// sink.go is the remote-sink seam: the paper's Notifiable role extended
// beyond the process boundary. In-process consumers (rules, FuncConsumers)
// are notified synchronously inside the raising transaction; an EventSink
// instead receives occurrences only after the raising transaction has
// durably committed, which is the correct visibility for a remote observer —
// a subscriber on another machine must never learn about an event whose
// transaction subsequently aborts.
//
// The delivery contract is shaped by the commit path it runs on:
//
//   - collection happens inside raise (matching is cheap, the occurrence is
//     already built), gated by one atomic load so databases with no remote
//     subscribers pay nothing on the event hot path;
//   - fan-out happens in doCommit AFTER the durability callback succeeded
//     and BEFORE detached dispatch, in the committing goroutine;
//   - DeliverEvent therefore MUST NOT block and MUST NOT call back into the
//     database. Implementations (the server's session writer) enqueue into
//     a bounded buffer and drop or disconnect on overflow — the same
//     never-stall-the-commit-path rule the detached executor's bounded
//     queue follows, except that a remote subscriber's remedy is dropping
//     its frames, not backpressuring a committer.

import (
	"fmt"
	"sync"

	"sentinel/internal/event"
	"sentinel/internal/oid"
)

// EventSink receives committed occurrences on behalf of one or more remote
// subscriptions. DeliverEvent runs on the committing goroutine: it must
// return promptly (enqueue, don't send) and must not re-enter the database.
type EventSink interface {
	DeliverEvent(subID uint64, occ event.Occurrence)
}

// SinkFilter narrows a sink subscription. The zero value matches every
// occurrence the source object generates.
type SinkFilter struct {
	// Method, when non-empty, matches only occurrences of that method (or
	// explicit event name).
	Method string
	// Moment, when MomentSet, matches only that moment (begin/end/explicit).
	Moment    event.Moment
	MomentSet bool
}

// matches reports whether the filter admits the occurrence.
func (f SinkFilter) matches(occ *event.Occurrence) bool {
	if f.Method != "" && f.Method != occ.Method {
		return false
	}
	if f.MomentSet && f.Moment != occ.When {
		return false
	}
	return true
}

// sinkSub is one registered remote subscription.
type sinkSub struct {
	id     uint64
	source oid.OID
	filter SinkFilter
	sink   EventSink
}

// pendingPush is one matched occurrence awaiting its transaction's commit.
type pendingPush struct {
	subID uint64
	sink  EventSink
	occ   event.Occurrence
}

// sinkRegistry holds the remote subscriptions, keyed by source OID for the
// raise-time lookup and by subscription id for O(1) unsubscribe. count
// mirrors the total so raise can skip the registry entirely — including the
// lock — with one atomic load when no sinks exist.
type sinkRegistry struct {
	mu     sync.RWMutex
	seq    uint64
	bySrc  map[oid.OID][]*sinkSub
	byID   map[uint64]*sinkSub
	closed bool
}

// SubscribeSink registers sink to receive every committed occurrence of the
// reactive object that passes the filter, returning the subscription id.
// Like SubscribeFunc, the source must exist and be reactive; unlike it, the
// subscription is keyed by id so a remote session can release exactly its
// own subscriptions on teardown.
func (db *Database) SubscribeSink(source oid.OID, f SinkFilter, sink EventSink) (uint64, error) {
	if sink == nil {
		return 0, fmt.Errorf("core: nil EventSink")
	}
	o := db.objectByID(source)
	if o == nil {
		return 0, fmt.Errorf("core: no object %s", source)
	}
	if !o.Class().Reactive() {
		return 0, fmt.Errorf("core: class %s is passive; only reactive objects can be monitored", o.Class().Name)
	}
	r := &db.sinkReg
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("core: database closed")
	}
	if r.bySrc == nil {
		r.bySrc = make(map[oid.OID][]*sinkSub)
		r.byID = make(map[uint64]*sinkSub)
	}
	r.seq++
	s := &sinkSub{id: r.seq, source: source, filter: f, sink: sink}
	r.bySrc[source] = append(r.bySrc[source], s)
	r.byID[s.id] = s
	db.sinkCount.Add(1)
	return s.id, nil
}

// UnsubscribeSink releases one sink subscription by id, reporting whether
// it existed.
func (db *Database) UnsubscribeSink(id uint64) bool {
	r := &db.sinkReg
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return false
	}
	r.dropLocked(s)
	db.sinkCount.Add(-1)
	return true
}

// UnsubscribeAllSinks releases every subscription delivering to sink
// (session teardown: one call, regardless of how many subscriptions the
// session held), returning how many were released.
func (db *Database) UnsubscribeAllSinks(sink EventSink) int {
	r := &db.sinkReg
	r.mu.Lock()
	defer r.mu.Unlock()
	var doomed []*sinkSub
	for _, s := range r.byID {
		if s.sink == sink {
			doomed = append(doomed, s)
		}
	}
	for _, s := range doomed {
		r.dropLocked(s)
	}
	db.sinkCount.Add(int64(-len(doomed)))
	return len(doomed)
}

// SinkSubscriptions returns the number of live sink subscriptions.
func (db *Database) SinkSubscriptions() int {
	return int(db.sinkCount.Load())
}

// dropLocked unlinks one subscription from both indexes. Caller holds mu.
func (r *sinkRegistry) dropLocked(s *sinkSub) {
	delete(r.byID, s.id)
	lst := r.bySrc[s.source]
	for i, x := range lst {
		if x == s {
			lst = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	if len(lst) == 0 {
		delete(r.bySrc, s.source)
	} else {
		r.bySrc[s.source] = lst
	}
}

// collectPushes records, on the transaction, every sink subscription the
// occurrence matches. Runs inside raise with the source's 2PL lock held;
// delivery waits for commit. The caller has already checked sinkCount, so
// the common no-subscriber case never reaches this function.
func (db *Database) collectPushes(t *Tx, occ *event.Occurrence) {
	r := &db.sinkReg
	r.mu.RLock()
	for _, s := range r.bySrc[occ.Source] {
		if s.filter.matches(occ) {
			t.pushes = append(t.pushes, pendingPush{subID: s.id, sink: s.sink, occ: *occ})
		}
	}
	r.mu.RUnlock()
}

// fanoutPushes delivers the transaction's matched occurrences after its
// commit became durable. Each DeliverEvent is a bounded-queue enqueue in
// the sink implementation, so the loop — and with it the commit path — is
// wait-free regardless of how slow any remote consumer is.
func (db *Database) fanoutPushes(pushes []pendingPush) {
	for i := range pushes {
		db.met.pushEvents.Inc()
		pushes[i].sink.DeliverEvent(pushes[i].subID, pushes[i].occ)
	}
}

// closeSinks marks the registry closed (new SubscribeSink calls fail) and
// drops every subscription. Called by Close/CloseAbrupt before the server
// layer shuts down so late commits stop matching.
func (db *Database) closeSinks() {
	r := &db.sinkReg
	r.mu.Lock()
	n := len(r.byID)
	r.bySrc = nil
	r.byID = nil
	r.closed = true
	r.mu.Unlock()
	db.sinkCount.Add(int64(-n))
}
