package core_test

// The replica write gate, swept across the whole public mutating surface.
// A replica's heap is a projection of the primary's history; any local
// write — object, name, event, rule, subscription, index, schema — would
// fork it. Every mutating entry point must therefore fail with
// ErrReplicaWrite, and fail cleanly: no partial in-memory catalog edits,
// no WAL records, no LSN movement. Each case exercises one public surface
// against a replica seeded with a real primary history (so name/rule/
// index-dependent paths get past their lookups and reach the gate).

import (
	"errors"
	"io"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/schema"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// seedReplica builds a primary with one of everything — class, instances,
// names, a named event, a rule, a subscription, an index — closes it, and
// reopens the same directory as a replica (recovery rebuilds the catalogs,
// exactly as a promoted-then-demoted node would).
func seedReplica(t *testing.T) *core.Database {
	t.Helper()
	fs := vfs.NewMem()
	db := core.MustOpen(core.Options{Dir: "d", VFS: fs, SyncOnCommit: true, Output: io.Discard})
	if err := db.Exec(`class Kit reactive persistent {
		attr n int
		attr tag int
		event end method Set(v int) { self.n := v }
	}
	bind K0 new Kit(n: 0)
	bind K1 new Kit(n: 1)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.DefineEvent(tx, "KitSet", "end Kit::Set(int v)"); err != nil {
			return err
		}
		if _, err := db.CreateRule(tx, core.RuleSpec{
			Name: "watch", EventSrc: "end Kit::Set(int v)", ActionSrc: `print("")`,
		}); err != nil {
			return err
		}
		k0, _ := db.Lookup("K0")
		if err := db.SubscribeRule(tx, "watch", k0); err != nil {
			return err
		}
		_, err := db.CreateIndex(tx, "Kit", "n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	replica, err := core.Open(core.Options{Dir: "d", VFS: fs, Replica: true, SyncOnCommit: true, Output: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	return replica
}

// TestReplicaWriteSweep: every public mutating surface on a replica fails
// with ErrReplicaWrite — and leaves no trace (LSN and K0.n unchanged).
func TestReplicaWriteSweep(t *testing.T) {
	db := seedReplica(t)
	k0, ok := db.Lookup("K0")
	if !ok {
		t.Fatal("K0 not rebuilt on the replica")
	}
	k1, _ := db.Lookup("K1")
	watch := db.LookupRule("watch")
	if watch == nil {
		t.Fatal("rule not rebuilt on the replica")
	}
	if db.Index("Kit", "n") == nil {
		t.Fatal("index not rebuilt on the replica")
	}
	preLSN := db.ReplLSN()

	cases := []struct {
		name string
		run  func(tx *core.Tx) error
	}{
		{"NewObject", func(tx *core.Tx) error {
			_, err := db.NewObject(tx, "Kit", map[string]value.Value{"n": value.Int(9)})
			return err
		}},
		{"Set", func(tx *core.Tx) error { return db.Set(tx, k0, "n", value.Int(9)) }},
		{"SetSys", func(tx *core.Tx) error { return db.SetSys(tx, k0, "n", value.Int(9)) }},
		{"DeleteObject", func(tx *core.Tx) error { return db.DeleteObject(tx, k1) }},
		{"Send", func(tx *core.Tx) error {
			_, err := db.Send(tx, k0, "Set", value.Int(9))
			return err
		}},
		{"RaiseExplicit", func(tx *core.Tx) error { return db.RaiseExplicit(tx, k0, "alarm", value.Int(1)) }},
		{"Bind/new", func(tx *core.Tx) error { return db.Bind(tx, "K9", k0) }},
		{"Bind/rebind", func(tx *core.Tx) error { return db.Bind(tx, "K0", k1) }},
		{"DefineEvent", func(tx *core.Tx) error {
			_, err := db.DefineEvent(tx, "KitSet2", "begin Kit::Set(int v)")
			return err
		}},
		{"DeleteEvent", func(tx *core.Tx) error { return db.DeleteEvent(tx, "KitSet") }},
		{"CreateRule", func(tx *core.Tx) error {
			_, err := db.CreateRule(tx, core.RuleSpec{
				Name: "watch2", EventSrc: "end Kit::Set(int v)", ActionSrc: `print("")`,
			})
			return err
		}},
		{"DeleteRule", func(tx *core.Tx) error { return db.DeleteRule(tx, "watch") }},
		{"EnableRule", func(tx *core.Tx) error { return db.EnableRule(tx, "watch") }},
		{"DisableRule", func(tx *core.Tx) error { return db.DisableRule(tx, "watch") }},
		{"Subscribe", func(tx *core.Tx) error { return db.Subscribe(tx, k1, watch.ID()) }},
		{"SubscribeRule", func(tx *core.Tx) error { return db.SubscribeRule(tx, "watch", k1) }},
		{"Unsubscribe", func(tx *core.Tx) error { return db.Unsubscribe(tx, k0, watch.ID()) }},
		{"UnsubscribeRule", func(tx *core.Tx) error { return db.UnsubscribeRule(tx, "watch", k0) }},
		{"CreateIndex", func(tx *core.Tx) error {
			_, err := db.CreateIndex(tx, "Kit", "tag")
			return err
		}},
		{"ExecScript", func(tx *core.Tx) error { return db.ExecScript(tx, "K0!Set(9)") }},
		{"DropIndex", func(tx *core.Tx) error { return db.DropIndex(tx, "Kit", "n") }},
		{"EvolveClass", func(tx *core.Tx) error {
			c := schema.NewClass("Kit")
			c.AddAttribute(&schema.Attribute{Name: "n", Type: value.TypeInt, Visibility: schema.Public})
			c.AddAttribute(&schema.Attribute{Name: "m", Type: value.TypeInt, Visibility: schema.Public})
			return db.EvolveClass(tx, c, "")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := db.Atomically(func(tx *core.Tx) error { return tc.run(tx) })
			if err == nil {
				t.Fatalf("%s succeeded on a replica", tc.name)
			}
			if !errors.Is(err, core.ErrReplicaWrite) {
				t.Fatalf("%s rejected with %v, want ErrReplicaWrite", tc.name, err)
			}
		})
	}

	// Script-level entry points: same gate through the interpreter.
	for name, src := range map[string]string{
		"Exec/send":   "K0!Set(9)",
		"Exec/bind":   "bind K9 new Kit(n: 9)",
		"Exec/class": "class Fresh persistent { attr a int }",
	} {
		t.Run(name, func(t *testing.T) {
			err := db.Exec(src)
			if err == nil {
				t.Fatalf("%q succeeded on a replica", src)
			}
			if !errors.Is(err, core.ErrReplicaWrite) {
				t.Fatalf("%q rejected with %v, want ErrReplicaWrite", src, err)
			}
		})
	}
	t.Run("RestoreDSL", func(t *testing.T) {
		err := db.RestoreDSL("class Fresh2 persistent { attr a int }")
		if err == nil {
			t.Fatal("RestoreDSL succeeded on a replica")
		}
		if !errors.Is(err, core.ErrReplicaWrite) {
			t.Fatalf("RestoreDSL rejected with %v, want ErrReplicaWrite", err)
		}
	})

	// The gate must be a clean bounce: nothing written, nothing half-done.
	if got := db.ReplLSN(); got != preLSN {
		t.Fatalf("replica LSN moved %d -> %d under rejected writes", preLSN, got)
	}
	snap := db.BeginSnapshot()
	defer db.Abort(snap)
	if v, err := db.Get(snap, k0, "n"); err != nil || v.String() != "0" {
		t.Fatalf("K0.n = %v (%v) after rejected writes, want 0", v, err)
	}
	if db.LookupRule("watch") == nil || db.Index("Kit", "n") == nil {
		t.Fatal("catalog entries lost under rejected writes")
	}
	if _, ok := db.Lookup("K9"); ok {
		t.Fatal("rejected bind left K9 visible")
	}
}
