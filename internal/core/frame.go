package core

import (
	"fmt"

	"sentinel/internal/event"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// frame is one execution context: a method body, a rule condition/action,
// or a shell statement. It implements schema.CallContext (method bodies),
// rule.ExecContext (rule evaluation) and lang.Env (SentinelQL).
//
// Visibility semantics per frame kind:
//   - method body: caller class = the method's owner (sees its private
//     members);
//   - rule body:   sysAccess (rules contribute to the behaviour of the
//     objects they monitor, §3.5);
//   - shell/app:   public only.
type frame struct {
	db        *Database
	tx        *Tx
	self      *object.Object // nil for shell frames
	method    *schema.Method // nil outside method bodies
	args      []value.Value
	depth     int
	sysAccess bool
	detection *event.Detection // set for rule frames
}

// callerClass returns the class whose code runs in this frame.
func (f *frame) callerClass() *schema.Class {
	if f.method != nil {
		return f.method.Owner()
	}
	return nil
}

// ---- schema.CallContext ----

// Self returns the receiver's OID (oid.Nil for shell frames).
func (f *frame) Self() oid.OID {
	if f.self == nil {
		return oid.Nil
	}
	return f.self.ID()
}

// SelfClass returns the receiver's dynamic class.
func (f *frame) SelfClass() *schema.Class {
	if f.self == nil {
		return nil
	}
	return f.self.Class()
}

// Arg returns the i'th actual parameter.
func (f *frame) Arg(i int) value.Value {
	if i < 0 || i >= len(f.args) {
		return value.Nil
	}
	return f.args[i]
}

// NArgs returns the parameter count.
func (f *frame) NArgs() int { return len(f.args) }

// Get reads an attribute of the receiver with the frame's visibility.
func (f *frame) Get(attr string) (value.Value, error) {
	if f.self == nil {
		return value.Nil, fmt.Errorf("core: no receiver in this context")
	}
	return f.db.getAttr(f.tx, f.self.ID(), attr, f.callerClass(), f.sysAccess)
}

// Set writes an attribute of the receiver.
func (f *frame) Set(attr string, v value.Value) error {
	if f.self == nil {
		return fmt.Errorf("core: no receiver in this context")
	}
	return f.db.setAttr(f.tx, f.self.ID(), attr, v, f.callerClass(), f.sysAccess)
}

// GetOf reads an attribute of another object.
func (f *frame) GetOf(obj oid.OID, attr string) (value.Value, error) {
	return f.db.getAttr(f.tx, obj, attr, f.callerClass(), f.sysAccess)
}

// SetOf writes an attribute of another object.
func (f *frame) SetOf(obj oid.OID, attr string, v value.Value) error {
	return f.db.setAttr(f.tx, obj, attr, v, f.callerClass(), f.sysAccess)
}

// Send delivers a message within the frame's transaction, with this frame's
// class as caller and its cascade depth carried along.
func (f *frame) Send(obj oid.OID, method string, args ...value.Value) (value.Value, error) {
	return f.db.send(f.tx, obj, method, args, f.callerClass(), f.sysAccess, f.depth)
}

// New creates an object.
func (f *frame) New(class string, inits map[string]value.Value) (oid.OID, error) {
	return f.db.NewObject(f.tx, class, inits)
}

// Raise signals an explicit application event from the receiver (§3.1
// fn. 3). Only valid inside method bodies of reactive classes.
func (f *frame) Raise(eventName string, params ...value.Value) error {
	if f.self == nil {
		return fmt.Errorf("core: raise outside an object context")
	}
	if !f.self.Class().Reactive() {
		return fmt.Errorf("core: class %s is not reactive; cannot raise %q", f.self.Class().Name, eventName)
	}
	return f.db.raise(f.tx, f.self, eventName, event.Explicit, params, nil, f.depth)
}

// Abort returns the error that rolls back the enclosing transaction when
// propagated.
func (f *frame) Abort(reason string) error { return &AbortError{Reason: reason} }

// ---- rule.ExecContext ----

// LookupName resolves a database name binding.
func (f *frame) LookupName(name string) (oid.OID, bool) {
	f.db.mu.RLock()
	defer f.db.mu.RUnlock()
	id, ok := f.db.names[name]
	return id, ok
}

// Depth returns the rule-cascade depth.
func (f *frame) Depth() int { return f.depth }

// ---- lang.Env (SentinelQL) ----

// GetAttr reads an attribute for the interpreter.
func (f *frame) GetAttr(obj oid.OID, attr string) (value.Value, error) {
	return f.GetOf(obj, attr)
}

// SetAttr writes an attribute for the interpreter.
func (f *frame) SetAttr(obj oid.OID, attr string, v value.Value) error {
	return f.SetOf(obj, attr, v)
}

// GetSelfAttr reads an attribute of self, reporting ok=false when self has
// no such attribute so identifier resolution can fall through.
func (f *frame) GetSelfAttr(attr string) (value.Value, bool, error) {
	if f.self == nil {
		return value.Nil, false, nil
	}
	if f.self.Class().AttributeNamed(attr) == nil {
		return value.Nil, false, nil
	}
	v, err := f.Get(attr)
	return v, true, err
}

// NewObject instantiates a class for the interpreter.
func (f *frame) NewObject(class string, inits map[string]value.Value) (oid.OID, error) {
	return f.New(class, inits)
}

// BindName creates or replaces a database name binding.
func (f *frame) BindName(name string, obj oid.OID) error {
	return f.db.Bind(f.tx, name, obj)
}

// Subscribe attaches the named rule to a reactive object.
func (f *frame) Subscribe(ruleName string, target oid.OID) error {
	r := f.db.LookupRule(ruleName)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", ruleName)
	}
	return f.db.Subscribe(f.tx, target, r.ID())
}

// Unsubscribe detaches the named rule from a reactive object.
func (f *frame) Unsubscribe(ruleName string, target oid.OID) error {
	r := f.db.LookupRule(ruleName)
	if r == nil {
		return fmt.Errorf("core: unknown rule %q", ruleName)
	}
	return f.db.Unsubscribe(f.tx, target, r.ID())
}

// SetRuleEnabled enables/disables a rule by name (through the rule object's
// Enable/Disable methods, so rule-monitoring rules see the event).
func (f *frame) SetRuleEnabled(ruleName string, enabled bool) error {
	if enabled {
		return f.db.EnableRule(f.tx, ruleName)
	}
	return f.db.DisableRule(f.tx, ruleName)
}

// RaiseEvent adapts Raise to the interpreter's signature.
func (f *frame) RaiseEvent(name string, args []value.Value) error {
	return f.Raise(name, args...)
}

// Output writes print() text.
func (f *frame) Output(s string) {
	fmt.Fprintln(f.db.opts.Output, s)
}

// Instances lists live instances of the named class (and subclasses) for
// the instances(...) builtin. System classes are reserved.
func (f *frame) Instances(class string) ([]oid.OID, error) {
	if IsSystemClass(class) {
		return nil, fmt.Errorf("core: instances of system class %s are not enumerable from rules", class)
	}
	if f.db.reg.Lookup(class) == nil {
		return nil, fmt.Errorf("core: unknown class %q", class)
	}
	// Snapshot frames (detached conditions under SnapshotConditions) scan
	// at their snapshot LSN; ordinary frames see the racy live union.
	return f.db.InstancesOfAt(f.tx, class), nil
}

// LookupByAttr backs the lookup(...) builtin: index-accelerated equality
// search with a scan fallback.
func (f *frame) LookupByAttr(class, attr string, v value.Value) ([]oid.OID, error) {
	if IsSystemClass(class) {
		return nil, fmt.Errorf("core: system class %s is not queryable from rules", class)
	}
	ids, _, err := f.db.LookupByAttr(f.tx, class, attr, v)
	return ids, err
}

// CreateIndex backs the `index Class.attr` statement.
func (f *frame) CreateIndex(class, attr string) error {
	_, err := f.db.CreateIndex(f.tx, class, attr)
	return err
}

// DropIndex backs the `unindex Class.attr` statement.
func (f *frame) DropIndex(class, attr string) error {
	return f.db.DropIndex(f.tx, class, attr)
}
