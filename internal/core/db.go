// Package core implements the Sentinel active-database runtime: the paper's
// primary contribution glued onto the substrates.
//
// A Database combines
//
//   - the meta-object schema registry (internal/schema),
//   - an in-memory object cache over a persistent heap + WAL
//     (internal/heap, internal/wal) — the Zeitgeist/zg-pos role,
//   - strict-2PL transactions (internal/txn),
//   - the event system (internal/event) and rules (internal/rule),
//   - and SentinelQL (internal/lang) for runtime rule/class definition.
//
// The paper's architecture maps onto this package as follows. Reactive
// classes declare an event interface; Database.Send is the message
// dispatcher that raises bom/eom occurrences for declared methods (§3.1,
// Fig. 1). The subscription mechanism associates notifiable consumers
// (rules, or arbitrary Go callbacks) with reactive instances at runtime
// (§3.5, Fig. 4). Rules and events are first-class objects: they are backed
// by system-class instances (__Rule, __Event, ...) that live in the same
// store, participate in the same transactions, and persist the same way as
// application objects (§3.3, §3.4, Fig. 3).
package core

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/heap"
	"sentinel/internal/index"
	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/wal"
)

// Database is a Sentinel active object-oriented database instance.
type Database struct {
	opts  Options
	reg   *schema.Registry
	tm    *txn.Manager
	alloc *oid.Allocator
	clock atomic.Uint64

	store *heap.Store // nil when in-memory
	log   *wal.Log    // nil when in-memory

	// mu protects the runtime catalogs below. It is a reader/writer lock:
	// the event hot path (consumer resolution, object lookup, strategy
	// reads, stats snapshots) takes it shared, so concurrent transactions
	// raising events do not serialize on catalog mutation locks. Lock
	// hierarchy: fnMu (registry) → mu → ccMu → per-object txn locks; never
	// acquire in the other direction.
	mu            sync.RWMutex
	names         map[string]oid.OID
	nameObjs      map[string]oid.OID
	rules         map[oid.OID]*rule.Rule
	rulesByName   map[string]*rule.Rule
	subs          map[oid.OID][]oid.OID // ordered consumer lists (the paper's `consumers` attribute)
	subObjs       map[subKey]oid.OID
	classRules    map[string][]*rule.Rule
	funcConsumers map[oid.OID][]*FuncConsumer
	namedEvents   map[string]*event.Expr
	eventObjs     map[string]oid.OID
	dslClassSeq   int
	indexes       map[idxKey]*index.Hash
	indexObjs     map[idxKey]oid.OID
	indexByClass  map[string][]*index.Hash

	// dir is the sharded resident-object directory (see directory.go):
	// object lookups go through it, missing entries fault in from the
	// heap, and the clock evictor reclaims clean unpinned residents when
	// MaxResidentObjects is exceeded. It is its own synchronization
	// domain — shard locks are leaves in the lock hierarchy.
	dir *objDirectory

	// flight tracks in-progress fault-ins per OID (singleflight): the
	// first faulter decodes, concurrent ones wait and share the result.
	flightMu sync.Mutex
	flight   map[oid.OID]*dirFlight

	// evicting serializes clock sweeps (one at a time; extra faulters
	// skip instead of queueing).
	evicting atomic.Bool

	// MVCC coordination (see mvcc.go): lsn allocates commit LSNs and
	// tracks the stable (fully installed) prefix, snaps registers active
	// read-only snapshots, lastSweep dedups post-commit chain sweeps by
	// the watermark they ran at.
	lsn       lsnTracker
	snaps     snapRegistry
	lastSweep atomic.Uint64

	// catMu guards the heap-class catalog: OID → class name for every
	// committed persistent object, mirroring the heap's object table so
	// population-wide operations (InstancesOf, Dump, integrity checks,
	// index rebuild, Stats) can enumerate cold objects without decoding
	// them. catNames interns the class-name strings. Persisted in the
	// checkpoint metadata so a clean open skips the full heap scan.
	catMu    sync.RWMutex
	heapCat  map[oid.OID]string
	catNames map[string]string

	// ckptMu fences checkpoints against commits: writeCommit holds it
	// shared for the WAL-append + heap-apply window, Checkpoint holds it
	// exclusively for flush + truncate, so a commit can never land its
	// WAL records between the heap flush and the log truncation (which
	// would silently drop it).
	ckptMu      sync.RWMutex
	ckptRunning atomic.Bool

	// fnMu guards the named condition/action function registries. They are
	// written during schema setup and read when rules compile — never on
	// the event hot path — so they get their own lock instead of riding on
	// mu.
	fnMu    sync.RWMutex
	condFns map[string]rule.Condition
	actFns  map[string]rule.Action

	// Consumer-resolution cache (see consumers.go). Invalidation is
	// selective: a mutation deletes only the entries derived from the
	// keys it changed (object OID, class-name subtree); subEpoch is the
	// global fallback, bumped by recovery/base-state replacement (and the
	// GlobalConsumerInvalidation reference mode) to stale every entry at
	// once. objGen/classGen are per-key generation counters closing the
	// concurrent refresh-vs-delete race (snapshot before catalog read,
	// verify at publish); classDeps is the reverse index from exact class
	// name to the object entries derived from it. All four maps are
	// guarded by ccMu.
	subEpoch       atomic.Uint64
	ccMu           sync.RWMutex
	objConsumers   map[oid.OID]*consumerEntry
	classConsumers map[string]*classConsumerEntry
	objGen         map[oid.OID]uint64
	classGen       map[string]uint64
	classDeps      map[string]map[oid.OID]struct{}

	// pendingClassRules queues class-level rule declarations registered
	// before recovery completes; ready flips once Open finishes.
	pendingClassRules []RuleSpec
	ready             bool

	strategy rule.Strategy

	// detached is the conflict-aware executor pool for detached-coupling
	// rules (see detached.go): Options.DetachedWorkers goroutines draining
	// a bounded queue under a per-object conflict scheduler. Created at
	// Open when AsyncDetached is set, retired by Close (drain) or
	// CloseAbrupt (abandon); nil in synchronous mode.
	detached *detachedPool

	// sinkReg holds remote-sink subscriptions (see sink.go); sinkCount
	// mirrors its size so raise skips the registry — lock included — with
	// one atomic load when no remote subscriber exists.
	sinkReg   sinkRegistry
	sinkCount atomic.Int64

	// Replication state (see repl.go). replMu orders shipped batches: the
	// commit path holds it for LSN assignment + the ship callback, so
	// followers see batches in a valid serialization order (conflicting
	// commits are already ordered by 2PL; replMu linearizes the rest).
	// replLSN counts committed WAL batches since database creation; it is
	// persisted in the checkpoint meta and recovered as meta-LSN + replayed
	// commit count. replShip is the primary-side shipping hook; replCollect
	// mirrors its presence so raise collects occurrences for fan-out with
	// one atomic load. applyMu serializes follower-side ApplyReplicated.
	// replEpoch is the replication epoch this database's history belongs
	// to: bumped (and checkpointed) every time a primary starts over this
	// directory, persisted next to replLSN in the checkpoint meta so the
	// pair (epoch, LSN) names a position in exactly one history. fenced
	// flips when a newer epoch is observed (a follower was promoted); a
	// fenced database aborts every data-bearing commit with ErrFenced so a
	// deposed primary can never ack a write. replQuorum is the
	// quorum-commit wait installed by internal/repl's Primary: doCommit
	// calls it after local durability with no locks held.
	replMu      sync.Mutex
	replLSN     uint64
	replEpoch   uint64
	replShip    func(ReplBatch)
	replCollect atomic.Bool
	applyMu     sync.Mutex
	replInfo    atomic.Pointer[func() (peers int, minApplied uint64)]
	replQuorum  atomic.Pointer[func(lsn uint64, k int, timeout time.Duration) error]
	fenced      atomic.Bool

	// met is the metric set (counters, histograms, gauges, slow-rule log);
	// tracer is the installed obs.Tracer (nil when none — the hot path
	// pays one atomic load); metricsSrv is the Options.MetricsAddr HTTP
	// listener (nil when not configured).
	met        *coreMetrics
	tracer     atomic.Pointer[obs.Tracer]
	metricsSrv *obs.Server
}

type subKey struct{ reactive, consumer oid.OID }

// FuncConsumer is a transient Go notifiable: an arbitrary callback
// subscribed to a reactive object's events (the Notifiable role of §3.2
// without a rule attached). It is not persisted.
type FuncConsumer struct {
	Name string
	Fn   func(event.Occurrence)
}

// Open creates or reopens a database. With opts.Dir empty the database is
// in-memory; otherwise the directory holds the heap, its index, and the
// WAL, and Open performs crash recovery (replaying committed transactions
// logged after the last checkpoint).
func Open(opts Options) (*Database, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	strat, _ := rule.ParseStrategy(opts.Strategy) // validated above
	db := &Database{
		opts:           opts,
		reg:            schema.NewRegistry(),
		tm:             txn.NewManager(),
		alloc:          oid.NewAllocator(1),
		dir:            newObjDirectory(),
		names:          make(map[string]oid.OID),
		nameObjs:       make(map[string]oid.OID),
		rules:          make(map[oid.OID]*rule.Rule),
		rulesByName:    make(map[string]*rule.Rule),
		subs:           make(map[oid.OID][]oid.OID),
		subObjs:        make(map[subKey]oid.OID),
		classRules:     make(map[string][]*rule.Rule),
		funcConsumers:  make(map[oid.OID][]*FuncConsumer),
		namedEvents:    make(map[string]*event.Expr),
		eventObjs:      make(map[string]oid.OID),
		condFns:        make(map[string]rule.Condition),
		actFns:         make(map[string]rule.Action),
		indexes:        make(map[idxKey]*index.Hash),
		indexObjs:      make(map[idxKey]oid.OID),
		indexByClass:   make(map[string][]*index.Hash),
		objConsumers:   make(map[oid.OID]*consumerEntry),
		classConsumers: make(map[string]*classConsumerEntry),
		objGen:         make(map[oid.OID]uint64),
		classGen:       make(map[string]uint64),
		classDeps:      make(map[string]map[oid.OID]struct{}),
		strategy:       strat,
	}
	db.met = newCoreMetrics(db, opts)
	if err := db.bootstrapSystemClasses(); err != nil {
		return nil, err
	}
	if opts.Schema != nil {
		if err := opts.Schema(db); err != nil {
			return nil, fmt.Errorf("core: schema setup: %w", err)
		}
	}
	if opts.Dir != "" {
		if err := db.openStorage(); err != nil {
			return nil, err
		}
	}
	// Start the detached executor pool before the metrics listener binds
	// (its gauges read db.detached) and after recovery (recovery never
	// dispatches detached work).
	if opts.AsyncDetached {
		db.detached = newDetachedPool(db, opts.DetachedWorkers)
	}
	// Bind the metrics listener last so a bad address fails fast without
	// leaking storage handles, and a failed recovery never leaves a
	// listener behind.
	if opts.MetricsAddr != "" {
		srv, err := obs.Serve(opts.MetricsAddr, db.met.reg)
		if err != nil {
			db.stopDetachedPool(false)
			if db.store != nil {
				db.store.CloseAbrupt()
				db.log.Close()
			}
			return nil, fmt.Errorf("core: metrics listener: %w", err)
		}
		db.metricsSrv = srv
	}
	db.ready = true
	// Recovery rebuilt the rule/subscription catalogs wholesale; the
	// global epoch bump is the safe fallback that stales anything cached
	// during the rebuild (selective scopes only cover live mutations).
	db.applyConsumerInvalidation(scopeAll())
	// A replica never instantiates rules locally: rule effects arrive as
	// shipped batches from the primary (and creating the __Rule objects
	// would be a write, which replicas reject).
	if !db.opts.Replica {
		if err := db.flushPendingClassRules(); err != nil {
			db.stopDetachedPool(false)
			if db.metricsSrv != nil {
				db.metricsSrv.Close()
			}
			return nil, err
		}
	}
	return db, nil
}

// MustOpen is Open that panics on error; for tests and examples.
func MustOpen(opts Options) *Database {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Registry exposes the schema registry (for introspection; use
// RegisterClass to add classes so class-level rules are wired up).
func (db *Database) Registry() *schema.Registry { return db.reg }

// Persistent reports whether the database has a disk footprint.
func (db *Database) Persistent() bool { return db.store != nil }

// Dir returns the storage directory ("" for in-memory databases).
func (db *Database) Dir() string { return db.opts.Dir }

// CloseAbrupt closes the underlying files WITHOUT checkpointing —
// simulating a crash: the heap keeps only checkpointed state and the WAL
// keeps everything since, so the next Open exercises recovery. For tests
// and the recovery experiments.
func (db *Database) CloseAbrupt() error {
	// Abandon the executor pool: queued detached work is dropped (a crash
	// loses it), only firings already executing run out.
	db.closeSinks()
	db.stopDetachedPool(false)
	if db.metricsSrv != nil {
		db.metricsSrv.Close()
	}
	if db.store == nil {
		return nil
	}
	if err := db.store.CloseAbrupt(); err != nil {
		return err
	}
	return db.log.Close()
}

// WALSize returns the current write-ahead-log size in bytes (0 for
// in-memory databases).
func (db *Database) WALSize() int64 {
	if db.log == nil {
		return 0
	}
	return db.log.Size()
}

// Close shuts the database down in dependency order: first drain and stop
// rule execution (detached firings may still mutate objects and append WAL
// records), then stop the metrics listener (so a final scrape during
// shutdown cannot observe a half-closed store), then checkpoint and close
// the storage.
func (db *Database) Close() error {
	db.WaitIdle()
	// Remote subscriptions go first: detached firings drained below may
	// still commit and fan out, but no new subscription can land while the
	// database is dismantling itself. (The server layer closes its sessions
	// before closing the database; this is the belt to that suspender.)
	db.closeSinks()
	db.stopDetachedPool(true)
	if db.metricsSrv != nil {
		db.metricsSrv.Close()
	}
	if db.store == nil {
		return nil
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := db.store.Close(); err != nil {
		return err
	}
	return db.log.Close()
}

// Now returns the current logical timestamp (the last one issued).
func (db *Database) Now() uint64 { return db.clock.Load() }

// SetStrategy swaps the conflict-resolution strategy at runtime without
// touching application code (§3 design goal 4).
func (db *Database) SetStrategy(name string) error {
	s, err := rule.ParseStrategy(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.strategy = s
	db.mu.Unlock()
	return nil
}

// currentStrategy reads the conflict-resolution strategy under the shared
// lock; raise resolves it once per immediate batch through this path.
func (db *Database) currentStrategy() rule.Strategy {
	db.mu.RLock()
	s := db.strategy
	db.mu.RUnlock()
	return s
}

// hier adapts the schema registry to event.Hierarchy.
type hier struct{ reg *schema.Registry }

// IsSubclass reports whether sub is super or a transitive subclass.
func (h hier) IsSubclass(sub, super string) bool {
	sc := h.reg.Lookup(sub)
	pc := h.reg.Lookup(super)
	if sc == nil || pc == nil {
		return false
	}
	return sc.IsSubclassOf(pc)
}

func (db *Database) hierarchy() event.Hierarchy { return hier{reg: db.reg} }

// nextSeq issues the next logical timestamp.
func (db *Database) nextSeq() uint64 { return db.clock.Add(1) }

// advanceClock moves the logical clock to at least seq (replication apply:
// the replica adopts the primary's stamps so a later promotion never
// reissues them).
func (db *Database) advanceClock(seq uint64) {
	for {
		cur := db.clock.Load()
		if seq <= cur || db.clock.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// objectByID returns the live object for id, faulting it in from the heap
// if it is not resident (nil if absent or tombstoned; decode errors also
// report nil — lockObject surfaces them). Callers must hold the appropriate
// transaction lock before touching fields; under eviction pressure only
// pinned objects (lockObject) have stable pointers, but ID() and Class()
// are immutable and safe on any returned pointer.
func (db *Database) objectByID(id oid.OID) *object.Object {
	o, _ := db.faultObject(id)
	return o
}

// LookupRule returns the runtime rule with the given name (nil if absent).
func (db *Database) LookupRule(name string) *rule.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rulesByName[name]
}

// RuleByID returns the runtime rule with the given object identity.
func (db *Database) RuleByID(id oid.OID) *rule.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rules[id]
}

// Rules returns all rules, by registration in unspecified order.
func (db *Database) Rules() []*rule.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*rule.Rule, 0, len(db.rules))
	for _, r := range db.rules {
		out = append(out, r)
	}
	return out
}

// LookupEvent returns a named event definition.
func (db *Database) LookupEvent(name string) (*event.Expr, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.namedEvents[name]
	return e, ok
}

// metaBlob encodes the checkpoint metadata: OID high-water mark, logical
// clock, DSL class sequence, and — since the demand-paging refactor — the
// heap-class catalog (a class-name string table plus OID → class-index
// pairs), so a clean open enumerates the heap population without scanning
// and decoding every page.
func (db *Database) metaBlob() []byte {
	buf := binary.AppendUvarint(nil, uint64(db.alloc.HighWater()))
	buf = binary.AppendUvarint(buf, db.clock.Load())
	buf = binary.AppendUvarint(buf, uint64(db.dslClassSeq))

	db.catMu.RLock()
	classIdx := make(map[string]int)
	var classes []string
	for _, cls := range db.heapCat {
		if _, ok := classIdx[cls]; !ok {
			classIdx[cls] = len(classes)
			classes = append(classes, cls)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(classes)))
	for _, cls := range classes {
		buf = binary.AppendUvarint(buf, uint64(len(cls)))
		buf = append(buf, cls...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(db.heapCat)))
	for id, cls := range db.heapCat {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(classIdx[cls]))
	}
	db.catMu.RUnlock()
	// Trailing replication position (absent in pre-replication
	// checkpoints; loadMeta treats both fields as optional). LSN and epoch
	// are written together so a checkpoint can never persist a new epoch
	// with the other history's LSN or vice versa.
	lsn, epoch := db.replPosition()
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, epoch)
	return buf
}

// loadMeta decodes the checkpoint metadata, returning whether a heap-class
// catalog was present and well-formed (pre-paging checkpoints lack it; the
// caller falls back to a heap scan).
func (db *Database) loadMeta(buf []byte) (catalogLoaded bool) {
	hw, n := binary.Uvarint(buf)
	if n <= 0 {
		return false
	}
	db.alloc.Advance(oid.OID(hw))
	buf = buf[n:]
	clk, n := binary.Uvarint(buf)
	if n <= 0 {
		return false
	}
	for db.clock.Load() < clk {
		db.clock.Store(clk)
	}
	buf = buf[n:]
	seq, n := binary.Uvarint(buf)
	if n <= 0 {
		return false
	}
	if int(seq) > db.dslClassSeq {
		db.dslClassSeq = int(seq)
	}
	buf = buf[n:]

	nClasses, n := binary.Uvarint(buf)
	if n <= 0 {
		return false
	}
	buf = buf[n:]
	classes := make([]string, 0, nClasses)
	for i := uint64(0); i < nClasses; i++ {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf[n:])) < l {
			return false
		}
		buf = buf[n:]
		classes = append(classes, string(buf[:l]))
		buf = buf[l:]
	}
	nEntries, n := binary.Uvarint(buf)
	if n <= 0 {
		return false
	}
	buf = buf[n:]
	cat := make(map[oid.OID]string, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		id, n := binary.Uvarint(buf)
		if n <= 0 {
			return false
		}
		buf = buf[n:]
		ci, n := binary.Uvarint(buf)
		if n <= 0 || ci >= uint64(len(classes)) {
			return false
		}
		buf = buf[n:]
		cat[oid.OID(id)] = classes[ci]
	}
	db.catMu.Lock()
	db.heapCat = cat
	db.catNames = make(map[string]string, len(classes))
	for _, cls := range classes {
		db.catNames[cls] = cls
	}
	db.catMu.Unlock()
	// Optional trailing replication LSN + epoch (pre-replication
	// checkpoints end before the LSN, pre-failover ones before the epoch).
	// openStorage adds the committed batches replayed from the WAL on top
	// of this LSN base; the epoch carries over as-is.
	if lsn, n := binary.Uvarint(buf); n > 0 {
		buf = buf[n:]
		db.replMu.Lock()
		db.replLSN = lsn
		if epoch, n := binary.Uvarint(buf); n > 0 {
			db.replEpoch = epoch
		}
		db.replMu.Unlock()
	}
	return true
}

func (db *Database) walPath() string { return filepath.Join(db.opts.Dir, "sentinel.wal") }

// Names returns all bound names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.names))
	for n := range db.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DescribeObject renders an object with its class and public attributes,
// under a shared lock.
func (db *Database) DescribeObject(t *Tx, id oid.OID) string {
	o, err := db.lockObject(t, id, txn.Shared)
	if err != nil {
		return fmt.Sprintf("%s <%v>", id, err)
	}
	return o.String()
}

// NamedEvents returns the names of all cataloged event definitions, sorted.
func (db *Database) NamedEvents() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.namedEvents))
	for n := range db.namedEvents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
