package core

// Observability-layer tests: the instrumentation must not tax the event
// fast path (raising and firing stay allocation-free with metrics on),
// tracer hooks fire exactly at the documented points, Metrics/Stats
// snapshots are safe under concurrent churn, Close drains detached
// firings it races with, Options.Validate rejects nonsense, and the
// MetricsAddr listener serves what the registry holds. These live in
// package core so the allocation pins can drive raise directly.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error; "" = valid
	}{
		{"zero value", Options{}, ""},
		{"negative pool", Options{PoolPages: -1}, "PoolPages"},
		{"negative cascade", Options{MaxCascadeDepth: -2}, "MaxCascadeDepth"},
		{"negative resident", Options{MaxResidentObjects: -1}, "MaxResidentObjects"},
		{"negative slow threshold", Options{SlowRuleThreshold: -time.Second}, "SlowRuleThreshold"},
		{"negative sampling", Options{MetricsSampling: -1}, "MetricsSampling"},
		{"unknown strategy", Options{Strategy: "random"}, "strategy"},
		{"ceiling without dir", Options{MaxResidentObjects: 8}, "Dir is empty"},
		{"eager without dir", Options{EagerLoad: true}, "Dir is empty"},
		{"eager with ceiling", Options{Dir: "x", EagerLoad: true, MaxResidentObjects: 8}, "pick one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}

	// Open must reject what Validate rejects, before touching storage.
	if _, err := Open(Options{PoolPages: -1}); err == nil {
		t.Fatal("Open accepted invalid options")
	}
	// Multiple problems are all reported at once.
	err := Options{PoolPages: -1, MetricsSampling: -1}.Validate()
	if err == nil || !strings.Contains(err.Error(), "PoolPages") || !strings.Contains(err.Error(), "MetricsSampling") {
		t.Fatalf("Validate did not join both errors: %v", err)
	}
}

// raiseFiringAllocs opens a database with the given options, subscribes a
// condition-false rule to one P instance, and returns the steady-state
// allocations of a raise that notifies the rule and runs its condition,
// plus the allocations of a raise with no consumers at all.
func raiseFiringAllocs(t *testing.T, opts Options) (withRule, noConsumer float64) {
	t.Helper()
	db := MustOpen(opts)
	ids := hotPathClass(t, db, 2)
	quiet, watched := ids[0], ids[1]
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name:     "w",
			EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) {
				return false, nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, watched, r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	defer db.Abort(tx)
	src := db.objectByID(watched)
	quietSrc := db.objectByID(quiet)
	args := []value.Value{value.Float(1)}
	// Warm the consumer cache and the frame pool.
	for i := 0; i < 3; i++ {
		if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	withRule = testing.AllocsPerRun(200, func() {
		if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	noConsumer = testing.AllocsPerRun(200, func() {
		if err := db.raise(tx, quietSrc, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	// The counters really were fed the whole time.
	s := db.Stats()
	if s.Events.Raised == 0 || s.Rules.ConditionsRun == 0 {
		t.Fatalf("metrics missed the workload: %+v", s)
	}
	return withRule, noConsumer
}

// TestRaiseZeroAllocsWithMetrics pins the overhead contract of the
// observability layer: with the metric registry live (it always is) and no
// tracer installed, the raise fast path allocates exactly what it did
// before instrumentation — nothing on the no-consumer path, and timing a
// firing (forced by SlowRuleThreshold, which routes every firing through
// the histogram/slow-log epilogue) adds zero allocations over the untimed
// firing path.
func TestRaiseZeroAllocsWithMetrics(t *testing.T) {
	// sampleN so large the 1-in-N timer never triggers during the test:
	// the pure untimed baseline.
	base, baseQuiet := raiseFiringAllocs(t, Options{Output: io.Discard, MetricsSampling: 1 << 30})
	if baseQuiet != 0 {
		t.Errorf("raise with no consumers, metrics on: %v allocs/op, want 0", baseQuiet)
	}

	// Every firing timed: histograms, per-rule stats, slow-rule check.
	forced, forcedQuiet := raiseFiringAllocs(t, Options{Output: io.Discard, SlowRuleThreshold: time.Hour})
	if forcedQuiet != 0 {
		t.Errorf("raise with no consumers, forced timing: %v allocs/op, want 0", forcedQuiet)
	}
	if forced != base {
		t.Errorf("timed firing allocates %v/op vs %v/op untimed; timing must be allocation-free", forced, base)
	}
}

// TestTracerHooks drives every in-memory hook site and verifies each
// callback fires with sensible payloads, and that SetTracer(nil) silences
// them again.
func TestTracerHooks(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hotPathClass(t, db, 1)
	watched := ids[0]
	var fired atomic.Uint64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name:     "probe",
			EventSrc: "end P::Set(float v)",
			Action: func(rule.ExecContext, event.Detection) error {
				fired.Add(1)
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, watched, r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	var occ, det, sched, ruleFired, begin, commit, abort atomic.Uint64
	var lastOcc obs.OccurrenceInfo
	var lastFire obs.RuleFireInfo
	var mu sync.Mutex
	db.SetTracer(&obs.Tracer{
		OccurrenceRaised: func(i obs.OccurrenceInfo) {
			mu.Lock()
			lastOcc = i
			mu.Unlock()
			occ.Add(1)
		},
		CompositeDetected: func(obs.DetectionInfo) { det.Add(1) },
		RuleScheduled:     func(obs.RuleScheduleInfo) { sched.Add(1) },
		RuleFired: func(i obs.RuleFireInfo) {
			mu.Lock()
			lastFire = i
			mu.Unlock()
			ruleFired.Add(1)
		},
		TxBegin:  func(obs.TxInfo) { begin.Add(1) },
		TxCommit: func(obs.TxInfo) { commit.Add(1) },
		TxAbort:  func(obs.TxInfo) { abort.Add(1) },
	})

	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, watched, "Set", value.Float(2))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	atx := db.Begin()
	if _, err := db.Send(atx, watched, "Set", value.Float(3)); err != nil {
		t.Fatal(err)
	}
	db.Abort(atx)

	if occ.Load() != 2 || det.Load() != 2 || sched.Load() != 2 || ruleFired.Load() != 2 {
		t.Fatalf("hook counts: occ=%d det=%d sched=%d fired=%d, want 2 each",
			occ.Load(), det.Load(), sched.Load(), ruleFired.Load())
	}
	if begin.Load() != 2 || commit.Load() != 1 || abort.Load() != 1 {
		t.Fatalf("tx hooks: begin=%d commit=%d abort=%d, want 2/1/1",
			begin.Load(), commit.Load(), abort.Load())
	}
	mu.Lock()
	if lastOcc.Class != "P" || lastOcc.Method != "Set" || lastOcc.Moment != "end" || lastOcc.Seq == 0 {
		t.Fatalf("OccurrenceInfo = %+v", lastOcc)
	}
	if lastFire.Rule != "probe" || !lastFire.Fired || lastFire.Coupling != "immediate" {
		t.Fatalf("RuleFireInfo = %+v", lastFire)
	}
	mu.Unlock()
	if fired.Load() != 2 {
		t.Fatalf("rule action ran %d times, want 2", fired.Load())
	}

	db.SetTracer(nil)
	before := occ.Load()
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, watched, "Set", value.Float(4))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if occ.Load() != before {
		t.Fatal("tracer still firing after SetTracer(nil)")
	}
}

// TestTracerStorageHooks drives the persistence hook sites: WAL appends and
// fsyncs on commit, page faults and evictions under a residency ceiling.
func TestTracerStorageHooks(t *testing.T) {
	db := MustOpen(Options{
		Output:             io.Discard,
		Dir:                t.TempDir(),
		SyncOnCommit:       true,
		MaxResidentObjects: 8,
	})
	defer db.Close()
	var appends, fsyncs, faults, evicts atomic.Uint64
	db.SetTracer(&obs.Tracer{
		WALAppend: func(i obs.WALInfo) {
			if i.Bytes <= 0 {
				t.Errorf("WALAppend with %d bytes", i.Bytes)
			}
			appends.Add(1)
		},
		WALFsync:  func(obs.WALInfo) { fsyncs.Add(1) },
		PageFault: func(obs.PageInfo) { faults.Add(1) },
		PageEvict: func(i obs.PageInfo) {
			if i.Evicted <= 0 {
				t.Errorf("PageEvict with %d evicted", i.Evicted)
			}
			evicts.Add(1)
		},
	})

	cls := mkPersistentClass(t, db)
	_ = cls
	const n = 64
	ids := mkPersistentObjects(t, db, n)
	// Touch the whole population twice: the ceiling forces eviction churn
	// and cold touches fault back in.
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			if err := db.Atomically(func(tx *Tx) error {
				_, err := db.GetSys(tx, id, "x")
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if appends.Load() == 0 || fsyncs.Load() == 0 {
		t.Fatalf("WAL hooks: appends=%d fsyncs=%d, want both > 0", appends.Load(), fsyncs.Load())
	}
	if faults.Load() == 0 || evicts.Load() == 0 {
		t.Fatalf("paging hooks: faults=%d evicts=%d, want both > 0", faults.Load(), evicts.Load())
	}
	// The always-timed storage histograms were fed too.
	m := db.Metrics()
	for _, name := range []string{"sentinel_wal_append_ns", "sentinel_wal_fsync_ns", "sentinel_fault_in_ns", "sentinel_tx_commit_ns"} {
		if h, ok := m.Histogram(name); !ok || h.Count == 0 {
			t.Errorf("histogram %s empty after persistent workload", name)
		}
	}
}

// mkPersistentClass registers a minimal persistent reactive class PX.
func mkPersistentClass(t *testing.T, db *Database) string {
	t.Helper()
	if err := db.Exec(`
		class PX reactive persistent {
			attr x float
			event end method Set(v float) { self.x := v }
		}
	`); err != nil {
		t.Fatal(err)
	}
	return "PX"
}

// mkPersistentObjects creates n PX instances in one transaction.
func mkPersistentObjects(t *testing.T, db *Database, n int) []oid.OID {
	t.Helper()
	out := make([]oid.OID, 0, n)
	if err := db.Atomically(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			id, err := db.NewObject(tx, "PX", map[string]value.Value{"x": value.Float(float64(i))})
			if err != nil {
				return err
			}
			out = append(out, id)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConcurrentMetricsUnderChurn snapshots Metrics and Stats while
// senders hammer the event path; meaningful mainly under -race, and pins
// that snapshots see monotonically advancing counters.
func TestConcurrentMetricsUnderChurn(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, MetricsSampling: 1})
	const pool = 4
	ids := hotPathClass(t, db, pool)
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "churn", EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := db.Subscribe(tx, id, r.ID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, ids[(g+i)%pool], "Set", value.Float(float64(i)))
					return err
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// Snapshot continuously until the senders have demonstrably done real
	// work, so the final histogram assertions cannot race a slow start.
	var lastRaised, lastCommits uint64
	for i := 0; lastRaised < 200; i++ {
		m := db.Metrics()
		s := db.Stats()
		raised, ok := m.Counter("sentinel_events_raised_total")
		if !ok {
			t.Fatal("sentinel_events_raised_total missing from snapshot")
		}
		if raised < lastRaised {
			t.Fatalf("counter went backwards: %d -> %d", lastRaised, raised)
		}
		lastRaised = raised
		if h, ok := m.Histogram("sentinel_tx_commit_ns"); ok {
			if h.Count < lastCommits {
				t.Fatalf("commit histogram count went backwards: %d -> %d", lastCommits, h.Count)
			}
			lastCommits = h.Count
		}
		if s.Events.Raised < s.Events.Detections {
			t.Fatalf("raised (%d) < detections (%d)?", s.Events.Raised, s.Events.Detections)
		}
		runtime.Gosched()
	}
	close(done)
	wg.Wait()

	m := db.Metrics()
	if h, ok := m.Histogram("sentinel_rule_firing_ns"); !ok || h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("firing histogram after churn: %+v", h)
	}
	if h, ok := m.Histogram("sentinel_tx_commit_ns"); !ok || h.Count == 0 || h.P95 < h.P50 {
		t.Fatalf("commit histogram after churn: %+v", h)
	}
}

// TestCloseDrainsDetachedFirings pins the Close ordering contract: every
// detached firing dispatched before Close must have executed by the time
// Close returns, even when the background worker is still mid-queue.
func TestCloseDrainsDetachedFirings(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, AsyncDetached: true})
	ids := hotPathClass(t, db, 1)
	var ran atomic.Uint64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "d", EventSrc: "end P::Set(float v)", Coupling: "detached",
			Action: func(rule.ExecContext, event.Detection) error {
				ran.Add(1)
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	const sends = 50
	for i := 0; i < sends; i++ {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, ids[0], "Set", value.Float(float64(i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != sends {
		t.Fatalf("detached actions ran %d times after Close, want %d", got, sends)
	}
}

// TestCloseRacesDetachedDispatch races committers that schedule detached
// firings against Close. Run under -race this validates the shutdown
// handshake; the final assertion validates the no-drop guarantee: every
// send whose commit was accepted by the pool executes its detached action
// exactly once (on a worker or in Close's drain), while commits that lost
// the race report ErrDetachedStopped instead of silently dropping work.
func TestCloseRacesDetachedDispatch(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, AsyncDetached: true})
	const pool = 4
	ids := hotPathClass(t, db, pool)
	var ran atomic.Uint64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "d", EventSrc: "end P::Set(float v)", Coupling: "detached",
			Action: func(rule.ExecContext, event.Detection) error {
				ran.Add(1)
				return nil
			},
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := db.Subscribe(tx, id, r.ID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var accepted, rejected atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, ids[(g+i)%pool], "Set", value.Float(1))
					return err
				})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrDetachedStopped):
					// Lost the race with Close: the write is durable but
					// the firing was refused. Stop sending.
					rejected.Add(1)
					return
				default:
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// Let the senders build a queue, then close under them.
	for ran.Load() < 20 {
		runtime.Gosched()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	// Close drains everything the pool accepted, so once the senders are
	// quiescent the counts must match exactly: no accepted firing dropped,
	// no rejected firing executed.
	if ran.Load() != accepted.Load() {
		t.Fatalf("detached actions ran %d times for %d accepted sends (%d rejected with ErrDetachedStopped)",
			ran.Load(), accepted.Load(), rejected.Load())
	}
}

// TestMetricsEndpoint opens a database with a live listener and scrapes
// both formats end to end.
func TestMetricsEndpoint(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, MetricsAddr: "127.0.0.1:0", MetricsSampling: 1})
	defer db.Close()
	addr := db.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with a configured listener")
	}
	ids := hotPathClass(t, db, 1)
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "w", EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) { return false, nil },
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, ids[0], "Set", value.Float(float64(i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"sentinel_sends_total",
		"sentinel_tx_commit_seconds{quantile=\"0.5\"}",
		"sentinel_rule_firing_seconds_count",
		"sentinel_rules_defined 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if v, ok := vars["sentinel_sends_total"].(float64); !ok || v < 32 {
		t.Fatalf("expvar sentinel_sends_total = %v, want >= 32", vars["sentinel_sends_total"])
	}

	// The snapshot API agrees with the scrape.
	if h, ok := db.Metrics().Histogram("sentinel_tx_commit_ns"); !ok || h.Count < 32 || h.P50 <= 0 {
		t.Fatalf("commit histogram: %+v", h)
	}

	// A second database cannot bind the same port: Open must fail fast and
	// not leak the half-open database.
	if _, err := Open(Options{Output: io.Discard, MetricsAddr: addr}); err == nil {
		t.Fatal("second Open bound an already-used metrics address")
	}
}

// TestSlowRuleLog pins the slow-rule pipeline: a threshold of 1ns marks
// every firing slow, the counter and ring fill, and entries carry timings.
func TestSlowRuleLog(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, SlowRuleThreshold: time.Nanosecond})
	ids := hotPathClass(t, db, 1)
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "laggard", EventSrc: "end P::Set(float v)",
			Action: func(rule.ExecContext, event.Detection) error { return nil },
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	const sends = 10
	for i := 0; i < sends; i++ {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, ids[0], "Set", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	entries, total := db.SlowRules()
	if total != sends || len(entries) != sends {
		t.Fatalf("slow log: %d entries, %d total, want %d/%d", len(entries), total, sends, sends)
	}
	e := entries[0]
	if e.Rule != "laggard" || e.Total <= 0 || !e.Fired {
		t.Fatalf("slow entry: %+v", e)
	}
	if db.Stats().Rules.SlowFirings != sends {
		t.Fatalf("SlowFirings = %d, want %d", db.Stats().Rules.SlowFirings, sends)
	}

	// Per-rule execution stats accumulated via the forced timing.
	r := db.LookupRule("laggard")
	if r == nil {
		t.Fatal("rule lookup failed")
	}
	timed, totalDur, maxDur := r.ExecStats()
	if timed != sends || totalDur <= 0 || maxDur <= 0 {
		t.Fatalf("ExecStats = %d, %v, %v", timed, totalDur, maxDur)
	}
}
