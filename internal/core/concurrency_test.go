package core

// Internal tests for the event-propagation fast path: the zero-allocation
// guarantee of the cached consumer-resolution path, and a -race stress test
// exercising concurrent Sends against live rule churn. These live in
// package core (not core_test) because they pin down unexported internals
// (raise, consumersOf) that the public API intentionally hides.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// hotPathClass registers a reactive class P with one declared event method
// Set(float v) and returns n fresh instances.
func hotPathClass(t *testing.T, db *Database, n int) []oid.OID {
	t.Helper()
	cls := schema.NewClass("P")
	cls.Classification = schema.ReactiveClass
	cls.Attr("x", value.TypeFloat)
	cls.AddMethod(&schema.Method{
		Name:       "Set",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("x", ctx.Arg(0))
		},
	})
	db.MustRegisterClass(cls)
	ids := make([]oid.OID, n)
	if err := db.Atomically(func(tx *Tx) error {
		for i := range ids {
			var err error
			if ids[i], err = db.NewObject(tx, "P", nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestRaiseHotPathZeroAllocs pins the allocation contract of the fast path:
// once the consumer cache is warm, raising an event on an object with no
// consumers allocates nothing (the Occurrence is never even built), and
// consumer resolution for a subscribed object is likewise allocation-free
// (the cached slices are returned as-is).
func TestRaiseHotPathZeroAllocs(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hotPathClass(t, db, 2)
	quiet, watched := ids[0], ids[1]

	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name:     "w",
			EventSrc: "end P::Set(float v)",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) {
				return false, nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, watched, r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	defer db.Abort(tx)
	src := db.objectByID(quiet)
	args := []value.Value{value.Float(1)}

	// Warm the cache, then measure.
	if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("raise with no consumers: %v allocs/op, want 0", n)
	}

	watchedObj := db.objectByID(watched)
	db.consumersOf(watchedObj) // warm
	if n := testing.AllocsPerRun(200, func() {
		rules, fns := db.consumersOf(watchedObj)
		if len(rules) != 1 || len(fns) != 0 {
			t.Fatalf("consumersOf = %d rules, %d fns; want 1, 0", len(rules), len(fns))
		}
	}); n != 0 {
		t.Errorf("cached consumersOf: %v allocs/op, want 0", n)
	}
}

// TestRaiseHotPathZeroAllocsPaged pins the same allocation contract on a
// persistent database under eviction pressure: once a transaction has
// locked (and thereby pinned) an object, re-locking it and raising events
// on it allocate nothing — demand paging must not tax the resident-hit
// fast path.
func TestRaiseHotPathZeroAllocsPaged(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, Dir: t.TempDir(), MaxResidentObjects: 8})
	defer db.Close()
	cls := schema.NewClass("PP")
	cls.Classification = schema.ReactiveClass
	cls.Persistent = true
	cls.Attr("x", value.TypeFloat)
	cls.AddMethod(&schema.Method{
		Name:       "Set",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("x", ctx.Arg(0))
		},
	})
	db.MustRegisterClass(cls)
	const pop = 64
	ids := make([]oid.OID, pop)
	if err := db.Atomically(func(tx *Tx) error {
		for i := range ids {
			var err error
			if ids[i], err = db.NewObject(tx, "PP", nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Touch everything so the clock has churned well past the ceiling.
	for _, id := range ids {
		if db.objectByID(id) == nil {
			t.Fatalf("object %s unreachable", id)
		}
	}
	if db.Stats().Storage.Evictions == 0 {
		t.Fatal("no evictions: test is not exercising paging")
	}

	tx := db.Begin()
	defer db.Abort(tx)
	src, err := db.lockObject(tx, ids[0], txn.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	args := []value.Value{value.Float(1)}
	if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := db.raise(tx, src, "Set", event.End, args, nil, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("paged raise with no consumers: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		o, err := db.lockObject(tx, ids[0], txn.Exclusive)
		if err != nil || o == nil {
			t.Fatal("re-lock failed")
		}
	}); n != 0 {
		t.Errorf("pinned re-lock: %v allocs/op, want 0", n)
	}
}

// TestConcurrentSendRuleChurn runs Sends from several goroutines over a
// shared object pool while another goroutine creates and deletes rules
// subscribed to the same objects. Run under -race this validates the lock
// discipline of the fast path; the probe assertions validate the epoch
// semantics: a subscription committed before a Send is seen by it, and a
// rule deleted before a Send never fires in it.
func TestConcurrentSendRuleChurn(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	const pool = 8
	ids := hotPathClass(t, db, pool+1)
	probe := ids[pool]

	// A stable class-level rule keeps the class-cache path hot for every
	// sender.
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.CreateRule(tx, RuleSpec{
			Name: "stable", EventSrc: "end P::Set(float v)", ClassLevel: "P",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) {
				return false, nil
			},
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var sendErr atomic.Value
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, ids[(g+i)%pool], "Set", value.Float(float64(i)))
					return err
				}); err != nil {
					sendErr.Store(err)
					return
				}
			}
		}(g)
	}

	// Churn: each round subscribes a fresh rule to the probe object and to
	// pool[0] (shared with the senders), verifies it fires for a probe
	// Send, deletes it, and verifies it no longer fires. probeFired counts
	// only probe-sourced firings, so concurrent sender traffic on pool[0]
	// cannot perturb the assertions.
	var probeFired atomic.Uint64
	for k := 0; k < 40; k++ {
		name := fmt.Sprintf("churn%d", k)
		if err := db.Atomically(func(tx *Tx) error {
			r, err := db.CreateRule(tx, RuleSpec{
				Name: name, EventSrc: "end P::Set(float v)",
				Action: func(_ rule.ExecContext, det event.Detection) error {
					if det.Last().Source == probe {
						probeFired.Add(1)
					}
					return nil
				},
			})
			if err != nil {
				return err
			}
			if err := db.Subscribe(tx, probe, r.ID()); err != nil {
				return err
			}
			return db.Subscribe(tx, ids[0], r.ID())
		}); err != nil {
			t.Fatal(err)
		}

		before := probeFired.Load()
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, probe, "Set", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got := probeFired.Load(); got != before+1 {
			t.Fatalf("round %d: subscribed rule fired %d times for one probe send, want 1", k, got-before)
		}

		if err := db.Atomically(func(tx *Tx) error {
			return db.DeleteRule(tx, name)
		}); err != nil {
			t.Fatal(err)
		}

		before = probeFired.Load()
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, probe, "Set", value.Float(2))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got := probeFired.Load(); got != before {
			t.Fatalf("round %d: rule %s fired after deletion", k, name)
		}
	}

	close(done)
	wg.Wait()
	if err := sendErr.Load(); err != nil {
		t.Fatalf("concurrent sender failed: %v", err)
	}
}

// TestConcurrentSendSchemaChurn races 8 senders against rule
// enable/disable flips AND repeated EvolveClass of the very class being
// sent to — the worst case for selective invalidation, since evolve
// exclusively locks every instance while class-scoped invalidation sweeps
// the subtree's entries. Senders tolerate deadlock aborts (2PL may break a
// cycle with the evolver); any other error fails the test, and a probe
// round at the end verifies the cache converged to the final catalog.
func TestConcurrentSendSchemaChurn(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	const pool = 8
	ids := hotPathClass(t, db, pool+1)
	probe := ids[pool]

	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.CreateRule(tx, RuleSpec{
			Name: "flappy", EventSrc: "end P::Set(float v)", ClassLevel: "P",
			Condition: func(rule.ExecContext, event.Detection) (bool, error) {
				return false, nil
			},
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var hardErr atomic.Value
	for g := 0; g < pool; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, ids[(g+i)%pool], "Set", value.Float(float64(i)))
					return err
				})
				if err != nil && !errors.Is(err, txn.ErrDeadlock) {
					hardErr.Store(err)
					return
				}
			}
		}(g)
	}

	// Churner 1: enable/disable flips (scopeNone — Notify filters).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			err := db.Atomically(func(tx *Tx) error {
				if i%2 == 0 {
					return db.DisableRule(tx, "flappy")
				}
				return db.EnableRule(tx, "flappy")
			})
			if err != nil && !errors.Is(err, txn.ErrDeadlock) {
				hardErr.Store(err)
				return
			}
		}
	}()

	// Churner 2: evolve P itself, 30 rounds (each exclusively locks every
	// instance, migrates it, and sweeps the class-scope blast radius).
	for round := 0; round < 30; round++ {
		if hardErr.Load() != nil {
			break
		}
		extra := fmt.Sprintf("gen%d", round%3)
		err := db.Atomically(func(tx *Tx) error {
			c := schema.NewClass("P")
			c.Classification = schema.ReactiveClass
			c.Attr("x", value.TypeFloat)
			c.Attr(extra, value.TypeInt)
			c.AddMethod(&schema.Method{
				Name:       "Set",
				Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
				Visibility: schema.Public,
				EventGen:   schema.GenEnd,
				Body: func(ctx schema.CallContext) (value.Value, error) {
					return value.Nil, ctx.Set("x", ctx.Arg(0))
				},
			})
			return db.EvolveClass(tx, c, "")
		})
		if err != nil && !errors.Is(err, txn.ErrDeadlock) {
			t.Fatalf("evolve round %d: %v", round, err)
		}
	}

	close(done)
	wg.Wait()
	if err := hardErr.Load(); err != nil {
		t.Fatalf("concurrent worker failed: %v", err)
	}

	// Convergence probe: a fresh instance subscription on the probe object
	// fires exactly once per send, and the stable class rule resolves
	// through the evolved class.
	var probeFired atomic.Uint64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "probe", EventSrc: "end P::Set(float v)",
			Action: func(_ rule.ExecContext, det event.Detection) error {
				if det.Last().Source == probe {
					probeFired.Add(1)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, probe, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, probe, "Set", value.Float(9))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := probeFired.Load(); got != 1 {
		t.Fatalf("probe rule fired %d times for one send, want 1", got)
	}
	rules, _ := db.consumersOf(db.objectByID(probe))
	if len(rules) != 2 { // probe (instance) + flappy (class)
		t.Fatalf("probe consumer set has %d rules after churn, want 2", len(rules))
	}
}
