package core_test

// Demand-paging tests: with Options.MaxResidentObjects set below the
// population, the database must behave exactly like the fully-resident
// configuration — every read faults the right object back in, deletes and
// aborts keep their semantics, dumps and integrity checks see the whole
// population — while the resident set stays bounded.

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

func pagedOpts(dir string, maxResident int) core.Options {
	o := core.Options{Dir: dir, Output: io.Discard, MaxResidentObjects: maxResident}
	o.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
	return o
}

func mkEmployees(t *testing.T, db *core.Database, n int) []oid.OID {
	t.Helper()
	ids := make([]oid.OID, n)
	for lo := 0; lo < n; lo += 50 {
		hi := lo + 50
		if hi > n {
			hi = n
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			for i := lo; i < hi; i++ {
				var err error
				ids[i], err = db.NewObject(tx, "Employee", map[string]value.Value{
					"name":   value.Str(fmt.Sprintf("e%d", i)),
					"salary": value.Float(float64(1000 + i)),
				})
				if err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func salaryOf(t *testing.T, db *core.Database, id oid.OID) float64 {
	t.Helper()
	var got float64
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.GetSys(tx, id, "salary")
		if err != nil {
			return err
		}
		got, _ = v.Numeric()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestPagedFullTouchTransparency creates a population several times larger
// than the resident ceiling, reads every object repeatedly, and checks that
// values, scans, dumps and the integrity checker all behave as if everything
// were resident — while the directory stays bounded and the fault/eviction
// counters prove paging actually happened.
func TestPagedFullTouchTransparency(t *testing.T) {
	const n, maxRes = 300, 48
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, maxRes))
	defer db.Close()
	ids := mkEmployees(t, db, n)

	for pass := 0; pass < 3; pass++ {
		for i, id := range ids {
			if got := salaryOf(t, db, id); got != float64(1000+i) {
				t.Fatalf("pass %d: employee %d salary = %v, want %d", pass, i, got, 1000+i)
			}
		}
	}

	s := db.Stats()
	if s.Objects.Total < n {
		t.Fatalf("Objects.Total = %d, want >= %d", s.Objects.Total, n)
	}
	if s.Objects.Resident >= n {
		t.Fatalf("Objects.Resident = %d: nothing was ever evicted (population %d, max %d)",
			s.Objects.Resident, n, maxRes)
	}
	if s.Storage.Faults == 0 || s.Storage.Evictions == 0 {
		t.Fatalf("Faults = %d, Evictions = %d: paging never engaged", s.Storage.Faults, s.Storage.Evictions)
	}

	got := db.InstancesOf("Employee")
	if len(got) != n {
		t.Fatalf("InstancesOf(Employee) = %d instances, want %d", len(got), n)
	}
	db.MustBeConsistent()
}

// TestPagedDumpMatchesEager: the dump of a demand-paged database must be
// byte-identical to the dump of the same directory opened fully resident.
func TestPagedDumpMatchesEager(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, 32))
	mkEmployees(t, db, 200)
	var paged strings.Builder
	if err := db.DumpDSL(&paged); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	eagerOpts := pagedOpts(dir, 0) // no ceiling
	eagerOpts.EagerLoad = true
	db2 := core.MustOpen(eagerOpts)
	defer db2.Close()
	var eager strings.Builder
	if err := db2.DumpDSL(&eager); err != nil {
		t.Fatal(err)
	}
	if paged.String() != eager.String() {
		t.Fatalf("paged dump differs from eager dump:\n-- paged --\n%s\n-- eager --\n%s",
			paged.String(), eager.String())
	}
}

// TestColdOpenLazy: a reopen must NOT materialize the application objects;
// they fault in on first touch.
func TestColdOpenLazy(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, 0))
	ids := mkEmployees(t, db, n)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := core.MustOpen(pagedOpts(dir, 64))
	defer db2.Close()
	s := db2.Stats()
	if s.Objects.Total < n {
		t.Fatalf("Objects.Total = %d after reopen, want >= %d", s.Objects.Total, n)
	}
	if s.Objects.Resident >= n/2 {
		t.Fatalf("cold open materialized %d of %d objects", s.Objects.Resident, n)
	}
	for i, id := range ids {
		if got := salaryOf(t, db2, id); got != float64(1000+i) {
			t.Fatalf("employee %d after cold open: salary = %v, want %d", i, got, 1000+i)
		}
	}
	if s2 := db2.Stats(); s2.Storage.Faults < uint64(n) {
		t.Fatalf("Faults = %d after touching %d cold objects", s2.Storage.Faults, n)
	}
	db2.MustBeConsistent()
}

// TestPagedCrashRecovery: paging and the no-steal redo protocol compose.
func TestPagedCrashRecovery(t *testing.T) {
	const n = 120
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, 32))
	ids := mkEmployees(t, db, n)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint committed updates live only in the WAL.
	if err := db.Atomically(func(tx *core.Tx) error {
		for _, id := range ids[:10] {
			if err := db.SetSys(tx, id, "salary", value.Float(7)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := core.Open(pagedOpts(dir, 32))
	if err != nil {
		t.Fatalf("crash recovery with paging: %v", err)
	}
	defer db2.Close()
	for i, id := range ids {
		want := float64(1000 + i)
		if i < 10 {
			want = 7
		}
		if got := salaryOf(t, db2, id); got != want {
			t.Fatalf("employee %d after recovery: salary = %v, want %v", i, got, want)
		}
	}
	db2.MustBeConsistent()
}

// TestPagedDeleteAndAbort: deleting a cold object faults it in, tombstones
// it (invisible, not resurrectable), and abort restores it untouched.
func TestPagedDeleteAndAbort(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, 0))
	ids := mkEmployees(t, db, 100)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := core.MustOpen(pagedOpts(dir, 16))
	defer db2.Close()
	victim := ids[42]

	// Abort path.
	tx := db2.Begin()
	if err := db2.DeleteObject(tx, victim); err != nil {
		t.Fatal(err)
	}
	db2.Abort(tx)
	if got := salaryOf(t, db2, victim); got != 1042 {
		t.Fatalf("aborted delete: salary = %v, want 1042", got)
	}

	// Commit path.
	if err := db2.Atomically(func(tx *core.Tx) error {
		return db2.DeleteObject(tx, victim)
	}); err != nil {
		t.Fatal(err)
	}
	if db2.Exists(victim) {
		t.Fatal("deleted object still visible")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := core.MustOpen(pagedOpts(dir, 16))
	defer db3.Close()
	if db3.Exists(victim) {
		t.Fatal("deleted object resurrected on reopen")
	}
	db3.MustBeConsistent()
}

// TestAutoCheckpoint: with a tiny CheckpointBytes threshold every commit
// triggers a checkpoint, the counter advances, and the WAL stays short.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := pagedOpts(dir, 0)
	opts.CheckpointBytes = 1
	db := core.MustOpen(opts)
	defer db.Close()

	before := db.Stats().Storage.Checkpoints
	mkEmployees(t, db, 100) // 2 batches of 50
	s := db.Stats()
	if s.Storage.Checkpoints <= before {
		t.Fatalf("Checkpoints = %d (was %d): auto-checkpoint never fired", s.Storage.Checkpoints, before)
	}
	if sz := db.WALSize(); sz > 4096 {
		t.Fatalf("WAL = %d bytes despite per-commit checkpoints", sz)
	}

	// Negative threshold disables the trigger entirely.
	dir2 := t.TempDir()
	opts2 := pagedOpts(dir2, 0)
	opts2.CheckpointBytes = -1
	db2 := core.MustOpen(opts2)
	defer db2.Close()
	b2 := db2.Stats().Storage.Checkpoints
	mkEmployees(t, db2, 100)
	if got := db2.Stats().Storage.Checkpoints; got != b2 {
		t.Fatalf("Checkpoints moved %d -> %d with auto-checkpoint disabled", b2, got)
	}
	if db2.WALSize() == 0 {
		t.Fatal("WAL empty: commits were not logged?")
	}
}

// TestPagedConcurrentChurn hammers a small resident ceiling from several
// goroutines doing reads, writes and scans; meaningful mainly under -race.
func TestPagedConcurrentChurn(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	db := core.MustOpen(pagedOpts(dir, 24))
	defer db.Close()
	ids := mkEmployees(t, db, n)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				id := ids[rng.Intn(n)]
				err := db.Atomically(func(tx *core.Tx) error {
					if i%3 == 0 {
						return db.SetSys(tx, id, "salary", value.Float(float64(rng.Intn(5000))))
					}
					_, err := db.GetSys(tx, id, "salary")
					return err
				})
				if err != nil && !core.IsAbort(err) {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if len(db.InstancesOf("Employee")) != n {
		t.Fatal("population changed under churn")
	}
	db.MustBeConsistent()
}

// TestPagedEvolveColdInstances: schema evolution must migrate instances
// that are not resident (they get faulted in before the registry swap).
func TestPagedEvolveColdInstances(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(core.Options{Dir: dir, Output: io.Discard})
	if err := db.Exec(`
		class Part persistent {
			attr name string
			attr qty int
		}
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := db.Exec(fmt.Sprintf(`new Part(name: "p%d", qty: %d)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := core.MustOpen(core.Options{Dir: dir, Output: io.Discard, MaxResidentObjects: 16})
	defer db2.Close()
	if r := db2.Stats().Objects.Resident; r >= 120 {
		t.Fatalf("reopen materialized %d objects", r)
	}
	if err := db2.Exec(`
		evolve class Part persistent {
			attr name string
			attr qty int
			attr rating float = 5.0
		}
	`); err != nil {
		t.Fatalf("evolve over cold instances: %v", err)
	}
	insts := db2.InstancesOf("Part")
	if len(insts) != 120 {
		t.Fatalf("InstancesOf(Part) = %d, want 120", len(insts))
	}
	for _, id := range insts {
		if err := db2.Atomically(func(tx *core.Tx) error {
			r, err := db2.GetSys(tx, id, "rating")
			if err != nil {
				return err
			}
			if f, _ := r.Numeric(); f != 5.0 {
				t.Errorf("object %s: rating = %v after evolve", id, r)
			}
			q, err := db2.GetSys(tx, id, "qty")
			if err != nil {
				return err
			}
			if qi, _ := q.AsInt(); qi < 0 || qi >= 120 {
				t.Errorf("object %s: qty = %v lost in migration", id, q)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	db2.MustBeConsistent()
}
