package core

import (
	"fmt"

	"sentinel/internal/lang"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// EvolveClass replaces a class definition and migrates every live instance
// to the new layout, inside the transaction:
//
//   - attributes present in both versions keep their values (when the new
//     type still accepts them; otherwise they reset to the declared
//     default),
//   - removed attributes are dropped, added attributes take their defaults,
//   - methods, visibility and the event interface come entirely from the
//     new definition,
//   - migrated instances are written out (WAL + heap) on commit, and the
//     whole evolution rolls back on abort.
//
// Constraints: the class must exist, must not be a system class, must not
// have registered subclasses (evolve leaves first), and must not have
// indexes on attributes the new definition removes or retypes (drop those
// indexes first). dslSource, when non-empty, replaces the stored catalog
// source for DSL-defined classes so the evolved definition replays on
// reopen; Go-defined classes pass "" and must register the new version in
// Options.Schema instead.
func (db *Database) EvolveClass(t *Tx, newCls *schema.Class, dslSource string) error {
	name := newCls.Name
	if IsSystemClass(name) {
		return fmt.Errorf("core: cannot evolve system class %s", name)
	}
	old := db.reg.Lookup(name)
	if old == nil {
		return fmt.Errorf("core: unknown class %q", name)
	}

	// Indexes must remain valid: every indexed attribute needs an
	// equally-typed attribute in the new definition. The new class is not
	// finalized yet, so check its declared attributes through a probe
	// after Replace — simplest is to collect indexed attrs first and
	// verify after finalization below.
	var indexedAttrs []string
	db.mu.RLock()
	for k := range db.indexes {
		if k.class == name {
			indexedAttrs = append(indexedAttrs, k.attr)
		}
	}
	db.mu.RUnlock()

	// Collect the instances (exact class only: no subclasses can exist):
	// residents of the old class plus cold heap instances from the
	// catalog. Lock and fault them in BEFORE the registry swap — decoding
	// must still see the old layout. Migrated instances are all dirty
	// (hence wired) until commit writes the new images.
	var migrated []oid.OID
	db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
		if !tomb && o.Class() == old {
			migrated = append(migrated, id)
		}
	})
	if db.store != nil {
		present := make(map[oid.OID]bool, len(migrated))
		for _, id := range migrated {
			present[id] = true
		}
		db.catMu.RLock()
		for id, cls := range db.heapCat {
			if cls == name && !present[id] {
				if _, resident := db.dir.get(id); !resident {
					migrated = append(migrated, id)
				}
			}
		}
		db.catMu.RUnlock()
	}
	value.SortRefs(migrated)

	oldObjs := make(map[oid.OID]*object.Object, len(migrated))
	for _, id := range migrated {
		o, err := db.lockObject(t, id, txn.Exclusive)
		if err != nil {
			return err
		}
		oldObjs[id] = o
	}

	oldCls, err := db.reg.Replace(newCls)
	if err != nil {
		return err
	}
	for _, attr := range indexedAttrs {
		na := newCls.AttributeNamed(attr)
		oa := oldCls.AttributeNamed(attr)
		if na == nil || oa == nil || na.Type.String() != oa.Type.String() {
			db.reg.Restore(oldCls)
			return fmt.Errorf("core: cannot evolve %s: index on %s.%s would break (drop it first)", name, name, attr)
		}
	}

	type migration struct {
		prev     *object.Object
		wasDirty bool
		pushed   bool // a version was archived; pop it on abort
	}
	prevState := make(map[oid.OID]migration, len(migrated))
	for _, id := range migrated {
		oldObj := oldObjs[id]
		newObj, err := object.New(id, newCls)
		if err != nil {
			db.reg.Restore(oldCls)
			return err
		}
		for _, a := range newCls.Layout() {
			if oa := oldCls.AttributeNamed(a.Name); oa != nil {
				v := oldObj.GetSlot(oa.Slot())
				if a.Type.Accepts(v.Kind()) {
					newObj.SetSlot(a.Slot(), a.Type.Widen(v))
				}
			}
		}
		prev, wasDirty, pushed := db.dir.replaceObj(id, newObj, true)
		prevState[id] = migration{prev: prev, wasDirty: wasDirty, pushed: pushed}
		t.dirty[id] = true
	}

	// Catalog source update for DSL classes.
	if dslSource != "" {
		var defObj oid.OID
		db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
			if tomb || o.Class().Name != SysClassDefClass || !defObj.IsNil() {
				return
			}
			if n, _ := mustGet(o, "name").AsString(); n == name {
				defObj = id
			}
		})
		if !defObj.IsNil() {
			if err := db.setAttr(t, defObj, "source", value.Str(dslSource), nil, true); err != nil {
				db.reg.Restore(oldCls)
				return err
			}
		}
	}

	// The evolved class may have a different MRO/event interface; cached
	// consumer sets derived from the old class (and the migrated objects)
	// are stale. Evolve refuses registered subclasses, so the class-scope
	// subtree is exactly this class: its class entry plus every object
	// entry derived from it.
	db.invalidateConsumers(t, scopeClass(name), func() {
		db.reg.Restore(oldCls)
		for id, m := range prevState {
			db.dir.undoReplaceObj(id, m.prev, m.wasDirty, m.pushed)
		}
	})
	return nil
}

// evolveDSLClass handles the `evolve class ...` statement.
func (db *Database) evolveDSLClass(t *Tx, d *lang.ClassDecl) error {
	c, err := db.buildDSLClass(d)
	if err != nil {
		return err
	}
	if err := db.EvolveClass(t, c, d.Source); err != nil {
		return err
	}
	// New class-level rules in the evolved definition are created if their
	// names are fresh (existing rules persist unchanged).
	for i := range d.Rules {
		rd := &d.Rules[i]
		if db.LookupRule(rd.Name) != nil {
			continue
		}
		if _, err := db.CreateRule(t, specFromDecl(rd, c.Name)); err != nil {
			return fmt.Errorf("core: evolved class %s rule %s: %w", c.Name, rd.Name, err)
		}
	}
	return nil
}
