package core

// pager.go is the demand-paging layer between the resident directory and the
// heap: fault-in (with per-OID singleflight so concurrent faulters decode an
// image once), the eviction driver, and the heap-class catalog — a small
// OID → class-name map mirroring the heap's committed population so
// "iterate the directory ∪ heap" operations (InstancesOf, Dump, integrity,
// index rebuild, Stats) know what lives on disk without decoding it.

import (
	"fmt"
	"time"

	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
)

// dirFlight is one in-progress fault: followers wait on done and share the
// leader's result instead of decoding the image again.
type dirFlight struct {
	done chan struct{}
	obj  *object.Object
	err  error
}

// faultObject returns the live object for id: a directory hit, or a decode
// from the heap published into the directory. A tombstoned entry (deleted by
// an uncommitted transaction) and a heap miss both return (nil, nil): the
// object does not exist as far as this caller is concerned. The returned
// pointer is only guaranteed stable while the entry stays resident; callers
// needing stability across eviction pressure pin via lockObject.
func (db *Database) faultObject(id oid.OID) (*object.Object, error) {
	if o, found := db.dir.get(id); found {
		return o, nil
	}
	if db.store == nil {
		return nil, nil
	}

	db.flightMu.Lock()
	if f := db.flight[id]; f != nil {
		db.flightMu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		if f.obj == nil {
			return nil, nil
		}
		// The leader published the entry; re-read through the directory so a
		// tombstone or eviction racing us is respected.
		if o, found := db.dir.get(id); found {
			return o, nil
		}
		return f.obj, nil
	}
	f := &dirFlight{done: make(chan struct{})}
	if db.flight == nil {
		db.flight = make(map[oid.OID]*dirFlight)
	}
	db.flight[id] = f
	db.flightMu.Unlock()

	f.obj, f.err = db.loadFromHeap(id, true)

	db.flightMu.Lock()
	delete(db.flight, id)
	db.flightMu.Unlock()
	close(f.done)

	if f.err != nil {
		return nil, f.err
	}
	if f.obj != nil {
		db.maybeEvict()
	}
	return f.obj, nil
}

// loadFromHeap decodes one object image from the heap; publish=true installs
// it in the directory (losing a publish race returns whoever won). Published
// faults are what demand paging pays for, so they are always timed.
func (db *Database) loadFromHeap(id oid.OID, publish bool) (*object.Object, error) {
	var start time.Time
	if publish {
		start = time.Now()
	}
	img, ok, err := db.store.Get(id)
	if err != nil {
		return nil, fmt.Errorf("core: faulting object %s: %w", id, err)
	}
	if !ok {
		return nil, nil
	}
	o, err := object.Decode(id, img, db.reg)
	if err != nil {
		return nil, fmt.Errorf("core: faulting object %s: %w", id, err)
	}
	if !publish {
		return o, nil
	}
	d := time.Since(start)
	db.met.faults.Inc()
	db.met.faultH.Observe(d)
	if tr := db.tracer.Load(); tr != nil && tr.PageFault != nil {
		tr.PageFault(obs.PageInfo{OID: uint64(id), Class: o.Class().Name, Duration: d})
	}
	return db.dir.insertIfAbsent(id, o), nil
}

// maybeEvict runs the clock evictor when residency exceeds the configured
// ceiling. One goroutine sweeps at a time; others skip — the next fault-in
// re-checks. The sweep targets a low-water mark an eighth below the ceiling
// so eviction runs in batches instead of once per fault.
func (db *Database) maybeEvict() {
	max := int64(db.opts.MaxResidentObjects)
	if max <= 0 || db.dir.resident.Load() <= max {
		return
	}
	if !db.evicting.CompareAndSwap(false, true) {
		return
	}
	target := max - max/8
	evicted := db.dir.evictDownTo(target, db.watermark())
	db.evicting.Store(false)
	if len(evicted) == 0 {
		return
	}
	db.met.evictions.Add(uint64(len(evicted)))
	if tr := db.tracer.Load(); tr != nil && tr.PageEvict != nil {
		tr.PageEvict(obs.PageInfo{Evicted: len(evicted)})
	}
	// Consumer-cache hygiene: evicted objects' memoized consumer sets would
	// otherwise linger until the next epoch bump. The cache is keyed by OID
	// and epoch-validated, so this is memory reclamation, not correctness —
	// a refaulted object recomputes its entry on first raise.
	db.ccMu.Lock()
	for _, id := range evicted {
		delete(db.objConsumers, id)
	}
	db.ccMu.Unlock()
}

// pagingEnabled reports whether eviction can reclaim residents — only then
// do transactions pin the objects they lock.
func (db *Database) pagingEnabled() bool {
	return db.store != nil && db.opts.MaxResidentObjects > 0
}

// ---- heap-class catalog ----

// setHeapClass records that the heap now holds an instance of cls at id.
func (db *Database) setHeapClass(id oid.OID, cls string) {
	db.catMu.Lock()
	if db.heapCat == nil {
		db.heapCat = make(map[oid.OID]string)
	}
	if interned, ok := db.catNames[cls]; ok {
		cls = interned
	} else {
		if db.catNames == nil {
			db.catNames = make(map[string]string)
		}
		db.catNames[cls] = cls
	}
	db.heapCat[id] = cls
	db.catMu.Unlock()
}

func (db *Database) delHeapClass(id oid.OID) {
	db.catMu.Lock()
	delete(db.heapCat, id)
	db.catMu.Unlock()
}

// heapCatSize returns the committed heap population.
func (db *Database) heapCatSize() int {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return len(db.heapCat)
}

// ---- directory ∪ heap iteration ----

// liveObject returns the object for id without changing residency: resident
// entries are returned as-is, heap-only objects are decoded transiently (the
// decode is NOT installed in the directory, so bulk scans do not churn the
// working set). Returns nil for tombstoned and missing ids.
func (db *Database) liveObject(id oid.OID) (*object.Object, error) {
	if o, found := db.dir.get(id); found {
		return o, nil
	}
	if db.store == nil {
		return nil, nil
	}
	return db.loadFromHeap(id, false)
}

// forEachLiveObject streams every live object — resident entries first, then
// heap-only objects decoded transiently — exactly once each. Tombstoned
// entries are skipped on both sides. Callers see a point-in-time-ish union:
// run it at a quiescent point for exact results (Dump and CheckIntegrity
// already require that).
func (db *Database) forEachLiveObject(fn func(id oid.OID, o *object.Object) error) error {
	seen := make(map[oid.OID]bool)
	var objs []*object.Object
	db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
		seen[id] = true // tombstones shadow the heap image
		if !tomb {
			objs = append(objs, o)
		}
	})
	for _, o := range objs {
		if err := fn(o.ID(), o); err != nil {
			return err
		}
	}
	if db.store == nil {
		return nil
	}
	for _, id := range db.heapOnlyIDs(seen) {
		o, err := db.loadFromHeap(id, false)
		if err != nil {
			return err
		}
		if o == nil {
			continue // deleted between snapshot and decode
		}
		if err := fn(id, o); err != nil {
			return err
		}
	}
	return nil
}

// heapOnlyIDs snapshots the catalog OIDs that have no directory entry.
func (db *Database) heapOnlyIDs(seen map[oid.OID]bool) []oid.OID {
	db.catMu.RLock()
	out := make([]oid.OID, 0, len(db.heapCat))
	for id := range db.heapCat {
		if !seen[id] {
			out = append(out, id)
		}
	}
	db.catMu.RUnlock()
	return out
}

// liveClassMap returns OID → class name over the full live population
// (directory ∪ heap, tombstones excluded) without decoding heap images —
// the catalog already knows their classes.
func (db *Database) liveClassMap() map[oid.OID]string {
	out := make(map[oid.OID]string)
	tombs := make(map[oid.OID]bool)
	db.dir.forEach(func(id oid.OID, o *object.Object, tomb bool) {
		if tomb {
			tombs[id] = true
			return
		}
		out[id] = o.Class().Name
	})
	if db.store == nil {
		return out
	}
	db.catMu.RLock()
	for id, cls := range db.heapCat {
		if _, resident := out[id]; resident || tombs[id] {
			continue
		}
		out[id] = cls
	}
	db.catMu.RUnlock()
	return out
}
