package core

// repl.go is the core half of WAL-shipped replication (internal/repl is the
// network half). The contract between the two:
//
//   - Every committed WAL batch gets a replication LSN — a dense counter of
//     committed batches since database creation, persisted in the checkpoint
//     meta and recovered as checkpoint-LSN + replayed-commit-count. The LSN
//     is a property of the database, not of the shipping service: it keeps
//     advancing while no follower is attached, so a follower can always name
//     the exact prefix it holds.
//   - A primary installs a ship hook (SetReplShip). writeCommit calls it
//     under replMu with the 2PL locks still held, so dependent commits ship
//     in commit order; independent commits ship in an arbitrary but valid
//     serialization order. The hook MUST only encode and buffer — never
//     block on I/O — which is the whole no-stall argument: a dead-slow
//     follower costs the commit path one mutex and one encode, nothing more.
//     The batch (record data included) is only valid for the duration of the
//     call; the hook must serialize it before returning.
//   - A follower opens with Options.Replica and applies batches through
//     ApplyReplicated, which WAL-logs the batch locally (so its own recovery
//     reproduces the applied prefix up to the fsync floor), installs the
//     images through the directory with full MVCC versioning (snapshot
//     readers older than the batch keep their view), and fans the shipped
//     occurrences out to local sink subscribers. Delivery to followers is
//     therefore at-least-once across follower crashes: batches between the
//     fsync floor and the crash point are re-shipped and re-delivered.
//
// Occurrences ride the data batch of the transaction that raised them; a
// transaction that raised events but wrote nothing durable ships an
// event-only batch (LSN 0) after it commits, so follower-side subscribers
// see the same occurrence stream primary-side subscribers do.

import (
	"errors"
	"fmt"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/lang"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/wal"
)

// ErrReplicaWrite rejects write intents on a replica: the only writer of a
// follower database is the replication apply loop.
var ErrReplicaWrite = errors.New("core: database is a read-only replica (writes happen on the primary)")

// ErrFenced rejects data-bearing commits on a deposed primary: a newer
// replication epoch exists (a follower was promoted), so nothing this node
// commits can ever be acknowledged into the cluster's history. A commit
// that fails with ErrFenced during the quorum wait is durable locally but
// unacknowledged; rejoining as a follower discards it during re-seed.
var ErrFenced = errors.New("core: primary is fenced (a newer replication epoch exists)")

// ErrQuorumTimeout is the sentinel the quorum-wait hook returns when K
// follower acks did not arrive within Options.QuorumTimeout. doCommit maps
// it to a successful (degraded-to-async) commit plus a metric; it never
// escapes to the caller.
var ErrQuorumTimeout = errors.New("core: quorum commit timed out waiting for follower acks")

// ReplBatch is one shipped commit: the redo records of a single WAL commit
// batch plus the occurrences its transaction raised. LSN 0 marks an
// event-only batch (nothing durable to replay — fan-out only).
type ReplBatch struct {
	LSN  uint64
	Recs []wal.Record
	Occs []event.Occurrence
}

// SetReplShip installs (or, with nil, removes) the primary-side shipping
// hook and returns the current replication LSN — atomically with the
// installation, so the caller knows exactly which prefix the hook will
// never see and must serve from base state instead. The hook runs on the
// committing goroutine under replMu with the transaction's locks held: it
// must encode-and-buffer only, never block, and must not retain the batch
// (record Data aliases pooled commit scratch).
func (db *Database) SetReplShip(fn func(ReplBatch)) uint64 {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	db.replShip = fn
	db.replCollect.Store(fn != nil)
	return db.replLSN
}

// SetReplInfo installs (or, with nil, removes) the peer-state callback the
// Replication stats group reads: on a primary it reports (attached
// followers, min applied LSN across them); on a replica it reports
// (connected primaries — 0 or 1, the primary's shipped LSN).
func (db *Database) SetReplInfo(fn func() (peers int, lsn uint64)) {
	if fn == nil {
		db.replInfo.Store(nil)
		return
	}
	db.replInfo.Store(&fn)
}

// ReplLSN returns the replication LSN: on a primary the last committed
// batch, on a replica the last applied one.
func (db *Database) ReplLSN() uint64 {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.replLSN
}

// Replica reports whether the database was opened as a read-only follower.
func (db *Database) Replica() bool { return db.opts.Replica }

// ReplEpoch returns the replication epoch this database's history belongs
// to (0 until a primary ever ran over the directory).
func (db *Database) ReplEpoch() uint64 {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.replEpoch
}

// SetReplEpoch moves the database onto a new replication epoch. The caller
// (internal/repl) checkpoints afterwards to make the epoch durable —
// metaBlob persists epoch and LSN together, so the pair is atomic on disk.
func (db *Database) SetReplEpoch(e uint64) {
	db.replMu.Lock()
	db.replEpoch = e
	db.replMu.Unlock()
}

// replPosition reads (LSN, epoch) atomically.
func (db *Database) replPosition() (lsn, epoch uint64) {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.replLSN, db.replEpoch
}

// Fence marks this database as a deposed primary: every subsequent
// data-bearing commit aborts with ErrFenced. Reads, snapshots and
// subscriptions keep working (the node can still serve as a stale read
// replica until it rejoins). Fencing is one-way; rejoining the cluster
// means reopening the directory as a follower.
func (db *Database) Fence() {
	if db.fenced.CompareAndSwap(false, true) {
		db.met.fencedWrites.Add(0) // touch the counter so it exports even if never hit
	}
}

// Fenced reports whether Fence has been called.
func (db *Database) Fenced() bool { return db.fenced.Load() }

// SetReplQuorum installs (or, with nil, removes) the quorum-commit wait.
// doCommit invokes it after the commit is locally durable and all locks are
// released, passing the commit's replication LSN, Options.SyncReplicas and
// Options.QuorumTimeout. A nil return acknowledges the quorum;
// ErrQuorumTimeout degrades the commit to async (counted, not failed);
// ErrFenced aborts the caller's Commit with ErrFenced.
func (db *Database) SetReplQuorum(fn func(lsn uint64, k int, timeout time.Duration) error) {
	if fn == nil {
		db.replQuorum.Store(nil)
		return
	}
	db.replQuorum.Store(&fn)
}

// waitReplQuorum blocks the committing goroutine until the configured
// follower quorum has durably acked lsn (see SetReplQuorum). Runs with no
// locks held — the ack path (Primary.Ack, fed by follower sessions) shares
// nothing with this goroutine, which is the no-deadlock argument for the
// wait. Returns nil on quorum or degrade, ErrFenced when the primary was
// fenced while waiting.
func (db *Database) waitReplQuorum(lsn uint64) error {
	k := db.opts.SyncReplicas
	if k <= 0 || lsn == 0 {
		return nil
	}
	fnp := db.replQuorum.Load()
	if fnp == nil {
		return nil
	}
	err := (*fnp)(lsn, k, db.opts.QuorumTimeout)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrQuorumTimeout):
		db.met.quorumDegraded.Add(1)
		return nil
	default:
		return err
	}
}

// replicaWriteBlocked gates the write chokepoints (NewObject, exclusive
// lockObject): a replica rejects application writes once Open has finished.
// Recovery and the system-object replay run pre-ready and stay writable
// (they reconstruct state, they do not create it).
func (db *Database) replicaWriteBlocked() bool {
	return db.opts.Replica && db.ready
}

// shipCommit assigns the next replication LSN to a just-committed WAL batch
// and hands it to the shipper. Called by writeCommit after the heap apply,
// still under ckptMu shared and the transaction's 2PL locks. The LSN
// advances whether or not a shipper is installed — it numbers the
// database's committed history, and a follower attaching later needs the
// count to be dense.
func (db *Database) shipCommit(t *Tx, recs []wal.Record) {
	db.replMu.Lock()
	db.replLSN++
	// Remember the batch's LSN on the transaction: doCommit's quorum wait
	// (SyncReplicas) blocks on exactly this position after the locks drop.
	// Under group commit each coalesced transaction runs its own
	// writeCommit and gets its own LSN here; follower acks are monotone, so
	// one ack at the batch's highest LSN satisfies every waiter in it.
	t.replShippedLSN = db.replLSN
	if db.replShip != nil {
		db.replShip(ReplBatch{LSN: db.replLSN, Recs: recs, Occs: t.replOccs})
		t.replOccs = nil
	}
	db.replMu.Unlock()
}

// shipEventOnly ships occurrences whose transaction committed without a
// durable write set (writeCommit never ran a batch, so they have no data
// batch to ride). Called by doCommit after the commit succeeded.
func (db *Database) shipEventOnly(occs []event.Occurrence) {
	db.replMu.Lock()
	if db.replShip != nil {
		db.replShip(ReplBatch{Occs: occs})
	}
	db.replMu.Unlock()
}

// ReplBaseObject is one object image in a base-state capture.
type ReplBaseObject struct {
	ID  oid.OID
	Img []byte
}

// ReplBaseState is a consistent full copy of the committed heap: what a
// fresh (or lagged-beyond-the-ring) follower installs before streaming.
type ReplBaseState struct {
	LSN     uint64 // the replication LSN the images correspond to
	Meta    []byte // checkpoint meta blob (OID high-water, clock, catalog)
	Objects []ReplBaseObject
}

// ReplBaseState captures the heap at an exact replication LSN. It holds
// ckptMu exclusively for the duration of the scan: writeCommit holds ckptMu
// shared across WAL-append + heap-apply + ship, so with the exclusive lock
// held the heap contains precisely the batches numbered 1..ReplLSN — the
// follower installing this state resumes the stream at LSN+1 with nothing
// lost and nothing doubled. Commits block while the scan copies images;
// base syncs are rare (fresh follower, or one lagged past the ring), so
// the pause is the price of an exact cut.
func (db *Database) ReplBaseState() (*ReplBaseState, error) {
	if db.store == nil {
		return nil, errors.New("core: base state requires a persistent database")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	meta := db.metaBlob()
	db.mu.RUnlock()
	st := &ReplBaseState{LSN: db.ReplLSN(), Meta: meta}
	err := db.store.Scan(func(id oid.OID, data []byte) error {
		img := make([]byte, len(data))
		copy(img, data)
		st.Objects = append(st.Objects, ReplBaseObject{ID: id, Img: img})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// ApplyBaseState installs a full primary base state on a live replica: every
// image in objs becomes the object's committed state, local committed
// objects absent from the base state are deleted, and the replication LSN
// jumps to lsn. Runs through the same MVCC machinery as ApplyReplicated, so
// snapshot readers begun before the install keep their pre-install view.
// The install bypasses the WAL (logging a full base copy would defeat the
// point of syncing); the trailing Checkpoint makes it durable and stamps
// the new LSN into the heap meta. A crash mid-install leaves a torn heap
// with a stale checkpoint LSN — the next handshake detects the stale
// position (or the epoch mismatch) and re-syncs, and full-image redo is
// idempotent, so the tear never survives contact with the primary.
func (db *Database) ApplyBaseState(lsn uint64, objs []ReplBaseObject) error {
	if !db.opts.Replica {
		return errors.New("core: ApplyBaseState on a non-replica database")
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	// Class definitions first: the base state may carry instances of classes
	// this replica has never seen.
	for _, o := range objs {
		if cls, err := object.PeekClass(o.Img); err == nil && cls == SysClassDefClass {
			if err := db.applyReplClassDef(o.ID, o.Img); err != nil {
				return err
			}
		}
	}

	db.ckptMu.RLock()
	c := db.lsn.begin()
	w := db.watermark()
	keep := make(map[oid.OID]bool, len(objs))
	var applyErr error
	for _, o := range objs {
		keep[o.ID] = true
		if applyErr = db.applyReplUpdate(o.ID, o.Img, c, w); applyErr != nil {
			break
		}
	}
	var stale []oid.OID
	if applyErr == nil {
		db.catMu.RLock()
		for id := range db.heapCat {
			if !keep[id] {
				stale = append(stale, id)
			}
		}
		db.catMu.RUnlock()
		for _, id := range stale {
			if applyErr = db.applyReplDelete(id, c); applyErr != nil {
				break
			}
		}
	}
	db.lsn.end(c)
	db.ckptMu.RUnlock()
	if applyErr != nil {
		return applyErr
	}

	db.replMu.Lock()
	db.replLSN = lsn
	db.replMu.Unlock()

	dw := db.watermark()
	for _, id := range stale {
		db.dir.dropDeleted(id, dw)
	}
	// The heap was replaced wholesale — OIDs may now name objects of
	// different classes. Recovery-style global fallback rather than
	// per-key scopes.
	db.applyConsumerInvalidation(scopeAll())
	db.maybeSweepChains()
	db.maybeEvict()
	return db.Checkpoint()
}

// ApplyReplicated applies one shipped batch on a replica: WAL-log it (the
// follower's own recovery then reproduces the applied prefix up to its
// fsync floor), install every image through the directory with MVCC
// versioning, refresh the catalogs a follower needs for decoding and
// lookups (__ClassDef registrations, __Name bindings), and fan the shipped
// occurrences out to local sink subscribers.
//
// Batches must arrive in LSN order with no gaps; a gap returns an error and
// the caller (internal/repl's follower loop) tears the stream down and
// re-handshakes from its applied LSN. A batch at or below the applied LSN
// is a duplicate (a resume overlap) and is dropped without re-delivery.
func (db *Database) ApplyReplicated(b ReplBatch) error {
	if !db.opts.Replica {
		return errors.New("core: ApplyReplicated on a non-replica database")
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	if b.LSN == 0 {
		// Event-only batch: nothing durable, deliver and done.
		db.fanoutReplicated(b.Occs)
		return nil
	}
	cur := db.ReplLSN()
	if b.LSN <= cur {
		return nil
	}
	if b.LSN != cur+1 {
		return fmt.Errorf("core: replication gap: applied LSN %d, got batch %d", cur, b.LSN)
	}

	// Register any DSL classes this batch defines before decoding anything:
	// the batch may create a class and instances of it, and writeCommit
	// emits a transaction's records in arbitrary write-set order.
	for _, r := range b.Recs {
		if r.Type != wal.RecUpdate {
			continue
		}
		if cls, err := object.PeekClass(r.Data); err == nil && cls == SysClassDefClass {
			if err := db.applyReplClassDef(r.OID, r.Data); err != nil {
				return err
			}
		}
	}

	db.ckptMu.RLock()
	// Redo rule, same as the primary: log before apply, so a crash between
	// the two replays the batch instead of losing it.
	if err := db.log.CommitBatch(b.Recs, db.opts.SyncOnCommit); err != nil {
		db.ckptMu.RUnlock()
		return err
	}
	c := db.lsn.begin()
	w := db.watermark()
	var deleted []oid.OID
	var applyErr error
	for _, r := range b.Recs {
		switch r.Type {
		case wal.RecUpdate:
			applyErr = db.applyReplUpdate(r.OID, r.Data, c, w)
		case wal.RecDelete:
			applyErr = db.applyReplDelete(r.OID, c)
			deleted = append(deleted, r.OID)
		}
		if applyErr != nil {
			break
		}
	}
	db.lsn.end(c)
	db.ckptMu.RUnlock()
	if applyErr != nil {
		// The batch is in the local WAL; recovery will re-apply it, so the
		// applied LSN deliberately does not advance past a failed apply.
		return applyErr
	}

	db.replMu.Lock()
	db.replLSN = b.LSN
	db.replMu.Unlock()

	db.fanoutReplicated(b.Occs)
	if len(deleted) > 0 {
		dw := db.watermark()
		for _, id := range deleted {
			db.dir.dropDeleted(id, dw)
		}
	}
	db.maybeSweepChains()
	db.maybeAutoCheckpoint()
	db.maybeEvict()
	return nil
}

// applyReplClassDef replays a shipped __ClassDef so subsequent images of
// the class decode. Registration is idempotent (a re-shipped batch after a
// resume sees the class already present).
func (db *Database) applyReplClassDef(id oid.OID, img []byte) error {
	o, err := object.Decode(id, img, db.reg)
	if err != nil {
		return fmt.Errorf("core: replicated class def %s: %w", id, err)
	}
	name, _ := mustGet(o, "name").AsString()
	src, _ := mustGet(o, "source").AsString()
	seq, _ := mustGet(o, "seq").AsInt()
	if db.reg.Lookup(name) != nil {
		return nil
	}
	script, err := lang.ParseScript(src, db.eventResolver())
	if err != nil {
		return fmt.Errorf("core: replicated class %s: %w", name, err)
	}
	t := db.Begin()
	defer db.Abort(t) // registration writes nothing; Abort is a no-op cleanup
	for _, item := range script.Items {
		cd, ok := item.(*lang.ClassDecl)
		if !ok {
			return fmt.Errorf("core: replicated class %s: definition contains a non-class item", name)
		}
		if err := db.registerDSLClass(t, cd, false); err != nil {
			return fmt.Errorf("core: replicated class %s: %w", name, err)
		}
	}
	db.mu.Lock()
	if int(seq) > db.dslClassSeq {
		db.dslClassSeq = int(seq)
	}
	db.mu.Unlock()
	return nil
}

// applyReplUpdate installs one replicated object image at commit LSN c.
// The previous committed image (resident or on the heap) is archived into
// the entry's version chain first, so snapshot readers older than c keep
// their view even though the heap image is overwritten.
func (db *Database) applyReplUpdate(id oid.OID, img []byte, c, w uint64) error {
	o, err := object.Decode(id, img, db.reg)
	if err != nil {
		return fmt.Errorf("core: replicated object %s: %w", id, err)
	}
	// Fault the prior committed image in before the heap forgets it: a
	// non-resident object's only pre-batch state is its heap image, and an
	// older snapshot reading it later must not fall through to the new one.
	if _, err := db.faultObject(id); err != nil {
		return fmt.Errorf("core: replicated object %s: prior image: %w", id, err)
	}
	db.dir.applyCommitted(id, o, c, w)
	if err := db.store.Put(id, img); err != nil {
		return err
	}
	cls := o.Class().Name
	db.setHeapClass(id, cls)
	switch cls {
	case SysNameClass:
		name, _ := mustGet(o, "name").AsString()
		target, _ := mustGet(o, "target").AsRef()
		db.mu.Lock()
		db.names[name] = target
		db.nameObjs[name] = id
		db.mu.Unlock()
	case SysEventClass:
		name, _ := mustGet(o, "name").AsString()
		src, _ := mustGet(o, "source").AsString()
		if e, err := db.ParseEvent(src); err == nil {
			e.SetID(id)
			db.mu.Lock()
			db.namedEvents[name] = e
			db.eventObjs[name] = id
			db.mu.Unlock()
		}
	}
	return nil
}

// applyReplDelete applies one replicated delete at commit LSN c, keeping
// the doomed image readable for snapshots older than c.
func (db *Database) applyReplDelete(id oid.OID, c uint64) error {
	if o, err := db.faultObject(id); err != nil {
		return fmt.Errorf("core: replicated delete %s: prior image: %w", id, err)
	} else if o != nil {
		db.dir.setTomb(id, true)
		db.dir.commitDelete(id, c)
	}
	if cls, ok := db.heapClassOf(id); ok && cls == SysNameClass {
		db.mu.Lock()
		for name, objID := range db.nameObjs {
			if objID == id {
				delete(db.names, name)
				delete(db.nameObjs, name)
				break
			}
		}
		db.mu.Unlock()
	}
	if err := db.store.Delete(id); err != nil {
		return err
	}
	db.delHeapClass(id)
	return nil
}

// heapClassOf reads the heap-class catalog entry for id.
func (db *Database) heapClassOf(id oid.OID) (string, bool) {
	db.catMu.RLock()
	cls, ok := db.heapCat[id]
	db.catMu.RUnlock()
	return cls, ok
}

// fanoutReplicated delivers shipped occurrences to local sink subscribers:
// the follower-side twin of collectPushes + fanoutPushes, minus the
// transaction (the occurrences committed on the primary; there is nothing
// left to abort). Same wait-free contract: DeliverEvent only enqueues.
//
// It also advances the replica's logical clock past every shipped sequence
// number. A replica never stamps occurrences itself, so without this its
// clock would sit at zero — and a promotion would then reissue sequence
// numbers the old primary already used, breaking the Seq uniqueness that
// subscriber-side duplicate detection rests on.
func (db *Database) fanoutReplicated(occs []event.Occurrence) {
	for i := range occs {
		db.advanceClock(occs[i].Seq)
	}
	if len(occs) == 0 || db.sinkCount.Load() == 0 {
		return
	}
	r := &db.sinkReg
	var matched []pendingPush
	r.mu.RLock()
	for i := range occs {
		occ := &occs[i]
		for _, s := range r.bySrc[occ.Source] {
			if s.filter.matches(occ) {
				matched = append(matched, pendingPush{subID: s.id, sink: s.sink, occ: *occ})
			}
		}
	}
	r.mu.RUnlock()
	if len(matched) > 0 {
		db.fanoutPushes(matched)
	}
}
