package core_test

import (
	"io"
	"strings"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

const dumpFixture = `
	class Dept reactive persistent {
		attr name string
		attr head Staff
	}
	class Staff reactive persistent {
		attr name string
		private attr pay float
		attr dept Dept
		event end method SetPay(x float) { self.pay := x }
		method Pay() float { return self.pay }
	}

	event PayChange = end Staff::SetPay(float x)

	rule PayCap for Staff on PayChange
		if x > 100000.0
		then abort "cap"
		priority 3

	rule PayAudit on PayChange
		then print("audit", x)
		coupling deferred
		scope transaction

	index Staff.name

	let eng := new Dept(name: "eng")
	let ann := new Staff(name: "ann", pay: 50000.0)
	let bob := new Staff(name: "bob", pay: 60000.0)
	ann.dept := eng
	bob.dept := eng
	eng.head := bob
	bind Eng eng
	bind Ann ann
	subscribe PayAudit to ann
	disable PayAudit
`

func buildDumpFixture(t *testing.T) *core.Database {
	t.Helper()
	db := core.MustOpen(core.Options{Output: io.Discard})
	// The fixture writes the private `pay` through initializers and the
	// dept refs through shell assignment, so build it with RestoreDSL
	// (system visibility), which is also what a real restore uses.
	if err := db.RestoreDSL(dumpFixture); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDumpRestoreRoundtrip(t *testing.T) {
	db := buildDumpFixture(t)
	var dump strings.Builder
	if err := db.DumpDSL(&dump); err != nil {
		t.Fatal(err)
	}
	text := dump.String()

	// Restore into a fresh database.
	db2 := core.MustOpen(core.Options{Output: io.Discard})
	if err := db2.RestoreDSL(text); err != nil {
		t.Fatalf("restore failed: %v\n--- dump ---\n%s", err, text)
	}

	// Classes and rules.
	for _, cls := range []string{"Dept", "Staff"} {
		if db2.Registry().Lookup(cls) == nil {
			t.Fatalf("class %s not restored", cls)
		}
	}
	cap2 := db2.LookupRule("PayCap")
	if cap2 == nil || cap2.Priority != 3 || cap2.ClassLevel != "Staff" {
		t.Fatalf("PayCap restored wrong: %+v", cap2)
	}
	audit2 := db2.LookupRule("PayAudit")
	if audit2 == nil || !audit2.TxScoped || audit2.Enabled() {
		t.Fatalf("PayAudit restored wrong (txScoped=%v enabled=%v)", audit2.TxScoped, audit2.Enabled())
	}
	if _, ok := db2.LookupEvent("PayChange"); !ok {
		t.Fatal("named event not restored")
	}
	if db2.Index("Staff", "name") == nil {
		t.Fatal("index not restored")
	}

	// Objects, attributes (including private ones), references, bindings.
	ann2, ok := db2.Lookup("Ann")
	if !ok {
		t.Fatal("binding Ann not restored")
	}
	eng2, _ := db2.Lookup("Eng")
	if err := db2.Atomically(func(tx *core.Tx) error {
		pay, err := db2.GetSys(tx, ann2, "pay")
		if err != nil {
			return err
		}
		if f, _ := pay.Numeric(); f != 50000 {
			t.Errorf("ann pay = %v", pay)
		}
		dept, err := db2.GetSys(tx, ann2, "dept")
		if err != nil {
			return err
		}
		if r, _ := dept.AsRef(); r != eng2 {
			t.Errorf("ann.dept = %v, want %v", dept, eng2)
		}
		head, err := db2.GetSys(tx, eng2, "head")
		if err != nil {
			return err
		}
		if r, _ := head.AsRef(); r.IsNil() {
			t.Error("eng.head not restored")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Subscriptions: PayAudit subscribed to ann (even though disabled).
	if subs := db2.Subscribers(ann2); len(subs) != 1 {
		t.Fatalf("ann subscriptions = %v", subs)
	}

	// Behaviour: the class-level cap still enforces in the restored DB.
	err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, ann2, "SetPay", value.Float(200000))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("restored PayCap did not fire: %v", err)
	}

	// Idempotence-ish: dumping the restored database reproduces the same
	// logical sections (object variable names differ only if OIDs differ;
	// they shouldn't here since creation order is the dump's order).
	var dump2 strings.Builder
	if err := db2.DumpDSL(&dump2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump2.String(), "rule PayCap for Staff") {
		t.Fatalf("second-generation dump lost the rule:\n%s", dump2.String())
	}
}

func TestDumpFlagsGoClosures(t *testing.T) {
	db := orgDB(t)
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.CreateRule(tx, core.RuleSpec{
			Name:      "opaque",
			EventSrc:  "end Employee::SetSalary(float a)",
			Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) { return false, nil },
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	if err := db.DumpDSL(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "# rule opaque uses unregistered Go closures") {
		t.Fatalf("closure rule not flagged:\n%s", dump.String())
	}
}

func TestDumpGoRegistryRefsRoundtrip(t *testing.T) {
	fired := 0
	mkOpts := func() core.Options {
		return core.Options{Output: io.Discard, Schema: func(db *core.Database) error {
			if err := bench.InstallOrgSchema(db); err != nil {
				return err
			}
			db.RegisterCondition("big", func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				f, _ := det.Last().Args[0].Numeric()
				return f > 100, nil
			})
			db.RegisterAction("note", func(ctx rule.ExecContext, det event.Detection) error {
				fired++
				return nil
			})
			return nil
		}}
	}
	db := core.MustOpen(mkOpts())
	fred := mkEmployee(t, db, "fred", 1)
	if err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:      "reg",
			EventSrc:  "end Employee::SetSalary(float amount)",
			CondSrc:   "go:big",
			ActionSrc: "go:note",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	}); err != nil {
		t.Fatal(err)
	}
	_ = fred

	var dump strings.Builder
	if err := db.DumpDSL(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "if go:big") || !strings.Contains(dump.String(), "then go:note") {
		t.Fatalf("go: refs not dumped:\n%s", dump.String())
	}
	db2 := core.MustOpen(mkOpts())
	if err := db2.RestoreDSL(dump.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, dump.String())
	}
	// The restored rule works through the registry.
	emp2 := db2.InstancesOf("Employee")[0]
	if err := db2.Atomically(func(tx *core.Tx) error {
		_, err := db2.Send(tx, emp2, "SetSalary", value.Float(500))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("restored go: rule fired %d times", fired)
	}
}
