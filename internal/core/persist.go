package core

import (
	"fmt"
	"sort"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/heap"
	"sentinel/internal/index"
	"sentinel/internal/lang"
	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
	"sentinel/internal/wal"
)

// openStorage opens the heap and WAL, performs crash recovery (replaying
// committed transactions logged after the last checkpoint into the heap),
// establishes the heap-class catalog (from checkpoint metadata on a clean
// open, by heap scan after recovery), materializes the *system* objects,
// and rebuilds the runtime catalogs — DSL classes, named events, rules,
// subscriptions and name bindings — from them. Application objects stay on
// disk and fault in on first touch (unless Options.EagerLoad).
func (db *Database) openStorage() error {
	fsys := db.opts.VFS
	if fsys == nil {
		fsys = vfs.OS
	}
	store, err := heap.Open(db.opts.Dir, heap.Options{PoolPages: db.opts.PoolPages, VFS: fsys})
	if err != nil {
		return err
	}
	db.store = store
	catalogLoaded := db.loadMeta(store.Meta())

	log, err := wal.OpenOn(fsys, db.walPath())
	if err != nil {
		store.Close()
		return err
	}
	db.log = log
	// Feed WAL activity into the metric set and tracer. The wal package
	// stays obs-free: it calls plain funcs the core installs.
	log.SetHooks(
		func(bytes int, d time.Duration) {
			db.met.walAppends.Inc()
			db.met.walBytes.Add(uint64(bytes))
			db.met.appendH.Observe(d)
			if tr := db.tracer.Load(); tr != nil && tr.WALAppend != nil {
				tr.WALAppend(obs.WALInfo{Bytes: bytes, Duration: d})
			}
		},
		func(d time.Duration) {
			db.met.walFsyncs.Inc()
			db.met.fsyncH.Observe(d)
			if tr := db.tracer.Load(); tr != nil && tr.WALFsync != nil {
				tr.WALFsync(obs.WALInfo{Duration: d})
			}
		},
	)
	// Group-commit instrumentation: one hook call per flush with the number
	// of commits it coalesced (the histogram's observed value is that count,
	// not a latency).
	log.SetGroupHook(func(commits int) {
		db.met.commitGroups.Inc()
		db.met.groupedCommits.Add(uint64(commits))
		db.met.commitGroupH.Observe(time.Duration(commits))
	})
	log.SetGroupWindow(db.opts.GroupCommitWindow)

	// Redo recovery. First scan the log; any logged work means the side
	// index cannot be trusted (a crash may have left it at the previous
	// checkpoint while evictions advanced some pages), so the object table
	// is rebuilt by a page scan — every record embeds its OID — before the
	// committed transactions are re-applied.
	var recs []wal.Record
	hasWork := false
	err = log.Replay(func(r wal.Record) error {
		recs = append(recs, r)
		if r.Type != wal.RecCheckpoint {
			hasWork = true
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: WAL scan: %w", err)
	}
	if hasWork {
		if err := store.Rescan(); err != nil {
			return fmt.Errorf("core: heap rescan: %w", err)
		}
		pending := make(map[uint64][]wal.Record)
		committed := 0
		for _, r := range recs {
			switch r.Type {
			case wal.RecUpdate, wal.RecDelete:
				pending[r.Tx] = append(pending[r.Tx], r)
			case wal.RecCommit:
				for _, u := range pending[r.Tx] {
					if u.Type == wal.RecUpdate {
						if err := store.Put(u.OID, u.Data); err != nil {
							return err
						}
					} else {
						if err := store.Delete(u.OID); err != nil {
							return err
						}
					}
				}
				delete(pending, r.Tx)
				committed++
			case wal.RecAbort:
				delete(pending, r.Tx)
			}
		}
		// The replication LSN counts committed batches since creation: the
		// checkpoint meta carried the count as of the checkpoint (loadMeta set
		// it), and each replayed commit record is one batch past that.
		if committed > 0 {
			db.replMu.Lock()
			db.replLSN += uint64(committed)
			db.replMu.Unlock()
		}
		// Uncommitted tails in `pending` are discarded (no-steal policy:
		// they were never applied to the heap). Recovery changed the heap
		// after the checkpoint, so the persisted catalog is stale.
		catalogLoaded = false
	}

	// The catalog must mirror the heap's object table exactly; rebuild it
	// by page scan when the checkpoint copy is missing, stale, or does not
	// match the table (pre-paging checkpoints, recovery).
	rebuiltCatalog := !catalogLoaded || db.heapCatSize() != store.Len()
	if rebuiltCatalog {
		if err := db.buildCatalogFromScan(); err != nil {
			return err
		}
	}
	db.catMu.RLock()
	var maxOID oid.OID
	for id := range db.heapCat {
		if id > maxOID {
			maxOID = id
		}
	}
	db.catMu.RUnlock()
	db.alloc.Advance(maxOID)

	if err := db.loadSystemObjects(); err != nil {
		return err
	}

	if db.opts.EagerLoad {
		db.catMu.RLock()
		ids := make([]oid.OID, 0, len(db.heapCat))
		for id := range db.heapCat {
			ids = append(ids, id)
		}
		db.catMu.RUnlock()
		for _, id := range ids {
			if _, err := db.faultObject(id); err != nil {
				return err
			}
		}
	}

	// Start the next epoch from a clean checkpoint when recovery changed
	// anything (which also persists the rebuilt catalog for the next
	// open). A clean open — empty WAL, catalog straight from the last
	// checkpoint — is already that checkpoint; skipping the rewrite keeps
	// cold opens at index-read + system-object cost.
	if hasWork || rebuiltCatalog {
		return db.Checkpoint()
	}
	return nil
}

// buildCatalogFromScan rebuilds the heap-class catalog by scanning every
// live record and peeking its class name (no full decode).
func (db *Database) buildCatalogFromScan() error {
	cat := make(map[oid.OID]string)
	names := make(map[string]string)
	err := db.store.Scan(func(id oid.OID, data []byte) error {
		cls, err := object.PeekClass(data)
		if err != nil {
			return fmt.Errorf("core: object %s: %w", id, err)
		}
		if interned, ok := names[cls]; ok {
			cls = interned
		} else {
			names[cls] = cls
		}
		cat[id] = cls
		return nil
	})
	if err != nil {
		return err
	}
	db.catMu.Lock()
	db.heapCat = cat
	db.catNames = names
	db.catMu.Unlock()
	return nil
}

// loadSystemObjects materializes only the system objects (class sources,
// events, rules, subscriptions, name bindings, index catalogs) into the
// directory — wired resident, since the runtime catalogs reference them —
// and rebuilds those catalogs in dependency order: __ClassDef sources first
// (so application instances can decode when they fault in), then events →
// rules → subscriptions → names → secondary indexes.
func (db *Database) loadSystemObjects() error {
	byClass := make(map[string][]oid.OID)
	db.catMu.RLock()
	for id, cls := range db.heapCat {
		if IsSystemClass(cls) {
			byClass[cls] = append(byClass[cls], id)
		}
	}
	db.catMu.RUnlock()
	for _, ids := range byClass {
		value.SortRefs(ids)
	}

	// Pass 1: decode and wire every system object. System classes are Go
	// bootstrap classes, so they decode before any DSL replay.
	sysObjs := make(map[oid.OID]*object.Object)
	for cls, ids := range byClass {
		for _, id := range ids {
			img, ok, err := db.store.Get(id)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("core: catalog lists %s instance %s missing from heap", cls, id)
			}
			o, err := object.Decode(id, img, db.reg)
			if err != nil {
				return fmt.Errorf("core: materializing %s instance %s: %w", cls, id, err)
			}
			sysObjs[id] = o
			// Recovered images commit at LSN 0: older than any snapshot.
			db.dir.insert(id, o, 0, false, true, 0)
		}
	}

	// Pass 2: replay DSL class definitions (ordered by seq) so application
	// instances can decode. The replay transaction only registers classes;
	// nothing is re-persisted.
	type defEntry struct {
		seq    int64
		name   string
		source string
	}
	var entries []defEntry
	for _, id := range byClass[SysClassDefClass] {
		o := sysObjs[id]
		name, _ := mustGet(o, "name").AsString()
		src, _ := mustGet(o, "source").AsString()
		seq, _ := mustGet(o, "seq").AsInt()
		entries = append(entries, defEntry{seq: seq, name: name, source: src})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	if len(entries) > 0 {
		t := db.Begin()
		for _, e := range entries {
			script, err := lang.ParseScript(e.source, db.eventResolver())
			if err != nil {
				return fmt.Errorf("core: replaying class %s: %w", e.name, err)
			}
			for _, item := range script.Items {
				cd, ok := item.(*lang.ClassDecl)
				if !ok {
					return fmt.Errorf("core: catalog entry for class %s contains a non-class item", e.name)
				}
				if err := db.registerDSLClass(t, cd, false); err != nil {
					return fmt.Errorf("core: replaying class %s: %w", e.name, err)
				}
			}
		}
		if err := db.Commit(t); err != nil {
			return err
		}
	}

	// Pass 3: fail fast on unregistered classes. The old eager open failed
	// while decoding; the lazy open must not defer that surprise to an
	// arbitrary later fault-in.
	db.catMu.RLock()
	missing := ""
	for _, cls := range db.heapCat {
		if db.reg.Lookup(cls) == nil {
			missing = cls
			break
		}
	}
	db.catMu.RUnlock()
	if missing != "" {
		return fmt.Errorf("core: heap contains instances of unregistered class %q (register it in Options.Schema)", missing)
	}

	// Pass 4: named events (before rules, which may reference them).
	for _, id := range byClass[SysEventClass] {
		o := sysObjs[id]
		name, _ := mustGet(o, "name").AsString()
		src, _ := mustGet(o, "source").AsString()
		e, err := db.ParseEvent(src)
		if err != nil {
			return fmt.Errorf("core: rebuilding event %q: %w", name, err)
		}
		e.SetID(id)
		db.namedEvents[name] = e
		db.eventObjs[name] = id
	}

	// Pass 5: rules.
	for _, id := range byClass[SysRuleClass] {
		if err := db.rebuildRule(sysObjs[id]); err != nil {
			return err
		}
	}

	// Pass 6: subscriptions.
	for _, id := range byClass[SysSubClass] {
		o := sysObjs[id]
		reactive, _ := mustGet(o, "reactive").AsRef()
		consumer, _ := mustGet(o, "consumer").AsRef()
		db.subs[reactive] = append(db.subs[reactive], consumer)
		db.subObjs[subKey{reactive, consumer}] = id
	}

	// Pass 7: name bindings.
	for _, id := range byClass[SysNameClass] {
		o := sysObjs[id]
		name, _ := mustGet(o, "name").AsString()
		target, _ := mustGet(o, "target").AsRef()
		db.names[name] = target
		db.nameObjs[name] = id
	}

	// Pass 8: secondary indexes, rebuilt from the directory ∪ heap
	// population. Cold instances are decoded transiently — the rebuild
	// needs their key values, not their residency.
	for _, id := range byClass[SysIndexClass] {
		o := sysObjs[id]
		clsName, _ := mustGet(o, "class").AsString()
		attr, _ := mustGet(o, "attr").AsString()
		cls := db.reg.Lookup(clsName)
		if cls == nil {
			return fmt.Errorf("core: index catalog references unknown class %q", clsName)
		}
		h := index.NewHash(clsName, attr)
		err := db.forEachLiveObject(func(id oid.OID, obj *object.Object) error {
			if !obj.Class().IsSubclassOf(cls) {
				return nil
			}
			if a := obj.Class().AttributeNamed(attr); a != nil {
				h.Add(id, obj.GetSlot(a.Slot()))
			}
			return nil
		})
		if err != nil {
			return err
		}
		k := idxKey{clsName, attr}
		db.indexes[k] = h
		db.indexObjs[k] = id
		db.indexByClass[clsName] = append(db.indexByClass[clsName], h)
	}
	return nil
}

// rebuildRule reconstructs the runtime rule from its persistent __Rule
// object: event source re-parses, "go:" references re-bind against the
// function registries (which the application fills in Options.Schema),
// SentinelQL sources re-compile.
func (db *Database) rebuildRule(o *object.Object) error {
	name, _ := mustGet(o, "name").AsString()
	evSrc, _ := mustGet(o, "event").AsString()
	condSrc, _ := mustGet(o, "cond").AsString()
	actSrc, _ := mustGet(o, "action").AsString()
	couplingI, _ := mustGet(o, "coupling").AsInt()
	priority, _ := mustGet(o, "priority").AsInt()
	enabled, _ := mustGet(o, "enabled").AsBool()
	classLevel, _ := mustGet(o, "classLevel").AsString()
	contextI, _ := mustGet(o, "context").AsInt()
	txScoped, _ := mustGet(o, "txScoped").AsBool()

	ev, err := db.ParseEvent(evSrc)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q event: %w", name, err)
	}
	spec := RuleSpec{CondSrc: condSrc, ActionSrc: actSrc}
	cond, _, err := db.resolveCondition(spec)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q condition (register go: functions in Options.Schema): %w", name, err)
	}
	act, _, err := db.resolveAction(spec)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q action (register go: functions in Options.Schema): %w", name, err)
	}

	r := rule.New(name, ev, cond, act, rule.Coupling(couplingI))
	r.Priority = int(priority)
	r.Context = event.Context(contextI)
	r.CondSrc = condSrc
	r.ActSrc = actSrc
	r.ClassLevel = classLevel
	r.TxScoped = txScoped
	r.SetID(o.ID())
	ev.SetID(o.ID())
	if err := r.Compile(db.hierarchy()); err != nil {
		return fmt.Errorf("core: rebuilding rule %q: %w", name, err)
	}
	if !enabled {
		r.Disable()
	}
	db.rules[o.ID()] = r
	db.rulesByName[name] = r
	if classLevel != "" {
		db.classRules[classLevel] = append(db.classRules[classLevel], r)
	}
	return nil
}

// Checkpoint flushes committed state to the heap, writes the object-table
// index and metadata (including the heap-class catalog) atomically, and
// truncates the WAL. After a checkpoint, recovery restarts from this state.
// It holds ckptMu exclusively so no commit can append WAL records between
// the heap flush and the log truncation (those records would vanish).
func (db *Database) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	meta := db.metaBlob()
	db.mu.RUnlock()
	if err := db.store.Checkpoint(meta); err != nil {
		return err
	}
	if err := db.log.Truncate(); err != nil {
		return err
	}
	db.met.checkpoints.Inc()
	return nil
}

// maybeAutoCheckpoint checkpoints when the WAL has outgrown the configured
// threshold. Runs at most once concurrently; failures are left for the next
// trigger or the explicit Checkpoint at Close (the commit that called us is
// already durable in the log).
func (db *Database) maybeAutoCheckpoint() {
	if db.store == nil || db.opts.CheckpointBytes < 0 {
		return
	}
	threshold := db.opts.CheckpointBytes
	if threshold == 0 {
		threshold = defaultCheckpointBytes
	}
	if db.log.Size() < threshold {
		return
	}
	if !db.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	defer db.ckptRunning.Store(false)
	_ = db.Checkpoint()
}

func mustGet(o *object.Object, attr string) value.Value {
	v, err := o.Get(attr)
	if err != nil {
		return value.Nil
	}
	return v
}
