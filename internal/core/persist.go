package core

import (
	"fmt"
	"sort"

	"sentinel/internal/event"
	"sentinel/internal/heap"
	"sentinel/internal/index"
	"sentinel/internal/lang"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
	"sentinel/internal/wal"
)

// openStorage opens the heap and WAL, performs crash recovery (replaying
// committed transactions logged after the last checkpoint into the heap),
// materializes all objects into the cache, and rebuilds the runtime
// catalogs — DSL classes, named events, rules, subscriptions and name
// bindings — from their system objects.
func (db *Database) openStorage() error {
	store, err := heap.Open(db.opts.Dir, heap.Options{PoolPages: db.opts.PoolPages})
	if err != nil {
		return err
	}
	db.store = store
	db.loadMeta(store.Meta())

	log, err := wal.Open(db.walPath())
	if err != nil {
		store.Close()
		return err
	}
	db.log = log

	// Redo recovery. First scan the log; any logged work means the side
	// index cannot be trusted (a crash may have left it at the previous
	// checkpoint while evictions advanced some pages), so the object table
	// is rebuilt by a page scan — every record embeds its OID — before the
	// committed transactions are re-applied.
	var recs []wal.Record
	hasWork := false
	err = log.Replay(func(r wal.Record) error {
		recs = append(recs, r)
		if r.Type != wal.RecCheckpoint {
			hasWork = true
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: WAL scan: %w", err)
	}
	if hasWork {
		if err := store.Rescan(); err != nil {
			return fmt.Errorf("core: heap rescan: %w", err)
		}
		pending := make(map[uint64][]wal.Record)
		for _, r := range recs {
			switch r.Type {
			case wal.RecUpdate, wal.RecDelete:
				pending[r.Tx] = append(pending[r.Tx], r)
			case wal.RecCommit:
				for _, u := range pending[r.Tx] {
					if u.Type == wal.RecUpdate {
						if err := store.Put(u.OID, u.Data); err != nil {
							return err
						}
					} else {
						if err := store.Delete(u.OID); err != nil {
							return err
						}
					}
				}
				delete(pending, r.Tx)
			case wal.RecAbort:
				delete(pending, r.Tx)
			}
		}
		// Uncommitted tails in `pending` are discarded (no-steal policy:
		// they were never applied to the heap).
	}

	if err := db.loadObjects(); err != nil {
		return err
	}

	// Start the next epoch from a clean checkpoint.
	return db.Checkpoint()
}

// loadObjects materializes the heap into the object cache and rebuilds the
// runtime catalogs in dependency order: __ClassDef sources first (so
// application objects can decode), then everything, then events → rules →
// subscriptions → names.
func (db *Database) loadObjects() error {
	// Pass 1: collect images grouped by class name.
	type img struct {
		id   oid.OID
		data []byte
	}
	byClass := make(map[string][]img)
	var maxOID oid.OID
	err := db.store.ForEach(func(id oid.OID, data []byte) error {
		cls, err := object.PeekClass(data)
		if err != nil {
			return fmt.Errorf("core: object %s: %w", id, err)
		}
		byClass[cls] = append(byClass[cls], img{id: id, data: data})
		if id > maxOID {
			maxOID = id
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.alloc.Advance(maxOID)

	// Pass 2: replay DSL class definitions (ordered by seq) so their
	// instances can decode. The replay transaction only registers classes;
	// nothing is re-persisted.
	defs := byClass[SysClassDefClass]
	type defEntry struct {
		seq    int64
		name   string
		source string
	}
	var entries []defEntry
	for _, im := range defs {
		o, err := object.Decode(im.id, im.data, db.reg)
		if err != nil {
			return err
		}
		name, _ := mustGet(o, "name").AsString()
		src, _ := mustGet(o, "source").AsString()
		seq, _ := mustGet(o, "seq").AsInt()
		entries = append(entries, defEntry{seq: seq, name: name, source: src})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	if len(entries) > 0 {
		t := db.Begin()
		for _, e := range entries {
			script, err := lang.ParseScript(e.source, db.eventResolver())
			if err != nil {
				return fmt.Errorf("core: replaying class %s: %w", e.name, err)
			}
			for _, item := range script.Items {
				cd, ok := item.(*lang.ClassDecl)
				if !ok {
					return fmt.Errorf("core: catalog entry for class %s contains a non-class item", e.name)
				}
				if err := db.registerDSLClass(t, cd, false); err != nil {
					return fmt.Errorf("core: replaying class %s: %w", e.name, err)
				}
			}
		}
		if err := db.Commit(t); err != nil {
			return err
		}
	}

	// Pass 3: materialize every object.
	for cls, imgs := range byClass {
		for _, im := range imgs {
			o, err := object.Decode(im.id, im.data, db.reg)
			if err != nil {
				return fmt.Errorf("core: materializing %s instance %s: %w", cls, im.id, err)
			}
			db.objects[im.id] = o
		}
	}

	// Pass 4: named events (before rules, which may reference them).
	for _, im := range byClass[SysEventClass] {
		o := db.objects[im.id]
		name, _ := mustGet(o, "name").AsString()
		src, _ := mustGet(o, "source").AsString()
		e, err := db.ParseEvent(src)
		if err != nil {
			return fmt.Errorf("core: rebuilding event %q: %w", name, err)
		}
		e.SetID(im.id)
		db.namedEvents[name] = e
		db.eventObjs[name] = im.id
	}

	// Pass 5: rules.
	for _, im := range byClass[SysRuleClass] {
		if err := db.rebuildRule(db.objects[im.id]); err != nil {
			return err
		}
	}

	// Pass 6: subscriptions.
	for _, im := range byClass[SysSubClass] {
		o := db.objects[im.id]
		reactive, _ := mustGet(o, "reactive").AsRef()
		consumer, _ := mustGet(o, "consumer").AsRef()
		db.subs[reactive] = append(db.subs[reactive], consumer)
		db.subObjs[subKey{reactive, consumer}] = im.id
	}

	// Pass 7: name bindings.
	for _, im := range byClass[SysNameClass] {
		o := db.objects[im.id]
		name, _ := mustGet(o, "name").AsString()
		target, _ := mustGet(o, "target").AsRef()
		db.names[name] = target
		db.nameObjs[name] = im.id
	}

	// Pass 8: secondary indexes, rebuilt from the materialized population.
	for _, im := range byClass[SysIndexClass] {
		o := db.objects[im.id]
		clsName, _ := mustGet(o, "class").AsString()
		attr, _ := mustGet(o, "attr").AsString()
		cls := db.reg.Lookup(clsName)
		if cls == nil {
			return fmt.Errorf("core: index catalog references unknown class %q", clsName)
		}
		h := index.NewHash(clsName, attr)
		for id, obj := range db.objects {
			if !obj.Class().IsSubclassOf(cls) {
				continue
			}
			if a := obj.Class().AttributeNamed(attr); a != nil {
				h.Add(id, obj.GetSlot(a.Slot()))
			}
		}
		k := idxKey{clsName, attr}
		db.indexes[k] = h
		db.indexObjs[k] = im.id
		db.indexByClass[clsName] = append(db.indexByClass[clsName], h)
	}
	return nil
}

// rebuildRule reconstructs the runtime rule from its persistent __Rule
// object: event source re-parses, "go:" references re-bind against the
// function registries (which the application fills in Options.Schema),
// SentinelQL sources re-compile.
func (db *Database) rebuildRule(o *object.Object) error {
	name, _ := mustGet(o, "name").AsString()
	evSrc, _ := mustGet(o, "event").AsString()
	condSrc, _ := mustGet(o, "cond").AsString()
	actSrc, _ := mustGet(o, "action").AsString()
	couplingI, _ := mustGet(o, "coupling").AsInt()
	priority, _ := mustGet(o, "priority").AsInt()
	enabled, _ := mustGet(o, "enabled").AsBool()
	classLevel, _ := mustGet(o, "classLevel").AsString()
	contextI, _ := mustGet(o, "context").AsInt()
	txScoped, _ := mustGet(o, "txScoped").AsBool()

	ev, err := db.ParseEvent(evSrc)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q event: %w", name, err)
	}
	spec := RuleSpec{CondSrc: condSrc, ActionSrc: actSrc}
	cond, _, err := db.resolveCondition(spec)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q condition (register go: functions in Options.Schema): %w", name, err)
	}
	act, _, err := db.resolveAction(spec)
	if err != nil {
		return fmt.Errorf("core: rebuilding rule %q action (register go: functions in Options.Schema): %w", name, err)
	}

	r := rule.New(name, ev, cond, act, rule.Coupling(couplingI))
	r.Priority = int(priority)
	r.Context = event.Context(contextI)
	r.CondSrc = condSrc
	r.ActSrc = actSrc
	r.ClassLevel = classLevel
	r.TxScoped = txScoped
	r.SetID(o.ID())
	ev.SetID(o.ID())
	if err := r.Compile(db.hierarchy()); err != nil {
		return fmt.Errorf("core: rebuilding rule %q: %w", name, err)
	}
	if !enabled {
		r.Disable()
	}
	db.rules[o.ID()] = r
	db.rulesByName[name] = r
	if classLevel != "" {
		db.classRules[classLevel] = append(db.classRules[classLevel], r)
	}
	return nil
}

// Checkpoint flushes committed state to the heap, writes the object-table
// index and metadata atomically, and truncates the WAL. After a checkpoint,
// recovery restarts from this state.
func (db *Database) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	db.mu.RLock()
	meta := db.metaBlob()
	db.mu.RUnlock()
	if err := db.store.Checkpoint(meta); err != nil {
		return err
	}
	return db.log.Truncate()
}

func mustGet(o *object.Object, attr string) value.Value {
	v, err := o.Get(attr)
	if err != nil {
		return value.Nil
	}
	return v
}
