package core_test

// Tests for features beyond the paper's baseline: asynchronous detached
// execution, transaction-scoped event detection, parameter contexts through
// the rule API, and the SentinelQL builtins/collection statements.

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

func TestAsyncDetachedExecution(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard, AsyncDetached: true})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	fred := mkEmployee(t, db, "fred", 100)

	var fired atomic.Int64
	err := db.Atomically(func(tx *core.Tx) error {
		r, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "async",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				fired.Add(1)
				return nil
			},
			Coupling: "detached",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, fred, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, fred, "SetSalary", value.Float(float64(i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()
	if got := fired.Load(); got != 20 {
		t.Fatalf("async detached fired %d times, want 20", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncDetachedChaining(t *testing.T) {
	// A detached rule whose own transaction triggers another detached rule:
	// WaitIdle must cover the chain.
	db := core.MustOpen(core.Options{Output: io.Discard, AsyncDetached: true})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	fred := mkEmployee(t, db, "fred", 100)
	mary := mkEmployee(t, db, "mary", 100)

	var secondFired atomic.Int64
	err := db.Atomically(func(tx *core.Tx) error {
		first, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "first",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				// Triggers mary's watcher in this (detached) transaction.
				_, err := ctx.Send(mary, "SetSalary", value.Float(1))
				return err
			},
			Coupling: "detached",
		})
		if err != nil {
			return err
		}
		if err := db.Subscribe(tx, fred, first.ID()); err != nil {
			return err
		}
		second, err := db.CreateRule(tx, core.RuleSpec{
			Name:     "second",
			EventSrc: "end Employee::SetSalary(float amount)",
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				secondFired.Add(1)
				return nil
			},
			Coupling: "detached",
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, mary, second.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(5))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	if got := secondFired.Load(); got != 1 {
		t.Fatalf("chained detached rule fired %d times, want 1", got)
	}
	db.Close()
}

func TestTxScopedDetection(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)

	mkSeqRule := func(name string, txScoped bool, fired *int) {
		err := db.Atomically(func(tx *core.Tx) error {
			r, err := db.CreateRule(tx, core.RuleSpec{
				Name:     name,
				EventSrc: "end Employee::SetSalary(float amount) seq end Employee::ChangeIncome(float amount)",
				Action: func(ctx rule.ExecContext, det event.Detection) error {
					*fired++
					return nil
				},
				TxScoped: txScoped,
			})
			if err != nil {
				return err
			}
			return db.Subscribe(tx, fred, r.ID())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var global, scoped int
	mkSeqRule("globalSeq", false, &global)
	mkSeqRule("scopedSeq", true, &scoped)

	// First half of the sequence in one transaction...
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// ...second half in another.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, fred, "ChangeIncome", value.Float(2))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if global != 1 {
		t.Fatalf("global rule fired %d times across transactions, want 1", global)
	}
	if scoped != 0 {
		t.Fatalf("tx-scoped rule fired %d times across transactions, want 0", scoped)
	}

	// Both halves within one transaction: both rules fire.
	if err := db.Atomically(func(tx *core.Tx) error {
		if _, err := db.Send(tx, fred, "SetSalary", value.Float(3)); err != nil {
			return err
		}
		_, err := db.Send(tx, fred, "ChangeIncome", value.Float(4))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if scoped != 1 {
		t.Fatalf("tx-scoped rule fired %d times within one transaction, want 1", scoped)
	}
}

func TestTxScopedViaDSLAndPersistence(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(persistentOpts(dir))
	if err := db.Exec(`
		class Acct reactive persistent {
			attr balance float
			event end method Dep(x float) { self.balance := self.balance + x }
			event begin method Wdr(x float) { self.balance := self.balance - x }
		}
		rule InOut on end Acct::Dep(float x) seq begin Acct::Wdr(float x)
			then print("in-out", x)
			coupling deferred
			scope transaction
		bind A new Acct()
		subscribe InOut to A
	`); err != nil {
		t.Fatal(err)
	}
	r := db.LookupRule("InOut")
	if r == nil || !r.TxScoped {
		t.Fatal("scope transaction not applied")
	}
	// Dep and Wdr in different transactions: no detection.
	if err := db.Exec(`A!Dep(100.0)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`A!Wdr(50.0)`); err != nil {
		t.Fatal(err)
	}
	if _, sig, _ := r.Stats(); sig != 0 {
		t.Fatalf("tx-scoped sequence detected across transactions (%d)", sig)
	}
	// Same transaction: detected.
	if err := db.Exec(`A!Dep(10.0) A!Wdr(5.0)`); err != nil {
		t.Fatal(err)
	}
	if _, sig, _ := r.Stats(); sig != 1 {
		t.Fatalf("signalled = %d, want 1", sig)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// TxScoped survives reopen.
	db2, err := core.Open(persistentOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if r2 := db2.LookupRule("InOut"); r2 == nil || !r2.TxScoped {
		t.Fatal("TxScoped flag lost across reopen")
	}
}

func TestParameterContextThroughRuleAPI(t *testing.T) {
	db := orgDB(t)
	fred := mkEmployee(t, db, "fred", 100)
	var recentFired, chronFired int
	mk := func(name, ctx string, fired *int) {
		err := db.Atomically(func(tx *core.Tx) error {
			r, err := db.CreateRule(tx, core.RuleSpec{
				Name:     name,
				EventSrc: "end Employee::SetSalary(float amount) seq end Employee::ChangeIncome(float amount)",
				Action: func(rule.ExecContext, event.Detection) error {
					*fired++
					return nil
				},
				Context: ctx,
			})
			if err != nil {
				return err
			}
			return db.Subscribe(tx, fred, r.ID())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("recent", "recent", &recentFired)
	mk("chron", "chronicle", &chronFired)

	if err := db.Atomically(func(tx *core.Tx) error {
		// Two initiators, then two terminators.
		for _, m := range []string{"SetSalary", "SetSalary", "ChangeIncome", "ChangeIncome"} {
			if _, err := db.Send(tx, fred, m, value.Float(1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Recent: each terminator pairs with the latest initiator → 2 firings.
	if recentFired != 2 {
		t.Fatalf("recent fired %d, want 2", recentFired)
	}
	// Chronicle: FIFO pairs (1st,1st), (2nd,2nd) → also 2, but consuming.
	if chronFired != 2 {
		t.Fatalf("chronicle fired %d, want 2", chronFired)
	}
}

func TestDSLBuiltinsEndToEnd(t *testing.T) {
	var out strings.Builder
	db := core.MustOpen(core.Options{Output: &out})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.BuildOrg(db, 1, 4); err != nil {
		t.Fatal(err)
	}
	// The Ode manager constraint, in pure SentinelQL: a manager must earn
	// at least as much as every employee. (instances("Employee") includes
	// Manager instances — subclasses — so the manager compares against
	// itself too; strict `<` makes self-comparison a no-op.)
	if err := db.Exec(`
		rule MgrTops for Manager on end Manager::SetSalary(float amount)
			if amount < max(pluck(instances("Employee"), "salary"))
			then abort "manager must out-earn employees"
	`); err != nil {
		t.Fatal(err)
	}
	mgr := db.InstancesOf("Manager")[0]
	// Employees are at 1000; a manager salary of 900 violates.
	err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, mgr, "SetSalary", value.Float(900))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("builtin condition did not block: %v", err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, mgr, "SetSalary", value.Float(5000))
		return err
	}); err != nil {
		t.Fatalf("legal raise blocked: %v", err)
	}

	// for/in + list literals through Exec.
	if err := db.Exec(`
		let total := 0.0
		for e in instances("Employee") {
			total := total + e!Salary()
		}
		print("total payroll:", total)
	`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total payroll: 9000") { // 4×1000 + mgr 5000
		t.Fatalf("output = %q", out.String())
	}
}

func TestInstancesBuiltinGuards(t *testing.T) {
	db := orgDB(t)
	if err := db.Exec(`print(len(instances("__Rule")))`); err == nil {
		t.Fatal("system class enumeration allowed")
	}
	if err := db.Exec(`print(len(instances("Bogus")))`); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestScopeClauseParsingErrors(t *testing.T) {
	db := orgDB(t)
	err := db.Exec(`rule R on end Employee::SetSalary(float a) then print("x") scope sometimes`)
	if err == nil {
		t.Fatal("bad scope accepted")
	}
}
