package core

// Tests for the MVCC snapshot-read path (mvcc.go, directory.go version
// chains) and its interactions with the pager's clock eviction and the
// WAL's group commit: snapshot isolation against concurrent writers,
// read-only enforcement, watermark-driven pruning, the chained-entry
// eviction guard, mid-snapshot fault-back-in, snapshot-evaluated detached
// conditions, and option validation. These live in package core because
// they pin unexported internals (the directory, the snapshot registry)
// alongside the public BeginSnapshot surface.

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// setX commits one write of P.x through the method path.
func setX(t *testing.T, db *Database, id oid.OID, v float64) {
	t.Helper()
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, id, "Set", value.Float(v))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// snapX reads P.x through a snapshot transaction.
func snapX(t *testing.T, db *Database, snap *Tx, id oid.OID) float64 {
	t.Helper()
	v, err := db.Get(snap, id, "x")
	if err != nil {
		t.Fatalf("snapshot read of %s: %v", id, err)
	}
	return v.MustFloat()
}

// TestSnapshotIsolationBasic pins the core guarantee: a snapshot keeps
// reading the committed state it was acquired at, across any number of
// later commits, and a snapshot acquired afterwards sees the new state.
func TestSnapshotIsolationBasic(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	setX(t, db, ids[0], 1)

	snap := db.BeginSnapshot()
	if _, ok := snap.Snapshot(); !ok {
		t.Fatal("BeginSnapshot did not mark the transaction as a snapshot")
	}
	if got := snapX(t, db, snap, ids[0]); got != 1 {
		t.Fatalf("snapshot read = %v, want 1", got)
	}

	setX(t, db, ids[0], 2)
	setX(t, db, ids[0], 3)

	// The old snapshot still reads 1; a fresh one reads 3.
	if got := snapX(t, db, snap, ids[0]); got != 1 {
		t.Fatalf("snapshot read after later commits = %v, want 1", got)
	}
	snap2 := db.BeginSnapshot()
	if got := snapX(t, db, snap2, ids[0]); got != 3 {
		t.Fatalf("fresh snapshot read = %v, want 3", got)
	}
	db.Abort(snap2)
	if err := db.Commit(snap); err != nil {
		t.Fatalf("snapshot commit: %v", err)
	}
	if n := db.snaps.activeCount(); n != 0 {
		t.Fatalf("%d snapshots still registered after release", n)
	}
}

// TestSnapshotReadOnly verifies every mutation entry point rejects a
// snapshot transaction with the typed read-only error.
func TestSnapshotReadOnly(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	setX(t, db, ids[0], 1)

	snap := db.BeginSnapshot()
	defer db.Abort(snap)

	if _, err := db.NewObject(snap, "P", nil); !errors.Is(err, errReadOnlyTx) {
		t.Fatalf("NewObject on snapshot: err = %v, want errReadOnlyTx", err)
	}
	if err := db.Set(snap, ids[0], "x", value.Float(9)); !errors.Is(err, errReadOnlyTx) {
		t.Fatalf("Set on snapshot: err = %v, want errReadOnlyTx", err)
	}
	if err := db.DeleteObject(snap, ids[0]); !errors.Is(err, errReadOnlyTx) {
		t.Fatalf("DeleteObject on snapshot: err = %v, want errReadOnlyTx", err)
	}
	// Send takes an exclusive lock up front, so it is rejected too.
	if _, err := db.Send(snap, ids[0], "Set", value.Float(9)); !errors.Is(err, errReadOnlyTx) {
		t.Fatalf("Send on snapshot: err = %v, want errReadOnlyTx", err)
	}
	// The rejections must not have leaked state into the database.
	var x value.Value
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		x, err = db.Get(tx, ids[0], "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if x.MustFloat() != 1 {
		t.Fatalf("x = %v after rejected snapshot writes, want 1", x)
	}
}

// TestSnapshotCreateInvisible pins the anti-resurrection rule: an object
// created after the snapshot neither resolves by OID nor appears in
// InstancesOfAt, while objects existing at the snapshot do.
func TestSnapshotCreateInvisible(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	setX(t, db, ids[0], 1)

	snap := db.BeginSnapshot()
	defer db.Abort(snap)

	var late oid.OID
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		late, err = db.NewObject(tx, "P", map[string]value.Value{"x": value.Float(7)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Get(snap, late, "x"); err == nil {
		t.Fatal("post-snapshot create visible through snapshot read")
	}
	got := db.InstancesOfAt(snap, "P")
	if len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("InstancesOfAt = %v, want exactly [%v]", got, ids[0])
	}
	// An ordinary transaction sees both.
	if live := db.InstancesOf("P"); len(live) != 2 {
		t.Fatalf("InstancesOf = %v, want 2 instances", live)
	}
}

// TestSnapshotDeleteVisible pins tombstone semantics: an object deleted
// after the snapshot stays readable through it (from the archived version)
// and still lists in InstancesOfAt; a later snapshot sees it gone.
func TestSnapshotDeleteVisible(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 2)
	setX(t, db, ids[0], 1)
	setX(t, db, ids[1], 2)

	snap := db.BeginSnapshot()

	if err := db.Atomically(func(tx *Tx) error {
		return db.DeleteObject(tx, ids[0])
	}); err != nil {
		t.Fatal(err)
	}

	if got := snapX(t, db, snap, ids[0]); got != 1 {
		t.Fatalf("snapshot read of deleted object = %v, want 1", got)
	}
	if got := db.InstancesOfAt(snap, "P"); len(got) != 2 {
		t.Fatalf("InstancesOfAt after delete = %v, want both instances", got)
	}

	snap2 := db.BeginSnapshot()
	if _, err := db.Get(snap2, ids[0], "x"); err == nil {
		t.Fatal("deleted object visible to a post-delete snapshot")
	}
	if got := db.InstancesOfAt(snap2, "P"); len(got) != 1 || got[0] != ids[1] {
		t.Fatalf("post-delete InstancesOfAt = %v, want [%v]", got, ids[1])
	}
	db.Abort(snap2)
	db.Abort(snap)
}

// TestVersionChainPruneOnRelease verifies the watermark protocol end to
// end: chains grow while a snapshot pins the watermark, and the first
// commit after release sweeps every dead version and tombstone.
func TestVersionChainPruneOnRelease(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 2)
	setX(t, db, ids[0], 0)

	snap := db.BeginSnapshot()
	for i := 1; i <= 3; i++ {
		setX(t, db, ids[0], float64(i))
	}
	s := db.Stats().Storage
	if s.VersionsLive < 3 {
		t.Fatalf("VersionsLive = %d with 3 post-snapshot commits pinned, want >= 3", s.VersionsLive)
	}
	if s.MaxChainDepth < 3 {
		t.Fatalf("MaxChainDepth = %d, want >= 3", s.MaxChainDepth)
	}
	if s.SnapshotsActive != 1 {
		t.Fatalf("SnapshotsActive = %d, want 1", s.SnapshotsActive)
	}
	// The pinned snapshot still reads the pre-chain value.
	if got := snapX(t, db, snap, ids[0]); got != 0 {
		t.Fatalf("pinned snapshot read = %v, want 0", got)
	}

	db.Abort(snap) // releases the snapshot; watermark can advance
	// The next commit's epilogue sweeps the chains.
	setX(t, db, ids[1], 1)
	s = db.Stats().Storage
	if s.VersionsLive != 0 {
		t.Fatalf("VersionsLive = %d after release + commit, want 0", s.VersionsLive)
	}
	if s.MaxChainDepth != 0 {
		t.Fatalf("MaxChainDepth = %d after sweep, want 0", s.MaxChainDepth)
	}
	if s.VersionPrunes < 3 {
		t.Fatalf("VersionPrunes = %d, want >= 3", s.VersionPrunes)
	}
}

// TestSnapshotEvictionPin is the version-chain × clock-eviction regression
// (the satellite fix): an entry whose chain a snapshot still needs must
// survive eviction pressure — evicting it would leave only the newest heap
// image, silently feeding post-snapshot state to the snapshot — and an
// entry that WAS evicted before the snapshot faults back in mid-snapshot
// with the correct (pre-snapshot) state, then anchors a chain when a
// writer updates it.
func TestSnapshotEvictionPin(t *testing.T) {
	db := MustOpen(Options{
		Dir: t.TempDir(), VFS: vfs.NewMem(),
		MaxResidentObjects: 4, Output: io.Discard,
	})
	defer db.Close()
	employeeSchema(t, db)

	const n = 12
	ids := make([]oid.OID, n)
	if err := db.Atomically(func(tx *Tx) error {
		for i := range ids {
			var err error
			ids[i], err = db.NewObject(tx, "Employee", map[string]value.Value{
				"salary": value.Float(float64(100 + i)),
			})
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Cycle every object through the directory so the clock evicts the
	// early ones well below the 4-resident ceiling.
	for _, id := range ids {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Get(tx, id, "salary")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	snap := db.BeginSnapshot()
	defer db.Abort(snap)

	// hot gets a post-snapshot update: its entry now carries a chain
	// pinned by snap. cold was evicted before the snapshot; the writer's
	// lock faults it in, anchors a chain on the fault-in image, and the
	// snapshot must read that archived pre-state, not the new commit.
	hot, cold := ids[n-1], ids[0]
	for _, id := range []oid.OID{hot, cold} {
		if err := db.Atomically(func(tx *Tx) error {
			_, err := db.Send(tx, id, "SetSalary", value.Float(9999))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer the clock: touch every other object repeatedly so eviction
	// pressure sweeps past the chained entries many times.
	for round := 0; round < 3; round++ {
		for _, id := range ids[1 : n-1] {
			if err := db.Atomically(func(tx *Tx) error {
				_, err := db.Get(tx, id, "salary")
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	readSnap := func(id oid.OID) float64 {
		v, err := db.Get(snap, id, "salary")
		if err != nil {
			t.Fatalf("snapshot read of %s: %v", id, err)
		}
		return v.MustFloat()
	}
	if got := readSnap(hot); got != float64(100+n-1) {
		t.Fatalf("snapshot read of chained hot object = %v, want %v (post-snapshot 9999 leaked)",
			got, float64(100+n-1))
	}
	if got := readSnap(cold); got != 100 {
		t.Fatalf("snapshot read of faulted-back cold object = %v, want 100", got)
	}
	// An untouched, evicted object read mid-snapshot faults back in from
	// the heap at watermark-or-older state.
	if got := readSnap(ids[3]); got != 103 {
		t.Fatalf("snapshot read of evicted object = %v, want 103", got)
	}
	// Ordinary transactions read the new values throughout.
	var live value.Value
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		live, err = db.Get(tx, hot, "salary")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if live.MustFloat() != 9999 {
		t.Fatalf("live read = %v, want 9999", live)
	}
}

// TestSnapshotConcurrentWriters races a pool of writers against snapshot
// readers: every snapshot must read a stable value for the whole of its
// lifetime (no torn or post-snapshot reads). Run with -race.
func TestSnapshotConcurrentWriters(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 4)
	for _, id := range ids {
		setX(t, db, id, 0)
	}

	const writers, rounds = 4, 50
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 1; i <= rounds; i++ {
				id := ids[w%len(ids)]
				if err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, id, "Set", value.Float(float64(i)))
					return err
				}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := db.BeginSnapshot()
			// Each object must read the same value twice within one
			// snapshot, however the writers interleave.
			for _, id := range ids {
				a, err := db.Get(snap, id, "x")
				if err != nil {
					t.Errorf("snapshot read: %v", err)
					break
				}
				b, err := db.Get(snap, id, "x")
				if err != nil || a.MustFloat() != b.MustFloat() {
					t.Errorf("torn snapshot read on %s: %v then %v (err %v)", id, a, b, err)
					break
				}
			}
			db.Abort(snap)
		}
	}()
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	// With every snapshot released, a final commit drains the chains.
	setX(t, db, ids[0], 1)
	if s := db.Stats().Storage; s.VersionsLive != 0 || s.SnapshotsActive != 0 {
		t.Fatalf("MVCC state not drained: versions=%d snapshots=%d", s.VersionsLive, s.SnapshotsActive)
	}
}

// TestSnapshotConditionsDetached exercises Options.SnapshotConditions: the
// detached condition evaluates against a committed snapshot (it sees the
// triggering commit's value) and the action still runs in the firing's own
// locking transaction.
func TestSnapshotConditionsDetached(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard, SnapshotConditions: true})
	ids := hotPathClass(t, db, 1)

	var condSaw, actSaw float64
	if err := db.Atomically(func(tx *Tx) error {
		r, err := db.CreateRule(tx, RuleSpec{
			Name: "snapCond", EventSrc: "end P::Set(float v)", Coupling: "detached",
			Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) {
				v, err := ctx.GetAttr(det.Last().Source, "x")
				if err != nil {
					return false, err
				}
				condSaw = v.MustFloat()
				return v.MustFloat() > 10, nil
			},
			Action: func(ctx rule.ExecContext, det event.Detection) error {
				v, err := ctx.GetAttr(det.Last().Source, "x")
				if err != nil {
					return err
				}
				actSaw = v.MustFloat()
				return ctx.SetAttr(det.Last().Source, "x", value.Float(v.MustFloat()+1))
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, ids[0], r.ID())
	}); err != nil {
		t.Fatal(err)
	}

	setX(t, db, ids[0], 5) // condition false: snapshot saw the committed 5
	if condSaw != 5 {
		t.Fatalf("condition saw %v, want the committed 5", condSaw)
	}
	setX(t, db, ids[0], 42) // condition true; action bumps to 43
	if condSaw != 42 || actSaw != 42 {
		t.Fatalf("condition/action saw %v/%v, want 42/42", condSaw, actSaw)
	}
	var x value.Value
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		x, err = db.Get(tx, ids[0], "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if x.MustFloat() != 43 {
		t.Fatalf("x = %v after detached action, want 43", x)
	}
	// The condition snapshots must all be released.
	if n := db.snaps.activeCount(); n != 0 {
		t.Fatalf("%d condition snapshots leaked", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRefsAtSnapshot pins the snapshot-consistent integrity scan: a
// referent deleted after the snapshot does not produce a dangling-ref
// report, because both sides resolve at the snapshot's LSN.
func TestCheckRefsAtSnapshot(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	node := schema.NewClass("Node")
	node.Attr("next", value.TypeAnyRef)
	db.MustRegisterClass(node)
	var a, b oid.OID
	if err := db.Atomically(func(tx *Tx) error {
		var err error
		if b, err = db.NewObject(tx, "Node", nil); err != nil {
			return err
		}
		a, err = db.NewObject(tx, "Node", map[string]value.Value{"next": value.Ref(b)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	snap := db.BeginSnapshot()
	defer db.Abort(snap)
	if err := db.Atomically(func(tx *Tx) error {
		if err := db.Set(tx, a, "next", value.Nil); err != nil {
			return err
		}
		return db.DeleteObject(tx, b)
	}); err != nil {
		t.Fatal(err)
	}
	if problems := db.CheckRefsAt(snap); len(problems) != 0 {
		t.Fatalf("CheckRefsAt reported false danglers: %v", problems)
	}
}

// TestGroupCommitOptionValidation pins the GroupCommitWindow contract.
func TestGroupCommitOptionValidation(t *testing.T) {
	if err := (Options{GroupCommitWindow: -1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "GroupCommitWindow") {
		t.Fatalf("negative window: err = %v, want GroupCommitWindow error", err)
	}
	if err := (Options{GroupCommitWindow: 1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "SyncOnCommit") {
		t.Fatalf("window without SyncOnCommit: err = %v, want coupling error", err)
	}
	if err := (Options{Dir: "x", SyncOnCommit: true, GroupCommitWindow: 1}).Validate(); err != nil {
		t.Fatalf("valid group-commit config rejected: %v", err)
	}
}

// TestGroupCommitCoalescing drives concurrent durable commits through the
// WAL's leader/follower protocol and checks the stats plumbing: every
// commit is carried by some flush, and recovery replays all of them.
func TestGroupCommitCoalescing(t *testing.T) {
	dir := t.TempDir()
	mem := vfs.NewMem()
	db := MustOpen(Options{Dir: dir, VFS: mem, SyncOnCommit: true, Output: io.Discard})
	employeeSchema(t, db)

	const workers, rounds = 8, 10
	ids := make([]oid.OID, workers)
	if err := db.Atomically(func(tx *Tx) error {
		for i := range ids {
			var err error
			ids[i], err = db.NewObject(tx, "Employee", nil)
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				if err := db.Atomically(func(tx *Tx) error {
					_, err := db.Send(tx, ids[w], "SetSalary", value.Float(float64(i)))
					return err
				}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := db.Stats().Storage
	if s.CommitGroups == 0 {
		t.Fatal("no commit groups recorded under concurrent durable commits")
	}
	if s.GroupedCommits < s.CommitGroups {
		t.Fatalf("GroupedCommits (%d) < CommitGroups (%d): every flush carries >= 1 commit",
			s.GroupedCommits, s.CommitGroups)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Every coalesced commit must survive recovery.
	db2, err := Open(Options{Dir: dir, VFS: mem, Schema: func(d *Database) error {
		employeeSchema(t, d)
		return nil
	}, Output: io.Discard})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for _, id := range ids {
		var v value.Value
		if err := db2.Atomically(func(tx *Tx) error {
			var err error
			v, err = db2.Get(tx, id, "salary")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if v.MustFloat() != rounds {
			t.Fatalf("object %s recovered salary %v, want %d", id, v, rounds)
		}
	}
}
