package core

import (
	"fmt"

	"sentinel/internal/lang"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// ExecScript parses and executes a SentinelQL compilation unit inside the
// transaction: class definitions register (and persist as __ClassDef
// objects), event and rule declarations become first-class objects, and
// statements run with shell (public) visibility.
//
// Class registration is DDL and is not undone if the transaction later
// aborts (the catalog object is, so the definition will not survive a
// restart); rules, events, bindings and data statements are fully
// transactional.
func (db *Database) ExecScript(t *Tx, src string) error {
	script, err := lang.ParseScript(src, db.eventResolver())
	if err != nil {
		return err
	}
	// One shared frame and scope per compilation unit, so `let` bindings
	// carry across the following statements.
	fr := &frame{db: db, tx: t}
	in := lang.NewInterp(fr, fr.Self(), nil)
	for _, item := range script.Items {
		switch it := item.(type) {
		case *lang.ClassDecl:
			if err := db.registerDSLClass(t, it, true); err != nil {
				return err
			}
		case *lang.EvolveDecl:
			if err := db.evolveDSLClass(t, it.Class); err != nil {
				return err
			}
		case *lang.EventDecl:
			if _, err := db.DefineEvent(t, it.Name, it.Source); err != nil {
				return err
			}
		case *lang.RuleDecl:
			if _, err := db.CreateRule(t, specFromDecl(it, "")); err != nil {
				return err
			}
		case lang.Stmt:
			if err := in.ExecStmts([]lang.Stmt{it}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unknown script item %T", item)
		}
	}
	return nil
}

// Exec is ExecScript in its own transaction.
func (db *Database) Exec(src string) error {
	return db.Atomically(func(t *Tx) error { return db.ExecScript(t, src) })
}

// Eval evaluates a single SentinelQL expression in its own transaction and
// returns the result.
func (db *Database) Eval(src string) (value.Value, error) {
	ast, err := lang.ParseCondition(src)
	if err != nil {
		return value.Nil, err
	}
	var out value.Value
	err = db.Atomically(func(t *Tx) error {
		fr := &frame{db: db, tx: t}
		in := lang.NewInterp(fr, fr.Self(), nil)
		v, err := in.Eval(ast)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

// specFromDecl converts a parsed rule declaration into a RuleSpec. A rule
// nested in a class definition is class-level for that class; a top-level
// rule can opt into class scope with `for ClassName`.
func specFromDecl(d *lang.RuleDecl, classLevel string) RuleSpec {
	if classLevel == "" {
		classLevel = d.ForClass
	}
	spec := RuleSpec{
		Name:       d.Name,
		Event:      d.Event,
		EventSrc:   d.EventName,
		ActionSrc:  d.ActionSrc,
		CondSrc:    d.CondSrc,
		Coupling:   d.Coupling,
		Priority:   d.Priority,
		Context:    d.Context,
		ClassLevel: classLevel,
		TxScoped:   d.TxScoped,
	}
	return spec
}

// registerDSLClass materializes a SentinelQL class definition as a runtime
// class with interpreted method bodies, wires up its class-level rules, and
// (when persist is true) stores the definition source as a __ClassDef
// object so reopening the database replays it.
// buildDSLClass constructs an unregistered runtime class from a parsed
// declaration, with interpreted method bodies.
func (db *Database) buildDSLClass(d *lang.ClassDecl) (*schema.Class, error) {
	if IsSystemClass(d.Name) {
		return nil, fmt.Errorf("core: class name %s is reserved", d.Name)
	}
	bases := make([]*schema.Class, 0, len(d.Bases))
	for _, bn := range d.Bases {
		b := db.reg.Lookup(bn)
		if b == nil {
			return nil, fmt.Errorf("core: class %s extends unknown class %s", d.Name, bn)
		}
		bases = append(bases, b)
	}
	c := schema.NewClass(d.Name, bases...)
	c.Abstract = d.Abstract
	c.Persistent = d.Persistent
	switch {
	case d.Reactive && d.Notifiable:
		c.Classification = schema.ReactiveNotifiableClass
	case d.Reactive:
		c.Classification = schema.ReactiveClass
	case d.Notifiable:
		c.Classification = schema.NotifiableClass
	}
	for _, a := range d.Attrs {
		c.AddAttribute(&schema.Attribute{
			Name:       a.Name,
			Type:       a.Type,
			Visibility: a.Visibility,
			Default:    a.Default,
		})
	}
	for _, m := range d.Methods {
		body := m.Body
		params := m.Params
		c.AddMethod(&schema.Method{
			Name:       m.Name,
			Params:     m.Params,
			Returns:    m.Returns,
			Visibility: m.Visibility,
			EventGen:   m.EventGen,
			Body: func(ctx schema.CallContext) (value.Value, error) {
				fr, ok := ctx.(*frame)
				if !ok {
					return value.Nil, fmt.Errorf("core: interpreted method outside the runtime")
				}
				sc := lang.NewScope(nil)
				for i, p := range params {
					sc.Define(p.Name, ctx.Arg(i))
				}
				in := lang.NewInterp(fr, ctx.Self(), sc)
				return in.ExecBody(body)
			},
		})
	}
	return c, nil
}

func (db *Database) registerDSLClass(t *Tx, d *lang.ClassDecl, persist bool) error {
	c, err := db.buildDSLClass(d)
	if err != nil {
		return err
	}
	if err := db.reg.Register(c); err != nil {
		return err
	}
	// When persist is false we are replaying the catalog on open: the
	// class-level rules were persisted as __Rule objects and are rebuilt
	// from those, so they must not be instantiated twice.
	if persist {
		for i := range d.Rules {
			rd := &d.Rules[i]
			if _, err := db.CreateRule(t, specFromDecl(rd, c.Name)); err != nil {
				return fmt.Errorf("core: class %s rule %s: %w", c.Name, rd.Name, err)
			}
		}
	}
	if persist {
		db.mu.Lock()
		db.dslClassSeq++
		seq := db.dslClassSeq
		db.mu.Unlock()
		if _, err := db.NewObject(t, SysClassDefClass, map[string]value.Value{
			"name":   value.Str(d.Name),
			"source": value.Str(d.Source),
			"seq":    value.Int(int64(seq)),
		}); err != nil {
			return err
		}
	}
	return nil
}
