package core_test

// Fault-injection tests: recovery must behave sanely for ANY crash point —
// the WAL may be cut anywhere, and the result must be a prefix-consistent
// database (committed transactions are atomic: all-or-nothing).

import (
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// copyDir copies a database directory for destructive experimentation.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoveryAtEveryTruncationPoint builds a database where each
// transaction atomically updates TWO objects to the same value, crashes,
// then re-opens with the WAL truncated at a sweep of byte positions. At
// every position the database must open and the two objects must hold the
// SAME value — a torn transaction must never be half-applied.
func TestRecoveryAtEveryTruncationPoint(t *testing.T) {
	dir := t.TempDir()
	opts := orgOpts(dir)
	db := core.MustOpen(opts)
	a := mkEmployee(t, db, "a", 0)
	b := mkEmployee(t, db, "b", 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// 25 committed transactions, each moving both salaries in lockstep.
	for i := 1; i <= 25; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			if err := db.SetSys(tx, a, "salary", value.Float(float64(i))); err != nil {
				return err
			}
			return db.SetSys(tx, b, "salary", value.Float(float64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "sentinel.wal")
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Sweep truncation points (every 97 bytes plus the exact end).
	points := []int{0, 1, 7}
	for p := 64; p < len(walData); p += 97 {
		points = append(points, p)
	}
	points = append(points, len(walData))

	lastSeen := -1.0
	for _, p := range points {
		work := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(work, "sentinel.wal"), walData[:p], 0o644); err != nil {
			t.Fatal(err)
		}
		o := orgOpts(work)
		db2, err := core.Open(o)
		if err != nil {
			t.Fatalf("truncation at %d: open failed: %v", p, err)
		}
		var va, vb float64
		err = db2.Atomically(func(tx *core.Tx) error {
			x, err := db2.GetSys(tx, a, "salary")
			if err != nil {
				return err
			}
			y, err := db2.GetSys(tx, b, "salary")
			if err != nil {
				return err
			}
			va, _ = x.Numeric()
			vb, _ = y.Numeric()
			return nil
		})
		if err != nil {
			t.Fatalf("truncation at %d: read failed: %v", p, err)
		}
		if va != vb {
			t.Fatalf("truncation at %d: torn transaction visible: a=%v b=%v", p, va, vb)
		}
		// Prefix property: longer prefixes never regress.
		if va < lastSeen {
			t.Fatalf("truncation at %d: recovered state regressed: %v < %v", p, va, lastSeen)
		}
		lastSeen = va
		db2.Close()
	}
	// The full WAL recovers the final state.
	if lastSeen != 25 {
		t.Fatalf("full WAL recovered %v, want 25", lastSeen)
	}
}

// TestRecoveryAtEveryBitFlip extends the truncation sweep to single-bit
// damage: every bit position in the WAL (strided for wall time, exhaustive
// under SENTINEL_TORTURE=full) is flipped in isolation, and the database
// must open without error or panic, replay cleanly up to the damage or
// stop, and never expose a half-applied transaction or a value outside
// the committed range. The sweep runs on the in-memory VFS, so thousands
// of reopen cycles cost no disk I/O.
func TestRecoveryAtEveryBitFlip(t *testing.T) {
	mem := vfs.NewMem()
	opts := orgOpts("db")
	opts.VFS = mem
	db := core.MustOpen(opts)
	a := mkEmployee(t, db, "a", 0)
	b := mkEmployee(t, db, "b", 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	const txs = 25
	for i := 1; i <= txs; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			if err := db.SetSys(tx, a, "salary", value.Float(float64(i))); err != nil {
				return err
			}
			return db.SetSys(tx, b, "salary", value.Float(float64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	base := mem.Snapshot()
	wal := base["db/sentinel.wal"]
	if len(wal) == 0 {
		t.Fatal("no WAL captured")
	}

	stride := 3
	if testing.Short() {
		stride = 29
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		stride = 1
	}
	flips := 0
	for p := 0; p < len(wal); p += stride {
		// Rotate the flipped bit with the position so the sweep touches
		// every bit lane of the record framing, not just one.
		bit := byte(1) << (p % 8)
		corrupted := append([]byte(nil), wal...)
		corrupted[p] ^= bit

		files := make(map[string][]byte, len(base))
		for name, data := range base {
			files[name] = data
		}
		files["db/sentinel.wal"] = corrupted
		work := vfs.NewMem()
		work.Install(files)

		o := orgOpts("db")
		o.VFS = work
		db2, err := core.Open(o)
		if err != nil {
			t.Fatalf("bit flip at byte %d bit %d: open failed: %v", p, p%8, err)
		}
		var va, vb float64
		err = db2.Atomically(func(tx *core.Tx) error {
			x, err := db2.GetSys(tx, a, "salary")
			if err != nil {
				return err
			}
			y, err := db2.GetSys(tx, b, "salary")
			if err != nil {
				return err
			}
			va, _ = x.Numeric()
			vb, _ = y.Numeric()
			return nil
		})
		if err != nil {
			t.Fatalf("bit flip at byte %d: read failed: %v", p, err)
		}
		if va != vb {
			t.Fatalf("bit flip at byte %d: torn transaction visible: a=%v b=%v", p, va, vb)
		}
		if va < 0 || va > txs {
			t.Fatalf("bit flip at byte %d: recovered value %v outside committed range [0,%d]", p, va, txs)
		}
		db2.Close()
		flips++
	}
	t.Logf("survived %d single-bit flips across a %d-byte WAL", flips, len(wal))
}

// TestRecoveryWithCorruptedWALByte: a flipped byte mid-log ends replay at
// the corruption but never fails the open or tears a transaction.
func TestRecoveryWithCorruptedWALByte(t *testing.T) {
	dir := t.TempDir()
	opts := orgOpts(dir)
	db := core.MustOpen(opts)
	a := mkEmployee(t, db, "a", 0)
	b := mkEmployee(t, db, "b", 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			if err := db.SetSys(tx, a, "salary", value.Float(float64(i))); err != nil {
				return err
			}
			return db.SetSys(tx, b, "salary", value.Float(float64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "sentinel.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		work := copyDir(t, dir)
		corrupted := append([]byte(nil), data...)
		corrupted[int(float64(len(corrupted))*frac)] ^= 0xA5
		if err := os.WriteFile(filepath.Join(work, "sentinel.wal"), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := core.Open(orgOpts(work))
		if err != nil {
			t.Fatalf("corruption at %.0f%%: open failed: %v", frac*100, err)
		}
		err = db2.Atomically(func(tx *core.Tx) error {
			x, err := db2.GetSys(tx, a, "salary")
			if err != nil {
				return err
			}
			y, err := db2.GetSys(tx, b, "salary")
			if err != nil {
				return err
			}
			if !x.Equal(y) {
				t.Errorf("corruption at %.0f%%: torn state %v vs %v", frac*100, x, y)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		db2.Close()
	}
}

// TestRepeatedCrashReopenCycles: crash → recover → write → crash, many
// times; nothing may be lost or duplicated.
func TestRepeatedCrashReopenCycles(t *testing.T) {
	dir := t.TempDir()
	opts := func() core.Options {
		o := persistentOpts(dir)
		o.Schema = func(db *core.Database) error { return bench.InstallOrgSchema(db) }
		return o
	}
	db := core.MustOpen(opts())
	id := mkEmployee(t, db, "survivor", 0)
	for cycle := 1; cycle <= 8; cycle++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			return db.SetSys(tx, id, "salary", value.Float(float64(cycle)))
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.CloseAbrupt(); err != nil {
			t.Fatal(err)
		}
		var err error
		db, err = core.Open(opts())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := db.Atomically(func(tx *core.Tx) error {
			v, err := db.GetSys(tx, id, "salary")
			if err != nil {
				return err
			}
			if f, _ := v.Numeric(); f != float64(cycle) {
				t.Fatalf("cycle %d: salary = %v", cycle, v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Object population must stay constant (no resurrection/duplication).
		if got := len(db.InstancesOf("Employee")); got != 1 {
			t.Fatalf("cycle %d: %d employees", cycle, got)
		}
	}
	db.Close()
}
