package core

import (
	"fmt"
	"sort"
	"strings"

	"sentinel/internal/index"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// CheckIntegrity cross-checks the runtime structures against each other and
// against the object population, returning a sorted list of problems (empty
// means consistent). It verifies:
//
//   - reference attributes point at live objects (no dangling refs),
//   - every runtime rule has its __Rule object and vice versa,
//   - every named event has its __Event object and vice versa,
//   - every subscription edge has its __Subscription object, joins a live
//     reactive object to a live rule, and vice versa,
//   - name bindings target live objects and have __Name objects,
//   - every secondary index exactly matches a fresh scan of the population,
//   - class-level rule lists only contain live rules.
//
// It takes no locks beyond the catalog mutex per step, so run it at a
// quiescent point (the shell's .check does).
func (db *Database) CheckIntegrity() []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Snapshot the structures. The object population is the union of the
	// resident directory and the heap catalog (tombstones excluded), so the
	// check sees evicted objects without faulting them all back in.
	objects := db.liveClassMap()
	db.mu.RLock()
	rules := make(map[oid.OID]string, len(db.rules))
	for id, r := range db.rules {
		rules[id] = r.Name()
	}
	subsCopy := make(map[oid.OID][]oid.OID, len(db.subs))
	for k, v := range db.subs {
		subsCopy[k] = append([]oid.OID(nil), v...)
	}
	subObjs := make(map[subKey]oid.OID, len(db.subObjs))
	for k, v := range db.subObjs {
		subObjs[k] = v
	}
	names := make(map[string]oid.OID, len(db.names))
	for k, v := range db.names {
		names[k] = v
	}
	nameObjs := make(map[string]oid.OID, len(db.nameObjs))
	for k, v := range db.nameObjs {
		nameObjs[k] = v
	}
	eventObjs := make(map[string]oid.OID, len(db.eventObjs))
	for k, v := range db.eventObjs {
		eventObjs[k] = v
	}
	indexes := make(map[idxKey]*index.Hash, len(db.indexes))
	for k, v := range db.indexes {
		indexes[k] = v
	}
	classRules := make(map[string][]*ruleEntry)
	for cls, rs := range db.classRules {
		for _, r := range rs {
			classRules[cls] = append(classRules[cls], &ruleEntry{id: r.ID(), name: r.Name()})
		}
	}
	db.mu.RUnlock()

	// 1. Dangling references in object attributes. Streaming pass: evicted
	// objects are decoded transiently, not faulted in.
	if err := db.forEachLiveObject(func(id oid.OID, o *object.Object) error {
		for _, a := range o.Class().Layout() {
			checkRefs(o.GetSlot(a.Slot()), func(ref oid.OID) {
				if _, live := objects[ref]; !live {
					addf("object %s (%s): attribute %s references missing object %s",
						id, o.Class().Name, a.Name, ref)
				}
			})
		}
		return nil
	}); err != nil {
		addf("object scan failed: %v", err)
	}

	// 2. Rules ↔ __Rule objects.
	for id, name := range rules {
		cls, ok := objects[id]
		if !ok {
			addf("rule %q (%s): no backing __Rule object", name, id)
		} else if cls != SysRuleClass {
			addf("rule %q (%s): backing object has class %s", name, id, cls)
		}
	}
	for id, cls := range objects {
		if cls == SysRuleClass {
			if _, ok := rules[id]; !ok {
				addf("__Rule object %s has no runtime rule", id)
			}
		}
	}

	// 3. Named events ↔ __Event objects.
	for name, id := range eventObjs {
		if cls, ok := objects[id]; !ok || cls != SysEventClass {
			addf("named event %q: backing object %s missing or wrong class", name, id)
		}
	}
	for id, cls := range objects {
		if cls == SysEventClass {
			found := false
			for _, eid := range eventObjs {
				if eid == id {
					found = true
					break
				}
			}
			if !found {
				addf("__Event object %s not in the named-event catalog", id)
			}
		}
	}

	// 4. Subscriptions: edges ↔ __Subscription objects, endpoints live.
	for reactive, consumers := range subsCopy {
		if _, live := objects[reactive]; !live {
			addf("subscription list for missing reactive object %s", reactive)
		}
		for _, c := range consumers {
			if _, isRule := rules[c]; !isRule {
				addf("subscription %s -> %s: consumer is not a live rule", reactive, c)
			}
			if _, ok := subObjs[subKey{reactive, c}]; !ok {
				addf("subscription %s -> %s: no backing __Subscription object", reactive, c)
			}
		}
	}
	for k, subID := range subObjs {
		if cls, ok := objects[subID]; !ok || cls != SysSubClass {
			addf("__Subscription record %s missing or wrong class", subID)
		}
		found := false
		for _, c := range subsCopy[k.reactive] {
			if c == k.consumer {
				found = true
				break
			}
		}
		if !found {
			addf("__Subscription object %s has no runtime edge %s -> %s", subID, k.reactive, k.consumer)
		}
	}

	// 5. Name bindings.
	for name, target := range names {
		if _, live := objects[target]; !live {
			addf("name %q targets missing object %s", name, target)
		}
		if _, ok := nameObjs[name]; !ok {
			addf("name %q has no backing __Name object", name)
		}
	}

	// 6. Indexes match a fresh scan.
	for k, h := range indexes {
		cls := db.reg.Lookup(k.class)
		if cls == nil {
			addf("index %s.%s: class no longer registered", k.class, k.attr)
			continue
		}
		expected := index.NewHash(k.class, k.attr)
		if err := db.forEachLiveObject(func(id oid.OID, o *object.Object) error {
			if !o.Class().IsSubclassOf(cls) {
				return nil
			}
			if a := o.Class().AttributeNamed(k.attr); a != nil {
				expected.Add(id, o.GetSlot(a.Slot()))
			}
			return nil
		}); err != nil {
			addf("index %s.%s: scan failed: %v", k.class, k.attr, err)
			continue
		}
		if expected.Len() != h.Len() {
			addf("index %s.%s: has %d entries, scan finds %d", k.class, k.attr, h.Len(), expected.Len())
			continue
		}
		// Spot-verify: every scanned entry must be found by the index.
		if err := db.forEachLiveObject(func(id oid.OID, o *object.Object) error {
			if !o.Class().IsSubclassOf(cls) {
				return nil
			}
			a := o.Class().AttributeNamed(k.attr)
			if a == nil {
				return nil
			}
			v := o.GetSlot(a.Slot())
			hit := false
			for _, got := range h.Lookup(v) {
				if got == id {
					hit = true
					break
				}
			}
			if !hit {
				addf("index %s.%s: object %s with value %s not indexed", k.class, k.attr, id, v)
			}
			return nil
		}); err != nil {
			addf("index %s.%s: verify scan failed: %v", k.class, k.attr, err)
		}
	}

	// 7. Class-level rule lists reference live rules of that class scope.
	for cls, entries := range classRules {
		for _, e := range entries {
			if _, ok := rules[e.id]; !ok {
				addf("class-level rule list for %s contains dead rule %q (%s)", cls, e.name, e.id)
			}
		}
	}

	sort.Strings(problems)
	return problems
}

type ruleEntry struct {
	id   oid.OID
	name string
}

// checkRefs walks a value (including nested lists) invoking fn for every
// object reference.
func checkRefs(v value.Value, fn func(oid.OID)) {
	if ref, ok := v.AsRef(); ok {
		if !ref.IsNil() {
			fn(ref)
		}
		return
	}
	if lst, ok := v.AsList(); ok {
		for _, e := range lst {
			checkRefs(e, fn)
		}
	}
}

// MustBeConsistent panics when CheckIntegrity finds problems; a test and
// shutdown helper.
func (db *Database) MustBeConsistent() {
	if problems := db.CheckIntegrity(); len(problems) > 0 {
		panic("core: integrity check failed:\n  " + strings.Join(problems, "\n  "))
	}
}
