package core

// Tests for the remote-sink seam (sink.go): delivery strictly after durable
// commit, abort suppression, filter matching, per-id and per-sink
// unsubscribe, the closed-registry contract, and the hot-path guarantee
// that a database with no sinks pays nothing beyond one atomic load.

import (
	"io"
	"sync"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/value"
)

// recordSink collects deliveries; safe for concurrent use.
type recordSink struct {
	mu   sync.Mutex
	got  []event.Occurrence
	subs []uint64
}

func (s *recordSink) DeliverEvent(subID uint64, occ event.Occurrence) {
	s.mu.Lock()
	s.got = append(s.got, occ)
	s.subs = append(s.subs, subID)
	s.mu.Unlock()
}

func (s *recordSink) events() []event.Occurrence {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]event.Occurrence(nil), s.got...)
}

func TestSinkDeliversAfterCommit(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	sink := &recordSink{}
	subID, err := db.SubscribeSink(ids[0], SinkFilter{}, sink)
	if err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := db.Send(tx, ids[0], "Set", value.Float(1)); err != nil {
		t.Fatal(err)
	}
	// Raised but not committed: nothing may have left the process.
	if n := len(sink.events()); n != 0 {
		t.Fatalf("sink saw %d events before commit", n)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	got := sink.events()
	if len(got) != 1 {
		t.Fatalf("sink saw %d events after commit, want 1", len(got))
	}
	occ := got[0]
	if occ.Source != ids[0] || occ.Class != "P" || occ.Method != "Set" || occ.When != event.End {
		t.Fatalf("wrong occurrence: %+v", occ)
	}
	if len(occ.Args) != 1 {
		t.Fatalf("args not carried: %+v", occ.Args)
	}
	if sink.subs[0] != subID {
		t.Fatalf("delivered subID %d, want %d", sink.subs[0], subID)
	}
}

func TestSinkAbortSuppresses(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	sink := &recordSink{}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{}, sink); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := db.Send(tx, ids[0], "Set", value.Float(1)); err != nil {
		t.Fatal(err)
	}
	db.Abort(tx)
	if n := len(sink.events()); n != 0 {
		t.Fatalf("sink saw %d events from an aborted transaction", n)
	}
	// The transaction's pending pushes must not leak into its next use of
	// the database either.
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, ids[0], "Set", value.Float(2))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(sink.events()); n != 1 {
		t.Fatalf("sink saw %d events after one committed send, want 1", n)
	}
}

func TestSinkFilterMatching(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 2)
	methodSink := &recordSink{}
	momentSink := &recordSink{}
	otherObj := &recordSink{}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{Method: "Set"}, methodSink); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{Moment: event.Begin, MomentSet: true}, momentSink); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubscribeSink(ids[1], SinkFilter{}, otherObj); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, ids[0], "Set", value.Float(3))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// P.Set generates end-only (GenEnd): the method filter matches, the
	// begin-moment filter does not, and the other object's sink sees
	// nothing.
	if n := len(methodSink.events()); n != 1 {
		t.Fatalf("method filter: %d events, want 1", n)
	}
	if n := len(momentSink.events()); n != 0 {
		t.Fatalf("begin-moment filter matched an end occurrence (%d events)", n)
	}
	if n := len(otherObj.events()); n != 0 {
		t.Fatalf("subscription leaked across objects (%d events)", n)
	}
}

func TestSinkUnsubscribe(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	a, b := &recordSink{}, &recordSink{}
	idA, err := db.SubscribeSink(ids[0], SinkFilter{}, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{}, b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{Method: "Set"}, b); err != nil {
		t.Fatal(err)
	}
	if got := db.SinkSubscriptions(); got != 3 {
		t.Fatalf("SinkSubscriptions = %d, want 3", got)
	}
	if !db.UnsubscribeSink(idA) {
		t.Fatal("UnsubscribeSink(idA) = false")
	}
	if db.UnsubscribeSink(idA) {
		t.Fatal("double unsubscribe reported true")
	}
	// Session teardown: both of b's subscriptions go in one call.
	if got := db.UnsubscribeAllSinks(b); got != 2 {
		t.Fatalf("UnsubscribeAllSinks = %d, want 2", got)
	}
	if got := db.SinkSubscriptions(); got != 0 {
		t.Fatalf("SinkSubscriptions = %d after teardown, want 0", got)
	}
	if err := db.Atomically(func(tx *Tx) error {
		_, err := db.Send(tx, ids[0], "Set", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(a.events()) != 0 || len(b.events()) != 0 {
		t.Fatal("unsubscribed sinks still received events")
	}
}

func TestSinkValidation(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	ids := hotPathClass(t, db, 1)
	if _, err := db.SubscribeSink(ids[0], SinkFilter{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	if _, err := db.SubscribeSink(999999, SinkFilter{}, &recordSink{}); err == nil {
		t.Fatal("subscription to a nonexistent object accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The registry closes with the database: late subscriptions fail.
	if _, err := db.SubscribeSink(ids[0], SinkFilter{}, &recordSink{}); err == nil {
		t.Fatal("subscription accepted after Close")
	}
}

func TestSinkExplicitEvent(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	sink := &recordSink{}
	if _, err := db.SubscribeSink(ids[0], SinkFilter{Method: "alarm"}, sink); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *Tx) error {
		return db.RaiseExplicit(tx, ids[0], "alarm", value.Int(7))
	}); err != nil {
		t.Fatal(err)
	}
	got := sink.events()
	if len(got) != 1 || got[0].Method != "alarm" || got[0].When != event.Explicit {
		t.Fatalf("explicit event not delivered: %+v", got)
	}
}

// TestSinkNoConsumersZeroCost pins the hot-path contract: with no sinks
// registered the raise fast path still early-returns before building the
// occurrence (the existing zero-alloc pin tests cover allocations; this one
// covers the sink bookkeeping staying out of the transaction).
func TestSinkNoConsumersZeroCost(t *testing.T) {
	db := MustOpen(Options{Output: io.Discard})
	defer db.Close()
	ids := hotPathClass(t, db, 1)
	tx := db.Begin()
	if _, err := db.Send(tx, ids[0], "Set", value.Float(1)); err != nil {
		t.Fatal(err)
	}
	if tx.pushes != nil {
		t.Fatalf("pushes collected with no sinks: %d", len(tx.pushes))
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
}
