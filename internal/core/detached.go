package core

// detached.go implements the conflict-aware executor pool for
// detached-coupling rules (DESIGN.md §4e). Options.DetachedWorkers
// goroutines pull firings from a shared bounded queue; a lightweight
// conflict scheduler — keyed on each firing's subscriber OID plus the
// write-set OIDs recorded when the firing was scheduled — lets firings
// over disjoint objects run fully in parallel while firings that share a
// key retain their enqueue order, which is the conflict-resolution
// strategy order their committing transactions established.
//
// Ordering guarantee: for any conflict key k, the firings carrying k
// execute in enqueue order. Enqueues happen at commit time on the
// committing goroutine, so per-object execution order equals the serial
// (synchronous-detached) order; firings with disjoint keys carry no
// ordering promise, exactly like independent transactions.
//
// No-deadlock argument for the bounded queue under chained dispatch:
//
//  1. The conflict graph is acyclic: every dependency edge points from an
//     earlier-enqueued task to a later-enqueued one (tails chaining), so
//     waiting tasks always have a finished-or-running predecessor chain.
//  2. If queued > 0 and nothing is in flight, the earliest queued task's
//     predecessors have all finished, so its wait count is zero and it is
//     on the ready list — a worker can always make progress.
//  3. Workers never block on backpressure: a chained dispatch (a detached
//     rule whose own commit schedules more detached work) bypasses the
//     capacity wait, so the worker executing the parent cannot deadlock
//     against the queue it is supposed to drain. Chained enqueues happen
//     while the parent is still in flight (pending > 0), so quiescence is
//     never declared under them.
//  4. External committers blocked on a full queue are woken by every
//     dequeue (room) and by stop, which fails them with
//     ErrDetachedStopped instead of leaving them parked.
//
// The queue is therefore bounded by capacity plus one in-flight batch per
// concurrently committing transaction (a batch is admitted atomically once
// any room exists, so a committed transaction's firings are never split
// across the Close boundary).

import (
	"errors"
	"sync"

	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
)

// ErrDetachedStopped is returned by Commit when a transaction's detached
// firings could not be handed to the executor pool because Close (or a
// concurrent Close) already stopped it. The transaction itself committed
// durably — only its detached firings were dropped. Before the pool, a
// dispatch racing shutdown silently fell back to synchronous execution;
// the typed error makes the dropped work visible instead.
var ErrDetachedStopped = errors.New("core: detached executor stopped (database closing); detached firings not dispatched")

// detachedQueuePerWorker sizes the bounded firing queue: capacity is
// DetachedWorkers × this, replacing the old fixed 1024-slot channel with
// one derived from the configured parallelism.
const detachedQueuePerWorker = 64

// detachedTask is one queued firing plus its conflict-scheduling state.
type detachedTask struct {
	f    rule.Firing
	keys []oid.OID // deduped conflict keys: subscriber ∪ write set

	waits int             // unfinished predecessors (shared keys)
	succs []*detachedTask // tasks enqueued behind this one on some key
	next  *detachedTask   // intrusive ready-list link
}

// detachedPool is the conflict-aware worker pool. All scheduling state is
// guarded by mu; firing execution happens outside it.
type detachedPool struct {
	db       *Database
	workers  int
	capacity int

	mu   sync.Mutex
	work *sync.Cond // a ready task appeared, or stop
	idle *sync.Cond // pending drained to zero
	room *sync.Cond // queue space freed, or stop

	// tails maps each conflict key to the most recently enqueued task
	// carrying it; a new task with a shared key chains behind that tail.
	tails map[oid.OID]*detachedTask

	readyHead, readyTail *detachedTask

	queued   int // enqueued, not yet picked up by a worker
	inflight int // executing right now
	pending  int // queued + inflight: the quiescence counter
	quitting bool
	abandon  bool // CloseAbrupt: drop queued work instead of draining

	done sync.WaitGroup
}

// newDetachedPool starts the workers. Capacity derives from the worker
// count (detachedQueuePerWorker per worker).
func newDetachedPool(db *Database, workers int) *detachedPool {
	p := &detachedPool{
		db:       db,
		workers:  workers,
		capacity: workers * detachedQueuePerWorker,
		tails:    make(map[oid.OID]*detachedTask),
	}
	p.work = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.room = sync.NewCond(&p.mu)
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// appendConflictKey adds k to keys unless it is Nil or already present.
// Deduping a task's own keys matters for correctness: a duplicate key
// would chain the task behind itself. Key lists are small (subscriber +
// a commit's write set), so the linear scan beats a map.
func appendConflictKey(keys []oid.OID, k oid.OID) []oid.OID {
	if k == oid.Nil {
		return keys
	}
	for _, e := range keys {
		if e == k {
			return keys
		}
	}
	return append(keys, k)
}

// enqueue admits an ordered batch of firings. Non-worker callers block
// while the queue is at capacity (backpressure); callers that are
// themselves detached workers bypass the wait — see the no-deadlock
// argument above. The whole batch is admitted atomically once there is
// any room, so a batch is all-or-nothing with respect to stop.
func (p *detachedPool) enqueue(batch []rule.Firing, fromWorker bool) error {
	if len(batch) == 0 {
		return nil
	}
	m := p.db.met
	p.mu.Lock()
	if !fromWorker && p.queued >= p.capacity && !p.quitting {
		m.detachedBackpressure.Inc()
		for p.queued >= p.capacity && !p.quitting {
			p.room.Wait()
		}
	}
	if p.quitting && (!fromWorker || p.abandon) {
		p.mu.Unlock()
		return ErrDetachedStopped
	}
	for i := range batch {
		t := &detachedTask{f: batch[i]}
		t.keys = appendConflictKey(t.keys, batch[i].Subscriber)
		for _, w := range batch[i].WriteSet {
			t.keys = appendConflictKey(t.keys, w)
		}
		for _, k := range t.keys {
			if prev := p.tails[k]; prev != nil {
				prev.succs = append(prev.succs, t)
				t.waits++
			}
			p.tails[k] = t
		}
		p.queued++
		p.pending++
		if t.waits == 0 {
			p.pushReady(t)
			p.work.Signal()
		} else {
			m.detachedStalls.Inc()
		}
	}
	p.mu.Unlock()
	return nil
}

func (p *detachedPool) pushReady(t *detachedTask) {
	t.next = nil
	if p.readyTail == nil {
		p.readyHead, p.readyTail = t, t
		return
	}
	p.readyTail.next = t
	p.readyTail = t
}

func (p *detachedPool) popReady() *detachedTask {
	t := p.readyHead
	p.readyHead = t.next
	if p.readyHead == nil {
		p.readyTail = nil
	}
	t.next = nil
	return t
}

// worker executes ready tasks until stop. On a draining stop every worker
// parks until global quiescence (chained dispatches can refill the ready
// list at any point before then); on an abandoning stop it exits as soon
// as the ready list is empty.
func (p *detachedPool) worker(idx int) {
	defer p.done.Done()
	var perWorker *obs.Counter
	if m := p.db.met; idx < len(m.detachedWorkerFirings) {
		perWorker = m.detachedWorkerFirings[idx]
	}
	p.mu.Lock()
	for {
		for p.readyHead == nil {
			if p.quitting && (p.abandon || p.pending == 0) {
				p.mu.Unlock()
				return
			}
			p.work.Wait()
		}
		t := p.popReady()
		p.queued--
		p.inflight++
		p.room.Signal()
		p.mu.Unlock()

		p.db.execDetachedPooled(&t.f)
		p.db.met.detachedFirings.Inc()
		if perWorker != nil {
			perWorker.Inc()
		}

		p.mu.Lock()
		p.finishLocked(t)
	}
}

// finishLocked retires a completed task: releases its conflict keys,
// unblocks successors, and signals quiescence when the last pending task
// drains. Successor propagation is skipped after abandon — the queued
// work was already dropped.
func (p *detachedPool) finishLocked(t *detachedTask) {
	p.inflight--
	p.pending--
	if !p.abandon {
		for _, k := range t.keys {
			if p.tails[k] == t {
				delete(p.tails, k)
			}
		}
		for _, s := range t.succs {
			s.waits--
			if s.waits == 0 {
				p.pushReady(s)
				p.work.Signal()
			}
		}
	}
	if p.pending == 0 {
		p.idle.Broadcast()
		if p.quitting {
			p.work.Broadcast() // wake parked workers so they can exit
		}
	}
}

// waitIdle blocks until every dispatched firing — including chained ones,
// which enqueue while their parent is still in flight — has finished.
func (p *detachedPool) waitIdle() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// stop retires the pool. With drain set (Close) the workers first finish
// everything pending, chained work included; without it (CloseAbrupt, the
// crash simulation) queued-but-unstarted work is dropped and only firings
// already executing run to completion. Idempotent; the drain/abandon mode
// of the first call wins.
func (p *detachedPool) stop(drain bool) {
	p.mu.Lock()
	if !p.quitting {
		p.quitting = true
		if !drain {
			p.abandon = true
			p.pending -= p.queued
			p.queued = 0
			p.readyHead, p.readyTail = nil, nil
			p.tails = make(map[oid.OID]*detachedTask)
			if p.pending == 0 {
				p.idle.Broadcast()
			}
		}
		p.work.Broadcast()
		p.room.Broadcast()
	}
	p.mu.Unlock()
	p.done.Wait()
}

// snapshot reads the pool gauges for stats and the metrics endpoint.
func (p *detachedPool) snapshot() (queued, inflight int) {
	p.mu.Lock()
	queued, inflight = p.queued, p.inflight
	p.mu.Unlock()
	return queued, inflight
}

// execDetachedPooled runs one detached firing in its own transaction on a
// pool worker. The transaction is marked so chained dispatches from its
// commit bypass queue backpressure.
func (db *Database) execDetachedPooled(f *rule.Firing) {
	dtx := db.Begin()
	dtx.fromDetachedWorker = true
	if err := db.runDetachedFiring(dtx, f, 1); err != nil {
		db.Abort(dtx)
		return
	}
	// Commit rolls back on its own failures; a chained dispatch rejected
	// by an abandoning stop surfaces as ErrDetachedStopped and is dropped
	// with the rest of the queue.
	_ = db.Commit(dtx)
}

// stopDetachedPool retires the executor pool if one was started.
func (db *Database) stopDetachedPool(drain bool) {
	if db.detached != nil {
		db.detached.stop(drain)
	}
}
