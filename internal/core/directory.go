package core

// directory.go implements the sharded resident-object directory: the demand-
// paged replacement for the old monolithic `objects` map. Entries are keyed
// by OID across a fixed number of lock shards so concurrent transactions on
// disjoint objects never contend on one mutex, and each entry carries the
// paging state the evictor needs:
//
//   - pins: transactions that require pointer stability (they hold a txn
//     lock on the object and may have captured the *object.Object in undo
//     closures). Pinned entries are never evicted.
//   - dirty: the in-memory state is ahead of the heap image; eviction would
//     lose committed-in-progress work, so dirty entries are wired until
//     their commit writes them back (writeCommit marks them clean).
//   - noEvict: system objects (rules, events, subscriptions, bindings,
//     class/index catalogs) and instances of non-persistent classes have no
//     rebuildable disk image or are needed for catalog consistency; they
//     stay resident for the lifetime of the database.
//   - tomb: the object was deleted by a transaction that has not committed
//     yet. The entry stays (the undo closure restores it on abort) but is
//     invisible to lookups, and — crucially — blocks fault-in from
//     resurrecting the stale heap image.
//   - ref: the second-chance (clock) reference bit, set on every hit and
//     cleared by the evictor's first pass over an entry.
//
// Shard mutexes are leaves in the lock hierarchy (fnMu → mu → ccMu → shard /
// catMu → txn object locks): directory methods never call back into the
// Database, and Database code never acquires mu or ccMu while holding a
// shard lock.

import (
	"sync"
	"sync/atomic"

	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

const dirShardCount = 64

// lsnNone marks an entry whose creating transaction has not committed yet:
// no snapshot may see it, and it sorts above every real LSN so the eviction
// watermark check wires it automatically.
const lsnNone = ^uint64(0)

// objVersion is one archived committed image in an entry's version chain:
// the state the object had while `lsn` was its current commit. Chains are
// kept in descending LSN order; fields are immutable once pushed.
type objVersion struct {
	lsn    uint64
	class  *schema.Class
	fields []value.Value
}

type dirEntry struct {
	obj  *object.Object
	pins atomic.Int32
	ref  atomic.Bool

	// Guarded by the owning shard's mutex.
	dirty   bool
	noEvict bool
	tomb    bool

	// MVCC state, guarded by the owning shard's mutex.
	//
	// lsn is the commit LSN of obj's current committed state: 0 means
	// "ancient" (faulted in from the heap, recovered, or bootstrapped —
	// older than every possible snapshot), lsnNone means the creating
	// transaction is still uncommitted. writerActive is set by the first
	// in-place mutation of an uncommitted writer (which archives the
	// committed image into versions first) and cleared at install/abort;
	// while it is set, snapshot readers serve from the chain head instead
	// of obj. delLSN is the commit LSN of a committed delete: the entry is
	// retained (tombstoned) until the watermark passes it, so older
	// snapshots still see the object.
	lsn          uint64
	writerActive bool
	versions     []objVersion
	delLSN       uint64
}

type dirShard struct {
	mu   sync.RWMutex
	objs map[oid.OID]*dirEntry
	// chained tracks entries carrying MVCC baggage (a version chain or a
	// committed delete awaiting the watermark), so prune sweeps touch only
	// them instead of scanning the whole shard.
	chained map[oid.OID]bool
}

// objDirectory is the sharded resident-object directory.
type objDirectory struct {
	shards   [dirShardCount]dirShard
	resident atomic.Int64 // entries in the directory, tombstones included
	hand     atomic.Uint32

	// liveVersions counts archived versions across all chains (the
	// sentinel_versions_live gauge); chainedCount counts entries with MVCC
	// baggage so per-commit sweeps can skip the directory scan entirely.
	liveVersions atomic.Int64
	chainedCount atomic.Int64
}

func newObjDirectory() *objDirectory {
	d := &objDirectory{}
	for i := range d.shards {
		d.shards[i].objs = make(map[oid.OID]*dirEntry)
		d.shards[i].chained = make(map[oid.OID]bool)
	}
	return d
}

func (d *objDirectory) shard(id oid.OID) *dirShard {
	return &d.shards[uint64(id)%dirShardCount]
}

// get returns the resident object for id. found reports whether the
// directory has an entry at all; a tombstoned entry returns (nil, true) so
// callers do not fall through to fault-in and resurrect a deleted object.
func (d *objDirectory) get(id oid.OID) (o *object.Object, found bool) {
	s := d.shard(id)
	s.mu.RLock()
	e := s.objs[id]
	if e == nil {
		s.mu.RUnlock()
		return nil, false
	}
	if e.tomb {
		s.mu.RUnlock()
		return nil, true
	}
	e.ref.Store(true)
	o = e.obj
	s.mu.RUnlock()
	return o, true
}

// pin atomically checks residency and takes a pin. Pin increments happen
// under the shard read lock while the evictor scans under the write lock, so
// an entry observed unpinned by the evictor cannot gain a pin concurrently.
// Tombstoned entries are reported but not pinned.
func (d *objDirectory) pin(id oid.OID) (o *object.Object, found, tomb bool) {
	s := d.shard(id)
	s.mu.RLock()
	e := s.objs[id]
	if e == nil {
		s.mu.RUnlock()
		return nil, false, false
	}
	if e.tomb {
		s.mu.RUnlock()
		return nil, true, true
	}
	e.pins.Add(1)
	e.ref.Store(true)
	o = e.obj
	s.mu.RUnlock()
	return o, true, false
}

// unpin drops one pin. Missing entries are tolerated: an aborted create
// removes its entry (via undo) before the creating transaction unpins.
func (d *objDirectory) unpin(id oid.OID) {
	s := d.shard(id)
	s.mu.RLock()
	if e := s.objs[id]; e != nil {
		e.pins.Add(-1)
	}
	s.mu.RUnlock()
}

// insert adds a new entry (replacing any existing one, which callers avoid
// except for crash-recovery rebuilds). pins is the initial pin count. lsn is
// the entry's commit LSN: lsnNone for an uncommitted create (invisible to
// snapshots until commitCreate), 0 for recovered/bootstrapped objects
// (visible to every snapshot).
func (d *objDirectory) insert(id oid.OID, o *object.Object, pins int32, dirty, noEvict bool, lsn uint64) {
	e := &dirEntry{obj: o, dirty: dirty, noEvict: noEvict, lsn: lsn}
	e.pins.Store(pins)
	e.ref.Store(true)
	s := d.shard(id)
	s.mu.Lock()
	if s.objs[id] == nil {
		d.resident.Add(1)
	}
	s.objs[id] = e
	s.mu.Unlock()
}

// insertIfAbsent publishes a faulted-in object unless a competing insert (or
// an uncommitted delete's tombstone) got there first, and returns the entry
// now in the directory (nil when a tombstone shadows the id).
func (d *objDirectory) insertIfAbsent(id oid.OID, o *object.Object) *object.Object {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		var cur *object.Object
		if !e.tomb {
			e.ref.Store(true)
			cur = e.obj
		}
		s.mu.Unlock()
		return cur
	}
	e := &dirEntry{obj: o}
	e.ref.Store(true)
	s.objs[id] = e
	d.resident.Add(1)
	s.mu.Unlock()
	return o
}

// pinOrInsert pins the resident entry for id, or installs o pinned if the
// id is absent. tomb reports that a tombstone shadows the id (nothing is
// pinned then).
func (d *objDirectory) pinOrInsert(id oid.OID, o *object.Object) (cur *object.Object, tomb bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		if e.tomb {
			s.mu.Unlock()
			return nil, true
		}
		e.pins.Add(1)
		e.ref.Store(true)
		cur = e.obj
		s.mu.Unlock()
		return cur, false
	}
	e := &dirEntry{obj: o}
	e.pins.Store(1)
	e.ref.Store(true)
	s.objs[id] = e
	d.resident.Add(1)
	s.mu.Unlock()
	return o, false
}

// remove deletes the entry outright (committed deletes past the watermark,
// aborted creates), dropping any version chain with it.
func (d *objDirectory) remove(id oid.OID) {
	s := d.shard(id)
	s.mu.Lock()
	if e, ok := s.objs[id]; ok {
		d.liveVersions.Add(int64(-len(e.versions)))
		d.unchainLocked(s, id)
		delete(s.objs, id)
		d.resident.Add(-1)
	}
	s.mu.Unlock()
}

// setDirty sets the dirty bit and returns its previous value (so undo hooks
// can restore the pre-write state: the heap image still matches the restored
// fields after rollback).
func (d *objDirectory) setDirty(id oid.OID, dirty bool) (was bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		was = e.dirty
		e.dirty = dirty
	}
	s.mu.Unlock()
	return was
}

// setTomb marks or unmarks an entry as an uncommitted delete.
func (d *objDirectory) setTomb(id oid.OID, tomb bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		e.tomb = tomb
	}
	s.mu.Unlock()
}

// replaceObj swaps the resident pointer in place (schema evolution), marks
// the entry dirty, and archives the committed image into the version chain —
// an evolve is an ordinary MVCC write, so snapshots older than its commit
// keep seeing the pre-evolve class and fields. Returns the undo state
// (undoReplaceObj reverses it on abort).
func (d *objDirectory) replaceObj(id oid.OID, o *object.Object, dirty bool) (prev *object.Object, wasDirty, pushed bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		prev, wasDirty = e.obj, e.dirty
		if !e.writerActive && e.lsn != lsnNone {
			e.versions = prependVersion(e.versions, objVersion{lsn: e.lsn, class: prev.Class(), fields: prev.CopyFields()})
			e.writerActive = true
			pushed = true
			d.chainLocked(s, id)
			d.liveVersions.Add(1)
		}
		e.obj = o
		e.dirty = dirty
	}
	s.mu.Unlock()
	return prev, wasDirty, pushed
}

// undoReplaceObj reverses replaceObj when the evolving transaction aborts.
func (d *objDirectory) undoReplaceObj(id oid.OID, prev *object.Object, wasDirty, pushed bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		e.obj = prev
		e.dirty = wasDirty
		if pushed {
			d.popVersionLocked(s, id, e)
		}
	}
	s.mu.Unlock()
}

// residentCount returns the number of visible (non-tombstoned) residents.
func (d *objDirectory) residentCount() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for _, e := range s.objs {
			if !e.tomb {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// forEach calls fn for every entry (tombstones included) under the shard
// read lock; fn must not re-enter the directory or block.
func (d *objDirectory) forEach(fn func(id oid.OID, o *object.Object, tomb bool)) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for id, e := range s.objs {
			fn(id, e.obj, e.tomb)
		}
		s.mu.RUnlock()
	}
}

// --- MVCC version chains -------------------------------------------------
//
// The snapshot-read protocol: a reader acquires a snapshot LSN S from the
// registry (S ≥ watermark by construction) and resolves each object through
// snapshotGet. Writers archive the committed image into the chain under the
// shard WRITE lock before their first in-place mutation (pushVersion), so a
// reader that cloned obj under the shard read lock raced no mutation, and a
// reader that finds writerActive set serves from the immutable chain head.
// Commit installs the new LSN (commitWrite/commitCreate/commitDelete) and
// prunes; abort pops the pushed version after undo closures restored the
// fields. Versions v_0 > v_1 > … cover half-open LSN ranges [v_i.lsn, n_i)
// where n_i is the next-newer image's LSN (n_0 = e.lsn); v_i is dead once
// n_i ≤ watermark, because every current and future snapshot S ≥ watermark
// then resolves to a newer image.

// prependVersion inserts v at the head (newest-first order).
func prependVersion(vs []objVersion, v objVersion) []objVersion {
	vs = append(vs, objVersion{})
	copy(vs[1:], vs)
	vs[0] = v
	return vs
}

// chainLocked / unchainLocked maintain the shard's set of entries carrying
// MVCC baggage plus the global chainedCount. Shard mutex held.
func (d *objDirectory) chainLocked(s *dirShard, id oid.OID) {
	if !s.chained[id] {
		s.chained[id] = true
		d.chainedCount.Add(1)
	}
}

func (d *objDirectory) unchainLocked(s *dirShard, id oid.OID) {
	if s.chained[id] {
		delete(s.chained, id)
		d.chainedCount.Add(-1)
	}
}

// popVersionLocked drops the chain head and ends the writer window: the
// abort path, called after undo closures restored obj's fields to exactly
// the state the popped version archived. Shard mutex held.
func (d *objDirectory) popVersionLocked(s *dirShard, id oid.OID, e *dirEntry) {
	if len(e.versions) == 0 {
		return
	}
	copy(e.versions, e.versions[1:])
	e.versions[len(e.versions)-1] = objVersion{}
	e.versions = e.versions[:len(e.versions)-1]
	e.writerActive = false
	d.liveVersions.Add(-1)
	if len(e.versions) == 0 && e.delLSN == 0 {
		d.unchainLocked(s, id)
	}
}

// pushVersion archives the committed image of id into its version chain
// before the first in-place mutation by an uncommitted writer, and reports
// whether it pushed (false when the entry is absent, a version is already
// pushed for this writer window, or the creating transaction has not
// committed — there is no committed image to archive). The shard write lock
// taken here is the happens-before edge against snapshot readers: once it
// returns, readers see writerActive and serve from the immutable chain head,
// so the caller may mutate obj's fields without further coordination.
func (d *objDirectory) pushVersion(id oid.OID) bool {
	s := d.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.objs[id]
	if e == nil || e.writerActive || e.lsn == lsnNone {
		return false
	}
	e.versions = prependVersion(e.versions, objVersion{lsn: e.lsn, class: e.obj.Class(), fields: e.obj.CopyFields()})
	e.writerActive = true
	d.chainLocked(s, id)
	d.liveVersions.Add(1)
	return true
}

// popVersion reverses pushVersion on abort.
func (d *objDirectory) popVersion(id oid.OID) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		d.popVersionLocked(s, id, e)
	}
	s.mu.Unlock()
}

// commitWrite installs lsn as the entry's current commit LSN, ends the
// in-place writer window, and opportunistically prunes the chain against
// watermark w. Returns the number of versions pruned.
func (d *objDirectory) commitWrite(id oid.OID, lsn, w uint64) int {
	s := d.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.objs[id]
	if e == nil {
		return 0
	}
	e.writerActive = false
	e.lsn = lsn
	n := d.pruneVersionsLocked(e, w)
	if n > 0 {
		d.liveVersions.Add(int64(-n))
	}
	if len(e.versions) == 0 && e.delLSN == 0 {
		d.unchainLocked(s, id)
	}
	return n
}

// commitCreate makes an uncommitted create visible to snapshots at lsn.
func (d *objDirectory) commitCreate(id oid.OID, lsn uint64) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil && e.lsn == lsnNone {
		e.lsn = lsn
	}
	s.mu.Unlock()
}

// commitDelete records a committed delete at lsn. The tombstoned entry stays
// resident until the watermark passes lsn so older snapshots can still read
// the object. The final committed image is archived into the chain first
// (when no writer window already did): e.lsn moves to the delete's LSN, so a
// snapshot between the last write and the delete must find the image there.
// A create that never committed (lsn == lsnNone) archives nothing — no
// snapshot can ever see it.
func (d *objDirectory) commitDelete(id oid.OID, lsn uint64) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		if !e.writerActive && e.lsn != lsnNone {
			e.versions = prependVersion(e.versions, objVersion{lsn: e.lsn, class: e.obj.Class(), fields: e.obj.CopyFields()})
			d.liveVersions.Add(1)
		}
		e.writerActive = false
		e.lsn = lsn
		e.delLSN = lsn
		d.chainLocked(s, id)
	}
	s.mu.Unlock()
}

// applyCommitted installs a replicated committed image at lsn: the replica-
// side analogue of the pushVersion → mutate → commitWrite sequence, collapsed
// into one step because the new state arrives whole instead of being built
// in place. The entry's previous committed image (if any) is archived into
// the version chain first, so snapshot readers older than lsn keep their
// view; the chain is then pruned against watermark w. A missing entry is a
// replicated create: it becomes resident at lsn, invisible to snapshots
// begun before it. Callers must have faulted the prior committed image in
// (if one exists on the heap) before overwriting the heap, or older
// snapshots would fall through to the new image.
func (d *objDirectory) applyCommitted(id oid.OID, o *object.Object, lsn, w uint64) {
	s := d.shard(id)
	s.mu.Lock()
	e := s.objs[id]
	if e == nil {
		e = &dirEntry{obj: o, lsn: lsn}
		e.ref.Store(true)
		s.objs[id] = e
		d.resident.Add(1)
		s.mu.Unlock()
		return
	}
	if !e.writerActive && e.lsn != lsnNone && !e.tomb {
		e.versions = prependVersion(e.versions, objVersion{lsn: e.lsn, class: e.obj.Class(), fields: e.obj.CopyFields()})
		d.liveVersions.Add(1)
		d.chainLocked(s, id)
	}
	e.obj = o
	e.lsn = lsn
	e.dirty = false
	e.tomb = false
	e.writerActive = false
	e.ref.Store(true)
	if n := d.pruneVersionsLocked(e, w); n > 0 {
		d.liveVersions.Add(int64(-n))
	}
	if len(e.versions) == 0 && e.delLSN == 0 {
		d.unchainLocked(s, id)
	}
	s.mu.Unlock()
}

// dropDeleted removes a committed-deleted entry once the watermark has
// passed its delete LSN; before that the entry (and its chain) must stay for
// older snapshots. Reports whether the entry is gone from the directory.
func (d *objDirectory) dropDeleted(id oid.OID, w uint64) bool {
	s := d.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.objs[id]
	if e == nil {
		return true
	}
	if e.delLSN == 0 || e.delLSN > w {
		return false
	}
	d.liveVersions.Add(int64(-len(e.versions)))
	d.unchainLocked(s, id)
	delete(s.objs, id)
	d.resident.Add(-1)
	return true
}

// pruneVersionsLocked drops versions dead under watermark w and returns how
// many were dropped. Version v_i is dead once the next-newer image's LSN
// n_i ≤ w (n_0 = e.lsn); deadness is monotone down the chain, so the scan
// cuts at the first dead index. While a writer window is open, v_0 is the
// only committed image of the object and is kept unconditionally (e.lsn
// still names the pre-push LSN then, which would wrongly condemn it).
// Shard mutex held; caller adjusts liveVersions.
func (d *objDirectory) pruneVersionsLocked(e *dirEntry, w uint64) int {
	if len(e.versions) == 0 {
		return 0
	}
	next := e.lsn
	start := 0
	if e.writerActive {
		next = e.versions[0].lsn
		start = 1
	}
	cut := len(e.versions)
	for i := start; i < len(e.versions); i++ {
		if next <= w {
			cut = i
			break
		}
		next = e.versions[i].lsn
	}
	pruned := len(e.versions) - cut
	if pruned > 0 {
		for j := cut; j < len(e.versions); j++ {
			e.versions[j] = objVersion{}
		}
		e.versions = e.versions[:cut]
	}
	return pruned
}

// pruneChains sweeps every chained entry against watermark w: dead versions
// are dropped, and committed-deleted entries whose delete LSN the watermark
// has passed are removed outright. Returns versions pruned and entries
// dropped. Only entries in the per-shard chained sets are visited, so the
// sweep is O(MVCC baggage), not O(residents).
func (d *objDirectory) pruneChains(w uint64) (pruned, dropped int) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		if len(s.chained) == 0 {
			s.mu.Unlock()
			continue
		}
		for id := range s.chained {
			e := s.objs[id]
			if e == nil {
				d.unchainLocked(s, id)
				continue
			}
			if n := d.pruneVersionsLocked(e, w); n > 0 {
				d.liveVersions.Add(int64(-n))
				pruned += n
			}
			if e.delLSN != 0 && e.delLSN <= w {
				d.liveVersions.Add(int64(-len(e.versions)))
				pruned += len(e.versions)
				d.unchainLocked(s, id)
				delete(s.objs, id)
				d.resident.Add(-1)
				dropped++
				continue
			}
			if len(e.versions) == 0 && e.delLSN == 0 && !e.writerActive {
				d.unchainLocked(s, id)
			}
		}
		s.mu.Unlock()
	}
	return pruned, dropped
}

// snapStatus classifies a snapshot read against the directory.
type snapStatus int

const (
	snapOK        snapStatus = iota // object returned
	snapMiss                        // no entry — caller may fault from the heap
	snapGone                        // deleted at or before the snapshot
	snapInvisible                   // created after the snapshot
)

// snapshotGet resolves id as of snapshot LSN snap. The current image is
// served (cloned under the shard read lock) only when no writer window is
// open and its commit LSN is visible; otherwise the chain is walked for the
// newest version at or below snap. snapInvisible deliberately does NOT fall
// back to the heap: an entry exists, so the heap image (if any) belongs to a
// state the snapshot must not observe.
func (d *objDirectory) snapshotGet(id oid.OID, snap uint64) (*object.Object, snapStatus) {
	s := d.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.objs[id]
	if e == nil {
		return nil, snapMiss
	}
	if e.delLSN != 0 && e.delLSN <= snap {
		return nil, snapGone
	}
	if !e.writerActive && e.lsn != lsnNone && e.lsn <= snap {
		e.ref.Store(true)
		return e.obj.Clone(), snapOK
	}
	for _, v := range e.versions {
		if v.lsn <= snap {
			return object.Materialize(id, v.class, v.fields), snapOK
		}
	}
	return nil, snapInvisible
}

// forEachSnapshot calls fn for EVERY directory entry under the shard read
// locks: c is the class of the version visible at snapshot LSN snap, or nil
// when the entry is invisible there (deleted at or before snap, or created
// after it). Invisible entries are still reported so callers merging with
// the heap catalog know the directory owns the id — a nil-class id must not
// be resurrected from its (post-snapshot) heap image. fn must not re-enter
// the directory or block; callers materialize objects via snapshotGet.
func (d *objDirectory) forEachSnapshot(snap uint64, fn func(id oid.OID, c *schema.Class)) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for id, e := range s.objs {
			fn(id, e.visibleClassLocked(snap))
		}
		s.mu.RUnlock()
	}
}

// visibleClassLocked returns the class of the version of e visible at snap
// (nil when invisible). Shard mutex held.
func (e *dirEntry) visibleClassLocked(snap uint64) *schema.Class {
	if e.delLSN != 0 && e.delLSN <= snap {
		return nil
	}
	if !e.writerActive && e.lsn != lsnNone && e.lsn <= snap {
		return e.obj.Class()
	}
	for _, v := range e.versions {
		if v.lsn <= snap {
			return v.class
		}
	}
	return nil
}

// maxChainDepth reports the longest version chain currently live (the
// Snapshot.Storage stat); it visits only chained entries.
func (d *objDirectory) maxChainDepth() int {
	depth := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for id := range s.chained {
			if e := s.objs[id]; e != nil && len(e.versions) > depth {
				depth = len(e.versions)
			}
		}
		s.mu.RUnlock()
	}
	return depth
}

// evictDownTo runs the second-chance clock over the shards until the
// resident count drops to target (or two full sweeps prove nothing more is
// evictable: everything left is pinned, dirty, wired, tombstoned, or MVCC-
// protected). It returns the evicted OIDs so the caller can drop their
// consumer-cache entries outside the shard locks.
//
// w is the MVCC watermark (min of the oldest active snapshot and the stable
// LSN). An entry is only evictable when its whole MVCC history collapses to
// the heap image: no version chain, no pending delete, no active writer,
// and a commit LSN at or below w — an entry whose current image postdates an
// active snapshot must stay resident, because a fault-in would serve that
// too-new image to the older snapshot (lsnNone sorts above every w, wiring
// uncommitted creates automatically).
func (d *objDirectory) evictDownTo(target int64, w uint64) []oid.OID {
	var evicted []oid.OID
	for sweep := 0; sweep < 2*dirShardCount && d.resident.Load() > target; sweep++ {
		s := &d.shards[d.hand.Add(1)%dirShardCount]
		s.mu.Lock()
		for id, e := range s.objs {
			if d.resident.Load() <= target {
				break
			}
			if e.tomb || e.noEvict || e.dirty || e.pins.Load() != 0 {
				continue
			}
			if e.writerActive || len(e.versions) > 0 || e.delLSN != 0 || e.lsn > w {
				continue // MVCC-protected (see above)
			}
			if e.ref.Swap(false) {
				continue // second chance
			}
			delete(s.objs, id)
			d.resident.Add(-1)
			evicted = append(evicted, id)
		}
		s.mu.Unlock()
	}
	return evicted
}
