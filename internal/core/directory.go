package core

// directory.go implements the sharded resident-object directory: the demand-
// paged replacement for the old monolithic `objects` map. Entries are keyed
// by OID across a fixed number of lock shards so concurrent transactions on
// disjoint objects never contend on one mutex, and each entry carries the
// paging state the evictor needs:
//
//   - pins: transactions that require pointer stability (they hold a txn
//     lock on the object and may have captured the *object.Object in undo
//     closures). Pinned entries are never evicted.
//   - dirty: the in-memory state is ahead of the heap image; eviction would
//     lose committed-in-progress work, so dirty entries are wired until
//     their commit writes them back (writeCommit marks them clean).
//   - noEvict: system objects (rules, events, subscriptions, bindings,
//     class/index catalogs) and instances of non-persistent classes have no
//     rebuildable disk image or are needed for catalog consistency; they
//     stay resident for the lifetime of the database.
//   - tomb: the object was deleted by a transaction that has not committed
//     yet. The entry stays (the undo closure restores it on abort) but is
//     invisible to lookups, and — crucially — blocks fault-in from
//     resurrecting the stale heap image.
//   - ref: the second-chance (clock) reference bit, set on every hit and
//     cleared by the evictor's first pass over an entry.
//
// Shard mutexes are leaves in the lock hierarchy (fnMu → mu → ccMu → shard /
// catMu → txn object locks): directory methods never call back into the
// Database, and Database code never acquires mu or ccMu while holding a
// shard lock.

import (
	"sync"
	"sync/atomic"

	"sentinel/internal/object"
	"sentinel/internal/oid"
)

const dirShardCount = 64

type dirEntry struct {
	obj  *object.Object
	pins atomic.Int32
	ref  atomic.Bool

	// Guarded by the owning shard's mutex.
	dirty   bool
	noEvict bool
	tomb    bool
}

type dirShard struct {
	mu   sync.RWMutex
	objs map[oid.OID]*dirEntry
}

// objDirectory is the sharded resident-object directory.
type objDirectory struct {
	shards   [dirShardCount]dirShard
	resident atomic.Int64 // entries in the directory, tombstones included
	hand     atomic.Uint32
}

func newObjDirectory() *objDirectory {
	d := &objDirectory{}
	for i := range d.shards {
		d.shards[i].objs = make(map[oid.OID]*dirEntry)
	}
	return d
}

func (d *objDirectory) shard(id oid.OID) *dirShard {
	return &d.shards[uint64(id)%dirShardCount]
}

// get returns the resident object for id. found reports whether the
// directory has an entry at all; a tombstoned entry returns (nil, true) so
// callers do not fall through to fault-in and resurrect a deleted object.
func (d *objDirectory) get(id oid.OID) (o *object.Object, found bool) {
	s := d.shard(id)
	s.mu.RLock()
	e := s.objs[id]
	if e == nil {
		s.mu.RUnlock()
		return nil, false
	}
	if e.tomb {
		s.mu.RUnlock()
		return nil, true
	}
	e.ref.Store(true)
	o = e.obj
	s.mu.RUnlock()
	return o, true
}

// pin atomically checks residency and takes a pin. Pin increments happen
// under the shard read lock while the evictor scans under the write lock, so
// an entry observed unpinned by the evictor cannot gain a pin concurrently.
// Tombstoned entries are reported but not pinned.
func (d *objDirectory) pin(id oid.OID) (o *object.Object, found, tomb bool) {
	s := d.shard(id)
	s.mu.RLock()
	e := s.objs[id]
	if e == nil {
		s.mu.RUnlock()
		return nil, false, false
	}
	if e.tomb {
		s.mu.RUnlock()
		return nil, true, true
	}
	e.pins.Add(1)
	e.ref.Store(true)
	o = e.obj
	s.mu.RUnlock()
	return o, true, false
}

// unpin drops one pin. Missing entries are tolerated: an aborted create
// removes its entry (via undo) before the creating transaction unpins.
func (d *objDirectory) unpin(id oid.OID) {
	s := d.shard(id)
	s.mu.RLock()
	if e := s.objs[id]; e != nil {
		e.pins.Add(-1)
	}
	s.mu.RUnlock()
}

// insert adds a new entry (replacing any existing one, which callers avoid
// except for crash-recovery rebuilds). pins is the initial pin count.
func (d *objDirectory) insert(id oid.OID, o *object.Object, pins int32, dirty, noEvict bool) {
	e := &dirEntry{obj: o, dirty: dirty, noEvict: noEvict}
	e.pins.Store(pins)
	e.ref.Store(true)
	s := d.shard(id)
	s.mu.Lock()
	if s.objs[id] == nil {
		d.resident.Add(1)
	}
	s.objs[id] = e
	s.mu.Unlock()
}

// insertIfAbsent publishes a faulted-in object unless a competing insert (or
// an uncommitted delete's tombstone) got there first, and returns the entry
// now in the directory (nil when a tombstone shadows the id).
func (d *objDirectory) insertIfAbsent(id oid.OID, o *object.Object) *object.Object {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		var cur *object.Object
		if !e.tomb {
			e.ref.Store(true)
			cur = e.obj
		}
		s.mu.Unlock()
		return cur
	}
	e := &dirEntry{obj: o}
	e.ref.Store(true)
	s.objs[id] = e
	d.resident.Add(1)
	s.mu.Unlock()
	return o
}

// pinOrInsert pins the resident entry for id, or installs o pinned if the
// id is absent. tomb reports that a tombstone shadows the id (nothing is
// pinned then).
func (d *objDirectory) pinOrInsert(id oid.OID, o *object.Object) (cur *object.Object, tomb bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		if e.tomb {
			s.mu.Unlock()
			return nil, true
		}
		e.pins.Add(1)
		e.ref.Store(true)
		cur = e.obj
		s.mu.Unlock()
		return cur, false
	}
	e := &dirEntry{obj: o}
	e.pins.Store(1)
	e.ref.Store(true)
	s.objs[id] = e
	d.resident.Add(1)
	s.mu.Unlock()
	return o, false
}

// remove deletes the entry outright (committed deletes, aborted creates).
func (d *objDirectory) remove(id oid.OID) {
	s := d.shard(id)
	s.mu.Lock()
	if _, ok := s.objs[id]; ok {
		delete(s.objs, id)
		d.resident.Add(-1)
	}
	s.mu.Unlock()
}

// setDirty sets the dirty bit and returns its previous value (so undo hooks
// can restore the pre-write state: the heap image still matches the restored
// fields after rollback).
func (d *objDirectory) setDirty(id oid.OID, dirty bool) (was bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		was = e.dirty
		e.dirty = dirty
	}
	s.mu.Unlock()
	return was
}

// setTomb marks or unmarks an entry as an uncommitted delete.
func (d *objDirectory) setTomb(id oid.OID, tomb bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		e.tomb = tomb
	}
	s.mu.Unlock()
}

// replaceObj swaps the resident pointer in place (schema evolution), marks
// the entry dirty, and returns the previous object and dirty bit for undo.
func (d *objDirectory) replaceObj(id oid.OID, o *object.Object, dirty bool) (prev *object.Object, wasDirty bool) {
	s := d.shard(id)
	s.mu.Lock()
	if e := s.objs[id]; e != nil {
		prev, wasDirty = e.obj, e.dirty
		e.obj = o
		e.dirty = dirty
	}
	s.mu.Unlock()
	return prev, wasDirty
}

// residentCount returns the number of visible (non-tombstoned) residents.
func (d *objDirectory) residentCount() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for _, e := range s.objs {
			if !e.tomb {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// forEach calls fn for every entry (tombstones included) under the shard
// read lock; fn must not re-enter the directory or block.
func (d *objDirectory) forEach(fn func(id oid.OID, o *object.Object, tomb bool)) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for id, e := range s.objs {
			fn(id, e.obj, e.tomb)
		}
		s.mu.RUnlock()
	}
}

// evictDownTo runs the second-chance clock over the shards until the
// resident count drops to target (or two full sweeps prove nothing more is
// evictable: everything left is pinned, dirty, wired, or tombstoned). It
// returns the evicted OIDs so the caller can drop their consumer-cache
// entries outside the shard locks.
func (d *objDirectory) evictDownTo(target int64) []oid.OID {
	var evicted []oid.OID
	for sweep := 0; sweep < 2*dirShardCount && d.resident.Load() > target; sweep++ {
		s := &d.shards[d.hand.Add(1)%dirShardCount]
		s.mu.Lock()
		for id, e := range s.objs {
			if d.resident.Load() <= target {
				break
			}
			if e.tomb || e.noEvict || e.dirty || e.pins.Load() != 0 {
				continue
			}
			if e.ref.Swap(false) {
				continue // second chance
			}
			delete(s.objs, id)
			d.resident.Add(-1)
			evicted = append(evicted, id)
		}
		s.mu.Unlock()
	}
	return evicted
}
