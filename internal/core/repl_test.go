package core_test

// Core replication mechanics, no network: the ship hook's batch contract,
// LSN durability across reopen (checkpoint meta + WAL replay), the apply
// path's dup/gap discipline, base-state install on a live replica, and
// replica write rejection. The networked end of the same machinery lives
// in internal/repl's tests.

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/wal"
)

const coreReplSchema = `class Kit reactive persistent {
	attr n int
	event end method Set(v int) { self.n := v }
}
bind K new Kit(n: 0)`

// captureShip installs a ship hook that deep-copies every batch (the hook
// contract says Data aliases pooled scratch, so tests must copy too).
func captureShip(db *core.Database) *[]core.ReplBatch {
	var got []core.ReplBatch
	db.SetReplShip(func(b core.ReplBatch) {
		cp := core.ReplBatch{LSN: b.LSN}
		for _, r := range b.Recs {
			data := append([]byte(nil), r.Data...)
			if len(data) == 0 {
				data = nil
			}
			cp.Recs = append(cp.Recs, wal.Record{Type: r.Type, Tx: r.Tx, OID: r.OID, Data: data})
		}
		cp.Occs = append(cp.Occs, b.Occs...)
		got = append(got, cp)
	})
	return &got
}

// TestShipHookSeesEveryCommit: every committed batch reaches the hook with
// a dense LSN sequence, and event-only commits ship at LSN 0.
func TestShipHookSeesEveryCommit(t *testing.T) {
	db := core.MustOpen(persistentOpts(t.TempDir()))
	defer db.Close()
	got := captureShip(db)
	if err := db.Exec(coreReplSchema); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := db.Exec(fmt.Sprintf("K!Set(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(*got) < 4 {
		t.Fatalf("hook saw %d batches, want >= 4", len(*got))
	}
	var want uint64 = 1
	for _, b := range *got {
		if b.LSN == 0 {
			continue // event-only
		}
		if b.LSN != want {
			t.Fatalf("LSN sequence broke: got %d, want %d", b.LSN, want)
		}
		want++
	}
	if db.ReplLSN() != want-1 {
		t.Fatalf("ReplLSN = %d, want %d", db.ReplLSN(), want-1)
	}
}

// TestReplLSNSurvivesReopen: the replication LSN persists through a clean
// close (checkpoint meta) and through a WAL replay after an abrupt one.
func TestReplLSNSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db := core.MustOpen(persistentOpts(dir))
	if err := db.Exec(coreReplSchema); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("K!Set(1)"); err != nil {
		t.Fatal(err)
	}
	lsn := db.ReplLSN()
	if lsn == 0 {
		t.Fatal("no batches committed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := core.MustOpen(persistentOpts(dir))
	if got := db2.ReplLSN(); got != lsn {
		t.Fatalf("LSN after clean reopen = %d, want %d", got, lsn)
	}
	// More commits, then an abrupt close: the checkpointed floor plus the
	// replayed commit markers must reproduce the count.
	if err := db2.Exec("K!Set(2)"); err != nil {
		t.Fatal(err)
	}
	if err := db2.Exec("K!Set(3)"); err != nil {
		t.Fatal(err)
	}
	lsn2 := db2.ReplLSN()
	db2.CloseAbrupt()

	db3 := core.MustOpen(persistentOpts(dir))
	defer db3.Close()
	if got := db3.ReplLSN(); got != lsn2 {
		t.Fatalf("LSN after abrupt reopen = %d, want %d", got, lsn2)
	}
}

// TestApplyReplicatedDupAndGap: a replica silently drops batches at or
// below its applied LSN and rejects a gapped batch without advancing.
func TestApplyReplicatedDupAndGap(t *testing.T) {
	src := core.MustOpen(persistentOpts(t.TempDir()))
	defer src.Close()
	got := captureShip(src)
	if err := src.Exec(coreReplSchema); err != nil {
		t.Fatal(err)
	}
	if err := src.Exec("K!Set(7)"); err != nil {
		t.Fatal(err)
	}

	ropts := persistentOpts(t.TempDir())
	ropts.Replica = true
	replica, err := core.Open(ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	var data []core.ReplBatch
	for _, b := range *got {
		if b.LSN != 0 {
			data = append(data, b)
		}
	}
	if len(data) < 2 {
		t.Fatalf("need >= 2 data batches, got %d", len(data))
	}
	// Gap: batch 2 before batch 1.
	if err := replica.ApplyReplicated(data[1]); err == nil {
		t.Fatal("gapped batch accepted")
	}
	if replica.ReplLSN() != 0 {
		t.Fatalf("LSN advanced past a gap: %d", replica.ReplLSN())
	}
	// In order: applies.
	for _, b := range data {
		if err := replica.ApplyReplicated(b); err != nil {
			t.Fatal(err)
		}
	}
	if replica.ReplLSN() != data[len(data)-1].LSN {
		t.Fatalf("LSN = %d, want %d", replica.ReplLSN(), data[len(data)-1].LSN)
	}
	// Duplicate: dropped without error, LSN unchanged.
	if err := replica.ApplyReplicated(data[0]); err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	if replica.ReplLSN() != data[len(data)-1].LSN {
		t.Fatalf("duplicate moved the LSN to %d", replica.ReplLSN())
	}

	// The replayed state matches the source.
	id, ok := replica.Lookup("K")
	if !ok {
		t.Fatal("K not bound on replica")
	}
	snap := replica.BeginSnapshot()
	v, err := replica.Get(snap, id, "n")
	replica.Abort(snap)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "7" {
		t.Fatalf("replica K.n = %s, want 7", v)
	}
}

// TestApplyBaseStateReplacesLiveState: a live replica's committed state is
// wholly replaced by a base install — stale local objects disappear, the
// LSN jumps, and a snapshot begun before the install keeps its old view.
func TestApplyBaseStateReplacesLiveState(t *testing.T) {
	// Source A: the history the replica first follows.
	a := core.MustOpen(persistentOpts(t.TempDir()))
	defer a.Close()
	gotA := captureShip(a)
	if err := a.Exec(coreReplSchema); err != nil {
		t.Fatal(err)
	}
	if err := a.Exec("K!Set(1)"); err != nil {
		t.Fatal(err)
	}

	// Source B: a different history to base-sync from.
	b := core.MustOpen(persistentOpts(t.TempDir()))
	defer b.Close()
	if err := b.Exec(coreReplSchema); err != nil {
		t.Fatal(err)
	}
	if err := b.Exec("K!Set(42)"); err != nil {
		t.Fatal(err)
	}
	base, err := b.ReplBaseState()
	if err != nil {
		t.Fatal(err)
	}

	ropts := persistentOpts(t.TempDir())
	ropts.Replica = true
	replica, err := core.Open(ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	for _, batch := range *gotA {
		if batch.LSN == 0 {
			continue
		}
		if err := replica.ApplyReplicated(batch); err != nil {
			t.Fatal(err)
		}
	}

	// A snapshot over the pre-install state.
	id, _ := replica.Lookup("K")
	snap := replica.BeginSnapshot()
	defer replica.Abort(snap)
	if v, err := replica.Get(snap, id, "n"); err != nil || v.String() != "1" {
		t.Fatalf("pre-install read: %v %v", v, err)
	}

	if err := replica.ApplyBaseState(base.LSN, base.Objects); err != nil {
		t.Fatal(err)
	}
	if replica.ReplLSN() != base.LSN {
		t.Fatalf("LSN after install = %d, want %d", replica.ReplLSN(), base.LSN)
	}

	// New reads see source B's state…
	id2, ok := replica.Lookup("K")
	if !ok {
		t.Fatal("K not bound after install")
	}
	snap2 := replica.BeginSnapshot()
	v, err := replica.Get(snap2, id2, "n")
	replica.Abort(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "42" {
		t.Fatalf("post-install K.n = %s, want 42", v)
	}
	// …while the old snapshot keeps source A's.
	if v, err := replica.Get(snap, id, "n"); err != nil || v.String() != "1" {
		t.Fatalf("old snapshot lost its view: %v %v", v, err)
	}
}

// TestReplicaRejectsLocalWrites: the write chokepoints reject application
// writes once a replica is open (recovery and replay stay writable).
func TestReplicaRejectsLocalWrites(t *testing.T) {
	opts := persistentOpts(t.TempDir())
	opts.Replica = true
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`class X persistent { attr a int }`); err == nil {
		t.Fatal("replica accepted a class definition")
	} else if !errors.Is(err, core.ErrReplicaWrite) {
		// Class registration may fail at a different chokepoint first; the
		// write itself must be the blocked step.
		t.Logf("class definition rejected with: %v", err)
	}
}

// TestReplicaOptionsRequireDir: replica mode without a directory is a
// configuration error (the WAL-first apply path needs a log).
func TestReplicaOptionsRequireDir(t *testing.T) {
	if _, err := core.Open(core.Options{Replica: true, Output: io.Discard}); err == nil {
		t.Fatal("in-memory replica accepted")
	}
}
