package core

import (
	"fmt"

	"sentinel/internal/event"
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// Send delivers a message to an object from application code: the method is
// resolved through the receiver's class (virtual dispatch), visibility is
// enforced, and — when the receiver's class is reactive and the method is
// declared in its event interface — bom/eom events are generated and
// propagated to subscribed consumers (§3.1, Fig. 1).
func (db *Database) Send(t *Tx, target oid.OID, method string, args ...value.Value) (value.Value, error) {
	return db.send(t, target, method, args, nil, false, 0)
}

// send is the internal dispatcher. caller is the class whose code performs
// the send (nil for application code), sysAccess bypasses visibility (rule
// bodies), depth is the rule-cascade depth of the surrounding execution.
func (db *Database) send(t *Tx, target oid.OID, method string, args []value.Value, caller *schema.Class, sysAccess bool, depth int) (value.Value, error) {
	db.statSends.Add(1)
	o, err := db.lockObject(t, target, txn.Exclusive)
	if err != nil {
		return value.Nil, err
	}
	m := o.Class().MethodNamed(method)
	if m == nil {
		return value.Nil, fmt.Errorf("core: class %s has no method %q", o.Class().Name, method)
	}
	if err := checkMethodVisible(m, caller, sysAccess); err != nil {
		return value.Nil, err
	}
	args, err = m.CheckArgs(args)
	if err != nil {
		return value.Nil, err
	}

	generates := o.Class().Reactive() && m.EventGen != schema.GenNone

	if generates && m.EventGen.Begin() {
		if err := db.raise(t, o, m.Name, event.Begin, args, m.ParamNames(), depth); err != nil {
			return value.Nil, err
		}
	}

	fr := t.getFrame()
	*fr = frame{db: db, tx: t, self: o, method: m, args: args, depth: depth}
	ret, err := m.Body(fr)
	t.putFrame(fr)
	if err != nil {
		return value.Nil, err
	}

	if generates && m.EventGen.End() {
		if err := db.raise(t, o, m.Name, event.End, args, m.ParamNames(), depth); err != nil {
			return value.Nil, err
		}
	}
	return ret, nil
}

// raise generates one primitive-event occurrence and propagates it to the
// consumers of the source object: instance-level subscribers (rules and Go
// callbacks, via the subscription mechanism of §3.5) and class-level rules
// of every class in the source's MRO (§4.7). Immediate firings execute
// in-line in conflict-resolution order; deferred firings queue on the
// transaction; detached firings queue for post-commit.
func (db *Database) raise(t *Tx, src *object.Object, method string, when event.Moment, args []value.Value, names []string, depth int) error {
	db.statEvents.Add(1)
	// The logical clock ticks for every occurrence, observed or not: Seq
	// numbers are a property of event generation, not of delivery.
	seqNo := db.nextSeq()

	// Resolve consumers first (usually a zero-alloc cache hit); with no
	// consumers the occurrence would be observed by nobody, so skip
	// building it entirely.
	rules, fns := db.consumersOf(src)
	if len(rules) == 0 && len(fns) == 0 {
		return nil
	}

	occ := event.Occurrence{
		Source:     src.ID(),
		Class:      src.Class().Name,
		Method:     method,
		When:       when,
		Args:       args,
		ParamNames: names,
		Seq:        seqNo,
		Tx:         uint64(t.inner.ID()),
	}

	for _, fc := range fns {
		db.statNotify.Add(1)
		fc.Fn(occ)
	}

	// The immediate batch reuses the transaction's scratch buffer. Take
	// ownership for the duration of this raise: runFiring can recursively
	// raise (cascades), and the nested raise must not clobber our batch —
	// it sees nil and allocates its own, which we adopt back if larger.
	immediate := t.fireScratch[:0]
	t.fireScratch = nil
	seq := uint64(0)
	for _, r := range rules {
		db.statNotify.Add(1)
		if r.TxScoped {
			if t.touched == nil {
				t.touched = make(map[*rule.Rule]bool)
			}
			t.touched[r] = true
		}
		dets := r.Notify(occ)
		if len(dets) == 0 {
			continue
		}
		db.statDetect.Add(uint64(len(dets)))
		for _, det := range dets {
			switch r.Coupling {
			case rule.Immediate:
				seq++
				immediate = append(immediate, rule.Firing{Rule: r, Detection: det, Seq: seq})
			case rule.Deferred:
				t.deferred.Add(r, det)
			case rule.Detached:
				t.detached = append(t.detached, rule.Firing{Rule: r, Detection: det})
			}
		}
	}

	var err error
	if len(immediate) > 0 {
		db.currentStrategy().Order(immediate)
		for i := range immediate {
			if err = db.runFiring(t, &immediate[i], depth+1); err != nil {
				break
			}
		}
	}
	// Return the buffer (ours, or a bigger one a nested raise grew).
	if cap(immediate) > cap(t.fireScratch) {
		clearFirings(immediate[:cap(immediate)])
		t.fireScratch = immediate[:0]
	}
	return err
}

// clearFirings zeroes a firing slice so the scratch buffer does not pin
// rules and detections beyond the raise that used them.
func clearFirings(fs []rule.Firing) {
	for i := range fs {
		fs[i] = rule.Firing{}
	}
}

// runFiring evaluates one triggered rule: condition, then action, at the
// given cascade depth, inside transaction t. f is a pointer into the
// caller's batch so the Firing (and its Detection) is not copied to the
// heap per execution; it is only read.
func (db *Database) runFiring(t *Tx, f *rule.Firing, depth int) error {
	if depth > db.opts.MaxCascadeDepth {
		return fmt.Errorf("core: rule cascade exceeded depth %d at rule %s (cycle?)", db.opts.MaxCascadeDepth, f.Rule.Name())
	}
	// The rule's execution frame: self is the source of the terminating
	// occurrence, so DSL conditions can name its attributes bare (Fig. 9's
	// `sex == spouse.sex`). Rules run with system visibility — they are
	// part of the behaviour of the objects they monitor (§3.5).
	selfObj := db.objectByID(f.Detection.Last().Source)
	fr := t.getFrame()
	*fr = frame{db: db, tx: t, self: selfObj, depth: depth, sysAccess: true, detection: &f.Detection}
	defer t.putFrame(fr)

	ok := true
	if f.Rule.Condition != nil {
		db.statCond.Add(1)
		var err error
		ok, err = f.Rule.Condition(fr, f.Detection)
		if err != nil {
			return err
		}
	}
	if !ok {
		return nil
	}
	db.statAct.Add(1)
	f.Rule.CountFired()
	if f.Rule.Action == nil {
		return nil
	}
	return f.Rule.Action(fr, f.Detection)
}

// RaiseExplicit raises an application-defined event from outside a method
// body (equivalent to ctx.Raise inside one): the paper's explicit primitive
// events. The source object must be reactive.
func (db *Database) RaiseExplicit(t *Tx, source oid.OID, name string, params ...value.Value) error {
	o, err := db.lockObject(t, source, txn.Exclusive)
	if err != nil {
		return err
	}
	if !o.Class().Reactive() {
		return fmt.Errorf("core: object %s of passive class %s cannot raise events", source, o.Class().Name)
	}
	return db.raise(t, o, name, event.Explicit, params, nil, 0)
}
