package core

import (
	"fmt"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/object"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/txn"
	"sentinel/internal/value"
)

// Send delivers a message to an object from application code: the method is
// resolved through the receiver's class (virtual dispatch), visibility is
// enforced, and — when the receiver's class is reactive and the method is
// declared in its event interface — bom/eom events are generated and
// propagated to subscribed consumers (§3.1, Fig. 1).
func (db *Database) Send(t *Tx, target oid.OID, method string, args ...value.Value) (value.Value, error) {
	return db.send(t, target, method, args, nil, false, 0)
}

// send is the internal dispatcher. caller is the class whose code performs
// the send (nil for application code), sysAccess bypasses visibility (rule
// bodies), depth is the rule-cascade depth of the surrounding execution.
func (db *Database) send(t *Tx, target oid.OID, method string, args []value.Value, caller *schema.Class, sysAccess bool, depth int) (value.Value, error) {
	db.met.sends.Inc()
	o, err := db.lockObject(t, target, txn.Exclusive)
	if err != nil {
		return value.Nil, err
	}
	m := o.Class().MethodNamed(method)
	if m == nil {
		return value.Nil, fmt.Errorf("core: class %s has no method %q", o.Class().Name, method)
	}
	if err := checkMethodVisible(m, caller, sysAccess); err != nil {
		return value.Nil, err
	}
	args, err = m.CheckArgs(args)
	if err != nil {
		return value.Nil, err
	}

	generates := o.Class().Reactive() && m.EventGen != schema.GenNone

	if generates && m.EventGen.Begin() {
		if err := db.raise(t, o, m.Name, event.Begin, args, m.ParamNames(), depth); err != nil {
			return value.Nil, err
		}
	}

	fr := t.getFrame()
	*fr = frame{db: db, tx: t, self: o, method: m, args: args, depth: depth}
	ret, err := m.Body(fr)
	t.putFrame(fr)
	if err != nil {
		return value.Nil, err
	}

	if generates && m.EventGen.End() {
		if err := db.raise(t, o, m.Name, event.End, args, m.ParamNames(), depth); err != nil {
			return value.Nil, err
		}
	}
	return ret, nil
}

// raise generates one primitive-event occurrence and propagates it to the
// consumers of the source object: instance-level subscribers (rules and Go
// callbacks, via the subscription mechanism of §3.5) and class-level rules
// of every class in the source's MRO (§4.7). Immediate firings execute
// in-line in conflict-resolution order; deferred firings queue on the
// transaction; detached firings queue for post-commit.
func (db *Database) raise(t *Tx, src *object.Object, method string, when event.Moment, args []value.Value, names []string, depth int) error {
	m := db.met
	m.eventsRaised.Inc()
	// The logical clock ticks for every occurrence, observed or not: Seq
	// numbers are a property of event generation, not of delivery.
	seqNo := db.nextSeq()

	// The tracer sees every occurrence, consumed or not — an event that
	// nobody subscribed to is exactly what a trace is for.
	tr := db.tracer.Load()
	if tr != nil && tr.OccurrenceRaised != nil {
		tr.OccurrenceRaised(obs.OccurrenceInfo{
			Source: uint64(src.ID()),
			Class:  src.Class().Name,
			Method: method,
			Moment: when.String(),
			Seq:    seqNo,
			Tx:     uint64(t.inner.ID()),
		})
	}

	// Resolve consumers first (usually a zero-alloc cache hit); with no
	// consumers the occurrence would be observed by nobody, so skip
	// building it entirely. Remote sinks count as consumers, but cost only
	// one atomic load here when none exist — the hot path with no remote
	// subscribers is unchanged.
	rules, fns := db.consumersOf(src)
	if db.opts.Replica {
		// Rules ran on the primary; their effects arrive in shipped batches.
		// Firing them again here would double-apply (and their actions would
		// be rejected as replica writes anyway). Local sinks and notify
		// functions still observe the occurrence.
		rules = nil
	}
	hasSinks := db.sinkCount.Load() > 0
	shipOccs := db.replCollect.Load()
	if len(rules) == 0 && len(fns) == 0 && !hasSinks && !shipOccs {
		return nil
	}

	occ := event.Occurrence{
		Source:     src.ID(),
		Class:      src.Class().Name,
		Method:     method,
		When:       when,
		Args:       args,
		ParamNames: names,
		Seq:        seqNo,
		Tx:         uint64(t.inner.ID()),
	}

	// Remote subscriptions: record matches now (the source lock is held and
	// the occurrence is in hand), deliver at commit (sink.go).
	if hasSinks {
		db.collectPushes(t, &occ)
	}
	// Replication: occurrences ride the shipped commit batch (or an
	// event-only batch when the transaction writes nothing durable), so
	// follower-side subscribers see the same stream local sinks do.
	if shipOccs {
		t.replOccs = append(t.replOccs, occ)
	}

	for _, fc := range fns {
		m.notifications.Inc()
		fc.Fn(occ)
	}

	// The immediate batch reuses the transaction's scratch buffer. Take
	// ownership for the duration of this raise: runFiring can recursively
	// raise (cascades), and the nested raise must not clobber our batch —
	// it sees nil and allocates its own, which we adopt back if larger.
	immediate := t.fireScratch[:0]
	t.fireScratch = nil
	seq := uint64(0)
	// Conflict keys for detached firings: the write set is snapshotted once
	// per raise (it cannot change between consumers of one occurrence), and
	// the shared slice is read-only downstream.
	var writeSet []oid.OID
	writeSetDone := false
	for _, r := range rules {
		m.notifications.Inc()
		if r.TxScoped {
			if t.touched == nil {
				t.touched = make(map[*rule.Rule]bool)
			}
			t.touched[r] = true
		}
		dets := r.Notify(occ)
		if len(dets) == 0 {
			continue
		}
		m.detections.Add(uint64(len(dets)))
		for _, det := range dets {
			if tr != nil && tr.CompositeDetected != nil {
				tr.CompositeDetected(obs.DetectionInfo{
					Rule:         r.Name(),
					Event:        r.Event.Label(),
					Constituents: len(det.Constituents),
					FirstSeq:     det.Start(),
					LastSeq:      det.End(),
					Tx:           uint64(t.inner.ID()),
				})
			}
			m.rulesScheduled.Inc()
			if tr != nil && tr.RuleScheduled != nil {
				tr.RuleScheduled(obs.RuleScheduleInfo{
					Rule:     r.Name(),
					Coupling: r.Coupling.String(),
					Priority: r.Priority,
					Depth:    depth,
					Tx:       uint64(t.inner.ID()),
				})
			}
			switch r.Coupling {
			case rule.Immediate:
				seq++
				immediate = append(immediate, rule.Firing{Rule: r, Detection: det, Seq: seq})
			case rule.Deferred:
				t.deferred.Add(r, det)
			case rule.Detached:
				if !writeSetDone {
					writeSet = t.writeSetOIDs()
					writeSetDone = true
				}
				t.detached = append(t.detached, rule.Firing{
					Rule: r, Detection: det,
					Subscriber: src.ID(), WriteSet: writeSet,
				})
			}
		}
	}

	var err error
	if len(immediate) > 0 {
		db.currentStrategy().Order(immediate)
		for i := range immediate {
			if err = db.runFiring(t, &immediate[i], depth+1); err != nil {
				break
			}
		}
	}
	// Return the buffer (ours, or a bigger one a nested raise grew).
	if cap(immediate) > cap(t.fireScratch) {
		clearFirings(immediate[:cap(immediate)])
		t.fireScratch = immediate[:0]
	}
	return err
}

// clearFirings zeroes a firing slice so the scratch buffer does not pin
// rules and detections beyond the raise that used them.
func clearFirings(fs []rule.Firing) {
	for i := range fs {
		fs[i] = rule.Firing{}
	}
}

// runFiring evaluates one triggered rule: condition, then action, at the
// given cascade depth, inside transaction t. f is a pointer into the
// caller's batch so the Firing (and its Detection) is not copied to the
// heap per execution; it is only read.
func (db *Database) runFiring(t *Tx, f *rule.Firing, depth int) error {
	return db.runFiringWith(t, nil, f, depth)
}

// runDetachedFiring evaluates one detached firing. With
// Options.SnapshotConditions the condition runs against a read-only MVCC
// snapshot (a consistent committed state at or after the triggering
// commit, lock-free); the action, when the condition holds, still runs in
// the firing's own locking transaction t.
func (db *Database) runDetachedFiring(t *Tx, f *rule.Firing, depth int) error {
	if !db.opts.SnapshotConditions || f.Rule.Condition == nil {
		return db.runFiring(t, f, depth)
	}
	condTx := db.BeginSnapshot()
	defer db.Abort(condTx) // releases the snapshot; nothing to roll back
	return db.runFiringWith(t, condTx, f, depth)
}

// runFiringWith is runFiring with an optional snapshot transaction for the
// condition: when condTx is non-nil the condition's frame reads through it
// (self included), and the frame flips back to t before the action runs.
func (db *Database) runFiringWith(t, condTx *Tx, f *rule.Firing, depth int) error {
	if depth > db.opts.MaxCascadeDepth {
		return fmt.Errorf("core: rule cascade exceeded depth %d at rule %s (cycle?)", db.opts.MaxCascadeDepth, f.Rule.Name())
	}
	// Timing is sampled (1 in MetricsSampling) unless a RuleFired hook or a
	// slow-rule threshold forces it; the epilogue below is linear code so
	// the untimed path adds only the sampling decision.
	m := db.met
	tr := db.tracer.Load()
	timed := m.shouldTimeFiring(tr)
	var start time.Time
	if timed {
		start = time.Now()
	}

	// The rule's execution frame: self is the source of the terminating
	// occurrence, so DSL conditions can name its attributes bare (Fig. 9's
	// `sex == spouse.sex`). Rules run with system visibility — they are
	// part of the behaviour of the objects they monitor (§3.5).
	selfObj := db.objectByID(f.Detection.Last().Source)
	fr := t.getFrame()
	*fr = frame{db: db, tx: t, self: selfObj, depth: depth, sysAccess: true, detection: &f.Detection}
	defer t.putFrame(fr)

	ok := true
	var err error
	if f.Rule.Condition != nil {
		if condTx != nil {
			// Evaluate against the snapshot: reads through the frame resolve
			// at condTx's LSN, and self is the snapshot's materialization of
			// the source (nil when it is not visible there).
			so, serr := db.resolveSnapshot(f.Detection.Last().Source, condTx.snapLSN)
			if serr != nil {
				return serr
			}
			condTx.snapReads[f.Detection.Last().Source] = so
			fr.tx, fr.self = condTx, so
		}
		m.conditionsRun.Inc()
		ok, err = f.Rule.Condition(fr, f.Detection)
		if condTx != nil {
			fr.tx, fr.self = t, selfObj
		}
	}
	var condEnd time.Time
	if timed {
		condEnd = time.Now()
	}
	fired := false
	if err == nil && ok {
		m.actionsRun.Inc()
		f.Rule.CountFired()
		fired = true
		if f.Rule.Action != nil {
			err = f.Rule.Action(fr, f.Detection)
		}
	}
	if timed {
		end := time.Now()
		cond := condEnd.Sub(start)
		act := end.Sub(condEnd)
		total := end.Sub(start)
		if f.Rule.Condition != nil {
			m.condH.Observe(cond)
		}
		if fired && f.Rule.Action != nil {
			m.actionH.Observe(act)
		}
		m.firingH.Observe(total)
		f.Rule.RecordExec(total)
		m.recordSlow(f.Rule.Name(), f.Rule.Coupling.String(), total, cond, act, fired)
		if tr != nil && tr.RuleFired != nil {
			tr.RuleFired(obs.RuleFireInfo{
				Rule:      f.Rule.Name(),
				Coupling:  f.Rule.Coupling.String(),
				Depth:     depth,
				Condition: cond,
				Action:    act,
				Fired:     fired,
				Err:       err,
				Tx:        uint64(t.inner.ID()),
			})
		}
	}
	return err
}

// RaiseExplicit raises an application-defined event from outside a method
// body (equivalent to ctx.Raise inside one): the paper's explicit primitive
// events. The source object must be reactive.
func (db *Database) RaiseExplicit(t *Tx, source oid.OID, name string, params ...value.Value) error {
	o, err := db.lockObject(t, source, txn.Exclusive)
	if err != nil {
		return err
	}
	if !o.Class().Reactive() {
		return fmt.Errorf("core: object %s of passive class %s cannot raise events", source, o.Class().Name)
	}
	return db.raise(t, o, name, event.Explicit, params, nil, 0)
}
