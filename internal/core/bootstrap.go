package core

import (
	"fmt"

	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// System class names. Instances of these classes back the first-class
// citizens of the rule system — rules, events, subscriptions, name bindings
// and DSL class definitions — so they are created, updated, deleted,
// locked, logged and recovered exactly like application objects ("rules and
// events ... are subject to the same transaction semantics", §3.4). The
// double-underscore prefix keeps them out of the application namespace.
const (
	SysRuleClass     = "__Rule"
	SysEventClass    = "__Event"
	SysSubClass      = "__Subscription"
	SysNameClass     = "__Name"
	SysClassDefClass = "__ClassDef"
	SysIndexClass    = "__Index"
)

// IsSystemClass reports whether the class name is one of the reserved
// system classes.
func IsSystemClass(name string) bool {
	switch name {
	case SysRuleClass, SysEventClass, SysSubClass, SysNameClass, SysClassDefClass, SysIndexClass:
		return true
	}
	return false
}

// bootstrapSystemClasses registers the reserved classes present in every
// database, mirroring the paper's Fig. 3 hierarchy (zg-pos → Notifiable →
// {Event, Rule}; Reactive). __Rule is itself reactive with Enable/Disable
// declared in its event interface — which is what lets rules monitor other
// rules ("the general event interface permit[s] specification of rules on
// any set of objects, including rules themselves", §1).
func (db *Database) bootstrapSystemClasses() error {
	ruleCls := schema.NewClass(SysRuleClass)
	ruleCls.Classification = schema.ReactiveNotifiableClass
	ruleCls.Persistent = true
	ruleCls.Attr("name", value.TypeString)
	ruleCls.Attr("event", value.TypeString)
	ruleCls.Attr("cond", value.TypeString)
	ruleCls.Attr("action", value.TypeString)
	ruleCls.Attr("coupling", value.TypeInt)
	ruleCls.Attr("priority", value.TypeInt)
	ruleCls.Attr("enabled", value.TypeBool)
	ruleCls.Attr("classLevel", value.TypeString)
	ruleCls.Attr("context", value.TypeInt)
	ruleCls.Attr("txScoped", value.TypeBool)
	ruleCls.AddMethod(&schema.Method{
		Name:       "Enable",
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, db.applyRuleEnabled(ctx, true)
		},
	})
	ruleCls.AddMethod(&schema.Method{
		Name:       "Disable",
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, db.applyRuleEnabled(ctx, false)
		},
	})
	if err := db.reg.Register(ruleCls); err != nil {
		return err
	}

	eventCls := schema.NewClass(SysEventClass)
	eventCls.Persistent = true
	eventCls.Attr("name", value.TypeString)
	eventCls.Attr("source", value.TypeString)
	if err := db.reg.Register(eventCls); err != nil {
		return err
	}

	subCls := schema.NewClass(SysSubClass)
	subCls.Persistent = true
	subCls.Attr("reactive", value.TypeAnyRef)
	subCls.Attr("consumer", value.TypeAnyRef)
	if err := db.reg.Register(subCls); err != nil {
		return err
	}

	nameCls := schema.NewClass(SysNameClass)
	nameCls.Persistent = true
	nameCls.Attr("name", value.TypeString)
	nameCls.Attr("target", value.TypeAnyRef)
	if err := db.reg.Register(nameCls); err != nil {
		return err
	}

	idxCls := schema.NewClass(SysIndexClass)
	idxCls.Persistent = true
	idxCls.Attr("class", value.TypeString)
	idxCls.Attr("attr", value.TypeString)
	if err := db.reg.Register(idxCls); err != nil {
		return err
	}

	defCls := schema.NewClass(SysClassDefClass)
	defCls.Persistent = true
	defCls.Attr("name", value.TypeString)
	defCls.Attr("source", value.TypeString)
	defCls.Attr("seq", value.TypeInt)
	if err := db.reg.Register(defCls); err != nil {
		return err
	}
	return nil
}

// applyRuleEnabled is the body of __Rule.Enable/Disable: it flips the
// runtime rule and the persistent attribute, with an undo hook restoring
// the runtime state if the transaction aborts.
func (db *Database) applyRuleEnabled(ctx schema.CallContext, enabled bool) error {
	fr, ok := ctx.(*frame)
	if !ok {
		return fmt.Errorf("core: rule method invoked outside the runtime")
	}
	r := db.RuleByID(ctx.Self())
	if r == nil {
		return fmt.Errorf("core: no runtime rule for object %s", ctx.Self())
	}
	was := r.Enabled()
	if was == enabled {
		return nil
	}
	if enabled {
		r.Enable()
	} else {
		r.Disable()
	}
	// Enabled-ness is checked inside Notify, so cached consumer sets stay
	// correct either way and no entry needs invalidating (scopeNone). The
	// GlobalConsumerInvalidation reference mode still escalates this to a
	// full epoch bump, reproducing the pre-selective cost model.
	db.invalidateConsumers(fr.tx, scopeNone(), func() {
		if was {
			r.Enable()
		} else {
			r.Disable()
		}
	})
	return ctx.Set("enabled", value.Bool(enabled))
}
