package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sentinel/internal/rule"
	"sentinel/internal/vfs"
)

// Options configures a Database. The zero value is a usable in-memory
// configuration; every field documents its default. Open validates the
// options (see Validate) and rejects contradictory combinations instead of
// silently misbehaving.
type Options struct {
	// ---- Storage ----

	// Dir is the storage directory. Empty (the default) means a purely
	// in-memory database: no WAL, no heap, no recovery.
	Dir string
	// SyncOnCommit forces the WAL to disk at every commit. Default false:
	// commits are durable only up to the last fsync/checkpoint, like
	// group-commit systems trading tail durability for throughput. Only
	// meaningful with Dir set. Concurrent committers coalesce through the
	// WAL's group-commit protocol, sharing one write + fsync.
	SyncOnCommit bool
	// GroupCommitWindow bounds the extra time a group-commit leader waits
	// for more committers to join its batch before flushing, and only when
	// other commits are already in flight — an uncontended commit always
	// flushes immediately at single-commit latency. 0 (default) disables
	// the explicit window; batching still happens naturally while a flush
	// is in progress (followers queue behind the leader's fsync). Must not
	// be negative, and requires SyncOnCommit (without per-commit fsyncs
	// there is nothing worth waiting to share).
	GroupCommitWindow time.Duration
	// PoolPages is the heap buffer-pool capacity in pages. 0 means the
	// heap default (256). Must not be negative.
	PoolPages int
	// MaxResidentObjects caps the resident-object directory: when the
	// resident population exceeds it, clean, unpinned, non-system objects
	// are evicted (second-chance clock) and fault back in from the heap on
	// next touch. 0 (default) disables eviction — objects still fault in
	// lazily, but nothing is ever reclaimed. Requires Dir (an in-memory
	// database has no heap to evict to) and is incompatible with
	// EagerLoad.
	MaxResidentObjects int
	// CheckpointBytes triggers an automatic checkpoint (heap flush + WAL
	// truncation) when the WAL grows past this many bytes, bounding both
	// recovery time and log size. 0 (default) means 4 MiB; negative
	// disables auto-checkpointing (checkpoints happen only at open/close
	// or explicit Checkpoint calls).
	CheckpointBytes int64
	// EagerLoad restores the pre-paging behaviour of materializing every
	// heap object at open. Useful as a benchmark baseline and for
	// workloads that touch the entire database immediately anyway.
	// Requires Dir and is incompatible with MaxResidentObjects.
	EagerLoad bool
	// VFS is the filesystem the storage stack (WAL, heap, buffer pool)
	// runs on. Nil (the default) means the real OS filesystem. Tests
	// substitute vfs.NewMem for hermetic in-memory storage or vfs.NewFault
	// to inject I/O errors and enumerate crash states. Only meaningful
	// with Dir set.
	VFS vfs.FS
	// Replica opens the database as a read-only replication follower: the
	// only writer is ApplyReplicated, which replays batches shipped from a
	// primary's WAL. Application transactions can read (including MVCC
	// snapshots) and subscribe but any write — NewObject, Set, DeleteObject,
	// an exclusive lock — is rejected with ErrReplicaWrite. Rules do not
	// fire on a replica (the primary already ran them; replaying their
	// effects again would double-fire); subscription fan-out does run, fed
	// by the shipped occurrences. Requires Dir.
	Replica bool
	// SyncReplicas, when positive, makes every data-bearing commit wait
	// until this many followers have durably acknowledged the commit's
	// replication LSN before Commit returns (quorum/semi-sync commit). The
	// wait runs after local durability with no locks held, so it can never
	// wedge the commit pipeline; if the quorum does not arrive within
	// QuorumTimeout the commit degrades to asynchronous (it still
	// succeeded locally) and the sentinel_repl_quorum_degraded_total
	// counter records the miss. 0 (default): commits are asynchronous and
	// followers ack for lag accounting only. Requires Dir (the quorum is
	// over shipped WAL batches) and is meaningless on a Replica.
	SyncReplicas int
	// QuorumTimeout bounds the SyncReplicas wait per commit. 0 (default)
	// means 5 seconds; must not be negative, and only meaningful with
	// SyncReplicas set.
	QuorumTimeout time.Duration

	// ---- Rule execution ----

	// Strategy names the conflict-resolution strategy: "priority"
	// (default, also chosen by ""), "fifo", or "lifo".
	Strategy string
	// MaxCascadeDepth bounds rule-triggers-rule chains. 0 (default) means
	// 16. Must not be negative.
	MaxCascadeDepth int
	// AsyncDetached executes detached-coupling rules on a background
	// worker pool instead of synchronously after Commit returns — the
	// fully asynchronous propagation of §3.1. Use WaitIdle to quiesce
	// (tests, shutdown; Close drains automatically). Default false:
	// deterministic post-commit execution.
	AsyncDetached bool
	// SnapshotConditions evaluates detached-rule conditions against a
	// read-only MVCC snapshot instead of inside the firing's own
	// transaction: the condition sees a consistent committed state (at or
	// after the triggering commit) without taking object locks, so
	// condition evaluation never blocks or deadlocks with concurrent
	// writers. The action, when the condition holds, still runs in the
	// firing's own locking transaction. Default false: conditions lock,
	// as before.
	SnapshotConditions bool
	// DetachedWorkers sizes the detached-rule executor pool used with
	// AsyncDetached: that many goroutines execute detached firings
	// concurrently, with a conflict scheduler (keyed on each firing's
	// subscriber and scheduling-time write set) serializing firings over
	// shared objects while disjoint ones run in parallel. The pool's
	// bounded queue holds 64 firings per worker; committers block
	// (backpressure) while it is full. 0 (default) means GOMAXPROCS.
	// Must not be negative, and only meaningful with AsyncDetached.
	DetachedWorkers int
	// GlobalConsumerInvalidation disables selective consumer-cache
	// invalidation: every catalog mutation (subscription change, rule
	// create/delete/enable/disable, object delete, class evolution) bumps
	// the global subscription epoch and stales the whole cache, exactly
	// the pre-selective behaviour. It exists as the differential-testing
	// reference (selective and global invalidation must produce identical
	// firing traces) and as the churn-benchmark baseline; production use
	// is strictly slower under rule/schema churn. Default false.
	GlobalConsumerInvalidation bool

	// ---- Application hooks ----

	// Schema, when set, is invoked after the system classes are registered
	// and before persistent objects are materialized; applications
	// register their Go-defined classes here so stored instances can
	// decode. Default nil.
	Schema func(*Database) error
	// Output receives print() text from SentinelQL. Default os.Stdout.
	Output io.Writer

	// ---- Observability ----

	// MetricsAddr, when non-empty, starts an HTTP listener on the given
	// host:port (":0" picks a free port; see Database.MetricsAddr) serving
	// Prometheus text on /metrics and expvar-style JSON on /debug/vars.
	// The listener binds at Open (misconfiguration fails fast) and stops
	// during Close, after rule execution has drained. Default "": no
	// listener.
	MetricsAddr string
	// SlowRuleThreshold, when positive, forces every rule firing to be
	// timed and records firings whose condition + action time meets the
	// threshold into the slow-rule log (Database.SlowRules) and the
	// sentinel_slow_firings_total counter. Default 0: disabled, firings
	// are only timed at the MetricsSampling rate. Must not be negative.
	SlowRuleThreshold time.Duration
	// MetricsSampling times 1 in N rule firings (and their condition and
	// action separately) to feed the latency histograms, amortizing the
	// timer cost away from the allocation-free raise path. 0 (default)
	// means 16; 1 times every firing. Must not be negative. Low-frequency
	// operations (commit, fsync, fault-in) are always timed regardless.
	MetricsSampling int
}

// defaultCheckpointBytes is the auto-checkpoint threshold when
// Options.CheckpointBytes is zero.
const defaultCheckpointBytes = 4 << 20

// defaultMetricsSampling is the firing-timer sampling rate when
// Options.MetricsSampling is zero.
const defaultMetricsSampling = 16

// defaultQuorumTimeout is the per-commit quorum wait bound when
// Options.QuorumTimeout is zero.
const defaultQuorumTimeout = 5 * time.Second

// withDefaults returns a copy with the documented defaults filled in.
func (o Options) withDefaults() Options {
	if o.MaxCascadeDepth == 0 {
		o.MaxCascadeDepth = 16
	}
	if o.Output == nil {
		o.Output = os.Stdout
	}
	if o.MetricsSampling == 0 {
		o.MetricsSampling = defaultMetricsSampling
	}
	if o.AsyncDetached && o.DetachedWorkers == 0 {
		o.DetachedWorkers = runtime.GOMAXPROCS(0)
	}
	if o.SyncReplicas > 0 && o.QuorumTimeout == 0 {
		o.QuorumTimeout = defaultQuorumTimeout
	}
	return o
}

// Validate checks ranges and rejects contradictory combinations with
// actionable errors. Zero values are always valid (they mean "use the
// default"); Open calls Validate after applying defaults, so a
// configuration rejected here never half-works at runtime.
func (o Options) Validate() error {
	var errs []error
	if o.PoolPages < 0 {
		errs = append(errs, fmt.Errorf("PoolPages is %d; must be >= 0 (0 means the 256-page default)", o.PoolPages))
	}
	if o.MaxCascadeDepth < 0 {
		errs = append(errs, fmt.Errorf("MaxCascadeDepth is %d; must be >= 0 (0 means the default of 16)", o.MaxCascadeDepth))
	}
	if o.MaxResidentObjects < 0 {
		errs = append(errs, fmt.Errorf("MaxResidentObjects is %d; must be >= 0 (0 disables eviction)", o.MaxResidentObjects))
	}
	if o.SlowRuleThreshold < 0 {
		errs = append(errs, fmt.Errorf("SlowRuleThreshold is %v; must be >= 0 (0 disables the slow-rule log)", o.SlowRuleThreshold))
	}
	if o.MetricsSampling < 0 {
		errs = append(errs, fmt.Errorf("MetricsSampling is %d; must be >= 0 (0 means the default of %d, 1 times every firing)", o.MetricsSampling, defaultMetricsSampling))
	}
	if o.DetachedWorkers < 0 {
		errs = append(errs, fmt.Errorf("DetachedWorkers is %d; must be >= 0 (0 means GOMAXPROCS)", o.DetachedWorkers))
	}
	if o.DetachedWorkers > 0 && !o.AsyncDetached {
		errs = append(errs, errors.New("DetachedWorkers is set but AsyncDetached is false: the worker pool only runs detached rules asynchronously; set AsyncDetached or drop DetachedWorkers"))
	}
	if o.GroupCommitWindow < 0 {
		errs = append(errs, fmt.Errorf("GroupCommitWindow is %v; must be >= 0 (0 disables the wait window)", o.GroupCommitWindow))
	}
	if o.GroupCommitWindow > 0 && !o.SyncOnCommit {
		errs = append(errs, errors.New("GroupCommitWindow is set but SyncOnCommit is false: without per-commit fsyncs there is no fsync to share; set SyncOnCommit or drop the window"))
	}
	if _, err := rule.ParseStrategy(o.Strategy); err != nil {
		errs = append(errs, err)
	}
	if o.MaxResidentObjects > 0 && o.Dir == "" {
		errs = append(errs, errors.New("MaxResidentObjects is set but Dir is empty: an in-memory database has no heap to evict to; set Dir or drop the ceiling"))
	}
	if o.EagerLoad && o.Dir == "" {
		errs = append(errs, errors.New("EagerLoad is set but Dir is empty: an in-memory database has nothing to load; set Dir or drop EagerLoad"))
	}
	if o.VFS != nil && o.Dir == "" {
		errs = append(errs, errors.New("VFS is set but Dir is empty: an in-memory database never touches a filesystem; set Dir or drop VFS"))
	}
	if o.EagerLoad && o.MaxResidentObjects > 0 {
		errs = append(errs, errors.New("EagerLoad and MaxResidentObjects are both set: eagerly materializing every object directly contradicts a residency ceiling; pick one"))
	}
	if o.Replica && o.Dir == "" {
		errs = append(errs, errors.New("Replica is set but Dir is empty: a follower replays the shipped log into local storage; set Dir or drop Replica"))
	}
	if o.SyncReplicas < 0 {
		errs = append(errs, fmt.Errorf("SyncReplicas is %d; must be >= 0 (0 means asynchronous replication)", o.SyncReplicas))
	}
	if o.SyncReplicas > 0 && o.Dir == "" {
		errs = append(errs, errors.New("SyncReplicas is set but Dir is empty: quorum commit waits on shipped WAL batches and an in-memory database ships none; set Dir or drop SyncReplicas"))
	}
	if o.SyncReplicas > 0 && o.Replica {
		errs = append(errs, errors.New("SyncReplicas and Replica are both set: a replica accepts no writes, so it has no commits to wait on; pick one"))
	}
	if o.QuorumTimeout < 0 {
		errs = append(errs, fmt.Errorf("QuorumTimeout is %v; must be >= 0 (0 means the default of %v)", o.QuorumTimeout, defaultQuorumTimeout))
	}
	if o.QuorumTimeout > 0 && o.SyncReplicas == 0 {
		errs = append(errs, errors.New("QuorumTimeout is set but SyncReplicas is 0: there is no quorum wait to bound; set SyncReplicas or drop the timeout"))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("core: invalid options: %w", errors.Join(errs...))
}
