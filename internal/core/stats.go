package core

import (
	"sentinel/internal/object"
	"sentinel/internal/oid"
	"sentinel/internal/txn"
)

// Snapshot is an immutable point-in-time view of the runtime counters,
// grouped by subsystem. It is returned by Database.Stats; for latency
// histograms and the full metric registry see Database.Metrics.
type Snapshot struct {
	Objects     ObjectStats
	Events      EventStats
	Rules       RuleStats
	Detached    DetachedStats
	Storage     StorageStats
	Replication ReplicationStats
	Txn         txn.Stats
}

// ObjectStats describes the live object population.
type ObjectStats struct {
	// Resident counts objects materialized in the directory; Total counts
	// the live population (directory ∪ heap). They diverge once demand
	// paging leaves cold objects on disk.
	Resident int
	Total    int
}

// EventStats counts event generation and propagation.
type EventStats struct {
	Sends         uint64 // method dispatches
	Raised        uint64 // primitive occurrences generated
	Notifications uint64 // occurrence deliveries to consumers
	Detections    uint64 // composite/primitive event detections signalled
}

// RuleStats counts the rule catalog and rule execution.
type RuleStats struct {
	Defined       int
	Subscriptions int
	ConditionsRun uint64
	ActionsRun    uint64
	SlowFirings   uint64 // firings at or above Options.SlowRuleThreshold

	// Consumer-resolution cache behaviour (see consumers.go): raises
	// served from a cached entry vs recomputed, invalidation scopes
	// applied by catalog mutations, and live entries across both maps.
	CacheHits          uint64
	CacheMisses        uint64
	CacheInvalidations uint64
	CacheEntries       int
}

// DetachedStats describes the conflict-aware detached executor pool
// (zero-valued when AsyncDetached is off and detached rules run
// synchronously).
type DetachedStats struct {
	Workers           int    // pool size (0 = synchronous execution)
	Queued            int    // firings enqueued, not yet executing
	InFlight          int    // firings executing right now
	Executed          uint64 // firings the pool has completed
	ConflictStalls    uint64 // firings enqueued behind a conflicting predecessor
	BackpressureWaits uint64 // commits that blocked on a full queue
}

// StorageStats counts paging, checkpointing, WAL, MVCC and group-commit
// activity.
type StorageStats struct {
	Faults      uint64 // objects decoded from the heap on demand
	Evictions   uint64 // residents reclaimed by the clock sweep
	Checkpoints uint64 // checkpoints taken (explicit + automatic)
	WALBytes    int64  // current write-ahead-log size

	WatermarkLSN    uint64 // MVCC low-watermark (min of oldest snapshot and stable LSN)
	SnapshotsActive int    // registered read-only snapshots
	VersionsLive    int64  // archived versions across all chains
	VersionPrunes   uint64 // archived versions reclaimed by the watermark
	MaxChainDepth   int    // longest live version chain
	CommitGroups    uint64 // group-commit flushes
	GroupedCommits  uint64 // commits carried by those flushes (ratio = commits per fsync)
}

// ReplicationStats describes the replication role and stream position.
// Zero-valued (Role "none") when the database neither ships nor follows.
type ReplicationStats struct {
	Role       string // "none", "primary", or "replica"
	Peers      int    // primary: attached followers; replica: connected primaries (0 or 1)
	ShippedLSN uint64 // primary: last committed batch; replica: primary's last known batch
	AppliedLSN uint64 // primary: min applied LSN across followers; replica: last applied batch
	LagBatches uint64 // ShippedLSN - AppliedLSN (0 with no peers)

	Epoch          uint64 // replication epoch this node's history belongs to
	Fenced         bool   // true on a deposed primary (newer epoch observed)
	QuorumDegraded uint64 // quorum commits that timed out and degraded to async
}

// Stats returns a snapshot of the runtime counters, grouped by subsystem.
func (db *Database) Stats() Snapshot {
	db.mu.RLock()
	rules := len(db.rules)
	subsN := 0
	for _, m := range db.subs {
		subsN += len(m)
	}
	db.mu.RUnlock()
	resident, total := db.countObjects()
	m := db.met
	return Snapshot{
		Objects: ObjectStats{Resident: resident, Total: total},
		Events: EventStats{
			Sends:         m.sends.Value(),
			Raised:        m.eventsRaised.Value(),
			Notifications: m.notifications.Value(),
			Detections:    m.detections.Value(),
		},
		Rules: RuleStats{
			Defined:       rules,
			Subscriptions: subsN,
			ConditionsRun: m.conditionsRun.Value(),
			ActionsRun:    m.actionsRun.Value(),
			SlowFirings:   m.slowFirings.Value(),

			CacheHits:          m.ccHits.Value(),
			CacheMisses:        m.ccMisses.Value(),
			CacheInvalidations: m.ccInvalidations.Value(),
			CacheEntries:       db.consumerCacheEntries(),
		},
		Detached: db.detachedStats(),
		Storage: StorageStats{
			Faults:      m.faults.Value(),
			Evictions:   m.evictions.Value(),
			Checkpoints: m.checkpoints.Value(),
			WALBytes:    db.WALSize(),

			WatermarkLSN:    db.watermark(),
			SnapshotsActive: db.snaps.activeCount(),
			VersionsLive:    db.dir.liveVersions.Load(),
			VersionPrunes:   m.versionPrunes.Value(),
			MaxChainDepth:   db.dir.maxChainDepth(),
			CommitGroups:    m.commitGroups.Value(),
			GroupedCommits:  m.groupedCommits.Value(),
		},
		Replication: db.replicationStats(),
		Txn:         db.tm.Stats(),
	}
}

// replicationStats reads the replication position. The local LSN is always
// authoritative for this node's side of the stream; the peer callback
// (installed by internal/repl) supplies the other side's position.
func (db *Database) replicationStats() ReplicationStats {
	var s ReplicationStats
	local, epoch := db.replPosition()
	s.Epoch = epoch
	s.Fenced = db.fenced.Load()
	s.QuorumDegraded = db.met.quorumDegraded.Value()
	switch {
	case db.opts.Replica:
		s.Role = "replica"
		s.AppliedLSN = local
		s.ShippedLSN = local
		if fn := db.replInfo.Load(); fn != nil {
			peers, shipped := (*fn)()
			s.Peers = peers
			if shipped > s.ShippedLSN {
				s.ShippedLSN = shipped
			}
		}
	case db.replCollect.Load():
		s.Role = "primary"
		s.ShippedLSN = local
		s.AppliedLSN = local
		if fn := db.replInfo.Load(); fn != nil {
			peers, applied := (*fn)()
			s.Peers = peers
			if peers > 0 {
				s.AppliedLSN = applied
			}
		}
	default:
		s.Role = "none"
		return s
	}
	if s.ShippedLSN > s.AppliedLSN {
		s.LagBatches = s.ShippedLSN - s.AppliedLSN
	}
	return s
}

// detachedStats reads the executor-pool gauges and counters.
func (db *Database) detachedStats() DetachedStats {
	if db.detached == nil {
		return DetachedStats{}
	}
	queued, inflight := db.detached.snapshot()
	m := db.met
	return DetachedStats{
		Workers:           db.detached.workers,
		Queued:            queued,
		InFlight:          inflight,
		Executed:          m.detachedFirings.Value(),
		ConflictStalls:    m.detachedStalls.Value(),
		BackpressureWaits: m.detachedBackpressure.Value(),
	}
}

// countObjects computes the resident and total (directory ∪ heap) live
// populations: residents are directory entries minus tombstones, the total
// adds catalog entries with no directory presence (a tombstone shadows its
// heap image — the delete is in flight).
func (db *Database) countObjects() (resident, total int) {
	present := make(map[oid.OID]bool)
	db.dir.forEach(func(id oid.OID, _ *object.Object, tomb bool) {
		present[id] = true
		if !tomb {
			resident++
		}
	})
	total = resident
	if db.store != nil {
		db.catMu.RLock()
		for id := range db.heapCat {
			if !present[id] {
				total++
			}
		}
		db.catMu.RUnlock()
	}
	return resident, total
}

