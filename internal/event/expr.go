package event

import (
	"fmt"
	"sync"

	"sentinel/internal/oid"
)

// Op enumerates the event operators of the hierarchy (Fig. 5 defines
// primitive, conjunction, disjunction and sequence; Not/Any/Aperiodic/
// Periodic extend the hierarchy exactly the way §3.3 argues first-class
// events make easy — they follow Snoop, the event language published for
// Sentinel).
type Op uint8

// Operator kinds.
const (
	OpPrimitive     Op = iota
	OpAnd              // conjunction: both occur, any order
	OpOr               // disjunction: either occurs
	OpSeq              // sequence: right occurs strictly after left completed
	OpNot              // Not(B)[A,C]: C after A with no B in between
	OpAny              // Any(m; E1..En): m of the listed events occur
	OpAperiodic        // A(A,B,C): every B between an A and the next C
	OpPeriodic         // P(A,t,C): every t ticks between an A and the next C
	OpAperiodicStar    // A*(A,B,C): ONE detection at C carrying every B in the window
)

// String returns the operator keyword used by SentinelQL.
func (o Op) String() string {
	switch o {
	case OpPrimitive:
		return "primitive"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpSeq:
		return "seq"
	case OpNot:
		return "not"
	case OpAny:
		return "any"
	case OpAperiodic:
		return "aperiodic"
	case OpPeriodic:
		return "periodic"
	case OpAperiodicStar:
		return "aperiodic_star"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Expr is a first-class event definition: a node in the operator tree. The
// zero OID means "not yet registered in the catalog"; the core layer
// assigns identities and persists definitions.
type Expr struct {
	id oid.OID

	Op Op

	// For OpPrimitive:
	When   Moment
	Class  string
	Method string

	// For operators: the children (2 for And/Or/Seq; 3 for Not [A,B,C] and
	// Aperiodic [A,B,C]; 2 for Periodic [A,C]; n for Any).
	Children []*Expr

	// Count is m for OpAny.
	Count int
	// Period is the tick interval for OpPeriodic.
	Period uint64

	// label memoizes String for Label, which tracing hooks call per
	// detection — rendering the operator tree each time would put
	// allocations on the event hot path.
	labelOnce sync.Once
	label     string
}

// Primitive returns the event definition for "when Class::Method" (bom,
// eom, or an explicit event name).
func Primitive(when Moment, class, method string) *Expr {
	return &Expr{Op: OpPrimitive, When: when, Class: class, Method: method}
}

// And returns the conjunction of two events: "signaled when both E1 and E2
// occur, regardless of the order of their occurrence" (§4.3).
func And(a, b *Expr) *Expr { return &Expr{Op: OpAnd, Children: []*Expr{a, b}} }

// Or returns the disjunction of two events: "signaled when either E1 or E2
// occurs" (§4.3).
func Or(a, b *Expr) *Expr { return &Expr{Op: OpOr, Children: []*Expr{a, b}} }

// Seq returns the sequence event: "signaled when the event E2 occurs,
// provided E1 has occurred earlier" (§4.3). With composite operands, E is
// signaled when the last component of E2 occurs after all of E1.
func Seq(a, b *Expr) *Expr { return &Expr{Op: OpSeq, Children: []*Expr{a, b}} }

// Not returns NOT(b)[a, c]: signaled when c occurs after a with no
// occurrence of b in between (extension operator).
func Not(a, b, c *Expr) *Expr { return &Expr{Op: OpNot, Children: []*Expr{a, b, c}} }

// Any returns ANY(m; events...): signaled when m distinct events from the
// list have occurred (extension operator).
func Any(m int, events ...*Expr) *Expr {
	return &Expr{Op: OpAny, Children: events, Count: m}
}

// Aperiodic returns A(a, b, c): signals every occurrence of b inside a
// window opened by a and closed by c (extension operator).
func Aperiodic(a, b, c *Expr) *Expr { return &Expr{Op: OpAperiodic, Children: []*Expr{a, b, c}} }

// AperiodicStar returns A*(a, b, c): the cumulative variant — one detection
// at c carrying the window opener and EVERY b that occurred inside the
// window (extension operator).
func AperiodicStar(a, b, c *Expr) *Expr {
	return &Expr{Op: OpAperiodicStar, Children: []*Expr{a, b, c}}
}

// Periodic returns P(a, period, c): after a, signals whenever the logical
// clock crosses successive period boundaries, until c (extension
// operator). Detection piggy-backs on fed occurrences — the detector has
// no timer of its own; see Detector.
func Periodic(a *Expr, period uint64, c *Expr) *Expr {
	return &Expr{Op: OpPeriodic, Children: []*Expr{a, c}, Period: period}
}

// ID returns the catalog identity (oid.Nil when unregistered).
func (e *Expr) ID() oid.OID { return e.id }

// SetID assigns the catalog identity; called by the core layer when the
// definition becomes a first-class persistent object.
func (e *Expr) SetID(id oid.OID) { e.id = id }

// Primitive reports whether the node is a primitive event.
func (e *Expr) IsPrimitive() bool { return e.Op == OpPrimitive }

// Primitives appends all primitive descendants (including e itself) to dst
// and returns it; used to compute which signatures an event listens for.
func (e *Expr) Primitives(dst []*Expr) []*Expr {
	if e.Op == OpPrimitive {
		return append(dst, e)
	}
	for _, c := range e.Children {
		dst = c.Primitives(dst)
	}
	return dst
}

// Signatures returns the distinct (when, class, method) triples the event
// listens for.
func (e *Expr) Signatures() []Signature {
	seen := make(map[Signature]bool)
	var out []Signature
	for _, p := range e.Primitives(nil) {
		s := Signature{When: p.When, Class: p.Class, Method: p.Method}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Validate checks structural well-formedness (child counts, positive Any
// count, non-zero period).
func (e *Expr) Validate() error {
	switch e.Op {
	case OpPrimitive:
		if e.Class == "" || e.Method == "" {
			return fmt.Errorf("event: primitive event needs class and method")
		}
		return nil
	case OpAnd, OpOr, OpSeq:
		if len(e.Children) != 2 {
			return fmt.Errorf("event: %s needs 2 operands, got %d", e.Op, len(e.Children))
		}
	case OpNot, OpAperiodic, OpAperiodicStar:
		if len(e.Children) != 3 {
			return fmt.Errorf("event: %s needs 3 operands, got %d", e.Op, len(e.Children))
		}
	case OpPeriodic:
		if len(e.Children) != 2 {
			return fmt.Errorf("event: periodic needs 2 operands, got %d", len(e.Children))
		}
		if e.Period == 0 {
			return fmt.Errorf("event: periodic needs a positive period")
		}
	case OpAny:
		if len(e.Children) == 0 {
			return fmt.Errorf("event: any needs at least one operand")
		}
		if e.Count <= 0 || e.Count > len(e.Children) {
			return fmt.Errorf("event: any(%d) over %d operands is out of range", e.Count, len(e.Children))
		}
	default:
		return fmt.Errorf("event: unknown operator %d", e.Op)
	}
	for _, c := range e.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Label returns String rendered once and memoized. Expr trees are
// structurally immutable after construction, so the first rendering stays
// valid; tracing uses this to name events without per-detection
// allocation.
func (e *Expr) Label() string {
	e.labelOnce.Do(func() { e.label = e.String() })
	return e.label
}

// String renders the definition in SentinelQL surface syntax, which is also
// its persistent form (the catalog stores the source and re-parses on
// load).
func (e *Expr) String() string {
	switch e.Op {
	case OpPrimitive:
		// Explicit events print with the `event` keyword so the rendering
		// round-trips through the SentinelQL parser.
		if e.When == Explicit {
			return "event " + e.Class + "::" + e.Method
		}
		return e.When.String() + " " + e.Class + "::" + e.Method
	case OpAnd:
		return "(" + e.Children[0].String() + " and " + e.Children[1].String() + ")"
	case OpOr:
		return "(" + e.Children[0].String() + " or " + e.Children[1].String() + ")"
	case OpSeq:
		return "(" + e.Children[0].String() + " seq " + e.Children[1].String() + ")"
	case OpNot:
		return "not(" + e.Children[1].String() + ")[" + e.Children[0].String() + ", " + e.Children[2].String() + "]"
	case OpAny:
		s := fmt.Sprintf("any(%d", e.Count)
		for _, c := range e.Children {
			s += "; " + c.String()
		}
		return s + ")"
	case OpAperiodic:
		return "aperiodic(" + e.Children[0].String() + "; " + e.Children[1].String() + "; " + e.Children[2].String() + ")"
	case OpAperiodicStar:
		return "aperiodic_star(" + e.Children[0].String() + "; " + e.Children[1].String() + "; " + e.Children[2].String() + ")"
	case OpPeriodic:
		return fmt.Sprintf("periodic(%s; %d; %s)", e.Children[0], e.Period, e.Children[1])
	default:
		return "?" + e.Op.String()
	}
}

// Signature is a primitive-event pattern.
type Signature struct {
	When   Moment
	Class  string
	Method string
}

// Matches reports whether an occurrence satisfies the signature, treating
// the signature's class as covering subclasses per h.
func (s Signature) Matches(o Occurrence, h Hierarchy) bool {
	if s.When != o.When || s.Method != o.Method {
		return false
	}
	if s.Class == o.Class {
		return true
	}
	return h.IsSubclass(o.Class, s.Class)
}

// String renders "begin Class::Method".
func (s Signature) String() string {
	return s.When.String() + " " + s.Class + "::" + s.Method
}
