package event

import (
	"fmt"
	"sync/atomic"
)

// Context selects the parameter-context policy for binary operators
// (And/Seq): which stored constituent detections a new arrival pairs with,
// and which are consumed. The paper's Fig. 6 implementation keeps a Raised
// flag per operand and resets on signal; that is ContextPaper, the default.
// The remaining contexts follow Snoop (Sentinel's published event
// language), an extension §3.3 explicitly argues first-class events make
// cheap.
type Context uint8

const (
	// ContextPaper keeps the most recent detection per operand and consumes
	// both on signal (Fig. 6 flag semantics).
	ContextPaper Context = iota
	// ContextRecent keeps the most recent detection per operand; a new
	// arrival pairs with the other side's most recent, which is retained
	// for future pairings.
	ContextRecent
	// ContextChronicle pairs oldest-with-oldest, FIFO, consuming both.
	ContextChronicle
	// ContextContinuous pairs a new arrival with every stored detection of
	// the other side, consuming them.
	ContextContinuous
	// ContextCumulative accumulates all detections of both sides and emits
	// one merged detection when the operator completes, then clears.
	ContextCumulative
)

// String returns the context name.
func (c Context) String() string {
	switch c {
	case ContextPaper:
		return "paper"
	case ContextRecent:
		return "recent"
	case ContextChronicle:
		return "chronicle"
	case ContextContinuous:
		return "continuous"
	case ContextCumulative:
		return "cumulative"
	default:
		return fmt.Sprintf("context(%d)", uint8(c))
	}
}

// ParseContext parses a context name.
func ParseContext(s string) (Context, error) {
	switch s {
	case "", "paper":
		return ContextPaper, nil
	case "recent":
		return ContextRecent, nil
	case "chronicle":
		return ContextChronicle, nil
	case "continuous":
		return ContextContinuous, nil
	case "cumulative":
		return ContextCumulative, nil
	default:
		return ContextPaper, fmt.Errorf("event: unknown parameter context %q", s)
	}
}

// Detector holds the runtime recognition state for one event definition —
// the "local event detector" a rule forwards its received events to
// (Fig. 2). The recognition graph is single-writer: each consumer owns its
// detector and must serialize Feed/Reset (rule.Rule does this under its own
// lock). The fed counter is atomic so Fed() can be read from any goroutine.
type Detector struct {
	root *node
	h    Hierarchy
	ctx  Context
	fed  atomic.Uint64 // occurrences fed, for stats
}

// NewDetector compiles the event definition into a detector. The expression
// must Validate.
func NewDetector(e *Expr, h Hierarchy, ctx Context) (*Detector, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if h == nil {
		h = FlatHierarchy{}
	}
	d := &Detector{h: h, ctx: ctx}
	d.root = d.compile(e)
	return d, nil
}

// MustDetector is NewDetector that panics on error; for tests.
func MustDetector(e *Expr, h Hierarchy, ctx Context) *Detector {
	d, err := NewDetector(e, h, ctx)
	if err != nil {
		panic(err)
	}
	return d
}

// Fed returns the number of occurrences fed so far.
func (d *Detector) Fed() uint64 { return d.fed.Load() }

// Feed runs one occurrence through the event graph and returns the
// top-level detections it completes (usually zero or one; contexts and
// operators like Aperiodic can yield several). Callers must serialize Feed
// with Reset (single-writer); the counter alone is safe to read anywhere.
func (d *Detector) Feed(o Occurrence) []Detection {
	d.fed.Add(1)
	return d.root.feed(o)
}

// Reset clears all recognition state.
func (d *Detector) Reset() { d.root.reset() }

type node struct {
	expr     *Expr
	h        Hierarchy
	ctx      Context
	children []*node

	// Binary operator buffers (And/Seq).
	left, right []Detection

	// Not / Aperiodic / Periodic / AperiodicStar window state.
	window   *Detection
	violated bool
	nextTick uint64
	accum    []Detection // AperiodicStar: the Bs collected in the window

	// Any state: latest detection per child index.
	fired map[int]Detection
}

func (d *Detector) compile(e *Expr) *node {
	n := &node{expr: e, h: d.h, ctx: d.ctx}
	for _, c := range e.Children {
		n.children = append(n.children, d.compile(c))
	}
	if e.Op == OpAny {
		n.fired = make(map[int]Detection)
	}
	return n
}

func (n *node) reset() {
	n.left, n.right = nil, nil
	n.window = nil
	n.violated = false
	n.nextTick = 0
	n.accum = nil
	if n.fired != nil {
		n.fired = make(map[int]Detection)
	}
	for _, c := range n.children {
		c.reset()
	}
}

func (n *node) feed(o Occurrence) []Detection {
	switch n.expr.Op {
	case OpPrimitive:
		sig := Signature{When: n.expr.When, Class: n.expr.Class, Method: n.expr.Method}
		if sig.Matches(o, n.h) {
			return []Detection{{Constituents: []Occurrence{o}}}
		}
		return nil

	case OpOr:
		// Disjunction is context-independent: every operand detection
		// signals immediately (§4.3).
		out := n.children[0].feed(o)
		out = append(out, n.children[1].feed(o)...)
		return out

	case OpAnd:
		l := n.children[0].feed(o)
		r := n.children[1].feed(o)
		var out []Detection
		for _, dl := range l {
			out = append(out, n.pair(dl, true)...)
		}
		for _, dr := range r {
			out = append(out, n.pair(dr, false)...)
		}
		return out

	case OpSeq:
		l := n.children[0].feed(o)
		r := n.children[1].feed(o)
		var out []Detection
		// Lefts arriving now become available to FUTURE rights only (a
		// right completed by the same occurrence is not "strictly after").
		for _, dr := range r {
			out = append(out, n.pairSeq(dr)...)
		}
		n.left = append(n.left, l...)
		n.trimLeftForContext()
		return out

	case OpNot:
		a := n.children[0].feed(o)
		b := n.children[1].feed(o)
		c := n.children[2].feed(o)
		var out []Detection
		// Order: close windows with C first so that one occurrence acting
		// as both B and C cancels rather than signals (conservative).
		if len(b) > 0 && n.window != nil {
			n.violated = true
		}
		for _, dc := range c {
			if n.window != nil && !n.violated {
				out = append(out, merged(*n.window, dc))
			}
			n.window = nil
			n.violated = false
		}
		if len(a) > 0 {
			w := a[len(a)-1]
			n.window = &w
			n.violated = false
		}
		return out

	case OpAny:
		var out []Detection
		for i, c := range n.children {
			dets := c.feed(o)
			if len(dets) > 0 {
				n.fired[i] = dets[len(dets)-1]
			}
		}
		if len(n.fired) >= n.expr.Count {
			acc := Detection{}
			first := true
			for _, d := range n.fired {
				if first {
					acc = d
					first = false
				} else {
					acc = merged(acc, d)
				}
			}
			n.fired = make(map[int]Detection)
			out = append(out, acc)
		}
		return out

	case OpAperiodic:
		a := n.children[0].feed(o)
		b := n.children[1].feed(o)
		c := n.children[2].feed(o)
		var out []Detection
		if n.window != nil {
			for _, db := range b {
				out = append(out, merged(*n.window, db))
			}
		}
		if len(c) > 0 {
			n.window = nil
		}
		if len(a) > 0 {
			w := a[len(a)-1]
			n.window = &w
		}
		return out

	case OpAperiodicStar:
		a := n.children[0].feed(o)
		b := n.children[1].feed(o)
		c := n.children[2].feed(o)
		var out []Detection
		if n.window != nil {
			n.accum = append(n.accum, b...)
			if len(c) > 0 {
				acc := *n.window
				for _, db := range n.accum {
					acc = merged(acc, db)
				}
				out = append(out, merged(acc, c[0]))
				n.window = nil
				n.accum = nil
			}
		}
		if len(a) > 0 {
			w := a[len(a)-1]
			n.window = &w
			n.accum = nil
		}
		return out

	case OpPeriodic:
		a := n.children[0].feed(o)
		c := n.children[1].feed(o)
		var out []Detection
		if n.window != nil {
			for o.Seq >= n.nextTick {
				out = append(out, merged(*n.window, Detection{Constituents: []Occurrence{o}}))
				n.nextTick += n.expr.Period
			}
		}
		if len(c) > 0 {
			n.window = nil
		}
		if len(a) > 0 {
			w := a[len(a)-1]
			n.window = &w
			n.nextTick = w.End() + n.expr.Period
		}
		return out

	default:
		return nil
	}
}

// pair handles an And-operand arrival under the configured context.
// fromLeft says which side the new detection belongs to.
func (n *node) pair(d Detection, fromLeft bool) []Detection {
	mine, other := &n.left, &n.right
	if !fromLeft {
		mine, other = &n.right, &n.left
	}
	var out []Detection
	switch n.ctx {
	case ContextPaper:
		*mine = []Detection{d}
		if len(*other) > 0 {
			out = append(out, merged(d, (*other)[0]))
			n.left, n.right = nil, nil
		}
	case ContextRecent:
		*mine = []Detection{d}
		if len(*other) > 0 {
			out = append(out, merged(d, (*other)[len(*other)-1]))
		}
	case ContextChronicle:
		*mine = append(*mine, d)
		for len(n.left) > 0 && len(n.right) > 0 {
			out = append(out, merged(n.left[0], n.right[0]))
			n.left = n.left[1:]
			n.right = n.right[1:]
		}
	case ContextContinuous:
		if len(*other) > 0 {
			for _, od := range *other {
				out = append(out, merged(d, od))
			}
			*other = nil
		} else {
			*mine = append(*mine, d)
		}
	case ContextCumulative:
		*mine = append(*mine, d)
		if len(n.left) > 0 && len(n.right) > 0 {
			acc := n.left[0]
			for _, x := range n.left[1:] {
				acc = merged(acc, x)
			}
			for _, x := range n.right {
				acc = merged(acc, x)
			}
			n.left, n.right = nil, nil
			out = append(out, acc)
		}
	}
	return out
}

// pairSeq handles a right-operand arrival for Seq: only stored lefts whose
// last constituent precedes the right's first constituent are eligible.
func (n *node) pairSeq(dr Detection) []Detection {
	eligible := func(dl Detection) bool { return dl.End() < dr.Start() }
	var out []Detection
	switch n.ctx {
	case ContextPaper:
		if len(n.left) > 0 && eligible(n.left[len(n.left)-1]) {
			out = append(out, merged(n.left[len(n.left)-1], dr))
			n.left = nil
		}
	case ContextRecent:
		if len(n.left) > 0 && eligible(n.left[len(n.left)-1]) {
			out = append(out, merged(n.left[len(n.left)-1], dr))
		}
	case ContextChronicle:
		if len(n.left) > 0 && eligible(n.left[0]) {
			out = append(out, merged(n.left[0], dr))
			n.left = n.left[1:]
		}
	case ContextContinuous:
		var keep []Detection
		for _, dl := range n.left {
			if eligible(dl) {
				out = append(out, merged(dl, dr))
			} else {
				keep = append(keep, dl)
			}
		}
		n.left = keep
	case ContextCumulative:
		var keep, use []Detection
		for _, dl := range n.left {
			if eligible(dl) {
				use = append(use, dl)
			} else {
				keep = append(keep, dl)
			}
		}
		if len(use) > 0 {
			acc := use[0]
			for _, x := range use[1:] {
				acc = merged(acc, x)
			}
			out = append(out, merged(acc, dr))
			n.left = keep
		}
	}
	return out
}

// trimLeftForContext bounds the left buffer for contexts that only ever use
// the most recent left.
func (n *node) trimLeftForContext() {
	switch n.ctx {
	case ContextPaper, ContextRecent:
		if len(n.left) > 1 {
			n.left = n.left[len(n.left)-1:]
		}
	}
}
