package event

import (
	"testing"
	"testing/quick"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// occ builds an occurrence of end C::<m> at timestamp seq from source 1.
func occ(m string, seq uint64) Occurrence {
	return Occurrence{Source: 1, Class: "C", Method: m, When: End, Seq: seq}
}

func prim(m string) *Expr { return Primitive(End, "C", m) }

// feedAll runs occurrences through a fresh detector and returns the number
// of detections per feed.
func feedAll(t *testing.T, e *Expr, ctx Context, occs ...Occurrence) []int {
	t.Helper()
	d, err := NewDetector(e, nil, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(occs))
	for i, o := range occs {
		out[i] = len(d.Feed(o))
	}
	return out
}

func total(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func TestPrimitiveMatching(t *testing.T) {
	counts := feedAll(t, prim("a"), ContextPaper,
		occ("a", 1), occ("b", 2), occ("a", 3))
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPrimitiveMomentMatters(t *testing.T) {
	e := Primitive(Begin, "C", "a")
	d := MustDetector(e, nil, ContextPaper)
	if got := d.Feed(occ("a", 1)); len(got) != 0 { // end != begin
		t.Fatal("end occurrence matched a begin signature")
	}
	if got := d.Feed(Occurrence{Class: "C", Method: "a", When: Begin, Seq: 2}); len(got) != 1 {
		t.Fatal("begin occurrence missed")
	}
}

func TestSubclassMatching(t *testing.T) {
	h := mapHierarchy{"Manager": "Employee"}
	e := Primitive(End, "Employee", "SetSalary")
	d := MustDetector(e, h, ContextPaper)
	if got := d.Feed(Occurrence{Class: "Manager", Method: "SetSalary", When: End, Seq: 1}); len(got) != 1 {
		t.Fatal("subclass occurrence missed")
	}
	if got := d.Feed(Occurrence{Class: "Stock", Method: "SetSalary", When: End, Seq: 2}); len(got) != 0 {
		t.Fatal("unrelated class matched")
	}
}

type mapHierarchy map[string]string // sub -> super

func (m mapHierarchy) IsSubclass(sub, super string) bool {
	for sub != "" {
		if sub == super {
			return true
		}
		sub = m[sub]
	}
	return false
}

func TestDisjunctionEitherSignals(t *testing.T) {
	counts := feedAll(t, Or(prim("a"), prim("b")), ContextPaper,
		occ("a", 1), occ("b", 2), occ("c", 3))
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestConjunctionAnyOrder(t *testing.T) {
	// a then b signals on b.
	counts := feedAll(t, And(prim("a"), prim("b")), ContextPaper,
		occ("a", 1), occ("b", 2))
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("a,b: %v", counts)
	}
	// b then a also signals — "regardless of the order" (§4.3).
	counts = feedAll(t, And(prim("a"), prim("b")), ContextPaper,
		occ("b", 1), occ("a", 2))
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("b,a: %v", counts)
	}
}

func TestConjunctionPaperConsumes(t *testing.T) {
	// Fig. 6 flag semantics: after signalling, both flags reset; a second b
	// alone does not signal again.
	counts := feedAll(t, And(prim("a"), prim("b")), ContextPaper,
		occ("a", 1), occ("b", 2), occ("b", 3), occ("a", 4))
	if total(counts) != 2 || counts[1] != 1 || counts[3] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSequenceRequiresOrder(t *testing.T) {
	// b before a: no detection; a then b: detection.
	counts := feedAll(t, Seq(prim("a"), prim("b")), ContextPaper,
		occ("b", 1), occ("a", 2), occ("b", 3))
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSequenceStrictlyAfter(t *testing.T) {
	// The same occurrence cannot be both sides: Seq(a, a) needs two a's.
	counts := feedAll(t, Seq(prim("a"), prim("a")), ContextPaper,
		occ("a", 1), occ("a", 2))
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSequenceOfComposites(t *testing.T) {
	// (a and b) seq c: "E is signaled when the last component of E2 occurs
	// provided all the components of E1 have occurred" (§4.3).
	e := Seq(And(prim("a"), prim("b")), prim("c"))
	counts := feedAll(t, e, ContextPaper,
		occ("c", 1), // too early
		occ("a", 2),
		occ("c", 3), // conjunction not complete yet
		occ("b", 4),
		occ("c", 5), // now: (a,b) complete before c
	)
	if total(counts) != 1 || counts[4] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestNotOperator(t *testing.T) {
	e := Not(prim("a"), prim("b"), prim("c")) // c after a with no b between
	counts := feedAll(t, e, ContextPaper,
		occ("a", 1), occ("c", 2), // signals
		occ("a", 3), occ("b", 4), occ("c", 5), // violated: no signal
		occ("c", 6), // window closed: no signal
	)
	if counts[1] != 1 || total(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAnyOperator(t *testing.T) {
	e := Any(2, prim("a"), prim("b"), prim("c"))
	counts := feedAll(t, e, ContextPaper,
		occ("a", 1), occ("a", 2), // same operand twice: not 2 distinct
		occ("c", 3), // 2 distinct now: signal
		occ("b", 4), // state reset: only 1 distinct
		occ("a", 5), // 2 distinct again: signal
	)
	if counts[2] != 1 || counts[4] != 1 || total(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAperiodicOperator(t *testing.T) {
	e := Aperiodic(prim("a"), prim("b"), prim("c")) // every b in (a, c)
	counts := feedAll(t, e, ContextPaper,
		occ("b", 1), // outside any window
		occ("a", 2),
		occ("b", 3), occ("b", 4), // two signals
		occ("c", 5),
		occ("b", 6), // window closed
	)
	if counts[2] != 1 || counts[3] != 1 || total(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPeriodicOperator(t *testing.T) {
	e := Periodic(prim("a"), 10, prim("c"))
	d := MustDetector(e, nil, ContextPaper)
	if got := d.Feed(occ("a", 5)); len(got) != 0 {
		t.Fatal("initiator signalled")
	}
	// Next boundary is 15; an occurrence at 12 does not cross it.
	if got := d.Feed(occ("x", 12)); len(got) != 0 {
		t.Fatalf("early tick signalled")
	}
	// 17 crosses 15 → one detection; next boundary 25.
	if got := d.Feed(occ("x", 17)); len(got) != 1 {
		t.Fatal("boundary crossing missed")
	}
	// 40 crosses 25 and 35 → two detections.
	if got := d.Feed(occ("x", 40)); len(got) != 2 {
		t.Fatalf("multi-boundary crossing: %d detections", len(got))
	}
	// Terminator closes the window.
	d.Feed(occ("c", 41))
	if got := d.Feed(occ("x", 99)); len(got) != 0 {
		t.Fatal("detection after terminator")
	}
}

func TestRecentContext(t *testing.T) {
	// Recent retains the most recent operand: every b pairs with the
	// latest a.
	counts := feedAll(t, And(prim("a"), prim("b")), ContextRecent,
		occ("a", 1), occ("b", 2), occ("b", 3), occ("b", 4))
	if total(counts) != 3 {
		t.Fatalf("recent counts = %v", counts)
	}
}

func TestChronicleContext(t *testing.T) {
	// Chronicle pairs FIFO: 2 a's and 3 b's yield exactly 2 pairs, oldest
	// first.
	e := Seq(prim("a"), prim("b"))
	d := MustDetector(e, nil, ContextChronicle)
	d.Feed(occ("a", 1))
	d.Feed(occ("a", 2))
	det1 := d.Feed(occ("b", 3))
	det2 := d.Feed(occ("b", 4))
	det3 := d.Feed(occ("b", 5))
	if len(det1) != 1 || len(det2) != 1 || len(det3) != 0 {
		t.Fatalf("chronicle: %d/%d/%d", len(det1), len(det2), len(det3))
	}
	if det1[0].First().Seq != 1 || det2[0].First().Seq != 2 {
		t.Fatal("chronicle did not pair oldest-first")
	}
}

func TestContinuousContext(t *testing.T) {
	// Continuous: each initiator opens a window; one terminator detects
	// all open windows.
	e := Seq(prim("a"), prim("b"))
	d := MustDetector(e, nil, ContextContinuous)
	d.Feed(occ("a", 1))
	d.Feed(occ("a", 2))
	dets := d.Feed(occ("b", 3))
	if len(dets) != 2 {
		t.Fatalf("continuous: %d detections, want 2", len(dets))
	}
	// Consumed: another b detects nothing.
	if dets := d.Feed(occ("b", 4)); len(dets) != 0 {
		t.Fatal("continuous did not consume")
	}
}

func TestCumulativeContext(t *testing.T) {
	e := Seq(prim("a"), prim("b"))
	d := MustDetector(e, nil, ContextCumulative)
	d.Feed(occ("a", 1))
	d.Feed(occ("a", 2))
	dets := d.Feed(occ("b", 3))
	if len(dets) != 1 {
		t.Fatalf("cumulative: %d detections, want 1", len(dets))
	}
	// One detection accumulating BOTH initiators + the terminator.
	if len(dets[0].Constituents) != 3 {
		t.Fatalf("cumulative constituents = %d, want 3", len(dets[0].Constituents))
	}
}

func TestDetectionConstituentsOrdered(t *testing.T) {
	e := And(prim("a"), And(prim("b"), prim("c")))
	d := MustDetector(e, nil, ContextPaper)
	d.Feed(occ("c", 1))
	d.Feed(occ("a", 2))
	dets := d.Feed(occ("b", 3))
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	cs := dets[0].Constituents
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Seq > cs[i].Seq {
			t.Fatalf("constituents out of order: %v", cs)
		}
	}
	if dets[0].Start() != 1 || dets[0].End() != 3 {
		t.Fatalf("Start/End = %d/%d", dets[0].Start(), dets[0].End())
	}
}

func TestDetectionParamAccess(t *testing.T) {
	e := And(prim("a"), prim("b"))
	d := MustDetector(e, nil, ContextPaper)
	oa := Occurrence{Source: 10, Class: "C", Method: "a", When: End, Seq: 1,
		Args: []value.Value{value.Float(1.5)}, ParamNames: []string{"x"}}
	ob := Occurrence{Source: 20, Class: "C", Method: "b", When: End, Seq: 2,
		Args: []value.Value{value.Int(7)}, ParamNames: []string{"n"}}
	d.Feed(oa)
	dets := d.Feed(ob)
	if len(dets) != 1 {
		t.Fatal("no detection")
	}
	det := dets[0]
	if got, ok := det.ParamsOf(oid.OID(10)); !ok || !got.Param("x").Equal(value.Float(1.5)) {
		t.Fatal("ParamsOf(10) wrong")
	}
	if _, ok := det.ParamsOf(oid.OID(99)); ok {
		t.Fatal("ParamsOf(99) should fail")
	}
	if got, ok := det.OfEvent("C", "b"); !ok || !got.Param("n").Equal(value.Int(7)) {
		t.Fatal("OfEvent wrong")
	}
	if got := oa.Param("missing"); !got.IsNil() {
		t.Fatal("missing param should be nil")
	}
}

func TestReset(t *testing.T) {
	e := Seq(prim("a"), prim("b"))
	d := MustDetector(e, nil, ContextPaper)
	d.Feed(occ("a", 1))
	d.Reset()
	if dets := d.Feed(occ("b", 2)); len(dets) != 0 {
		t.Fatal("state survived Reset")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Expr{
		{Op: OpPrimitive},                         // no class/method
		{Op: OpAnd, Children: []*Expr{prim("a")}}, // arity
		{Op: OpNot, Children: []*Expr{prim("a"), prim("b")}},
		{Op: OpAny, Children: []*Expr{prim("a")}, Count: 2},
		{Op: OpAny, Count: 1},
		{Op: OpPeriodic, Children: []*Expr{prim("a"), prim("b")}, Period: 0},
		{Op: Op(99)},
		And(prim("a"), &Expr{Op: OpPrimitive}), // nested invalid
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid expression accepted: %s", i, e)
		}
	}
	if _, err := NewDetector(&Expr{Op: OpAnd}, nil, ContextPaper); err == nil {
		t.Error("NewDetector accepted an invalid expression")
	}
}

func TestSignaturesDeduplicated(t *testing.T) {
	e := And(Or(prim("a"), prim("b")), prim("a"))
	sigs := e.Signatures()
	if len(sigs) != 2 {
		t.Fatalf("signatures = %v", sigs)
	}
}

func TestStringRendering(t *testing.T) {
	e := Seq(And(prim("a"), prim("b")), Or(prim("c"), prim("d")))
	want := "((end C::a and end C::b) seq (end C::c or end C::d))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	n := Not(prim("a"), prim("b"), prim("c"))
	if got := n.String(); got != "not(end C::b)[end C::a, end C::c]" {
		t.Errorf("not String = %q", got)
	}
	if got := Any(2, prim("a"), prim("b")).String(); got != "any(2; end C::a; end C::b)" {
		t.Errorf("any String = %q", got)
	}
}

// Property: under the chronicle context, And over a random a/b stream
// detects exactly min(#a, #b) pairs — FIFO pairing consumes one of each.
// Under the paper (flag) context, stale unpaired occurrences are overwritten,
// so the count is bounded by min(#a, #b) and every detection still holds
// exactly one a and one b.
func TestConjunctionCountProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		chron := MustDetector(And(prim("a"), prim("b")), nil, ContextChronicle)
		paper := MustDetector(And(prim("a"), prim("b")), nil, ContextPaper)
		var na, nb, chronDets, paperDets int
		for i, isA := range pattern {
			m := "b"
			if isA {
				m = "a"
				na++
			} else {
				nb++
			}
			o := occ(m, uint64(i+1))
			chronDets += len(chron.Feed(o))
			for _, det := range paper.Feed(o) {
				paperDets++
				if len(det.Constituents) != 2 ||
					det.Constituents[0].Method == det.Constituents[1].Method {
					return false
				}
			}
		}
		minAB := na
		if nb < na {
			minAB = nb
		}
		return chronDets == minAB && paperDets <= minAB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: And is order-insensitive in total count — feeding a stream or
// its reverse yields the same number of detections under the paper context.
func TestConjunctionOrderInsensitiveProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		count := func(ps []bool) int {
			d := MustDetector(And(prim("a"), prim("b")), nil, ContextPaper)
			n := 0
			for i, isA := range ps {
				m := "b"
				if isA {
					m = "a"
				}
				n += len(d.Feed(occ(m, uint64(i+1))))
			}
			return n
		}
		rev := make([]bool, len(pattern))
		for i, p := range pattern {
			rev[len(pattern)-1-i] = p
		}
		return count(pattern) == count(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Seq detections never pair a right occurrence with a later left.
func TestSequenceOrderingProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		d := MustDetector(Seq(prim("a"), prim("b")), nil, ContextChronicle)
		for i, isA := range pattern {
			m := "b"
			if isA {
				m = "a"
			}
			for _, det := range d.Feed(occ(m, uint64(i+1))) {
				cs := det.Constituents
				if cs[0].Method != "a" || cs[len(cs)-1].Method != "b" {
					return false
				}
				if cs[0].Seq >= cs[len(cs)-1].Seq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMomentAndContextStrings(t *testing.T) {
	if Begin.String() != "begin" || End.String() != "end" || Explicit.String() != "explicit" {
		t.Error("Moment.String wrong")
	}
	for _, c := range []Context{ContextPaper, ContextRecent, ContextChronicle, ContextContinuous, ContextCumulative} {
		parsed, err := ParseContext(c.String())
		if err != nil || parsed != c {
			t.Errorf("ParseContext(%q) = %v, %v", c.String(), parsed, err)
		}
	}
	if _, err := ParseContext("bogus"); err == nil {
		t.Error("bogus context accepted")
	}
	if got := (Occurrence{Class: "C", Method: "m", When: End, Seq: 3}).EventName(); got != "end C::m" {
		t.Errorf("EventName = %q", got)
	}
	if got := (Occurrence{Class: "C", Method: "m", When: Explicit}).EventName(); got != "event C::m" {
		t.Errorf("explicit EventName = %q", got)
	}
}

func TestAperiodicStarOperator(t *testing.T) {
	e := AperiodicStar(prim("a"), prim("b"), prim("c"))
	d := MustDetector(e, nil, ContextPaper)
	d.Feed(occ("b", 1)) // outside any window: ignored
	d.Feed(occ("a", 2)) // open
	d.Feed(occ("b", 3))
	d.Feed(occ("b", 4))
	dets := d.Feed(occ("c", 5)) // close: ONE detection with a, both b's, c
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	if got := len(dets[0].Constituents); got != 4 {
		t.Fatalf("constituents = %d, want 4 (a, b, b, c)", got)
	}
	// Window consumed: a second c detects nothing.
	if dets := d.Feed(occ("c", 6)); len(dets) != 0 {
		t.Fatal("closed window signalled again")
	}
	// An empty window still signals at close (with just a and c).
	d.Feed(occ("a", 7))
	dets = d.Feed(occ("c", 8))
	if len(dets) != 1 || len(dets[0].Constituents) != 2 {
		t.Fatalf("empty window close: %v", dets)
	}
}

func TestAperiodicStarStringAndValidate(t *testing.T) {
	e := AperiodicStar(prim("a"), prim("b"), prim("c"))
	want := "aperiodic_star(end C::a; end C::b; end C::c)"
	if got := e.String(); got != want {
		t.Fatalf("String = %q", got)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Expr{Op: OpAperiodicStar, Children: []*Expr{prim("a")}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad arity accepted")
	}
}
