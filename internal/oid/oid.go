// Package oid defines object identifiers for the Sentinel object store.
//
// Every first-class entity in the database — application objects, classes,
// event objects, rule objects, and subscriptions — carries an OID. OIDs are
// surrogate identifiers: dense, never reused, and stable across restarts
// (the allocator's high-water mark is checkpointed by the storage layer).
//
// The paper ("A New Perspective on Rule Support for Object-Oriented
// Databases", §3.4) leans on object identity to make rules and events
// first-class: "each rule will have an object identity, thereby allowing
// rules to be associated with other objects". This package is that identity.
package oid

import (
	"fmt"
	"sync/atomic"
)

// OID is a database-wide object identifier. The zero value is Nil and never
// identifies an object.
type OID uint64

// Nil is the null object identifier.
const Nil OID = 0

// IsNil reports whether the OID is the null identifier.
func (o OID) IsNil() bool { return o == Nil }

// String renders the OID in the form "oid:42" ("oid:nil" for Nil).
func (o OID) String() string {
	if o == Nil {
		return "oid:nil"
	}
	return fmt.Sprintf("oid:%d", uint64(o))
}

// Allocator hands out monotonically increasing OIDs. It is safe for
// concurrent use. The zero value allocates from 1.
type Allocator struct {
	last atomic.Uint64
}

// NewAllocator returns an allocator whose next OID is start (or 1 if start
// is 0).
func NewAllocator(start OID) *Allocator {
	a := &Allocator{}
	if start > 0 {
		a.last.Store(uint64(start) - 1)
	}
	return a
}

// Next returns a fresh, never-before-returned OID.
func (a *Allocator) Next() OID {
	return OID(a.last.Add(1))
}

// Advance raises the allocator's high-water mark so that every future Next
// returns an OID strictly greater than o. It is used during recovery to
// resume allocation above all persisted objects.
func (a *Allocator) Advance(o OID) {
	for {
		cur := a.last.Load()
		if cur >= uint64(o) {
			return
		}
		if a.last.CompareAndSwap(cur, uint64(o)) {
			return
		}
	}
}

// HighWater returns the largest OID handed out so far (Nil if none).
func (a *Allocator) HighWater() OID { return OID(a.last.Load()) }
