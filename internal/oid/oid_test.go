package oid

import (
	"sync"
	"testing"
)

func TestAllocatorMonotonic(t *testing.T) {
	a := NewAllocator(0)
	var prev OID
	for i := 0; i < 1000; i++ {
		next := a.Next()
		if next <= prev {
			t.Fatalf("Next() = %v not greater than previous %v", next, prev)
		}
		prev = next
	}
	if a.HighWater() != prev {
		t.Fatalf("HighWater() = %v, want %v", a.HighWater(), prev)
	}
}

func TestAllocatorStart(t *testing.T) {
	a := NewAllocator(100)
	if got := a.Next(); got != 100 {
		t.Fatalf("first Next() = %v, want 100", got)
	}
	if got := a.Next(); got != 101 {
		t.Fatalf("second Next() = %v, want 101", got)
	}
}

func TestAllocatorAdvance(t *testing.T) {
	a := NewAllocator(1)
	a.Advance(500)
	if got := a.Next(); got != 501 {
		t.Fatalf("Next() after Advance(500) = %v, want 501", got)
	}
	// Advancing backwards is a no-op.
	a.Advance(10)
	if got := a.Next(); got != 502 {
		t.Fatalf("Next() after backwards Advance = %v, want 502", got)
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator(1)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	results := make([][]OID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[g] = append(results[g], a.Next())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[OID]bool, goroutines*per)
	for _, rs := range results {
		for _, id := range rs {
			if seen[id] {
				t.Fatalf("duplicate OID %v", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique OIDs, want %d", len(seen), goroutines*per)
	}
}

func TestNilAndString(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if OID(7).IsNil() {
		t.Error("OID(7).IsNil() = true")
	}
	if got := Nil.String(); got != "oid:nil" {
		t.Errorf("Nil.String() = %q", got)
	}
	if got := OID(42).String(); got != "oid:42" {
		t.Errorf("OID(42).String() = %q", got)
	}
}
