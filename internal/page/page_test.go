package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func freshPage() *Page {
	p := Wrap(make([]byte, Size))
	p.Init()
	return p
}

func TestInsertRead(t *testing.T) {
	p := freshPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte(""), []byte("gamma-longer-record")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, ok := p.Insert(r)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		slots[i] = s
	}
	for i, r := range recs {
		got, ok := p.Read(slots[i])
		if !ok || !bytes.Equal(got, r) {
			t.Fatalf("read slot %d = %q, %v; want %q", slots[i], got, ok, r)
		}
	}
	if _, ok := p.Read(99); ok {
		t.Error("read of out-of-range slot succeeded")
	}
	if _, ok := p.Read(-1); ok {
		t.Error("read of negative slot succeeded")
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	p := freshPage()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if !p.Delete(s0) {
		t.Fatal("delete failed")
	}
	if p.Delete(s0) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := p.Read(s0); ok {
		t.Fatal("read of deleted slot succeeded")
	}
	// The tombstoned slot is reused.
	s2, ok := p.Insert([]byte("three"))
	if !ok || s2 != s0 {
		t.Fatalf("slot reuse: got %d, want %d", s2, s0)
	}
	if got, _ := p.Read(s1); !bytes.Equal(got, []byte("two")) {
		t.Fatal("neighbour record damaged")
	}
}

func TestUpdateInPlaceAndRelocate(t *testing.T) {
	p := freshPage()
	s, _ := p.Insert([]byte("1234567890"))
	// Shrinking update stays in place.
	if !p.Update(s, []byte("123")) {
		t.Fatal("shrinking update failed")
	}
	if got, _ := p.Read(s); !bytes.Equal(got, []byte("123")) {
		t.Fatalf("after shrink: %q", got)
	}
	// Growing update within page capacity.
	big := bytes.Repeat([]byte("x"), 500)
	if !p.Update(s, big) {
		t.Fatal("growing update failed")
	}
	if got, _ := p.Read(s); !bytes.Equal(got, big) {
		t.Fatal("after grow: mismatch")
	}
	if p.Update(99, []byte("x")) {
		t.Error("update of bad slot succeeded")
	}
}

func TestUpdateTooBigRestoresRecord(t *testing.T) {
	p := freshPage()
	s, _ := p.Insert([]byte("keep-me"))
	// Fill the page almost completely.
	filler := bytes.Repeat([]byte("f"), 1000)
	for {
		if _, ok := p.Insert(filler); !ok {
			break
		}
	}
	huge := bytes.Repeat([]byte("h"), 4000)
	if p.Update(s, huge) {
		t.Fatal("update should have failed for lack of space")
	}
	// The original record must still be readable.
	if got, ok := p.Read(s); !ok || !bytes.Equal(got, []byte("keep-me")) {
		t.Fatalf("record lost after failed update: %q, %v", got, ok)
	}
}

func TestFillToCapacityAndCompact(t *testing.T) {
	p := freshPage()
	rec := bytes.Repeat([]byte("r"), 100)
	var slots []int
	for {
		s, ok := p.Insert(rec)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 70 {
		t.Fatalf("only %d records of 100 bytes fit in an 8 KiB page", len(slots))
	}
	// Delete every other record; compaction should make room again.
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	// A bigger record now fits thanks to compaction inside Insert.
	big := bytes.Repeat([]byte("B"), 150)
	if _, ok := p.Insert(big); !ok {
		t.Fatal("insert after deletions failed (compaction broken)")
	}
	// Surviving records are intact.
	for i := 1; i < len(slots); i += 2 {
		if got, ok := p.Read(slots[i]); !ok || !bytes.Equal(got, rec) {
			t.Fatalf("record %d damaged after compaction", slots[i])
		}
	}
}

func TestMaxRecord(t *testing.T) {
	p := freshPage()
	if _, ok := p.Insert(make([]byte, MaxRecord)); !ok {
		t.Fatal("MaxRecord-sized insert failed on an empty page")
	}
	p2 := freshPage()
	if _, ok := p2.Insert(make([]byte, MaxRecord+1)); ok {
		t.Fatal("oversized insert succeeded")
	}
}

func TestLiveRecords(t *testing.T) {
	p := freshPage()
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	p.Insert([]byte("c"))
	p.Delete(s1)
	seen := map[int]string{}
	p.LiveRecords(func(slot int, rec []byte) {
		seen[slot] = string(rec)
	})
	if len(seen) != 2 || seen[s0] != "a" {
		t.Fatalf("LiveRecords = %v", seen)
	}
}

// TestRandomOpsAgainstModel drives random insert/update/delete against a
// map model and verifies the page agrees after every operation.
func TestRandomOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := freshPage()
	model := map[int][]byte{} // slot -> record

	randRec := func() []byte {
		n := rng.Intn(300) + 1
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	slotsOf := func() []int {
		var out []int
		for s := range model {
			out = append(out, s)
		}
		return out
	}

	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert
			rec := randRec()
			if s, ok := p.Insert(rec); ok {
				model[s] = rec
			}
		case r < 8: // update
			slots := slotsOf()
			if len(slots) == 0 {
				continue
			}
			s := slots[rng.Intn(len(slots))]
			rec := randRec()
			if p.Update(s, rec) {
				model[s] = rec
			}
		default: // delete
			slots := slotsOf()
			if len(slots) == 0 {
				continue
			}
			s := slots[rng.Intn(len(slots))]
			if !p.Delete(s) {
				t.Fatalf("op %d: delete of live slot %d failed", op, s)
			}
			delete(model, s)
		}
		// Verify a random sample (full verification every 100 ops).
		if op%100 == 0 {
			for s, want := range model {
				got, ok := p.Read(s)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("op %d: slot %d diverged from model", op, s)
				}
			}
		}
	}
	// Final full check.
	count := 0
	p.LiveRecords(func(slot int, rec []byte) {
		count++
		if want, ok := model[slot]; !ok || !bytes.Equal(rec, want) {
			t.Fatalf("final: slot %d diverged", slot)
		}
	})
	if count != len(model) {
		t.Fatalf("live count %d != model %d", count, len(model))
	}
}

func TestWrapPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with wrong size did not panic")
		}
	}()
	Wrap(make([]byte, 100))
}

func TestFreeDecreasesMonotonically(t *testing.T) {
	p := freshPage()
	prev := p.Free()
	for i := 0; i < 10; i++ {
		p.Insert([]byte(fmt.Sprintf("record-%d", i)))
		f := p.Free()
		if f >= prev {
			t.Fatalf("free space did not shrink: %d -> %d", prev, f)
		}
		prev = f
	}
}
