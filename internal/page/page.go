// Package page implements fixed-size slotted pages, the unit of storage and
// buffering for the heap file.
//
// Layout (little-endian):
//
//	header:  numSlots:uint16 | freeStart:uint16 | freeEnd:uint16
//	records: grow forward from the header
//	slots:   grow backward from the page end; each slot is
//	         offset:uint16 | length:uint16
//
// A deleted slot has offset 0 and length 0; slot indexes are stable, so a
// (page, slot) pair — a RID — permanently identifies a record until deleted.
package page

import (
	"encoding/binary"
	"fmt"
)

// Size is the page size in bytes.
const Size = 8192

const (
	headerSize = 6
	slotSize   = 4
)

// ID identifies a page within the heap file (its index).
type ID uint32

// Page wraps a Size-byte buffer with slotted-record accessors. It does not
// own the buffer.
type Page struct {
	buf []byte
}

// Wrap interprets buf (which must be Size bytes) as a page.
func Wrap(buf []byte) *Page {
	if len(buf) != Size {
		panic(fmt.Sprintf("page: buffer must be %d bytes, got %d", Size, len(buf)))
	}
	return &Page{buf: buf}
}

// Init formats the buffer as an empty page.
func (p *Page) Init() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setFreeStart(headerSize)
	p.setFreeEnd(Size)
}

// Bytes returns the underlying buffer.
func (p *Page) Bytes() []byte { return p.buf }

func (p *Page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }
func (p *Page) setFreeEnd(n int)   { binary.LittleEndian.PutUint16(p.buf[4:6], uint16(n)) }

func (p *Page) slotPos(i int) int { return Size - (i+1)*slotSize }

func (p *Page) slot(i int) (off, ln int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[pos : pos+2])),
		int(binary.LittleEndian.Uint16(p.buf[pos+2 : pos+4]))
}

func (p *Page) setSlot(i, off, ln int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.buf[pos:pos+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:pos+4], uint16(ln))
}

// Note: freeEnd is the start of the slot directory region; records may use
// bytes [freeStart, freeEnd).

// Free returns the number of bytes available for a new record, accounting
// for the slot directory entry it would need.
func (p *Page) Free() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NumSlots returns the size of the slot directory (including deleted slots).
func (p *Page) NumSlots() int { return p.numSlots() }

// MaxRecord is the largest record insertable into an empty page.
const MaxRecord = Size - headerSize - slotSize

// Insert stores a record and returns its slot index. It reuses a deleted
// slot when one exists. It returns false when the page lacks space
// (compaction is attempted first).
func (p *Page) Insert(rec []byte) (slot int, ok bool) {
	if len(rec) > MaxRecord {
		return 0, false
	}
	// Find a reusable slot.
	reuse := -1
	for i := 0; i < p.numSlots(); i++ {
		if off, ln := p.slot(i); off == 0 && ln == 0 {
			reuse = i
			break
		}
	}
	need := len(rec)
	if reuse < 0 {
		need += slotSize
	}
	if p.freeEnd()-p.freeStart() < need {
		p.Compact()
		if p.freeEnd()-p.freeStart() < need {
			return 0, false
		}
	}
	off := p.freeStart()
	copy(p.buf[off:], rec)
	p.setFreeStart(off + len(rec))
	if reuse >= 0 {
		p.setSlot(reuse, off, len(rec))
		return reuse, true
	}
	i := p.numSlots()
	p.setNumSlots(i + 1)
	p.setFreeEnd(p.freeEnd() - slotSize)
	p.setSlot(i, off, len(rec))
	return i, true
}

// Read returns the record stored in the slot. ok is false for out-of-range
// or deleted slots. The returned slice aliases the page buffer.
func (p *Page) Read(slot int) (rec []byte, ok bool) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, false
	}
	off, ln := p.slot(slot)
	if off == 0 && ln == 0 {
		return nil, false
	}
	return p.buf[off : off+ln], true
}

// Update replaces the record in the slot. It first tries in place, then
// appends a fresh copy (compacting if needed). It returns false when the
// new record cannot fit on this page; the caller must relocate it.
func (p *Page) Update(slot int, rec []byte) bool {
	if slot < 0 || slot >= p.numSlots() {
		return false
	}
	off, ln := p.slot(slot)
	if off == 0 && ln == 0 {
		return false
	}
	if len(rec) <= ln {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return true
	}
	// Relocate: free the old space first (keeping a copy — compaction moves
	// records, so the old offsets become meaningless), compact if needed,
	// and restore the original record if the new one still cannot fit.
	old := append([]byte(nil), p.buf[off:off+ln]...)
	p.setSlot(slot, 0, 0)
	if p.freeEnd()-p.freeStart() < len(rec) {
		p.Compact()
	}
	if p.freeEnd()-p.freeStart() >= len(rec) {
		no := p.freeStart()
		copy(p.buf[no:], rec)
		p.setFreeStart(no + len(rec))
		p.setSlot(slot, no, len(rec))
		return true
	}
	// Put the old record back; its bytes were just freed, so after the
	// compaction above there is always room for it.
	no := p.freeStart()
	copy(p.buf[no:], old)
	p.setFreeStart(no + len(old))
	p.setSlot(slot, no, len(old))
	return false
}

// Delete removes the record in the slot (tombstoning the slot for reuse).
func (p *Page) Delete(slot int) bool {
	if slot < 0 || slot >= p.numSlots() {
		return false
	}
	if off, ln := p.slot(slot); off == 0 && ln == 0 {
		return false
	}
	p.setSlot(slot, 0, 0)
	return true
}

// Compact rewrites live records contiguously to defragment free space. Slot
// indexes are preserved.
func (p *Page) Compact() {
	type live struct{ slot, off, ln int }
	var recs []live
	for i := 0; i < p.numSlots(); i++ {
		if off, ln := p.slot(i); !(off == 0 && ln == 0) {
			recs = append(recs, live{i, off, ln})
		}
	}
	// Copy live data out, then back in packed order.
	scratch := make([]byte, 0, Size)
	offsets := make([]int, len(recs))
	pos := headerSize
	for i, r := range recs {
		scratch = append(scratch, p.buf[r.off:r.off+r.ln]...)
		offsets[i] = pos
		pos += r.ln
	}
	copy(p.buf[headerSize:], scratch)
	for i, r := range recs {
		p.setSlot(r.slot, offsets[i], r.ln)
	}
	p.setFreeStart(pos)
}

// LiveRecords calls fn for every live (slot, record) pair.
func (p *Page) LiveRecords(fn func(slot int, rec []byte)) {
	for i := 0; i < p.numSlots(); i++ {
		if off, ln := p.slot(i); !(off == 0 && ln == 0) {
			fn(i, p.buf[off:off+ln])
		}
	}
}
